//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Snapshot-optimized `empty()`** (§6 "Optimizations to IBR
//!    Framework") vs a naive per-retired-node rescan of all slots.
//! 2. **Single end-of-op fence** vs a fence per cleared slot.
//! 3. **Midpoint index policy** (§4.1) vs a pred+1 policy, measured by
//!    MP's hazard-fallback (collision) rate.

use mp_bench::{BenchParams, Table};
use mp_ds::{LinkedList, NmTree};
use mp_smr::schemes::{Hp, Mp};
use mp_smr::IndexPolicy;

fn main() {
    let runs = mp_bench::runs();
    let threads = *mp_bench::thread_sweep().last().unwrap_or(&2);
    let _prefill = mp_bench::prefill_size(500_000);
    let _list_prefill = mp_bench::prefill_size(5_000);

    // 1. Snapshot vs naive reclamation scan (write-heavy → many empties).
    let mut t1 = Table::new(
        "Ablation: snapshot-optimized empty() vs naive rescan (write-dominated BST)",
        &["scheme", "variant", "Mops/s"],
    );
    for (scheme, naive, mops) in [
        ("HP", false, {
            let p = BenchParams::paper(threads, 500_000, mp_bench::WRITE_DOMINATED);
            mp_bench::driver::run_avg::<Hp, NmTree<Hp>>(&p, runs).mops
        }),
        ("HP", true, {
            let mut p = BenchParams::paper(threads, 500_000, mp_bench::WRITE_DOMINATED);
            p.config = p.config.with_naive_scan(true);
            mp_bench::driver::run_avg::<Hp, NmTree<Hp>>(&p, runs).mops
        }),
        ("MP", false, {
            let p = BenchParams::paper(threads, 500_000, mp_bench::WRITE_DOMINATED);
            mp_bench::driver::run_avg::<Mp, NmTree<Mp>>(&p, runs).mops
        }),
        ("MP", true, {
            let mut p = BenchParams::paper(threads, 500_000, mp_bench::WRITE_DOMINATED);
            p.config = p.config.with_naive_scan(true);
            mp_bench::driver::run_avg::<Mp, NmTree<Mp>>(&p, runs).mops
        }),
    ] {
        t1.row(vec![
            scheme.into(),
            if naive { "naive rescan" } else { "snapshot" }.into(),
            format!("{mops:.3}"),
        ]);
    }
    t1.emit("ablation_snapshot");

    // 2. Single end-of-op fence vs per-slot fences (read-dominated → the
    // end_op path dominates SMR cost).
    let mut t2 = Table::new(
        "Ablation: one end_op fence vs per-slot fences (read-dominated BST)",
        &["scheme", "variant", "Mops/s", "fences/node"],
    );
    for (scheme, per_slot) in [("HP", false), ("HP", true), ("MP", false), ("MP", true)] {
        let mut p = BenchParams::paper(threads, 500_000, mp_bench::READ_DOMINATED);
        p.config = p.config.with_per_slot_fence(per_slot);
        let (mops, fpn) = if scheme == "HP" {
            let r = mp_bench::driver::run_avg::<Hp, NmTree<Hp>>(&p, runs);
            (r.mops, r.fences_per_node)
        } else {
            let r = mp_bench::driver::run_avg::<Mp, NmTree<Mp>>(&p, runs);
            (r.mops, r.fences_per_node)
        };
        t2.row(vec![
            scheme.into(),
            if per_slot { "per-slot fence" } else { "single fence" }.into(),
            format!("{mops:.3}"),
            format!("{fpn:.4}"),
        ]);
    }
    t2.emit("ablation_endop_fence");

    // 3. Index policy: midpoint vs after-pred (collision → HP fallback).
    let mut t3 = Table::new(
        "Ablation: MP index policy (write-dominated list)",
        &["policy", "Mops/s", "hp-fallback rate", "collision allocs"],
    );
    for (name, policy) in
        [("midpoint", IndexPolicy::Midpoint), ("after-pred", IndexPolicy::AfterPred)]
    {
        let mut p = BenchParams::paper(threads, 5_000, mp_bench::WRITE_DOMINATED);
        p.config = p.config.with_index_policy(policy);
        let r = mp_bench::driver::run_avg::<Mp, LinkedList<Mp>>(&p, runs);
        t3.row(vec![
            name.into(),
            format!("{:.3}", r.mops),
            format!("{:.1}%", 100.0 * r.hp_fallback_rate),
            r.telemetry.collision_allocs().to_string(),
        ]);
    }
    t3.emit("ablation_index_policy");
}
