//! Index-collision analysis (the paper's §5 pointer to [28, §4.6]).
//!
//! MP's efficiency hinges on how often `alloc` finds room between the
//! predecessor's and successor's indices. This analysis measures, per
//! structure / size / insertion order:
//!
//! * the fraction of allocations that collided (stamped `USE_HP`), and
//! * the fraction of reads that took the hazard-pointer fallback.
//!
//! Expected shape (thesis §4.6): random insertion orders keep collisions
//! negligible until the structure size approaches the index-space
//! granularity, while ascending insertion collides after ~32 nodes
//! (binary-halving exhausts a 32-bit range).
//!
//! Measured nuance worth recording: the collision cascade is *total* for
//! the list and skip list (their upper bound is the tail's fixed
//! `max_index`, so once a `USE_HP` node becomes the predecessor the
//! interval stays exhausted forever — Figure 7a's 100%), but the NM tree
//! **self-heals**: a `USE_HP` bound enters the midpoint arithmetic as
//! `0xffff_ffff` (Listing 5 reads `n->index` verbatim), re-widening the
//! interval, so ascending tree inserts stay below ~4% collisions. MP's
//! worst case really is the list, exactly where the paper evaluates it.

use mp_bench::{BenchParams, Prefill, Table};
use mp_ds::{LinkedList, NmTree, SkipList};
use mp_smr::schemes::Mp;

fn measure<D: mp_ds::ConcurrentSet<Mp>>(
    label: &str,
    prefill: usize,
    mode: Prefill,
    table: &mut Table,
) {
    let mut p = BenchParams::new(2, prefill, mp_bench::READ_DOMINATED);
    p.prefill_mode = mode;
    p.duration = std::time::Duration::from_millis(150);
    let res = mp_bench::driver::run::<Mp, D>(&p);
    let collision_rate = if res.telemetry.allocs() == 0 {
        0.0
    } else {
        100.0 * res.telemetry.collision_allocs() as f64 / res.telemetry.allocs() as f64
    };
    table.row(vec![
        label.to_string(),
        prefill.to_string(),
        format!("{mode:?}"),
        format!("{collision_rate:.2}%"),
        format!("{:.2}%", 100.0 * res.hp_fallback_rate),
    ]);
}

fn main() {
    let mut table = Table::new(
        "Index collisions by structure, size, and insertion order (thesis §4.6)",
        &["structure", "S", "prefill order", "collision allocs", "hp-fallback reads"],
    );
    for &prefill in &[1_000usize, 10_000, 50_000] {
        measure::<LinkedList<Mp>>("list", prefill.min(2_000), Prefill::Random, &mut table);
        measure::<SkipList<Mp>>("skiplist", prefill, Prefill::Random, &mut table);
        measure::<NmTree<Mp>>("nmtree", prefill, Prefill::Random, &mut table);
    }
    // The adversarial order (Figure 7a's setup).
    measure::<LinkedList<Mp>>("list", 2_000, Prefill::Ascending, &mut table);
    measure::<SkipList<Mp>>("skiplist", 10_000, Prefill::Ascending, &mut table);
    measure::<NmTree<Mp>>("nmtree", 10_000, Prefill::Ascending, &mut table);
    table.emit("collision_analysis");
}
