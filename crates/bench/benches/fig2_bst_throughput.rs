//! Figure 2 — Natarajan–Mittal BST throughput (paper §6.1).
//!
//! Paper setting: S = 500 K prefill, keys from a 1 M range, thread counts
//! 1..100, three workloads. Expected shape: in non-read-only workloads MP ≈
//! IBR ≈ HE while HP trails 1.3–2×; in read-only, MP trails the best
//! EBR-based scheme by ≈20%; past the hardware-thread count, IBR/HE dip and
//! MP can overtake them.

use mp_bench::{for_each_scheme, BenchParams, Table};
use mp_ds::NmTree;

fn main() {
    let paper_s = 500_000;
    let prefill = mp_bench::prefill_size(paper_s);
    let runs = mp_bench::runs();
    for mix in [mp_bench::READ_DOMINATED, mp_bench::WRITE_DOMINATED, mp_bench::READ_ONLY] {
        let mut table = Table::new(
            &format!("Figure 2: BST (S={prefill}) throughput, {} workload", mix.name),
            &["threads", "scheme", "Mops/s", "avg-retired"],
        );
        for threads in mp_bench::thread_sweep() {
            let p = BenchParams::paper(threads, paper_s, mix);
            for_each_scheme!(NmTree, &p, runs, |name, res| {
                table.row(vec![
                    threads.to_string(),
                    name.to_string(),
                    format!("{:.3}", res.mops),
                    format!("{:.1}", res.avg_retired),
                ]);
            });
        }
        table.emit(&format!("fig2_bst_{}", mix.name));
    }
}
