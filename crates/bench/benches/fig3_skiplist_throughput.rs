//! Figure 3 — Fraser skip-list throughput (paper §6.1).
//!
//! Same setting and expected shape as Figure 2, on the skip list: MP ≈ HE
//! in non-read-only workloads, HP trails, read-only MP ≈ −30% vs the best
//! EBR-based scheme.

use mp_bench::{for_each_scheme, BenchParams, Table};
use mp_ds::SkipList;

fn main() {
    let paper_s = 500_000;
    let prefill = mp_bench::prefill_size(paper_s);
    let runs = mp_bench::runs();
    for mix in [mp_bench::READ_DOMINATED, mp_bench::WRITE_DOMINATED, mp_bench::READ_ONLY] {
        let mut table = Table::new(
            &format!("Figure 3: skip list (S={prefill}) throughput, {} workload", mix.name),
            &["threads", "scheme", "Mops/s", "avg-retired"],
        );
        for threads in mp_bench::thread_sweep() {
            let p = BenchParams::paper(threads, paper_s, mix);
            for_each_scheme!(SkipList, &p, runs, |name, res| {
                table.row(vec![
                    threads.to_string(),
                    name.to_string(),
                    format!("{:.3}", res.mops),
                    format!("{:.1}", res.avg_retired),
                ]);
            });
        }
        table.emit(&format!("fig3_skiplist_{}", mix.name));
    }
}
