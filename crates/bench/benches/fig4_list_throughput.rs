//! Figure 4 — Michael linked-list throughput, including DTA (paper §6.1).
//!
//! Paper setting: S = 5 K (linear-time operations make larger sizes
//! impractical). Expected shape: IBR leads at high thread counts (2–3×
//! over MP), DTA outperforms MP and HP, and MP's gap versus the epoch
//! schemes is widest here — the "symbiotic" effect: the slower the data
//! structure, the more MP's per-dereference work shows.

use mp_bench::{for_each_scheme, BenchParams, Table};
use mp_ds::{DtaList, LinkedList};
use mp_smr::schemes::Dta;

fn main() {
    let paper_s = 5_000;
    let prefill = mp_bench::prefill_size(paper_s);
    let runs = mp_bench::runs();
    for mix in [mp_bench::READ_DOMINATED, mp_bench::WRITE_DOMINATED, mp_bench::READ_ONLY] {
        let mut table = Table::new(
            &format!("Figure 4: linked list (S={prefill}) throughput, {} workload", mix.name),
            &["threads", "scheme", "Mops/s", "avg-retired"],
        );
        for threads in mp_bench::thread_sweep() {
            let p = BenchParams::paper(threads, paper_s, mix);
            for_each_scheme!(LinkedList, &p, runs, |name, res| {
                table.row(vec![
                    threads.to_string(),
                    name.to_string(),
                    format!("{:.3}", res.mops),
                    format!("{:.1}", res.avg_retired),
                ]);
            });
            // DTA runs on its co-designed list (§6 evaluates DTA only here).
            let res = mp_bench::driver::run_avg::<Dta, DtaList>(&p, runs);
            table.row(vec![
                threads.to_string(),
                "DTA".to_string(),
                format!("{:.3}", res.mops),
                format!("{:.1}", res.avg_retired),
            ]);
        }
        table.emit(&format!("fig4_list_{}", mix.name));
    }
}
