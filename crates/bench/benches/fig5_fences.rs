//! Figure 5 — memory fences per traversed node, MP vs HP (paper §6.1).
//!
//! Read-only workload on all three data structures. Expected shape: MP
//! issues ≈2× fewer fences per node than HP on every structure, because a
//! single margin covers many nearby nodes while HP fences per dereference.

use mp_bench::{BenchParams, Table};
use mp_ds::{LinkedList, NmTree, SkipList};
use mp_smr::schemes::{Hp, Mp};

fn point<S, D>(threads: usize, paper_s: usize, runs: usize) -> f64
where
    S: mp_smr::Smr,
    D: mp_ds::ConcurrentSet<S>,
{
    let p = BenchParams::paper(threads, paper_s, mp_bench::READ_ONLY);
    mp_bench::driver::run_avg::<S, D>(&p, runs).fences_per_node
}

fn main() {
    let runs = mp_bench::runs();
    let threads = *mp_bench::thread_sweep().last().unwrap_or(&2);
    let mut table = Table::new(
        "Figure 5: memory fences per traversed node (read-only)",
        &["structure", "scheme", "fences/node", "ratio HP/MP"],
    );
    let points: [(&str, f64, f64); 3] = [
        (
            "list",
            point::<Mp, LinkedList<Mp>>(threads, 5_000, runs),
            point::<Hp, LinkedList<Hp>>(threads, 5_000, runs),
        ),
        (
            "skiplist",
            point::<Mp, SkipList<Mp>>(threads, 500_000, runs),
            point::<Hp, SkipList<Hp>>(threads, 500_000, runs),
        ),
        (
            "nmtree",
            point::<Mp, NmTree<Mp>>(threads, 500_000, runs),
            point::<Hp, NmTree<Hp>>(threads, 500_000, runs),
        ),
    ];
    for (ds, mp, hp) in points {
        table.row(vec![ds.into(), "MP".into(), format!("{mp:.4}"), String::new()]);
        table.row(vec![
            ds.into(),
            "HP".into(),
            format!("{hp:.4}"),
            format!("{:.2}x", hp / mp.max(1e-12)),
        ]);
    }
    table.emit("fig5_fences");
}
