//! Figure 6 — wasted memory: average retired-but-unreclaimed nodes at
//! operation start, read-dominated workload, all structures (paper §6.1).
//!
//! Expected shape: MP and HP stay near zero at every thread count; HE and
//! IBR grow with the thread count (up to orders of magnitude larger),
//! because context-switch stalls pin their epochs/eras. A second pass adds
//! an explicitly stalled thread (§1's scenario), which makes EBR-family
//! waste grow without bound while MP's stays bounded.

use mp_bench::{for_each_scheme, BenchParams, StallMode, Table};
use mp_ds::{DtaList, LinkedList, NmTree, SkipList};
use mp_smr::schemes::Dta;

fn main() {
    let runs = mp_bench::runs();
    let mix = mp_bench::READ_DOMINATED;
    for stall in [StallMode::None, StallMode::OneStalledThread] {
        let suffix = match stall {
            StallMode::None => "natural stalls only",
            StallMode::OneStalledThread => "one thread parked mid-operation",
        };
        let mut table = Table::new(
            &format!("Figure 6: wasted memory, read-dominated ({suffix})"),
            &["structure", "threads", "scheme", "avg-retired", "peak-pending"],
        );
        for threads in mp_bench::thread_sweep() {
            macro_rules! ds_point {
                ($ds:ident, $label:expr, $paper:expr) => {{
                    let mut p = BenchParams::paper(threads, $paper, mix);
                    p.stall = stall;
                    for_each_scheme!($ds, &p, runs, |name, res| {
                        table.row(vec![
                            $label.to_string(),
                            threads.to_string(),
                            name.to_string(),
                            format!("{:.1}", res.avg_retired),
                            res.peak_pending.to_string(),
                        ]);
                    });
                }};
            }
            ds_point!(NmTree, "nmtree", 500_000);
            ds_point!(SkipList, "skiplist", 500_000);
            ds_point!(LinkedList, "list", 5_000);
            // DTA on its list (§6: little waste; freezing rarely fires).
            let mut p = BenchParams::paper(threads, 5_000, mix);
            p.stall = stall;
            let res = mp_bench::driver::run_avg::<Dta, DtaList>(&p, runs);
            table.row(vec![
                "list".into(),
                threads.to_string(),
                "DTA".into(),
                format!("{:.1}", res.avg_retired),
                res.peak_pending.to_string(),
            ]);
        }
        let slug = match stall {
            StallMode::None => "fig6_wasted_memory",
            StallMode::OneStalledThread => "fig6_wasted_memory_stalled",
        };
        table.emit(slug);
    }
}
