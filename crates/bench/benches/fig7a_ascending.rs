//! Figure 7a — index-collision worst case (paper §6.1 "Key Distribution &
//! MP Index Collisions").
//!
//! A list built by inserting keys in ascending order halves the remaining
//! index interval on every insertion, so with 32-bit indices all nodes
//! beyond the first ~32 collide and take the `USE_HP` path. Expected
//! shape: MP's read-only throughput gracefully degrades *to* HP's — never
//! below it — so clients that need the wasted-memory bound risk nothing by
//! adopting MP.

use mp_bench::{BenchParams, Prefill, Table};
use mp_ds::LinkedList;
use mp_smr::schemes::{Hp, Mp};

fn main() {
    let prefill = mp_bench::prefill_size(5_000);
    let runs = mp_bench::runs();
    let mut table = Table::new(
        &format!("Figure 7a: ascending-insert list (S={prefill}), read-only throughput"),
        &["threads", "scheme", "Mops/s", "MP hp-fallback rate"],
    );
    for threads in mp_bench::thread_sweep() {
        let mut p = BenchParams::paper(threads, 5_000, mp_bench::READ_ONLY);
        p.prefill_mode = Prefill::Ascending;
        let mp = mp_bench::driver::run_avg::<Mp, LinkedList<Mp>>(&p, runs);
        let hp = mp_bench::driver::run_avg::<Hp, LinkedList<Hp>>(&p, runs);
        table.row(vec![
            threads.to_string(),
            "MP".into(),
            format!("{:.3}", mp.mops),
            format!("{:.1}%", 100.0 * mp.hp_fallback_rate),
        ]);
        table.row(vec![
            threads.to_string(),
            "HP".into(),
            format!("{:.3}", hp.mops),
            String::new(),
        ]);
    }
    table.emit("fig7a_ascending");
}
