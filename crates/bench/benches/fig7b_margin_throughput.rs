//! Figure 7b — margin-size sensitivity: throughput (paper §6.1).
//!
//! Write-dominated workload on the 500 K BST, margins 2^17..2^26. Expected
//! shape: throughput rises monotonically with the margin (bigger margins ⇒
//! fewer announcements ⇒ fewer fences). The paper picks 2^20 as the
//! largest margin that still keeps wasted memory flat (Figure 7c).

use mp_bench::{BenchParams, Table};
use mp_ds::NmTree;
use mp_smr::schemes::Mp;

fn main() {
    let prefill = mp_bench::prefill_size(500_000);
    let runs = mp_bench::runs();
    let threads = *mp_bench::thread_sweep().last().unwrap_or(&2);
    let mut table = Table::new(
        &format!("Figure 7b: margin sensitivity, write-dominated BST (S={prefill}, T={threads})"),
        &["margin", "Mops/s", "fences/node"],
    );
    for shift in 17..=26u32 {
        let mut p = BenchParams::paper(threads, 500_000, mp_bench::WRITE_DOMINATED);
        p.config = p.config.with_margin(1 << shift);
        let res = mp_bench::driver::run_avg::<Mp, NmTree<Mp>>(&p, runs);
        table.row(vec![
            format!("2^{shift}"),
            format!("{:.3}", res.mops),
            format!("{:.4}", res.fences_per_node),
        ]);
    }
    table.emit("fig7b_margin_throughput");
}
