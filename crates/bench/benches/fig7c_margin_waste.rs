//! Figure 7c — margin-size sensitivity: wasted memory (paper §6.1).
//!
//! Same sweep as Figure 7b, reporting retired-but-unreclaimed nodes.
//! Expected shape: wasted memory rises monotonically with the margin
//! (bigger margins pin more retired indices per announcement).

use mp_bench::{BenchParams, Table};
use mp_ds::NmTree;
use mp_smr::schemes::Mp;

fn main() {
    let prefill = mp_bench::prefill_size(500_000);
    let runs = mp_bench::runs();
    let threads = *mp_bench::thread_sweep().last().unwrap_or(&2);
    let mut table = Table::new(
        &format!("Figure 7c: margin sensitivity, wasted memory (S={prefill}, T={threads})"),
        &["margin", "avg-retired", "peak-pending"],
    );
    for shift in 17..=26u32 {
        let mut p = BenchParams::paper(threads, 500_000, mp_bench::WRITE_DOMINATED);
        p.config = p.config.with_margin(1 << shift);
        let res = mp_bench::driver::run_avg::<Mp, NmTree<Mp>>(&p, runs);
        table.row(vec![
            format!("2^{shift}"),
            format!("{:.1}", res.avg_retired),
            res.peak_pending.to_string(),
        ]);
    }
    table.emit("fig7c_margin_waste");
}
