//! Micro-latency bench: single-threaded operation cost per SMR scheme on
//! each data structure. Complements the figure benches with per-op numbers
//! (the paper reports throughput; latency is its single-thread inverse and
//! isolates scheme overhead from contention effects).
//!
//! Formerly a `criterion` bench; now a self-contained harness on the
//! in-tree [`mp_bench::report`] tables: per point it warms up, then takes
//! several timed samples and reports the median ns/op (the median is
//! robust to a stray descheduling blip, which is all criterion's
//! statistics bought us at this measurement scale).
//!
//! ```sh
//! cargo bench --bench latency
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use mp_bench::report::{f3, Table};
use mp_ds::{ConcurrentSet, LinkedList, NmTree, SkipList};
use mp_smr::schemes::{Ebr, He, Hp, Ibr, Leaky, Mp};
use mp_smr::{Config, Smr};

const PREFILL: u64 = 1024;
/// Operations per timed sample (4 ops per cycle).
const CYCLES_PER_SAMPLE: u64 = 8_192;
const SAMPLES: usize = 9;
const WARMUP: Duration = Duration::from_millis(150);

fn bench_config() -> Config {
    Config::default()
        .with_max_threads(2)
        .with_slots_per_thread(mp_ds::skiplist::SLOTS_NEEDED)
}

fn setup<S: Smr, D: ConcurrentSet<S>>() -> (Arc<S>, D, S::Handle) {
    let smr = S::new(bench_config());
    let ds = D::new(&smr);
    let mut h = smr.register();
    for k in 0..PREFILL {
        ds.insert(&mut h, k * 2);
    }
    (smr, ds, h)
}

fn mixed_op_cycle<S: Smr, D: ConcurrentSet<S>>(ds: &D, h: &mut S::Handle, k: u64) {
    // One insert + contains + remove on an odd key (always succeeds), plus
    // a contains on an existing even key: 4 ops per cycle.
    let key = (k % PREFILL) * 2 + 1;
    ds.insert(h, key);
    ds.contains(h, key);
    ds.remove(h, key);
    ds.contains(h, (k % PREFILL) * 2);
}

/// Median ns/op over `SAMPLES` timed batches, after a warmup window.
fn measure<S: Smr, D: ConcurrentSet<S>>() -> f64 {
    let (_smr, ds, mut h) = setup::<S, D>();
    let mut k = 0u64;
    let warm_until = Instant::now() + WARMUP;
    while Instant::now() < warm_until {
        mixed_op_cycle::<S, D>(&ds, &mut h, k);
        k = k.wrapping_add(1);
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..CYCLES_PER_SAMPLE {
                mixed_op_cycle::<S, D>(&ds, &mut h, k);
                k = k.wrapping_add(1);
            }
            t0.elapsed().as_nanos() as f64 / (4 * CYCLES_PER_SAMPLE) as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let mut table = Table::new(
        &format!("Latency: median ns/op, single thread (prefill {PREFILL}, mixed cycle)"),
        &["structure", "scheme", "ns/op"],
    );
    macro_rules! point {
        ($ds:ident, $ds_name:expr, $s:ty) => {{
            let ns = measure::<$s, $ds<$s>>();
            table.row(vec![$ds_name.into(), <$s as Smr>::name().into(), f3(ns)]);
        }};
    }
    macro_rules! structure {
        ($ds:ident, $ds_name:expr) => {{
            point!($ds, $ds_name, Mp);
            point!($ds, $ds_name, Hp);
            point!($ds, $ds_name, Ebr);
            point!($ds, $ds_name, He);
            point!($ds, $ds_name, Ibr);
            point!($ds, $ds_name, Leaky);
        }};
    }
    structure!(LinkedList, "list");
    structure!(SkipList, "skiplist");
    structure!(NmTree, "nmtree");
    table.emit("latency");
}
