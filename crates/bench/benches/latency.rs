//! Criterion micro-latency benches: single-threaded operation cost per
//! SMR scheme on each data structure. Complements the figure benches with
//! statistically rigorous per-op numbers (the paper reports throughput;
//! latency is its single-thread inverse and isolates scheme overhead from
//! contention effects).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mp_ds::{ConcurrentSet, LinkedList, NmTree, SkipList};
use mp_smr::schemes::{Ebr, He, Hp, Ibr, Leaky, Mp};
use mp_smr::{Config, Smr};

const PREFILL: u64 = 1024;

fn bench_config() -> Config {
    Config::default()
        .with_max_threads(2)
        .with_slots_per_thread(mp_ds::skiplist::SLOTS_NEEDED)
}

fn setup<S: Smr, D: ConcurrentSet<S>>() -> (Arc<S>, D, S::Handle) {
    let smr = S::new(bench_config());
    let ds = D::new(&smr);
    let mut h = smr.register();
    for k in 0..PREFILL {
        ds.insert(&mut h, k * 2);
    }
    (smr, ds, h)
}

fn mixed_op_cycle<S: Smr, D: ConcurrentSet<S>>(ds: &D, h: &mut S::Handle, k: u64) {
    // One insert + contains + remove on an odd key (always succeeds), plus
    // a contains on an existing even key: 4 ops per cycle.
    let key = (k % PREFILL) * 2 + 1;
    ds.insert(h, key);
    ds.contains(h, key);
    ds.remove(h, key);
    ds.contains(h, (k % PREFILL) * 2);
}

fn scheme_latency(c: &mut Criterion) {
    macro_rules! group_for {
        ($group:expr, $ds:ident) => {{
            let mut g = c.benchmark_group($group);
            g.sample_size(20);
            g.measurement_time(std::time::Duration::from_millis(700));
            g.warm_up_time(std::time::Duration::from_millis(200));
            macro_rules! point {
                ($s:ty, $name:expr) => {{
                    let (_smr, ds, mut h) = setup::<$s, $ds<$s>>();
                    let mut k = 0u64;
                    g.bench_function(BenchmarkId::from_parameter($name), |b| {
                        b.iter(|| {
                            mixed_op_cycle::<$s, $ds<$s>>(&ds, &mut h, k);
                            k = k.wrapping_add(1);
                        })
                    });
                }};
            }
            point!(Mp, "MP");
            point!(Hp, "HP");
            point!(Ebr, "EBR");
            point!(He, "HE");
            point!(Ibr, "IBR");
            point!(Leaky, "Leaky");
            g.finish();
        }};
    }
    group_for!("latency/list", LinkedList);
    group_for!("latency/skiplist", SkipList);
    group_for!("latency/nmtree", NmTree);
}

criterion_group!(benches, scheme_latency);
criterion_main!(benches);
