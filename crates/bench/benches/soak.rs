//! Oversubscribed Zipfian soak — the scan-path scalability witness.
//!
//! Runs each scheme of the §6 comparison set (MP, IBR, HE, HP, EBR) on
//! the hash map under deliberately hostile conditions: worker threads at
//! a multiple of the host's cores, Zipfian(0.99) key popularity, and
//! periodic handle churn under load. Optionally adds stalled readers and
//! a backpressure byte cap, turning the run into the §1 survival scenario
//! with engagement counts and peak RSS reported per scheme. Emits
//! `BENCH_soak.json` (schema `mp-bench/soak/v2`) at the workspace root
//! (or `$MP_BENCH_DIR`). Schemes are selected at runtime through the
//! `AnySmr` facade, so the whole sweep is one monomorphization.
//!
//! Knobs: `MP_SOAK_DURATION_MS` (per scheme), `MP_SOAK_OVERSUB`
//! (threads = oversub × cores, default 4), `MP_SOAK_PREFILL`,
//! `MP_SOAK_CHURN` (ops between handle re-registrations),
//! `MP_SOAK_DIST` (`zipf` | `hot` | `uniform`), `MP_SOAK_STALLED`
//! (stalled readers, default 0), `MP_SOAK_BP_BYTES` (backpressure hard
//! cap, default 0 = ladder off).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use mp_bench::{json_str, run_soak_kind, KeyDist, SoakParams, SoakResult, Table};
use mp_ds::HashMap;
use mp_smr::{AnySmr, SchemeKind};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One soak row.
struct Row {
    scheme: &'static str,
    res: SoakResult,
}

impl Row {
    fn json(&self, p: &SoakParams, dist: &str) -> String {
        let r = &self.res;
        format!(
            "{{\"scheme\": {}, \"structure\": \"hashmap\", \"threads\": {}, \
             \"duration_ms\": {}, \"dist\": {}, \"total_ops\": {}, \"mops\": {:.4}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"scan_ns_per_free\": {:.2}, \"snapshot_reuses\": {}, \
             \"tid_recycles\": {}, \"handle_churns\": {}, \
             \"peak_pending_nodes\": {}, \"peak_pending_bytes\": {}, \
             \"end_pending_nodes\": {}, \"peak_rss_kb\": {}, \
             \"stalled_readers\": {}, \"bp_help_engagements\": {}, \
             \"bp_throttle_engagements\": {}, \"bp_releases\": {}, \
             \"retires\": {}, \"frees\": {}, \"frees_effective\": {}}}",
            json_str(self.scheme),
            p.threads,
            p.duration.as_millis(),
            json_str(dist),
            r.total_ops,
            r.mops,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.scan_ns_per_free,
            r.snapshot_reuses,
            r.tid_recycles,
            r.handle_churns,
            r.peak_pending,
            r.peak_pending_bytes,
            r.end_pending,
            r.peak_rss_kb,
            p.stalled_readers,
            r.bp_help_engagements,
            r.bp_throttle_engagements,
            r.bp_releases,
            r.telemetry.retires(),
            r.telemetry.frees(),
            // Net reclamation: Drop-path drain scans free nodes after their
            // handle's telemetry was last readable, so compute frees from
            // the retire count minus the end-of-run pending residue.
            r.telemetry.retires().saturating_sub(r.end_pending as u64),
        )
    }
}

/// Where the soak file lands: `$MP_BENCH_DIR` when set, else the workspace
/// root (the committed location).
fn soak_path() -> PathBuf {
    if let Ok(dir) = std::env::var("MP_BENCH_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir).join("BENCH_soak.json");
        }
    }
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("BENCH_soak.json")
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let oversub = env_u64("MP_SOAK_OVERSUB", 4) as usize;
    let threads = (cores * oversub).max(2);
    let duration = Duration::from_millis(env_u64("MP_SOAK_DURATION_MS", 20_000));
    let prefill = env_u64("MP_SOAK_PREFILL", 2_048) as usize;
    let churn = env_u64("MP_SOAK_CHURN", 20_000);
    let stalled = env_u64("MP_SOAK_STALLED", 0) as usize;
    let bp_bytes = env_u64("MP_SOAK_BP_BYTES", 0) as usize;
    let dist_name =
        std::env::var("MP_SOAK_DIST").unwrap_or_else(|_| "zipf".to_string());
    let dist = match dist_name.as_str() {
        "hot" => KeyDist::HotSet { hot_frac: 0.1, hot_prob: 0.9 },
        "uniform" => KeyDist::Uniform,
        _ => KeyDist::Zipfian(0.99),
    };

    let mut p = SoakParams::new(threads, prefill, duration).with_stalled_readers(stalled);
    p.dist = dist;
    p.churn_every = churn;
    p.config = p.config.with_backpressure_bytes(bp_bytes);

    eprintln!(
        "[soak] {} workers on {} core(s) ({}x oversubscribed), {} ms per scheme, \
         dist {}, prefill {}, churn every {} ops, {} stalled reader(s), \
         backpressure cap {} bytes",
        threads,
        cores,
        oversub,
        duration.as_millis(),
        dist_name,
        prefill,
        churn,
        stalled,
        bp_bytes
    );

    // The §6 comparison set, runtime-selected through the facade. DTA is
    // list-specific (degenerates to EBR without its freezer) and skipped.
    let kinds =
        [SchemeKind::Mp, SchemeKind::Ibr, SchemeKind::He, SchemeKind::Hp, SchemeKind::Ebr];
    let mut rows: Vec<Row> = Vec::new();
    for kind in kinds {
        eprintln!("[soak] {} ...", kind.name());
        let res = run_soak_kind::<HashMap<AnySmr>>(kind, &p);
        rows.push(Row { scheme: kind.name(), res });
    }

    let mut table = Table::new(
        "Oversubscribed soak (hashmap, skewed keys, handle churn)",
        &[
            "scheme",
            "Mops/s",
            "p50 us",
            "p99 us",
            "p999 us",
            "scan ns/free",
            "snap-reuse",
            "tid-recycle",
            "peak-pending",
            "end-pending",
            "peak-rss MiB",
            "bp-eng",
        ],
    );
    for row in &rows {
        let r = &row.res;
        table.row(vec![
            row.scheme.to_string(),
            format!("{:.3}", r.mops),
            format!("{:.1}", r.p50_ns as f64 / 1e3),
            format!("{:.1}", r.p99_ns as f64 / 1e3),
            format!("{:.1}", r.p999_ns as f64 / 1e3),
            format!("{:.1}", r.scan_ns_per_free),
            r.snapshot_reuses.to_string(),
            r.tid_recycles.to_string(),
            r.peak_pending.to_string(),
            r.end_pending.to_string(),
            format!("{:.1}", r.peak_rss_kb as f64 / 1024.0),
            (r.bp_help_engagements + r.bp_throttle_engagements).to_string(),
        ]);
    }
    table.emit("soak");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"mp-bench/soak/v2\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"cores\": {}, \"oversub\": {}, \"threads\": {}, \
         \"duration_ms\": {}, \"prefill\": {}, \"churn_every\": {}, \"dist\": {}, \
         \"stalled_readers\": {}, \"bp_cap_bytes\": {}}},",
        cores,
        oversub,
        threads,
        duration.as_millis(),
        prefill,
        churn,
        json_str(&dist_name),
        stalled,
        bp_bytes
    );
    let _ = write!(json, "  \"results\": [");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(json, "{sep}\n    {}", row.json(&p, &dist_name));
    }
    let _ = writeln!(json, "\n  ]\n}}");

    let path = soak_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, json).expect("write BENCH_soak.json");
    eprintln!("[json] {}", path.display());
}
