//! Oversubscribed Zipfian soak — the scan-path scalability witness.
//!
//! Runs each scheme of the §6 comparison set (MP, IBR, HE, HP, EBR) on
//! the hash map under deliberately hostile conditions: worker threads at
//! a multiple of the host's cores, Zipfian(0.99) key popularity, and
//! periodic handle churn under load. Emits `BENCH_soak.json` (schema
//! `mp-bench/soak/v1`) at the workspace root (or `$MP_BENCH_DIR`).
//!
//! Knobs: `MP_SOAK_DURATION_MS` (per scheme), `MP_SOAK_OVERSUB`
//! (threads = oversub × cores, default 4), `MP_SOAK_PREFILL`,
//! `MP_SOAK_CHURN` (ops between handle re-registrations),
//! `MP_SOAK_DIST` (`zipf` | `hot` | `uniform`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use mp_bench::{json_str, run_soak, KeyDist, SoakParams, SoakResult, Table};
use mp_ds::HashMap;
use mp_smr::schemes::{Ebr, He, Hp, Ibr, Mp};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One soak row.
struct Row {
    scheme: &'static str,
    res: SoakResult,
}

impl Row {
    fn json(&self, p: &SoakParams, dist: &str) -> String {
        let r = &self.res;
        format!(
            "{{\"scheme\": {}, \"structure\": \"hashmap\", \"threads\": {}, \
             \"duration_ms\": {}, \"dist\": {}, \"total_ops\": {}, \"mops\": {:.4}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
             \"scan_ns_per_free\": {:.2}, \"snapshot_reuses\": {}, \
             \"tid_recycles\": {}, \"handle_churns\": {}, \
             \"peak_pending_nodes\": {}, \"end_pending_nodes\": {}, \
             \"peak_rss_kb\": {}, \
             \"retires\": {}, \"frees\": {}, \"frees_effective\": {}}}",
            json_str(self.scheme),
            p.threads,
            p.duration.as_millis(),
            json_str(dist),
            r.total_ops,
            r.mops,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.scan_ns_per_free,
            r.snapshot_reuses,
            r.tid_recycles,
            r.handle_churns,
            r.peak_pending,
            r.end_pending,
            r.peak_rss_kb,
            r.telemetry.retires(),
            r.telemetry.frees(),
            // Net reclamation: Drop-path drain scans free nodes after their
            // handle's telemetry was last readable, so compute frees from
            // the retire count minus the end-of-run pending residue.
            r.telemetry.retires().saturating_sub(r.end_pending as u64),
        )
    }
}

/// Where the soak file lands: `$MP_BENCH_DIR` when set, else the workspace
/// root (the committed location).
fn soak_path() -> PathBuf {
    if let Ok(dir) = std::env::var("MP_BENCH_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir).join("BENCH_soak.json");
        }
    }
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("BENCH_soak.json")
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let oversub = env_u64("MP_SOAK_OVERSUB", 4) as usize;
    let threads = (cores * oversub).max(2);
    let duration = Duration::from_millis(env_u64("MP_SOAK_DURATION_MS", 20_000));
    let prefill = env_u64("MP_SOAK_PREFILL", 2_048) as usize;
    let churn = env_u64("MP_SOAK_CHURN", 20_000);
    let dist_name =
        std::env::var("MP_SOAK_DIST").unwrap_or_else(|_| "zipf".to_string());
    let dist = match dist_name.as_str() {
        "hot" => KeyDist::HotSet { hot_frac: 0.1, hot_prob: 0.9 },
        "uniform" => KeyDist::Uniform,
        _ => KeyDist::Zipfian(0.99),
    };

    let mut p = SoakParams::new(threads, prefill, duration);
    p.dist = dist;
    p.churn_every = churn;

    eprintln!(
        "[soak] {} workers on {} core(s) ({}x oversubscribed), {} ms per scheme, \
         dist {}, prefill {}, churn every {} ops",
        threads,
        cores,
        oversub,
        duration.as_millis(),
        dist_name,
        prefill,
        churn
    );

    let mut rows: Vec<Row> = Vec::new();
    macro_rules! soak_scheme {
        ($ty:ty, $name:expr) => {{
            eprintln!("[soak] {} ...", $name);
            let res = run_soak::<$ty, HashMap<$ty>>(&p);
            rows.push(Row { scheme: $name, res });
        }};
    }
    soak_scheme!(Mp, "MP");
    soak_scheme!(Ibr, "IBR");
    soak_scheme!(He, "HE");
    soak_scheme!(Hp, "HP");
    soak_scheme!(Ebr, "EBR");

    let mut table = Table::new(
        "Oversubscribed soak (hashmap, skewed keys, handle churn)",
        &[
            "scheme",
            "Mops/s",
            "p50 us",
            "p99 us",
            "p999 us",
            "scan ns/free",
            "snap-reuse",
            "tid-recycle",
            "peak-pending",
            "end-pending",
            "peak-rss MiB",
        ],
    );
    for row in &rows {
        let r = &row.res;
        table.row(vec![
            row.scheme.to_string(),
            format!("{:.3}", r.mops),
            format!("{:.1}", r.p50_ns as f64 / 1e3),
            format!("{:.1}", r.p99_ns as f64 / 1e3),
            format!("{:.1}", r.p999_ns as f64 / 1e3),
            format!("{:.1}", r.scan_ns_per_free),
            r.snapshot_reuses.to_string(),
            r.tid_recycles.to_string(),
            r.peak_pending.to_string(),
            r.end_pending.to_string(),
            format!("{:.1}", r.peak_rss_kb as f64 / 1024.0),
        ]);
    }
    table.emit("soak");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"mp-bench/soak/v1\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"cores\": {}, \"oversub\": {}, \"threads\": {}, \
         \"duration_ms\": {}, \"prefill\": {}, \"churn_every\": {}, \"dist\": {}}},",
        cores,
        oversub,
        threads,
        duration.as_millis(),
        prefill,
        churn,
        json_str(&dist_name)
    );
    let _ = write!(json, "  \"results\": [");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(json, "{sep}\n    {}", row.json(&p, &dist_name));
    }
    let _ = writeln!(json, "\n  ]\n}}");

    let path = soak_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, json).expect("write BENCH_soak.json");
    eprintln!("[json] {}", path.display());
}
