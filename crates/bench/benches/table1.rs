//! Table 1 — comparison of memory reclamation schemes (paper §3).
//!
//! The paper's table is qualitative; we reproduce its rows and back the
//! two quantifiable columns with measurements: per-node overhead (words of
//! SMR header actually allocated) and a run-time overhead proxy (read-only
//! BST throughput normalized to the leaky baseline, plus fences per node).

use mp_bench::{BenchParams, Table};
use mp_ds::NmTree;
use mp_smr::schemes::{Ebr, He, Hp, Ibr, Leaky, Mp};

fn main() {
    let _prefill = mp_bench::prefill_size(500_000);
    let runs = mp_bench::runs();
    let threads = *mp_bench::thread_sweep().last().unwrap_or(&2);
    let p = BenchParams::paper(threads, 500_000, mp_bench::READ_ONLY);

    let base = mp_bench::driver::run_avg::<Leaky, NmTree<Leaky>>(&p, runs);

    let mut table = Table::new(
        "Table 1: comparison of memory reclamation schemes",
        &[
            "scheme",
            "rel-overhead",
            "fences/node",
            "wasted-memory bound",
            "integration effort",
            "hdr-words",
        ],
    );
    // Per-node header: birth + retire epochs + index — 3 words, used by the
    // epoch-based schemes and MP; HP/EBR ignore the fields but the unified
    // allocator still reserves them (an implementation simplification).
    let hdr_words = std::mem::size_of::<mp_smr::node::Header>().div_ceil(8);

    macro_rules! row {
        ($s:ty, $name:expr, $bound:expr, $effort:expr) => {{
            let r = mp_bench::driver::run_avg::<$s, NmTree<$s>>(&p, runs);
            table.row(vec![
                $name.to_string(),
                format!("{:.2}x", base.mops / r.mops.max(1e-9)),
                format!("{:.4}", r.fences_per_node),
                $bound.to_string(),
                $effort.to_string(),
                hdr_words.to_string(),
            ]);
        }};
    }

    row!(Hp, "HP", "bounded", "per-reference");
    row!(Ebr, "EBR", "unbounded", "per-operation");
    row!(He, "HE", "robust", "~HP");
    row!(Ibr, "IBR", "robust", "per-operation");
    row!(Mp, "MP", "bounded", "HP + bound hooks");
    table.row(vec![
        "DTA".into(),
        "(list only)".into(),
        "-".into(),
        "robust (frozen leak)".into(),
        "DS-specific freezing".into(),
        hdr_words.to_string(),
    ]);
    table.row(vec![
        "Leaky".into(),
        "1.00x".into(),
        "0.0000".into(),
        "none (never frees)".into(),
        "-".into(),
        hdr_words.to_string(),
    ]);
    table.emit("table1");
}
