//! §6.1 "Evaluation Takeaways" as an executable contract.
//!
//! The paper closes its evaluation with three claims; this bench measures
//! each and prints PASS/FAIL, so a regression in the reproduction is
//! caught by reading one table:
//!
//! 1. *"MP is the best performer in its category of SMR schemes with
//!    bounded wasted memory"* — MP vs HP (the only other self-contained
//!    bounded scheme), non-read-only workloads. On a single-core host the
//!    throughput comparison can invert (fences are cheap); we therefore
//!    check the mechanism — fences per traversed node — alongside it.
//! 2. *"MP performs comparably to EBR-based schemes … and can outperform
//!    them in the presence of thread stalls"* — checked as: with a parked
//!    thread, MP's waste stays bounded while EBR-family waste explodes
//!    (the enabling condition for the throughput crossover the paper sees
//!    once memory pressure matters).
//! 3. *"MP wastes less memory than EBR-based schemes, not only in theory
//!    but in practice"* — avg retired-at-op-start, read-dominated.

use mp_bench::{BenchParams, StallMode, Table};
use mp_ds::{LinkedList, NmTree};
use mp_smr::schemes::{Ebr, He, Hp, Ibr, Mp};

fn verdict(ok: bool) -> String {
    if ok { "PASS".into() } else { "FAIL".into() }
}

fn main() {
    let runs = mp_bench::runs();
    let threads = *mp_bench::thread_sweep().last().unwrap_or(&2);
    let mut table = Table::new(
        "Evaluation takeaways (§6.1) as measurable claims",
        &["#", "claim (operationalized)", "measured", "verdict"],
    );

    // 1. MP beats HP on fences/node in the bounded-waste category.
    {
        let p = BenchParams::paper(threads, 500_000, mp_bench::READ_DOMINATED);
        let mp = mp_bench::driver::run_avg::<Mp, NmTree<Mp>>(&p, runs);
        let hp = mp_bench::driver::run_avg::<Hp, NmTree<Hp>>(&p, runs);
        let ok = mp.fences_per_node < hp.fences_per_node;
        table.row(vec![
            "1".into(),
            "bounded-waste category: MP < HP fences/node (BST, read-dom.)".into(),
            format!("MP {:.3} vs HP {:.3}", mp.fences_per_node, hp.fences_per_node),
            verdict(ok),
        ]);
        table.row(vec![
            "1b".into(),
            "…and throughput (host-dependent; inverts on single-core)".into(),
            format!("MP {:.3} vs HP {:.3} Mops/s", mp.mops, hp.mops),
            if mp.mops >= hp.mops { "PASS".into() } else { "host-inverted".into() },
        ]);
    }

    // 2. Under a stall, MP stays bounded while EBR-family waste explodes.
    {
        let mut p = BenchParams::paper(threads, 5_000, mp_bench::READ_DOMINATED);
        p.stall = StallMode::OneStalledThread;
        let mp = mp_bench::driver::run_avg::<Mp, LinkedList<Mp>>(&p, runs);
        let ebr = mp_bench::driver::run_avg::<Ebr, LinkedList<Ebr>>(&p, runs);
        let ibr = mp_bench::driver::run_avg::<Ibr, LinkedList<Ibr>>(&p, runs);
        let ok = ebr.avg_retired > 10.0 * mp.avg_retired.max(1.0)
            && ibr.avg_retired > 3.0 * mp.avg_retired.max(1.0);
        table.row(vec![
            "2".into(),
            "stalled thread: MP waste bounded, EBR/IBR not (list)".into(),
            format!(
                "MP {:.0} vs EBR {:.0} / IBR {:.0} avg-retired",
                mp.avg_retired, ebr.avg_retired, ibr.avg_retired
            ),
            verdict(ok),
        ]);
    }

    // 3. MP wastes less than every EBR-based scheme, no stall injection.
    {
        let p = BenchParams::paper(threads, 500_000, mp_bench::READ_DOMINATED);
        let mp = mp_bench::driver::run_avg::<Mp, NmTree<Mp>>(&p, runs);
        let ebr = mp_bench::driver::run_avg::<Ebr, NmTree<Ebr>>(&p, runs);
        let he = mp_bench::driver::run_avg::<He, NmTree<He>>(&p, runs);
        let ibr = mp_bench::driver::run_avg::<Ibr, NmTree<Ibr>>(&p, runs);
        let worst_epoch = ebr.avg_retired.min(he.avg_retired).min(ibr.avg_retired);
        let ok = mp.avg_retired < worst_epoch;
        table.row(vec![
            "3".into(),
            "MP wastes less than EBR/HE/IBR in practice (BST, read-dom.)".into(),
            format!(
                "MP {:.0} vs EBR {:.0} / HE {:.0} / IBR {:.0}",
                mp.avg_retired, ebr.avg_retired, he.avg_retired, ibr.avg_retired
            ),
            verdict(ok),
        ]);
    }

    table.emit("takeaways");
}
