//! Throughput trajectory for the zero-allocation hot path.
//!
//! Sweeps scheme × structure × thread-count twice — once with the
//! per-thread node pool disabled ("before") and once enabled ("after") —
//! and records, per point: throughput (Mops/s), real allocator calls per
//! operation, pool hit rate, fences per operation, and the number of scans
//! that had to grow a scratch buffer. The machine-readable result lands in
//! `BENCH_throughput.json` at the workspace root (or `$MP_BENCH_DIR`), so
//! the before/after trajectory can be committed alongside the code.
//!
//! Knobs: `MP_BENCH_THREADS`, `MP_BENCH_DURATION_MS`, `MP_BENCH_PREFILL`,
//! `MP_BENCH_RUNS`, `MP_BENCH_FULL` (see crate docs).

use std::fmt::Write as _;
use std::path::PathBuf;

use mp_bench::{for_each_scheme, json_str, BenchParams, BenchResult, Table};
use mp_ds::{LinkedList, NmTree, SkipList};

/// One measured point of the sweep.
struct Point {
    scheme: &'static str,
    structure: &'static str,
    threads: usize,
    pool: bool,
    /// Scan trigger: `"watermark"` (adaptive, the default) or `"fixed"`
    /// (the pre-watermark every-`empty_freq`-retires ablation).
    cadence: &'static str,
    mops: f64,
    allocs_per_op: f64,
    pool_hit_rate: f64,
    fences_per_op: f64,
    /// Per-site attribution of `fences_per_op`:
    /// `[start_op, end_op, announce, hp_protect]`.
    fence_site_per_op: [f64; 4],
    scan_heap_allocs: u64,
    empties: u64,
    /// Amortized scan cost: wall nanoseconds of scanning per freed node.
    scan_ns_per_free: f64,
}

impl Point {
    fn from(
        scheme: &'static str,
        structure: &'static str,
        threads: usize,
        pool: bool,
        cadence: &'static str,
        r: &BenchResult,
    ) -> Self {
        Point {
            scheme,
            structure,
            threads,
            pool,
            cadence,
            mops: r.mops,
            allocs_per_op: r.allocs_per_op,
            pool_hit_rate: r.pool_hit_rate,
            fences_per_op: r.telemetry.fences() as f64 / r.telemetry.ops().max(1) as f64,
            fence_site_per_op: r.fence_site_per_op,
            scan_heap_allocs: r.telemetry.scan_heap_allocs(),
            empties: r.telemetry.empties(),
            scan_ns_per_free: r.telemetry.scan_ns_per_free(),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"scheme\": {}, \"structure\": {}, \"threads\": {}, \"pool\": {}, \
             \"cadence\": {}, \
             \"mops\": {:.4}, \"allocs_per_op\": {:.5}, \"pool_hit_rate\": {:.4}, \
             \"fences_per_op\": {:.4}, \
             \"fences_start_op_per_op\": {:.4}, \"fences_end_op_per_op\": {:.4}, \
             \"fences_announce_per_op\": {:.4}, \"fences_hp_protect_per_op\": {:.4}, \
             \"scan_heap_allocs\": {}, \"empties\": {}, \"scan_ns_per_free\": {:.1}}}",
            json_str(self.scheme),
            json_str(self.structure),
            self.threads,
            if self.pool { "\"on\"" } else { "\"off\"" },
            json_str(self.cadence),
            self.mops,
            self.allocs_per_op,
            self.pool_hit_rate,
            self.fences_per_op,
            self.fence_site_per_op[0],
            self.fence_site_per_op[1],
            self.fence_site_per_op[2],
            self.fence_site_per_op[3],
            self.scan_heap_allocs,
            self.empties,
            self.scan_ns_per_free,
        )
    }
}

/// Where the trajectory file lands: `$MP_BENCH_DIR` when set, else the
/// workspace root (the committed location).
fn trajectory_path() -> PathBuf {
    if let Ok(dir) = std::env::var("MP_BENCH_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir).join("BENCH_throughput.json");
        }
    }
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("BENCH_throughput.json")
}

fn main() {
    let runs = mp_bench::runs();
    let sweep = mp_bench::thread_sweep();
    let duration_ms = mp_bench::duration().as_millis();
    let mut points: Vec<Point> = Vec::new();

    // Sweep one structure family across all schemes and thread counts, for
    // the current pool state.
    macro_rules! sweep_structure {
        ($ds:ident, $label:expr, $paper_s:expr, $pool_on:expr) => {
            for &threads in &sweep {
                let p = BenchParams::paper(threads, $paper_s, mp_bench::READ_DOMINATED);
                for_each_scheme!($ds, &p, runs, |name, res| {
                    points.push(Point::from(name, $label, threads, $pool_on, "watermark", &res));
                });
            }
        };
    }

    for pool_on in [false, true] {
        mp_util::pool::set_enabled(pool_on);
        eprintln!("[throughput] pool {}", if pool_on { "on" } else { "off" });
        sweep_structure!(LinkedList, "list", 5_000, pool_on);
        sweep_structure!(SkipList, "skiplist", 500_000, pool_on);
        sweep_structure!(NmTree, "tree", 500_000, pool_on);
    }
    mp_util::pool::set_enabled(true);

    // Fixed-cadence ablation: the list at the top thread count with the
    // adaptive watermark disabled (scan every `empty_freq` retires, the
    // pre-watermark behavior), so the committed trajectory carries the
    // watermark-vs-fixed scan-cost comparison at the most contended point.
    if let Some(&top) = sweep.iter().max() {
        eprintln!("[throughput] fixed-cadence ablation at {top} threads");
        let mut p = BenchParams::paper(top, 5_000, mp_bench::READ_DOMINATED);
        p.config = p.config.with_fixed_cadence(true);
        for_each_scheme!(LinkedList, &p, runs, |name, res| {
            points.push(Point::from(name, "list", top, true, "fixed", &res));
        });
    }

    let mut table = Table::new(
        "Throughput trajectory: node pool off vs on (read-dominated)",
        &[
            "structure",
            "threads",
            "scheme",
            "pool",
            "cadence",
            "Mops/s",
            "allocs/op",
            "pool-hit",
            "fences/op",
            "f-sites s/e/a/h",
            "scan-ns/free",
        ],
    );
    for pt in &points {
        table.row(vec![
            pt.structure.to_string(),
            pt.threads.to_string(),
            pt.scheme.to_string(),
            if pt.pool { "on" } else { "off" }.to_string(),
            pt.cadence.to_string(),
            format!("{:.3}", pt.mops),
            format!("{:.4}", pt.allocs_per_op),
            format!("{:.3}", pt.pool_hit_rate),
            format!("{:.3}", pt.fences_per_op),
            format!(
                "{:.2}/{:.2}/{:.2}/{:.2}",
                pt.fence_site_per_op[0],
                pt.fence_site_per_op[1],
                pt.fence_site_per_op[2],
                pt.fence_site_per_op[3],
            ),
            format!("{:.0}", pt.scan_ns_per_free),
        ]);
    }
    table.emit("throughput");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"mp-bench/throughput/v3\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"threads\": {:?}, \"duration_ms\": {}, \"runs\": {}, \"workload\": \"read-dominated\"}},",
        sweep, duration_ms, runs
    );
    let _ = write!(json, "  \"results\": [");
    for (i, pt) in points.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(json, "{sep}\n    {}", pt.json());
    }
    let _ = writeln!(json, "\n  ]\n}}");

    let path = trajectory_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, json).expect("write BENCH_throughput.json");
    eprintln!("[json] {}", path.display());
}
