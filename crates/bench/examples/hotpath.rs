//! Single-thread hot-path microbenchmark: pure `contains` traffic on a
//! prefilled list, per scheme. Reports ns/op and ns/hop — the numbers the
//! fence-amortization work optimizes — without the full sweep machinery,
//! so a hot-path edit can be measured in seconds.
//!
//! Knobs: `MP_HOTPATH_PREFILL` (default 256), `MP_HOTPATH_OPS`
//! (default 2_000_000).

use std::time::Instant;

use mp_ds::{ConcurrentSet, LinkedList};
use mp_smr::schemes::{Ebr, He, Hp, Ibr, Mp};
use mp_smr::{Config, Smr, SmrHandle};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn run<S: Smr>(name: &str, prefill: usize, ops: usize) {
    let cfg = Config::default()
        .with_max_threads(2)
        .with_slots_per_thread(mp_ds::skiplist::SLOTS_NEEDED)
        .with_margin(1 << 30);
    let smr = S::new(cfg);
    let list: LinkedList<S> = LinkedList::new(&smr);
    let key_range = 2 * prefill as u64;
    let mut rng = Lcg(0x5eed);
    {
        let mut setup = smr.register();
        let mut added = 0;
        while added < prefill {
            if list.insert(&mut setup, rng.next() % key_range) {
                added += 1;
            }
        }
    }
    let updates = env_usize("MP_HOTPATH_UPDATES", 0) as u64;
    let mut h = smr.register();
    let t0 = Instant::now();
    let mut found = 0usize;
    for _ in 0..ops {
        let key = rng.next() % key_range;
        if rng.next() % 100 < updates {
            if !list.insert(&mut h, key) {
                list.remove(&mut h, key);
            }
        } else if list.contains(&mut h, key) {
            found += 1;
        }
    }
    let elapsed = t0.elapsed();
    let stats = h.stats().clone();
    let ns_op = elapsed.as_nanos() as f64 / ops as f64;
    let ns_hop = elapsed.as_nanos() as f64 / stats.nodes_traversed.max(1) as f64;
    println!(
        "{name:>4}: {ns_op:8.1} ns/op  {ns_hop:6.2} ns/hop  \
         ({:.1} hops/op, {:.4} fences/op, {} empties, avg retired {:.1}, found {found})",
        stats.nodes_traversed as f64 / stats.ops.max(1) as f64,
        stats.fences as f64 / stats.ops.max(1) as f64,
        stats.empties,
        stats.avg_retired_at_op_start(),
    );
}

fn main() {
    let prefill = env_usize("MP_HOTPATH_PREFILL", 256);
    let ops = env_usize("MP_HOTPATH_OPS", 2_000_000);
    println!("hotpath: prefill {prefill}, {ops} contains ops, 1 thread");
    run::<Mp>("MP", prefill, ops);
    run::<He>("HE", prefill, ops);
    run::<Ebr>("EBR", prefill, ops);
    run::<Ibr>("IBR", prefill, ops);
    run::<Hp>("HP", prefill, ops);
}
