//! The fixed-duration measurement driver (§6 experimental setup).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mp_ds::ConcurrentSet;
use mp_smr::{AnySmr, Config, SchemeKind, Smr, SmrHandle, Telemetry, TelemetrySnapshot};

use crate::workload::{draw_key, thread_rng, Mix, Op};

/// How the structure is prefilled before measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prefill {
    /// `S` uniformly random keys from a range of size `2S` (§6 default).
    Random,
    /// Keys `0..S` inserted in ascending order — the index-collision
    /// worst case of Figure 7a (§6 "Key Distribution").
    Ascending,
}

/// Whether to park a thread mid-operation for the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallMode {
    /// No artificial stalls (context-switch stalls still occur naturally
    /// once threads exceed the host's cores, as in the paper).
    None,
    /// One extra registered thread announces an operation (pinning its
    /// epoch/interval under epoch-based schemes) and sleeps to the end —
    /// the §1 scenario motivating bounded wasted memory.
    OneStalledThread,
}

/// Fault injection applied during the measured window — a testing aid for
/// the reclamation oracle and conformance suites, `None` for real
/// measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// No injected faults.
    None,
    /// One extra registered thread alternates real operations with a panic
    /// raised *inside* a pinned operation (caught within the thread), so
    /// the RAII guard's unwind path — `end_op`, protection release, retired
    /// handoff — is exercised repeatedly under concurrent load.
    MidOpPanic,
}

/// Parameters of one measurement point.
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Worker thread count.
    pub threads: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Prefill size `S`; operations draw keys from `[0, 2S)`.
    pub prefill: usize,
    /// Prefill order.
    pub prefill_mode: Prefill,
    /// Operation mix.
    pub mix: Mix,
    /// RNG seed (runs are reproducible per seed).
    pub seed: u64,
    /// Stall injection.
    pub stall: StallMode,
    /// Fault injection (mid-operation panics).
    pub fault: FaultMode,
    /// SMR configuration (margin, cadences, slots).
    pub config: Config,
}

impl BenchParams {
    /// Parameters for reproducing a paper experiment: `paper_prefill` is the
    /// paper's S (500 K for BST/skip list, 5 K for the list); the actual
    /// prefill is CI-scaled via [`crate::prefill_size`] and MP's margin is
    /// scaled to keep *margin × index density* at the paper's operating
    /// point — midpoint indices spread over the whole 32-bit space, so a
    /// 2^20 margin over a 25×-smaller structure covers 25× fewer neighbors
    /// unless rescaled.
    pub fn paper(threads: usize, paper_prefill: usize, mix: Mix) -> Self {
        let prefill = crate::prefill_size(paper_prefill);
        let mut p = Self::new(threads, prefill, mix);
        let scale = (paper_prefill as u64).div_ceil(prefill as u64).max(1);
        // Quadratic margin scaling: midpoint assignment splits index gaps
        // binarily, so a `scale`×-smaller structure not only spreads nodes
        // `scale`× further apart on average but also *widens the spread* of
        // gap sizes (fewer splits of the same 2^32 space) — linear scaling
        // was measured to leave MP re-announcing on most hops at the CI
        // prefill. `scale = 1` (full paper size) still yields the paper's
        // 2^20 operating point; the cap keeps `2·margin < max_index`
        // (Config validation headroom).
        let margin = ((1u64 << 20) * scale * scale).next_power_of_two().min(1 << 30) as u32;
        p.config = p.config.with_margin(margin);
        p
    }

    /// Raw parameters: exact prefill, default margin, no stalls.
    pub fn new(threads: usize, prefill: usize, mix: Mix) -> Self {
        // Slot budget: the skip list needs the most (2 per level + 2).
        let slots = mp_ds::skiplist::SLOTS_NEEDED;
        BenchParams {
            threads,
            duration: crate::duration(),
            prefill,
            prefill_mode: Prefill::Random,
            mix,
            seed: 0x5eed_cafe_f00d_0001,
            stall: StallMode::None,
            fault: FaultMode::None,
            config: Config::default()
                .with_max_threads(threads + 3) // +setup, +staller, +faulter
                .with_slots_per_thread(slots)
                .with_epoch_freq(150 * threads.max(1)),
        }
    }
}

/// Aggregated outcome of one measurement point.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Total completed operations across threads.
    pub total_ops: u64,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Merged per-thread telemetry (counters + latency histograms).
    pub telemetry: TelemetrySnapshot,
    /// Average retired-but-unreclaimed nodes at operation start
    /// (Figure 6's metric).
    pub avg_retired: f64,
    /// Fences per traversed node (Figure 5's metric).
    pub fences_per_node: f64,
    /// Fences per completed operation (the fence-budget metric).
    pub fences_per_op: f64,
    /// Per-site attribution of `fences_per_op`, in the order
    /// `[start_op, end_op, announce, hp_protect]` (see
    /// [`mp_smr::FenceSite`]).
    pub fence_site_per_op: [f64; 4],
    /// Peak global retired-pending observed by a 10 ms poller.
    pub peak_pending: usize,
    /// Fraction of reads that took MP's hazard-pointer fallback.
    pub hp_fallback_rate: f64,
    /// Real allocator calls per completed operation (pool misses / ops).
    pub allocs_per_op: f64,
    /// Fraction of node allocations served by the per-thread block pool.
    pub pool_hit_rate: f64,
}

/// Message carried by [`FaultMode::MidOpPanic`]'s injected panics; the
/// panic hook filter below matches on it.
pub const INJECTED_PANIC: &str = "injected mid-op fault";

/// Installs (once, process-wide) a panic hook that swallows the injected
/// fault panics — they fire on every fault-thread iteration and would
/// otherwise flood stderr, since spawned-thread output is not captured by
/// the test harness. All other panics still reach the previous hook.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                .is_some_and(|m| m.contains(INJECTED_PANIC));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Runs one measurement point of scheme `S` on structure `D`.
pub fn run<S: Smr, D: ConcurrentSet<S>>(p: &BenchParams) -> BenchResult {
    run_with::<S, D>(p, |cfg| S::new(cfg))
}

/// Runs one measurement point of the runtime-selected `kind` on structure
/// `D` through the [`AnySmr`] facade — one monomorphization for the whole
/// scheme sweep, at enum-dispatch cost on the hot path (fine for
/// comparisons, use [`run`] for absolute numbers).
pub fn run_kind<D: ConcurrentSet<AnySmr>>(kind: SchemeKind, p: &BenchParams) -> BenchResult {
    run_with::<AnySmr, D>(p, |cfg| {
        AnySmr::try_with_kind(kind, cfg).expect("valid bench config")
    })
}

/// [`run`] with an explicit scheme constructor (the facade entry point
/// injects the selected kind through `make`).
fn run_with<S: Smr, D: ConcurrentSet<S>>(
    p: &BenchParams,
    make: impl FnOnce(Config) -> Arc<S>,
) -> BenchResult {
    p.mix.check();
    let smr = make(p.config.clone());
    let ds = Arc::new(D::new(&smr));
    let key_range = (2 * p.prefill.max(1)) as u64;

    // Prefill (single-threaded, outside the measured window).
    {
        let mut h = smr.register();
        match p.prefill_mode {
            Prefill::Random => {
                let mut rng = thread_rng(p.seed, usize::MAX);
                let mut added = 0;
                while added < p.prefill {
                    if ds.insert(&mut h, draw_key(&mut rng, key_range)) {
                        added += 1;
                    }
                }
            }
            Prefill::Ascending => {
                for k in 0..p.prefill as u64 {
                    ds.insert(&mut h, k);
                }
            }
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(
        p.threads
            + 1
            + matches!(p.stall, StallMode::OneStalledThread) as usize
            + matches!(p.fault, FaultMode::MidOpPanic) as usize,
    ));
    let total_ops = Arc::new(AtomicU64::new(0));

    let mut result_stats: Vec<TelemetrySnapshot> = Vec::new();
    let mut peak_pending = 0usize;

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for tid in 0..p.threads {
            let smr = smr.clone();
            let ds = ds.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            let total_ops = total_ops.clone();
            let mix = p.mix;
            let seed = p.seed;
            joins.push(scope.spawn(move || {
                let mut h = smr.register();
                let mut rng = thread_rng(seed, tid);
                barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = draw_key(&mut rng, key_range);
                    match mix.draw(&mut rng) {
                        Op::Contains => {
                            ds.contains(&mut h, key);
                        }
                        Op::Insert => {
                            ds.insert(&mut h, key);
                        }
                        Op::Remove => {
                            ds.remove(&mut h, key);
                        }
                    }
                    ops += 1;
                }
                total_ops.fetch_add(ops, Ordering::AcqRel);
                // Drain before the final snapshot so the scan cost and
                // frees of batches still below the watermark are counted —
                // the Drop-path drain records into telemetry nobody reads.
                h.force_empty();
                h.snapshot()
            }));
        }

        if matches!(p.stall, StallMode::OneStalledThread) {
            let smr = smr.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            scope.spawn(move || {
                let mut h = smr.register();
                barrier.wait();
                // Enter an operation and stop taking steps (§1's scenario);
                // the guard ends the operation when the thread exits.
                let _op = h.pin();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }

        if matches!(p.fault, FaultMode::MidOpPanic) {
            let smr = smr.clone();
            let ds = ds.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            let seed = p.seed;
            silence_injected_panics();
            scope.spawn(move || {
                let mut h = smr.register();
                let mut rng = thread_rng(seed, usize::MAX - 1);
                barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    // A few real operations so protections and retires are
                    // live around the injected fault...
                    for _ in 0..8 {
                        let key = draw_key(&mut rng, key_range);
                        ds.insert(&mut h, key);
                        ds.remove(&mut h, key);
                    }
                    // ...then a panic raised inside a *bare* pinned
                    // operation (no data-structure call inside, so the
                    // oracle's pin-nesting check stays quiet). The RAII
                    // guard must end the operation on the unwind path.
                    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _op = h.pin();
                        panic!("{INJECTED_PANIC}");
                    }));
                    assert!(unwound.is_err(), "injected panic must unwind");
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }

        barrier.wait();
        let deadline = Instant::now() + p.duration;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10).min(p.duration));
            peak_pending = peak_pending.max(smr.retired_pending());
            smr.sample_waste();
        }
        stop.store(true, Ordering::Release);
        for j in joins {
            result_stats.push(j.join().expect("worker panicked"));
        }
    });

    let mut merged = TelemetrySnapshot::default();
    for s in &result_stats {
        merged.merge(s);
    }
    let total = total_ops.load(Ordering::Acquire);
    let reads = merged.nodes_traversed().max(1);
    let ops = merged.ops().max(1) as f64;
    BenchResult {
        total_ops: total,
        mops: total as f64 / p.duration.as_secs_f64() / 1e6,
        avg_retired: merged.avg_retired_at_op_start(),
        fences_per_node: merged.fences_per_node(),
        fences_per_op: merged.fences() as f64 / ops,
        fence_site_per_op: [
            merged.fences_start_op() as f64 / ops,
            merged.fences_end_op() as f64 / ops,
            merged.fences_announce() as f64 / ops,
            merged.fences_hp_protect() as f64 / ops,
        ],
        peak_pending,
        hp_fallback_rate: merged.hp_fallback_reads() as f64 / reads as f64,
        allocs_per_op: merged.allocs_per_op(),
        pool_hit_rate: merged.pool_hit_rate(),
        telemetry: merged,
    }
}

/// Averages `n` repetitions of the same point (the paper reports the mean
/// of 10 runs).
pub fn run_avg<S: Smr, D: ConcurrentSet<S>>(p: &BenchParams, n: usize) -> BenchResult {
    let mut results: Vec<BenchResult> = (0..n.max(1))
        .map(|i| {
            let mut p = p.clone();
            p.seed = p.seed.wrapping_add(i as u64);
            run::<S, D>(&p)
        })
        .collect();
    let n = results.len() as f64;
    let mut acc = results.pop().expect("at least one run");
    for r in &results {
        acc.total_ops += r.total_ops;
        acc.mops += r.mops;
        acc.avg_retired += r.avg_retired;
        acc.fences_per_node += r.fences_per_node;
        acc.fences_per_op += r.fences_per_op;
        for (a, b) in acc.fence_site_per_op.iter_mut().zip(&r.fence_site_per_op) {
            *a += b;
        }
        acc.peak_pending = acc.peak_pending.max(r.peak_pending);
        acc.hp_fallback_rate += r.hp_fallback_rate;
        acc.allocs_per_op += r.allocs_per_op;
        acc.pool_hit_rate += r.pool_hit_rate;
        acc.telemetry.merge(&r.telemetry);
    }
    acc.mops /= n;
    acc.avg_retired /= n;
    acc.fences_per_node /= n;
    acc.fences_per_op /= n;
    for a in acc.fence_site_per_op.iter_mut() {
        *a /= n;
    }
    acc.hp_fallback_rate /= n;
    acc.allocs_per_op /= n;
    acc.pool_hit_rate /= n;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{READ_DOMINATED, READ_ONLY};
    use mp_ds::{LinkedList, NmTree, SkipList};
    use mp_smr::schemes::{Ebr, Hp, Mp};

    fn quick(threads: usize, prefill: usize, mix: Mix) -> BenchParams {
        let mut p = BenchParams::new(threads, prefill, mix);
        p.duration = Duration::from_millis(50);
        p
    }

    #[test]
    fn driver_runs_mp_on_all_structures() {
        let p = quick(2, 100, READ_DOMINATED);
        let a = run::<Mp, LinkedList<Mp>>(&p);
        let b = run::<Mp, SkipList<Mp>>(&p);
        let c = run::<Mp, NmTree<Mp>>(&p);
        for r in [&a, &b, &c] {
            assert!(r.total_ops > 0, "no progress: {r:?}");
            assert!(r.telemetry.ops() >= r.total_ops, "every op brackets start/end");
        }
    }

    #[test]
    fn facade_run_matches_the_static_path() {
        let p = quick(2, 100, READ_DOMINATED);
        let r = run_kind::<LinkedList<AnySmr>>(SchemeKind::Hp, &p);
        assert!(r.total_ops > 0, "no progress through the facade: {r:?}");
        assert!(r.telemetry.ops() >= r.total_ops);
    }

    #[test]
    fn read_only_workload_never_retires() {
        let p = quick(2, 100, READ_ONLY);
        let r = run::<Hp, LinkedList<Hp>>(&p);
        assert_eq!(r.telemetry.retires(), 0);
        assert_eq!(r.avg_retired, 0.0);
    }

    #[test]
    fn stalled_thread_grows_ebr_waste_but_not_mp() {
        let mut p = quick(2, 200, READ_DOMINATED);
        p.stall = StallMode::OneStalledThread;
        p.duration = Duration::from_millis(150);
        let ebr = run::<Ebr, LinkedList<Ebr>>(&p);
        let mp = run::<Mp, LinkedList<Mp>>(&p);
        assert!(
            ebr.peak_pending > mp.peak_pending.max(60),
            "EBR waste {} should exceed MP waste {} under a stall",
            ebr.peak_pending,
            mp.peak_pending
        );
    }

    #[test]
    fn mid_op_panic_fault_keeps_workers_progressing() {
        let mut p = quick(2, 100, READ_DOMINATED);
        p.fault = FaultMode::MidOpPanic;
        let r = run::<Mp, LinkedList<Mp>>(&p);
        assert!(r.total_ops > 0, "workers stalled under fault injection: {r:?}");
        assert!(r.telemetry.ops() >= r.total_ops);
    }

    #[test]
    fn ascending_prefill_populates() {
        let mut p = quick(1, 64, READ_ONLY);
        p.prefill_mode = Prefill::Ascending;
        let r = run::<Mp, LinkedList<Mp>>(&p);
        assert!(r.total_ops > 0);
    }
}
