//! # mp-bench — benchmark harness for the margin-pointers reproduction
//!
//! Reimplements the paper's evaluation methodology (§6): fixed-duration
//! runs in which every thread repeatedly invokes a random operation on a
//! uniformly random key, reporting aggregate throughput, wasted memory
//! (average retired-list length at operation start), and memory-fence
//! counts. One `harness = false` bench target per paper table/figure
//! regenerates the corresponding rows (see DESIGN.md's per-experiment
//! index); Criterion micro-latency benches complement them.
//!
//! ## Scaling
//!
//! The paper ran 5-second, 10-repetition sweeps to 100 threads on an
//! 88-hardware-thread machine. Defaults here are CI-sized; set
//! `MP_BENCH_FULL=1` for paper-scale parameters, or override individual
//! knobs: `MP_BENCH_THREADS` (comma list), `MP_BENCH_DURATION_MS`,
//! `MP_BENCH_PREFILL`, `MP_BENCH_RUNS`.

#![warn(missing_docs)]

pub mod driver;
pub mod linearize;
pub mod report;
pub mod soak;
pub mod workload;

pub use driver::{
    run, run_kind, silence_injected_panics, BenchParams, BenchResult, FaultMode, Prefill,
    StallMode, INJECTED_PANIC,
};
pub use report::{csv_path, json_path, json_str, out_dir, Table};
pub use soak::{rss_kb, run_soak, run_soak_kind, SoakParams, SoakResult};
pub use workload::{KeyDist, KeySampler, Mix, READ_DOMINATED, READ_ONLY, WRITE_DOMINATED};

/// Reads the thread counts to sweep (env `MP_BENCH_THREADS`, e.g. "1,2,4").
pub fn thread_sweep() -> Vec<usize> {
    if let Ok(s) = std::env::var("MP_BENCH_THREADS") {
        return s.split(',').filter_map(|t| t.trim().parse().ok()).collect();
    }
    if full_scale() {
        vec![1, 2, 4, 8, 16, 32, 48, 64, 80, 100]
    } else {
        vec![1, 2, 4]
    }
}

/// Per-point run duration.
pub fn duration() -> std::time::Duration {
    let ms = std::env::var("MP_BENCH_DURATION_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full_scale() { 5_000 } else { 250 });
    std::time::Duration::from_millis(ms)
}

/// Structure prefill size (`S`); the key range is `2S` (§6). The paper uses
/// S = 500 K for the BST/skip list and 5 K for the list.
pub fn prefill_size(paper_default: usize) -> usize {
    if let Ok(s) = std::env::var("MP_BENCH_PREFILL") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    if full_scale() {
        paper_default
    } else {
        // CI scale: shrink 500 K → 20 K and 5 K → 1 K.
        (paper_default / 25).max(200)
    }
}

/// Repetitions per data point (paper: 10).
pub fn runs() -> usize {
    std::env::var("MP_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full_scale() { 10 } else { 1 })
}

/// True when `MP_BENCH_FULL=1`: reproduce at the paper's scale.
pub fn full_scale() -> bool {
    std::env::var("MP_BENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Runs `$body` once per SMR scheme (the §6 comparison set: MP, IBR, HE,
/// HP, EBR), binding `$scheme_ty`/`$name`/a freshly computed [`BenchResult`]
/// for the data-structure family `$ds` (a generic type constructor such as
/// `LinkedList`). DTA is list-specific and handled separately (Figure 4).
#[macro_export]
macro_rules! for_each_scheme {
    ($ds:ident, $p:expr, $runs:expr, |$name:ident, $res:ident| $body:block) => {{
        {
            let $name = "MP";
            let $res =
                $crate::driver::run_avg::<mp_smr::schemes::Mp, $ds<mp_smr::schemes::Mp>>($p, $runs);
            $body
        }
        {
            let $name = "IBR";
            let $res = $crate::driver::run_avg::<mp_smr::schemes::Ibr, $ds<mp_smr::schemes::Ibr>>(
                $p, $runs,
            );
            $body
        }
        {
            let $name = "HE";
            let $res =
                $crate::driver::run_avg::<mp_smr::schemes::He, $ds<mp_smr::schemes::He>>($p, $runs);
            $body
        }
        {
            let $name = "HP";
            let $res =
                $crate::driver::run_avg::<mp_smr::schemes::Hp, $ds<mp_smr::schemes::Hp>>($p, $runs);
            $body
        }
        {
            let $name = "EBR";
            let $res = $crate::driver::run_avg::<mp_smr::schemes::Ebr, $ds<mp_smr::schemes::Ebr>>(
                $p, $runs,
            );
            $body
        }
    }};
}
