//! A linearizability checker for concurrent *set* histories.
//!
//! Worker threads record each operation's invocation/response timestamps
//! (from one global atomic counter) plus its result. Because set
//! operations on distinct keys commute, a history is linearizable iff its
//! projection onto every key is — and a single key's projection is a
//! boolean object with forced transitions:
//!
//! * successful `insert` flips absent→present, successful `remove` flips
//!   present→absent ⇒ in any linearization the successful updates form an
//!   **alternating chain** starting with an insert;
//! * every other operation is a read of the boolean state (`contains`,
//!   failed `insert` ≡ reads *present*, failed `remove` ≡ reads *absent*).
//!
//! The checker verifies:
//!
//! 1. the alternating chain exists and can be ordered consistently with
//!    real time, via earliest-deadline-first greedy selection over the
//!    interval order (optimal for interval orders, so chain violations
//!    reported here are genuine);
//! 2. every read's interval is consistent with the chain: a read of
//!    *present* must overlap some `[insert.invoke, remove.response]`
//!    window (or follow an unmatched final insert), and a read of *absent*
//!    must overlap some window in which the key may be absent.
//!
//! Check 2 uses generous may-overlap windows derived from the greedy
//! chain, so it can miss contrived violations a full search would catch,
//! and — only when same-kind successful updates overlap in real time — it
//! could in principle pick a chain whose windows reject a read another
//! valid chain admits. Every failure report therefore includes the raw
//! events for audit. In exchange the check is near-linear per key and
//! scales to millions of recorded operations, which exhaustive
//! linearization search cannot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Global logical clock for invocation/response stamps.
static CLOCK: AtomicU64 = AtomicU64::new(0);

/// Operation kinds in a set history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `insert(key)`.
    Insert,
    /// `remove(key)`.
    Remove,
    /// `contains(key)`.
    Contains,
}

/// One completed operation.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Which operation ran.
    pub kind: OpKind,
    /// The key it targeted.
    pub key: u64,
    /// What it returned.
    pub result: bool,
    /// Logical time at invocation.
    pub invoke: u64,
    /// Logical time at response.
    pub response: u64,
}

/// Records events for one thread; merge with [`History::merge`].
#[derive(Debug, Default)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Creates an empty per-thread history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `op` and records it: stamps the invocation, executes, stamps
    /// the response.
    pub fn record(&mut self, kind: OpKind, key: u64, op: impl FnOnce() -> bool) {
        let invoke = CLOCK.fetch_add(1, Ordering::AcqRel);
        let result = op();
        let response = CLOCK.fetch_add(1, Ordering::AcqRel);
        self.events.push(Event { kind, key, result, invoke, response });
    }

    /// Merges another thread's history into this one.
    pub fn merge(&mut self, other: History) {
        self.events.extend(other.events);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks the full history for set-linearizability. `prefilled` lists
    /// keys present before any recorded operation ran.
    ///
    /// Returns `Err` with a human-readable explanation of the first
    /// violation found.
    pub fn check(&self, prefilled: &[u64]) -> Result<(), String> {
        use std::collections::HashMap;
        let mut per_key: HashMap<u64, Vec<Event>> = HashMap::new();
        for e in &self.events {
            per_key.entry(e.key).or_default().push(*e);
        }
        for (key, mut events) in per_key {
            events.sort_by_key(|e| e.invoke);
            let initially_present = prefilled.contains(&key);
            check_key(key, &events, initially_present)?;
        }
        Ok(())
    }
}

/// Checks one key's projected history (see module docs).
fn check_key(key: u64, events: &[Event], initially_present: bool) -> Result<(), String> {
    // Split into successful updates (the chain) and reads.
    let mut chain: Vec<Event> = Vec::new();
    let mut reads: Vec<(Event, bool)> = Vec::new(); // (event, observed-present)
    for &e in events {
        match (e.kind, e.result) {
            (OpKind::Insert, true) | (OpKind::Remove, true) => chain.push(e),
            (OpKind::Insert, false) => reads.push((e, true)),
            (OpKind::Remove, false) => reads.push((e, false)),
            (OpKind::Contains, r) => reads.push((e, r)),
        }
    }

    // 1. Build the alternating chain greedily (EDF over the interval order).
    let mut remaining = chain;
    let mut ordered: Vec<Event> = Vec::new();
    let mut expect_insert = !initially_present;
    while !remaining.is_empty() {
        // Candidate: required kind, earliest response.
        let required = if expect_insert { OpKind::Insert } else { OpKind::Remove };
        let mut best: Option<usize> = None;
        for (i, e) in remaining.iter().enumerate() {
            if e.kind == required
                && best.is_none_or(|b| e.response < remaining[b].response)
            {
                best = Some(i);
            }
        }
        let Some(best) = best else {
            return Err(format!(
                "key {key}: {} more successful {}s than the alternation allows",
                remaining.len(),
                if expect_insert { "remove" } else { "insert" },
            ));
        };
        let chosen = remaining.swap_remove(best);
        // Real-time consistency: nothing still unplaced may strictly
        // precede the chosen op.
        if let Some(viol) =
            remaining.iter().find(|e| e.response < chosen.invoke)
        {
            return Err(format!(
                "key {key}: successful {viol:?} completed before {chosen:?} started, \
                 but the alternation forces it later"
            ));
        }
        ordered.push(chosen);
        expect_insert = !expect_insert;
    }

    // 2. Present/absent windows. present_windows[i] = the may-present span
    // of the i-th insert..remove pair (or open-ended for a final insert).
    let mut present_windows: Vec<(u64, u64)> = Vec::new();
    let mut absent_windows: Vec<(u64, u64)> = Vec::new();
    let mut cursor_present = initially_present;
    let mut t = 0u64; // start of the current phase (may-bound)
    for pair in ordered.iter() {
        if cursor_present {
            // present until this successful remove's response
            present_windows.push((t, pair.response));
            t = pair.invoke; // absence may begin as early as its invoke
        } else {
            absent_windows.push((t, pair.response));
            t = pair.invoke;
        }
        cursor_present = !cursor_present;
    }
    let end = u64::MAX;
    if cursor_present {
        present_windows.push((t, end));
    } else {
        absent_windows.push((t, end));
    }

    // 3. Every read must overlap a window of its observed state.
    for (e, observed_present) in reads {
        let windows =
            if observed_present { &present_windows } else { &absent_windows };
        let ok = windows.iter().any(|&(lo, hi)| e.invoke <= hi && lo <= e.response);
        if !ok {
            return Err(format!(
                "key {key}: {:?} observed {} but no such state window overlaps \
                 [{}, {}] (windows: {:?})",
                e.kind,
                if observed_present { "present" } else { "absent" },
                e.invoke,
                e.response,
                windows
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: OpKind, key: u64, result: bool, invoke: u64, response: u64) -> Event {
        Event { kind, key, result, invoke, response }
    }

    fn hist(events: Vec<Event>) -> History {
        History { events }
    }

    #[test]
    fn sequential_history_passes() {
        let h = hist(vec![
            ev(OpKind::Insert, 1, true, 0, 1),
            ev(OpKind::Contains, 1, true, 2, 3),
            ev(OpKind::Remove, 1, true, 4, 5),
            ev(OpKind::Contains, 1, false, 6, 7),
            ev(OpKind::Insert, 1, true, 8, 9),
        ]);
        h.check(&[]).unwrap();
    }

    #[test]
    fn double_successful_insert_fails() {
        let h = hist(vec![
            ev(OpKind::Insert, 1, true, 0, 1),
            ev(OpKind::Insert, 1, true, 2, 3), // no remove in between
        ]);
        assert!(h.check(&[]).is_err());
    }

    #[test]
    fn contains_true_before_any_insert_fails() {
        let h = hist(vec![
            ev(OpKind::Contains, 1, true, 0, 1),
            ev(OpKind::Insert, 1, true, 2, 3),
        ]);
        assert!(h.check(&[]).is_err());
    }

    #[test]
    fn prefilled_key_reads_present() {
        let h = hist(vec![
            ev(OpKind::Contains, 1, true, 0, 1),
            ev(OpKind::Remove, 1, true, 2, 3),
            ev(OpKind::Insert, 1, true, 4, 5),
        ]);
        h.check(&[1]).unwrap();
        // Same history without prefill is invalid.
        assert!(h.check(&[]).is_err());
    }

    #[test]
    fn overlapping_updates_resolve_by_interval_order() {
        // insert and remove overlap: either order works; the chain must
        // pick insert first (starting from absent).
        let h = hist(vec![
            ev(OpKind::Insert, 7, true, 0, 10),
            ev(OpKind::Remove, 7, true, 5, 15),
        ]);
        h.check(&[]).unwrap();
    }

    #[test]
    fn strict_order_violation_detected() {
        // remove completes strictly before insert starts, yet alternation
        // (from absent) needs insert first — impossible.
        let h = hist(vec![
            ev(OpKind::Remove, 7, true, 0, 1),
            ev(OpKind::Insert, 7, true, 5, 6),
        ]);
        assert!(h.check(&[]).is_err());
    }

    #[test]
    fn stale_read_after_remove_fails() {
        let h = hist(vec![
            ev(OpKind::Insert, 3, true, 0, 1),
            ev(OpKind::Remove, 3, true, 2, 3),
            ev(OpKind::Contains, 3, true, 10, 11), // observes a ghost
        ]);
        assert!(h.check(&[]).is_err());
    }

    #[test]
    fn failed_update_reads_state() {
        let h = hist(vec![
            ev(OpKind::Insert, 5, true, 0, 1),
            ev(OpKind::Insert, 5, false, 2, 3), // duplicate: observes present ✓
            ev(OpKind::Remove, 5, true, 4, 5),
            ev(OpKind::Remove, 5, false, 6, 7), // absent ✓
        ]);
        h.check(&[]).unwrap();
        let bad = hist(vec![
            ev(OpKind::Insert, 5, false, 0, 1), // duplicate-fail with nothing there
            ev(OpKind::Insert, 5, true, 4, 5),
        ]);
        assert!(bad.check(&[]).is_err());
    }

    #[test]
    fn distinct_keys_are_independent() {
        let h = hist(vec![
            ev(OpKind::Insert, 1, true, 0, 1),
            ev(OpKind::Insert, 2, true, 0, 1),
            ev(OpKind::Remove, 1, true, 2, 3),
            ev(OpKind::Contains, 2, true, 4, 5),
        ]);
        h.check(&[]).unwrap();
    }

    #[test]
    fn recorder_produces_monotone_stamps() {
        let mut h = History::new();
        h.record(OpKind::Insert, 9, || true);
        h.record(OpKind::Contains, 9, || true);
        assert_eq!(h.len(), 2);
        assert!(h.events[0].invoke < h.events[0].response);
        assert!(h.events[0].response < h.events[1].invoke);
        h.check(&[]).unwrap();
    }
}
