//! Plain-text table + CSV output for the figure/table benches.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple aligned text table, also dumpable as CSV under
/// `target/bench-results/` for EXPERIMENTS.md bookkeeping.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout and writes `<slug>.csv` plus a
    /// machine-readable `<slug>.json` next to the build artifacts.
    pub fn emit(&self, slug: &str) {
        print!("{}", self.render());
        let path = csv_path(slug);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(f, "{}", self.header.join(","));
            for row in &self.rows {
                let _ = writeln!(f, "{}", row.join(","));
            }
            eprintln!("[csv] {}", path.display());
        }
        let jpath = json_path(slug);
        if let Ok(mut f) = std::fs::File::create(&jpath) {
            let _ = f.write_all(self.to_json().as_bytes());
            eprintln!("[json] {}", jpath.display());
        }
    }

    /// Renders the table as a JSON object: header names become row keys.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"title\": {},\n  \"rows\": [", json_str(&self.title));
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {{");
            for (j, (key, cell)) in self.header.iter().zip(row).enumerate() {
                let comma = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{comma}{}: {}", json_str(key), json_str(cell));
            }
            let _ = write!(out, "}}");
        }
        let _ = writeln!(out, "\n  ]\n}}");
        out
    }
}

/// Escapes a string as a JSON string literal (no external deps).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Output directory for bench artifacts: `$MP_BENCH_DIR` when set (used by
/// the smoke stage to keep throwaway runs away from committed results),
/// otherwise `<workspace>/target/bench-results/`.
pub fn out_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("MP_BENCH_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("target/bench-results")
}

/// Where a bench's CSV lands (see [`out_dir`]). (`cargo bench` sets the CWD
/// to the package directory, so a relative path would bury the CSVs under
/// `crates/bench/`.)
pub fn csv_path(slug: &str) -> PathBuf {
    out_dir().join(format!("{slug}.csv"))
}

/// Where a bench's JSON twin lands (see [`out_dir`]).
pub fn json_path(slug: &str) -> PathBuf {
    out_dir().join(format!("{slug}.json"))
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment_and_rows() {
        let mut t = Table::new("demo", &["scheme", "mops"]);
        t.row(vec!["MP".into(), "1.234".into()]);
        t.row(vec!["HP".into(), "0.9".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("scheme"));
        assert!(s.contains("MP"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
