//! Plain-text table + CSV output for the figure/table benches.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;

/// A simple aligned text table, also dumpable as CSV under
/// `target/bench-results/` for EXPERIMENTS.md bookkeeping.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout and writes `<slug>.csv` next to the
    /// build artifacts.
    pub fn emit(&self, slug: &str) {
        print!("{}", self.render());
        let path = csv_path(slug);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(f, "{}", self.header.join(","));
            for row in &self.rows {
                let _ = writeln!(f, "{}", row.join(","));
            }
            eprintln!("[csv] {}", path.display());
        }
    }
}

/// Where a bench's CSV lands: `<workspace>/target/bench-results/`.
/// (`cargo bench` sets the CWD to the package directory, so a relative
/// path would bury the CSVs under `crates/bench/`.)
pub fn csv_path(slug: &str) -> PathBuf {
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("target/bench-results").join(format!("{slug}.csv"))
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment_and_rows() {
        let mut t = Table::new("demo", &["scheme", "mops"]);
        t.row(vec!["MP".into(), "1.234".into()]);
        t.row(vec!["HP".into(), "0.9".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("scheme"));
        assert!(s.contains("MP"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
