//! Oversubscribed YCSB-style soak harness.
//!
//! Where the figure benches measure §6's fixed-duration uniform sweeps,
//! the soak runs the conditions the adaptive scan watermarks were built
//! for: more worker threads than cores (so scans race context switches),
//! skewed key popularity (Zipfian / hot-set — hot keys churn constantly
//! while the cold tail pins long scans), and handle churn under load
//! (workers periodically drop and re-register, exercising the lock-free
//! registry's tid recycling and orphan handoff).
//!
//! Outputs per scheme: throughput, client-side p50/p99/p999 operation
//! latency (timed around each structure call, so scan pauses surface as
//! tail latency), amortized scan cost (`scan_ns_per_free`), snapshot
//! adoptions, tid recycles, peak retired backlog, and peak process RSS
//! sampled from `/proc/self/statm` while the run is hot.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mp_ds::ConcurrentSet;
use mp_smr::{AnySmr, Config, SchemeKind, Smr, SmrHandle, Telemetry, TelemetrySnapshot};
use mp_util::hist::Histogram;

use crate::workload::{thread_rng, KeyDist, KeySampler, Mix, Op};

/// Parameters of one soak point.
#[derive(Debug, Clone)]
pub struct SoakParams {
    /// Worker thread count — deliberately larger than the host's cores.
    pub threads: usize,
    /// Measured duration (after prefill).
    pub duration: Duration,
    /// Prefill size; keys are drawn from `[0, 2·prefill)`.
    pub prefill: usize,
    /// Key popularity distribution.
    pub dist: KeyDist,
    /// Operation mix.
    pub mix: Mix,
    /// A worker drops its handle and re-registers after this many
    /// operations (0 disables churn). Staggered per thread so the churn
    /// points spread over the run.
    pub churn_every: u64,
    /// Extra registered threads that pin an operation at the start of the
    /// measured window and hold it to the end — the §1 stalled-reader
    /// scenario, here to prove backpressure keeps the run survivable.
    /// Prefer [`with_stalled_readers`](SoakParams::with_stalled_readers),
    /// which also grows the registry to fit them.
    pub stalled_readers: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// SMR configuration.
    pub config: Config,
}

impl SoakParams {
    /// Soak defaults for `threads` oversubscribed workers over a
    /// `prefill`-sized structure: Zipfian(0.99) keys, 30% writes, handle
    /// churn every 20 K ops.
    pub fn new(threads: usize, prefill: usize, duration: Duration) -> SoakParams {
        SoakParams {
            threads,
            duration,
            prefill,
            dist: KeyDist::Zipfian(0.99),
            mix: Mix { contains: 70, insert: 15, remove: 15, name: "soak-70-15-15" },
            churn_every: 20_000,
            stalled_readers: 0,
            seed: 0x50a4_5eed_0000_0001,
            // The hash map's shards delegate to the list (3 slots); a tight
            // slot budget keeps the auto watermark (k·H) low enough that
            // scans actually fire between handle churn points.
            config: Config::default()
                .with_max_threads(threads + 2) // +prefill, +churn slack
                .with_slots_per_thread(4),
        }
    }

    /// Adds `n` stalled readers, growing `Config::max_threads` to fit them.
    pub fn with_stalled_readers(mut self, n: usize) -> SoakParams {
        let max = self.config.max_threads + n - self.stalled_readers;
        self.stalled_readers = n;
        self.config = self.config.with_max_threads(max);
        self
    }
}

/// Aggregated outcome of one soak point.
#[derive(Debug, Clone)]
pub struct SoakResult {
    /// Total completed operations.
    pub total_ops: u64,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Client-observed operation latency quantiles (nanoseconds).
    pub p50_ns: u64,
    /// 99th percentile operation latency.
    pub p99_ns: u64,
    /// 99.9th percentile operation latency — the scan-pause witness.
    pub p999_ns: u64,
    /// Wall nanoseconds of scanning per reclaimed node.
    pub scan_ns_per_free: f64,
    /// Scans that adopted a peer's published snapshot.
    pub snapshot_reuses: u64,
    /// Registrations that reused a released tid.
    pub tid_recycles: u64,
    /// Handle drop + re-register cycles performed by workers.
    pub handle_churns: u64,
    /// Peak scheme-wide retired-but-unreclaimed nodes (5 ms poller).
    pub peak_pending: usize,
    /// Peak scheme-wide retired payload bytes (same poller) — the figure
    /// the backpressure watermarks act on.
    pub peak_pending_bytes: usize,
    /// Retired-but-unreclaimed nodes after every worker handle dropped —
    /// orphans awaiting adoption or teardown. With drain-on-drop and
    /// orphan adoption this is the *net* unreclaimed residue, unlike the
    /// merged telemetry's `frees()`, which misses Drop-path scans (their
    /// telemetry dies with the handle).
    pub end_pending: usize,
    /// Peak resident set size in KiB while the run was hot.
    pub peak_rss_kb: u64,
    /// Times the backpressure ladder engaged its help-scan rung.
    pub bp_help_engagements: u64,
    /// Times the backpressure ladder engaged its throttle rung.
    pub bp_throttle_engagements: u64,
    /// Times the ladder released back to normal.
    pub bp_releases: u64,
    /// Merged per-handle telemetry.
    pub telemetry: TelemetrySnapshot,
}

/// Resident set size in KiB from `/proc/self/statm` (0 where unsupported).
pub fn rss_kb() -> u64 {
    let Ok(statm) = std::fs::read_to_string("/proc/self/statm") else {
        return 0;
    };
    let resident_pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .and_then(|f| f.parse().ok())
        .unwrap_or(0);
    resident_pages * 4 // 4 KiB pages
}

/// Runs one soak point of scheme `S` on structure `D`.
pub fn run_soak<S: Smr, D: ConcurrentSet<S>>(p: &SoakParams) -> SoakResult {
    run_soak_with::<S, D>(p, |cfg| S::new(cfg))
}

/// Runs one soak point of the runtime-selected `kind` on structure `D` —
/// the [`AnySmr`] facade path the soak bench drives, so one
/// monomorphization covers the whole scheme sweep.
pub fn run_soak_kind<D: ConcurrentSet<AnySmr>>(kind: SchemeKind, p: &SoakParams) -> SoakResult {
    run_soak_with::<AnySmr, D>(p, |cfg| {
        AnySmr::try_with_kind(kind, cfg).expect("valid soak config")
    })
}

/// [`run_soak`] with an explicit scheme constructor (the facade entry
/// point injects the selected kind through `make`).
fn run_soak_with<S: Smr, D: ConcurrentSet<S>>(
    p: &SoakParams,
    make: impl FnOnce(Config) -> Arc<S>,
) -> SoakResult {
    p.mix.check();
    let smr = make(p.config.clone());
    let ds = Arc::new(D::new(&smr));
    let key_range = (2 * p.prefill.max(1)) as u64;
    let sampler = KeySampler::new(p.dist, key_range);

    // Prefill with the *same* distribution the run uses, so hot keys exist.
    {
        let mut h = smr.register();
        let mut rng = thread_rng(p.seed, usize::MAX);
        let mut added = 0;
        let mut attempts = 0u64;
        while added < p.prefill && attempts < 50 * p.prefill as u64 {
            if ds.insert(&mut h, sampler.draw(&mut rng)) {
                added += 1;
            }
            attempts += 1;
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(p.threads + 1 + p.stalled_readers));
    let total_ops = Arc::new(AtomicU64::new(0));
    let total_churns = Arc::new(AtomicU64::new(0));

    let mut thread_outcomes: Vec<(TelemetrySnapshot, Histogram)> = Vec::new();
    let mut peak_pending = 0usize;
    let mut peak_pending_bytes = 0usize;
    let mut peak_rss = 0u64;

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for tid in 0..p.threads {
            let smr = smr.clone();
            let ds = ds.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            let total_ops = total_ops.clone();
            let total_churns = total_churns.clone();
            let sampler = sampler.clone();
            let mix = p.mix;
            let seed = p.seed;
            let churn_every = p.churn_every;
            joins.push(scope.spawn(move || {
                let mut h = smr.register();
                let mut merged = TelemetrySnapshot::default();
                let mut hist = Histogram::new();
                let mut rng = thread_rng(seed, tid);
                // Stagger churn points so re-registrations spread out.
                let mut ops_until_churn = if churn_every == 0 {
                    u64::MAX
                } else {
                    churn_every / 2 + (churn_every * tid as u64) % churn_every.max(1)
                };
                barrier.wait();
                let mut ops = 0u64;
                let mut churns = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = sampler.draw(&mut rng);
                    let t0 = Instant::now();
                    match mix.draw(&mut rng) {
                        Op::Contains => {
                            ds.contains(&mut h, key);
                        }
                        Op::Insert => {
                            ds.insert(&mut h, key);
                        }
                        Op::Remove => {
                            ds.remove(&mut h, key);
                        }
                    }
                    hist.record(t0.elapsed().as_nanos() as u64);
                    ops += 1;
                    ops_until_churn = ops_until_churn.saturating_sub(1);
                    if ops_until_churn == 0 {
                        // Handle churn under load: leftovers park as
                        // orphans (adopted by a later register), the tid
                        // goes back to the bitmap, and the re-register
                        // must observe a recycled lease. Scan before the
                        // snapshot so drain-time frees are counted — the
                        // Drop-path scan records into telemetry we can no
                        // longer read.
                        h.force_empty();
                        merged.merge(&h.snapshot());
                        drop(h);
                        h = smr.register();
                        churns += 1;
                        ops_until_churn = churn_every;
                    }
                }
                total_ops.fetch_add(ops, Ordering::AcqRel);
                total_churns.fetch_add(churns, Ordering::AcqRel);
                h.force_empty(); // count the final drain's frees too
                merged.merge(&h.snapshot());
                (merged, hist)
            }));
        }

        for _ in 0..p.stalled_readers {
            let smr = smr.clone();
            let stop = stop.clone();
            let barrier = barrier.clone();
            scope.spawn(move || {
                let mut h = smr.register();
                barrier.wait();
                // Pin an operation and stop taking steps for the whole
                // run (§1's stalled reader). Epoch-based schemes pin every
                // later retiree; backpressure must keep writers alive.
                let _op = h.pin();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }

        barrier.wait();
        let deadline = Instant::now() + p.duration;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5).min(p.duration));
            peak_pending = peak_pending.max(smr.retired_pending());
            peak_pending_bytes = peak_pending_bytes.max(smr.telemetry().pending_bytes());
            peak_rss = peak_rss.max(rss_kb());
            smr.sample_waste();
        }
        stop.store(true, Ordering::Release);
        for j in joins {
            thread_outcomes.push(j.join().expect("soak worker panicked"));
        }
    });
    // Post-stall drain: the stalled readers unpin only as their threads
    // exit, which can be after the workers' final scans — so without this,
    // `end_pending` would report the stall's pile-up rather than whether
    // the backlog is recoverable. A fresh handle adopts the orphans and
    // scans with no pins left standing; what remains is truly stranded.
    {
        let mut h = smr.register();
        for _ in 0..4 {
            h.force_empty();
        }
    }
    let end_pending = smr.retired_pending();
    let bp = smr.telemetry().backpressure();
    let (bp_help, bp_throttle, bp_releases) =
        (bp.help_engagements(), bp.throttle_engagements(), bp.releases());

    let mut merged = TelemetrySnapshot::default();
    let mut latency = Histogram::new();
    for (snap, hist) in &thread_outcomes {
        merged.merge(snap);
        latency.merge(hist);
    }
    let total = total_ops.load(Ordering::Acquire);
    SoakResult {
        total_ops: total,
        mops: total as f64 / p.duration.as_secs_f64() / 1e6,
        p50_ns: latency.quantile(0.50),
        p99_ns: latency.quantile(0.99),
        p999_ns: latency.quantile(0.999),
        scan_ns_per_free: merged.scan_ns_per_free(),
        snapshot_reuses: merged.snapshot_reuses(),
        tid_recycles: merged.tid_recycles(),
        handle_churns: total_churns.load(Ordering::Acquire),
        peak_pending,
        peak_pending_bytes,
        end_pending,
        peak_rss_kb: peak_rss,
        bp_help_engagements: bp_help,
        bp_throttle_engagements: bp_throttle,
        bp_releases,
        telemetry: merged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_ds::HashMap;
    use mp_smr::schemes::Hp;

    #[test]
    fn soak_smoke_produces_quantiles_and_churns() {
        let mut p = SoakParams::new(4, 128, Duration::from_millis(120));
        p.churn_every = 500; // churn quickly at smoke scale
        let r = run_soak::<Hp, HashMap<Hp>>(&p);
        assert!(r.total_ops > 0, "no progress: {r:?}");
        assert!(r.p50_ns > 0 && r.p50_ns <= r.p99_ns && r.p99_ns <= r.p999_ns);
        assert!(r.handle_churns > 0, "workers never churned handles");
        assert!(
            r.tid_recycles >= r.handle_churns,
            "each churn re-register must observe a recycled tid \
             (recycles {}, churns {})",
            r.tid_recycles,
            r.handle_churns
        );
        assert!(r.peak_rss_kb > 0 || !cfg!(target_os = "linux"));
    }

    #[test]
    fn stalled_reader_engages_backpressure_through_the_facade() {
        // One pinned reader under EBR pins every later retiree; a tiny cap
        // guarantees the ladder engages within the smoke window. The kind
        // goes through `run_soak_kind`, the facade path the bench drives.
        let mut p =
            SoakParams::new(4, 128, Duration::from_millis(150)).with_stalled_readers(1);
        p.churn_every = 0; // keep the run simple: survival is the point
        p.config = p.config.with_backpressure_bytes(16 << 10);
        let r = run_soak_kind::<HashMap<AnySmr>>(SchemeKind::Ebr, &p);
        assert!(r.total_ops > 0, "writers must stay live under backpressure: {r:?}");
        assert!(
            r.bp_help_engagements + r.bp_throttle_engagements >= 1,
            "ladder never engaged despite a stalled reader and a 16 KiB cap: {r:?}"
        );
        assert!(r.peak_pending_bytes > 0, "poller never saw the gauge move");
    }

    #[test]
    fn rss_probe_reads_something_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(rss_kb() > 0);
        }
    }
}
