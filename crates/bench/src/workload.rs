//! Workload mixes and key generation (§6 "Workloads").

use mp_util::{RngExt, SeedableRng, SmallRng};

/// An operation mix in percent. Probabilities must sum to 100.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// `contains` percentage.
    pub contains: u8,
    /// `insert` percentage.
    pub insert: u8,
    /// `remove` percentage.
    pub remove: u8,
    /// Display name ("read-dominated", …).
    pub name: &'static str,
}

/// 90% contains / 5% insert / 5% remove.
pub const READ_DOMINATED: Mix =
    Mix { contains: 90, insert: 5, remove: 5, name: "read-dominated" };
/// 50% insert / 50% remove (keeps size roughly constant).
pub const WRITE_DOMINATED: Mix =
    Mix { contains: 0, insert: 50, remove: 50, name: "write-dominated" };
/// 100% contains.
pub const READ_ONLY: Mix = Mix { contains: 100, insert: 0, remove: 0, name: "read-only" };

/// The operation kinds drawn from a [`Mix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Membership query.
    Contains,
    /// Insertion.
    Insert,
    /// Removal.
    Remove,
}

impl Mix {
    /// Validates the mix sums to 100%.
    pub fn check(&self) {
        assert_eq!(
            self.contains as u32 + self.insert as u32 + self.remove as u32,
            100,
            "mix must sum to 100%"
        );
    }

    /// Draws an operation according to the mix.
    #[inline]
    pub fn draw<R: RngExt>(&self, rng: &mut R) -> Op {
        let p: u8 = rng.random_range(0..100);
        if p < self.contains {
            Op::Contains
        } else if p < self.contains + self.insert {
            Op::Insert
        } else {
            Op::Remove
        }
    }
}

/// Deterministic per-thread RNG (reproducible runs given the same seed).
pub fn thread_rng(seed: u64, tid: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ (tid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Draws a uniform key from `[0, range)`.
#[inline]
pub fn draw_key<R: RngExt>(rng: &mut R, range: u64) -> u64 {
    rng.random_range(0..range)
}

/// How keys are drawn from the key range (soak harness; the figure benches
/// keep §6's uniform draw).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over the whole range (§6 default).
    Uniform,
    /// Zipfian with the given exponent (YCSB's skewed default is 0.99),
    /// ranks scrambled over the range so the hot keys scatter instead of
    /// clustering at the front of a sorted structure.
    Zipfian(f64),
    /// A hot set: the fraction `hot_frac` of the range absorbs `hot_prob`
    /// of all draws.
    HotSet {
        /// Fraction of the key range that is hot (e.g. 0.1).
        hot_frac: f64,
        /// Probability a draw lands in the hot set (e.g. 0.9).
        hot_prob: f64,
    },
}

/// A uniform double in `[0, 1)` from the generator's next 64 bits.
#[inline]
fn unit_f64<R: RngExt>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64 finalizer — scrambles Zipfian ranks across the key range.
#[inline]
fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A prepared key sampler for one `(KeyDist, range)` pair. Construction
/// precomputes the Zipfian constants; every draw is then O(1) expected
/// with no rank table (rejection inversion, Hörmann & Derflinger 1996).
#[derive(Debug, Clone)]
pub struct KeySampler {
    range: u64,
    kind: SamplerKind,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    Uniform,
    Zipf {
        theta: f64,
        h_x1: f64,
        h_range: f64,
        s: f64,
    },
    HotSet {
        hot_keys: u64,
        hot_prob: f64,
    },
}

impl KeySampler {
    /// Prepares a sampler over `[0, range)`.
    pub fn new(dist: KeyDist, range: u64) -> KeySampler {
        let range = range.max(1);
        let kind = match dist {
            KeyDist::Uniform => SamplerKind::Uniform,
            KeyDist::Zipfian(theta) => {
                assert!(theta > 0.0, "Zipfian exponent must be positive");
                let h_x1 = h_integral(1.5, theta) - 1.0;
                let h_range = h_integral(range as f64 + 0.5, theta);
                let s = 2.0 - h_integral_inv(h_integral(2.5, theta) - 2f64.powf(-theta), theta);
                SamplerKind::Zipf { theta, h_x1, h_range, s }
            }
            KeyDist::HotSet { hot_frac, hot_prob } => {
                assert!((0.0..=1.0).contains(&hot_frac) && (0.0..=1.0).contains(&hot_prob));
                let hot_keys = ((range as f64 * hot_frac) as u64).clamp(1, range);
                SamplerKind::HotSet { hot_keys, hot_prob }
            }
        };
        KeySampler { range, kind }
    }

    /// Draws one key from `[0, range)`.
    pub fn draw<R: RngExt>(&self, rng: &mut R) -> u64 {
        match self.kind {
            SamplerKind::Uniform => draw_key(rng, self.range),
            SamplerKind::Zipf { theta, h_x1, h_range, s } => {
                let rank = loop {
                    let u = h_range + unit_f64(rng) * (h_x1 - h_range);
                    let x = h_integral_inv(u, theta);
                    let k = x.round().clamp(1.0, self.range as f64);
                    if k - x <= s || u >= h_integral(k + 0.5, theta) - k.powf(-theta) {
                        break k as u64;
                    }
                };
                // Rank 1 is the hottest; scatter ranks over the range so
                // skew does not alias with structure order.
                scramble(rank) % self.range
            }
            SamplerKind::HotSet { hot_keys, hot_prob } => {
                if rng.random_bool(hot_prob) {
                    // Hot keys are strided through the range (every k-th
                    // key), again to avoid aliasing with structure order.
                    let stride = (self.range / hot_keys).max(1);
                    (rng.random_range(0..hot_keys) * stride) % self.range
                } else {
                    draw_key(rng, self.range)
                }
            }
        }
    }
}

/// `H(x) = ∫ t^-θ dt`, the Zipf tail integral used by rejection inversion.
fn h_integral(x: f64, theta: f64) -> f64 {
    if (theta - 1.0).abs() < 1e-9 {
        x.ln()
    } else {
        (x.powf(1.0 - theta) - 1.0) / (1.0 - theta)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inv(y: f64, theta: f64) -> f64 {
    if (theta - 1.0).abs() < 1e-9 {
        y.exp()
    } else {
        (1.0 + (1.0 - theta) * y).max(0.0).powf(1.0 / (1.0 - theta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sum_to_100() {
        READ_DOMINATED.check();
        WRITE_DOMINATED.check();
        READ_ONLY.check();
    }

    #[test]
    fn draw_respects_mix() {
        let mut rng = thread_rng(42, 0);
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            match READ_DOMINATED.draw(&mut rng) {
                Op::Contains => counts[0] += 1,
                Op::Insert => counts[1] += 1,
                Op::Remove => counts[2] += 1,
            }
        }
        let contains_frac = counts[0] as f64 / 20_000.0;
        assert!((contains_frac - 0.9).abs() < 0.02, "got {contains_frac}");
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn read_only_never_mutates() {
        let mut rng = thread_rng(7, 3);
        for _ in 0..1000 {
            assert_eq!(READ_ONLY.draw(&mut rng), Op::Contains);
        }
    }

    #[test]
    fn zipfian_concentrates_mass_on_few_keys() {
        let sampler = KeySampler::new(KeyDist::Zipfian(0.99), 10_000);
        let mut rng = thread_rng(11, 0);
        let mut counts = std::collections::HashMap::new();
        const N: usize = 50_000;
        for _ in 0..N {
            *counts.entry(sampler.draw(&mut rng)).or_insert(0usize) += 1;
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = freq.iter().take(10).sum();
        // θ=0.99 over 10 K keys: the 10 hottest ranks carry ~30% of draws
        // (a uniform draw would give them 0.1%); assert well clear of
        // uniform but below the theoretical mass.
        assert!(
            top10 as f64 / N as f64 > 0.25,
            "top-10 mass {:.3} not Zipf-concentrated",
            top10 as f64 / N as f64
        );
        for &k in counts.keys() {
            assert!(k < 10_000, "key {k} outside range");
        }
    }

    #[test]
    fn hot_set_receives_its_probability_mass() {
        let range = 1_000u64;
        let sampler = KeySampler::new(KeyDist::HotSet { hot_frac: 0.1, hot_prob: 0.9 }, range);
        let mut rng = thread_rng(13, 1);
        let mut counts = std::collections::HashMap::new();
        const N: usize = 50_000;
        for _ in 0..N {
            *counts.entry(sampler.draw(&mut rng)).or_insert(0usize) += 1;
        }
        // The 100 hottest keys must absorb ~90% of the draws (the cold 10%
        // also occasionally lands on them, so the mass is slightly above).
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let hot_mass: usize = freq.iter().take(100).sum();
        assert!(
            (0.85..=0.99).contains(&(hot_mass as f64 / N as f64)),
            "hot mass {:.3} out of expected band",
            hot_mass as f64 / N as f64
        );
    }

    #[test]
    fn samplers_stay_in_range_and_are_deterministic() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipfian(0.99),
            KeyDist::Zipfian(1.0), // θ=1 exercises the log branch
            KeyDist::HotSet { hot_frac: 0.2, hot_prob: 0.8 },
        ] {
            let sampler = KeySampler::new(dist, 777);
            let mut a = thread_rng(5, 2);
            let mut b = thread_rng(5, 2);
            for _ in 0..2_000 {
                let x = sampler.draw(&mut a);
                assert!(x < 777, "{dist:?} drew {x} out of range");
                assert_eq!(x, sampler.draw(&mut b), "{dist:?} not deterministic");
            }
        }
    }

    #[test]
    fn rngs_are_deterministic_and_distinct() {
        let mut a1 = thread_rng(1, 0);
        let mut a2 = thread_rng(1, 0);
        let mut b = thread_rng(1, 1);
        let xs: Vec<u64> = (0..8).map(|_| draw_key(&mut a1, 1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| draw_key(&mut a2, 1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| draw_key(&mut b, 1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
