//! Workload mixes and key generation (§6 "Workloads").

use mp_util::{RngExt, SeedableRng, SmallRng};

/// An operation mix in percent. Probabilities must sum to 100.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// `contains` percentage.
    pub contains: u8,
    /// `insert` percentage.
    pub insert: u8,
    /// `remove` percentage.
    pub remove: u8,
    /// Display name ("read-dominated", …).
    pub name: &'static str,
}

/// 90% contains / 5% insert / 5% remove.
pub const READ_DOMINATED: Mix =
    Mix { contains: 90, insert: 5, remove: 5, name: "read-dominated" };
/// 50% insert / 50% remove (keeps size roughly constant).
pub const WRITE_DOMINATED: Mix =
    Mix { contains: 0, insert: 50, remove: 50, name: "write-dominated" };
/// 100% contains.
pub const READ_ONLY: Mix = Mix { contains: 100, insert: 0, remove: 0, name: "read-only" };

/// The operation kinds drawn from a [`Mix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Membership query.
    Contains,
    /// Insertion.
    Insert,
    /// Removal.
    Remove,
}

impl Mix {
    /// Validates the mix sums to 100%.
    pub fn check(&self) {
        assert_eq!(
            self.contains as u32 + self.insert as u32 + self.remove as u32,
            100,
            "mix must sum to 100%"
        );
    }

    /// Draws an operation according to the mix.
    #[inline]
    pub fn draw<R: RngExt>(&self, rng: &mut R) -> Op {
        let p: u8 = rng.random_range(0..100);
        if p < self.contains {
            Op::Contains
        } else if p < self.contains + self.insert {
            Op::Insert
        } else {
            Op::Remove
        }
    }
}

/// Deterministic per-thread RNG (reproducible runs given the same seed).
pub fn thread_rng(seed: u64, tid: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ (tid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Draws a uniform key from `[0, range)`.
#[inline]
pub fn draw_key<R: RngExt>(rng: &mut R, range: u64) -> u64 {
    rng.random_range(0..range)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sum_to_100() {
        READ_DOMINATED.check();
        WRITE_DOMINATED.check();
        READ_ONLY.check();
    }

    #[test]
    fn draw_respects_mix() {
        let mut rng = thread_rng(42, 0);
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            match READ_DOMINATED.draw(&mut rng) {
                Op::Contains => counts[0] += 1,
                Op::Insert => counts[1] += 1,
                Op::Remove => counts[2] += 1,
            }
        }
        let contains_frac = counts[0] as f64 / 20_000.0;
        assert!((contains_frac - 0.9).abs() < 0.02, "got {contains_frac}");
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn read_only_never_mutates() {
        let mut rng = thread_rng(7, 3);
        for _ in 0..1000 {
            assert_eq!(READ_ONLY.draw(&mut rng), Op::Contains);
        }
    }

    #[test]
    fn rngs_are_deterministic_and_distinct() {
        let mut a1 = thread_rng(1, 0);
        let mut a2 = thread_rng(1, 0);
        let mut b = thread_rng(1, 1);
        let xs: Vec<u64> = (0..8).map(|_| draw_key(&mut a1, 1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| draw_key(&mut a2, 1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| draw_key(&mut b, 1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
