//! Michael's list specialized for Drop-the-Anchor (paper §3.1, Figure 4/6).
//!
//! DTA is the only scheme in the paper's comparison whose protection is
//! co-designed with the data structure: the traversal posts an *anchor*
//! every `k` hops (instead of a hazard fence per node), and a stalled
//! thread is neutralized by *freezing* the `k`-node neighborhood of its
//! anchor — setting a freeze bit on each node's `next` pointer (rendering
//! the segment immutable), splicing fresh copies of the live keys into the
//! list, and pinning the frozen originals forever.
//!
//! The traversal protocol therefore differs from the generic list in two
//! ways: it posts anchors on the current predecessor at the configured
//! cadence, and it restarts from the head whenever it reads a frozen next
//! pointer (the frozen zone is being replaced; copies appear shortly).
//! Only a list freezing technique is known (§3.1), which is why the paper
//! evaluates DTA solely on the linked list — as do we.

use std::sync::Arc;
use std::sync::atomic::Ordering;

use mp_smr::schemes::{Dta, DtaHandle, Freezer};
use mp_smr::{Atomic, Shared, Smr, SmrHandle, Telemetry};

/// Deleted-bit on a node's `next` pointer.
const DELETED: u64 = 0b01;
/// Freeze-bit: the field is immutable; traversals must restart.
const FROZEN: u64 = 0b10;

/// DTA-list node payload.
pub struct Node {
    key: u64,
    next: Atomic<Node>,
}

/// Michael's list under Drop-the-Anchor reclamation.
pub struct DtaList {
    head: Shared<Node>,
    smr: Arc<Dta>,
}

// SAFETY: [INV-07] all node access goes through `Shared`/`Atomic` words under
// a DTA handle; the payload is plain `u64` keys.
unsafe impl Send for DtaList {}
// SAFETY: [INV-07] see above.
unsafe impl Sync for DtaList {}

struct Position {
    prev: Shared<Node>,
    curr: Shared<Node>,
    curr_key: u64,
}

/// The list-specific freezing procedure registered with the scheme.
struct ListFreezer {
    head: Shared<Node>,
    scheme: std::sync::Weak<Dta>,
}

// SAFETY: [INV-07] holds only an immortal sentinel word and a Weak scheme
// reference; all node access happens under the recovery lock.
unsafe impl Send for ListFreezer {}
// SAFETY: [INV-07] see above.
unsafe impl Sync for ListFreezer {}

impl Freezer for ListFreezer {
    // PROTECTION: caller — invoked by the stall classifier under the
    // recovery lock; the stalled thread's stamp pins every node walked here.
    fn freeze_from(&self, anchor_addr: u64, old_quota: usize, older_than: u64) -> Vec<u64> {
        let Some(scheme) = self.scheme.upgrade() else {
            return Vec::new();
        };
        // Phase 1 — freeze: set the FROZEN bit on next pointers starting at
        // the anchor, until `old_quota` nodes *born before the stalled
        // operation* are frozen. Nodes inserted behind the stalled thread
        // during its operation are frozen too but do not count — this is
        // what guarantees the zone covers the thread's position no matter
        // how many insertions landed between its anchor and itself (§3.1).
        // The anchor chain may include already-retired nodes; they are
        // pinned by the stalled thread's stamp (it has not been neutralized
        // yet) and no reclamation runs concurrently (the recovery lock is
        // held), so walking is safe.
        let mut frozen = Vec::with_capacity(old_quota);
        let mut node = Shared::<Node>::from_word(anchor_addr);
        let mut old_frozen = 0usize;
        while old_frozen < old_quota {
            if node.is_null() {
                break;
            }
            // SAFETY: [INV-01] pinned as argued above (or an immortal sentinel).
            let node_smr = unsafe { node.deref() };
            let node_ref = node_smr.data();
            if node.as_raw() == self.head.as_raw() {
                // Never freeze the head: it has no predecessor to splice a
                // replacement from, and being immortal it needs none. It
                // does not count toward the quota either — coverage must
                // extend a full cadence beyond it.
                node = node_ref.next.load(Ordering::Acquire).unmarked();
                continue;
            }
            if node_ref.key == u64::MAX {
                // Never freeze the tail (its null next must stay readable);
                // record it so a thread parked on it counts as covered.
                frozen.push(node.addr());
                break;
            }
            let prev_word = node_ref.next.fetch_or_mark(FROZEN, Ordering::AcqRel);
            frozen.push(node.addr());
            if node_smr.birth() < older_than {
                old_frozen += 1;
            }
            node = prev_word.unmarked();
        }
        if frozen.is_empty() {
            return frozen;
        }
        // Phase 2 — replace the reachable zone prefix with fresh copies.
        // The caller (the scheme's stall classifier) publishes `frozen`
        // into the frozen set before neutralizing the stalled thread.
        self.replace_reachable_segment(&scheme, &frozen);
        frozen
    }
}

impl ListFreezer {
    /// Finds the reachable prefix of the frozen zone, builds unfrozen copies
    /// of its live nodes, and swings the zone's predecessor to the copies.
    /// Deleted nodes encountered on the way are spliced (and parked) by the
    /// freezer itself, so the splice point always has a clean next field.
    ///
    /// The walking thread runs inside an active operation (`empty()` runs
    /// within one), so its EBR stamp pins every node retired from here on —
    /// plain loads are safe.
    // PROTECTION: caller — runs under the recovery lock inside an active
    // operation; the walker's EBR stamp pins every node retired from here on.
    fn replace_reachable_segment(&self, scheme: &Arc<Dta>, frozen: &[u64]) {
        let in_zone = |s: Shared<Node>| frozen.contains(&(s.addr()));
        'retry: loop {
            let mut prev = self.head;
            loop {
                // SAFETY: [INV-01] prev is the head or a node reached via clean edges.
                let prev_field = &unsafe { prev.deref() }.data().next;
                let w = prev_field.load(Ordering::Acquire);
                if w.mark() != 0 {
                    // prev got deleted or frozen under us; restart.
                    continue 'retry;
                }
                let c = w.unmarked();
                if c.is_null() {
                    return; // zone not reachable: nothing to replace
                }
                if in_zone(c) {
                    // prev → c enters the zone. Collect the reachable
                    // segment and its live keys (zone fields are immutable).
                    let mut seg: Vec<Shared<Node>> = Vec::new();
                    let mut live: Vec<u64> = Vec::new();
                    let mut n = c;
                    let after_zone = loop {
                        if n.is_null() || !in_zone(n) {
                            break n;
                        }
                        // SAFETY: [INV-01] zone nodes are pinned and immutable.
                        let n_ref = unsafe { n.deref() }.data();
                        if n_ref.key == u64::MAX {
                            break n; // tail recorded in zone, never frozen
                        }
                        let nw = n_ref.next.load(Ordering::Acquire);
                        if nw.mark() & DELETED == 0 {
                            live.push(n_ref.key);
                        }
                        seg.push(n);
                        n = nw.unmarked();
                    };
                    if seg.is_empty() {
                        return;
                    }
                    // Build the copy chain (tail-first), ending at the zone
                    // exit.
                    let mut chain = after_zone;
                    for &k in live.iter().rev() {
                        let copy = mp_smr::node::alloc_bare(Node {
                            key: k,
                            next: Atomic::new(chain),
                        });
                        chain = Shared::pack(copy, 0);
                    }
                    if prev_field
                        .compare_exchange(w, chain, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // The originals are now unlinked. Nobody else can
                        // have retired them (splicing inside a frozen zone
                        // is impossible), so we own their reclamation.
                        for s in seg {
                            // SAFETY: [INV-04] unlinked by our CAS, never
                            // retired, and in the frozen set.
                            unsafe { scheme.park_frozen(s) };
                        }
                        return;
                    }
                    // Interference: discard unpublished copies and retry.
                    let mut cc = chain;
                    while cc.as_raw() != after_zone.as_raw() && !cc.is_null() {
                        // SAFETY: [INV-03] copies were never published.
                        let cc_node = unsafe { cc.deref() }.data();
                        // ORDERING: reason = owned-store — the copy chain was
                        // never published, so no other thread can observe it.
                        let nx = cc_node.next.load(Ordering::Relaxed);
                        // SAFETY: [INV-03] never published; freed once here.
                        unsafe { cc.drop_owned() };
                        cc = nx;
                    }
                    continue 'retry;
                }
                // SAFETY: [INV-01] c reachable via a clean edge; pinned once retired.
                let c_ref = unsafe { c.deref() }.data();
                let nw = c_ref.next.load(Ordering::Acquire);
                if nw.mark() & DELETED != 0 {
                    // c is logically deleted (and outside the zone): splice
                    // it ourselves so the eventual splice point is clean.
                    if prev_field
                        .compare_exchange(
                            w,
                            nw.unmarked(),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        // We won the physical removal: its deleter's splice
                        // will fail and it will never retire — we own it.
                        // SAFETY: [INV-04] unlinked by our CAS, never retired.
                        unsafe { scheme.park_frozen(c) };
                        continue; // re-read prev_field
                    }
                    continue 'retry;
                }
                prev = c;
            }
        }
    }
}

impl DtaList {
    /// Creates an empty DTA list and registers its freezer with `smr`.
    pub fn new(smr: &Arc<Dta>) -> Self {
        let mut h = smr.register();
        let tail = h.alloc(Node { key: u64::MAX, next: Atomic::null() });
        let head = h.alloc(Node { key: 0, next: Atomic::new(tail) });
        drop(h);
        smr.set_freezer(Arc::new(ListFreezer { head, scheme: Arc::downgrade(smr) }));
        DtaList { head, smr: smr.clone() }
    }

    /// The traversal: Michael's seek + anchor cadence + frozen-zone restart.
    // PROTECTION: caller — seek runs inside the caller's start_op span;
    // derefs are covered by the posted-anchor contract (§3.1).
    fn seek(&self, h: &mut DtaHandle, key: u64) -> Position {
        let cadence = h.anchor_hops();
        let mut saw_frozen = false;
        'retry: loop {
            if saw_frozen {
                // We may have been neutralized (deemed stalled): our old
                // stamp no longer protects fresh traversals. Announce a new
                // stamp — we hold no references across the restart.
                h.refresh_op();
                saw_frozen = false;
            }
            let mut hops = 0usize;
            let mut prev = self.head;
            // Anchor the operation start at the head: a stall anywhere in
            // the first `cadence` hops is covered by the head's zone.
            h.post_anchor(prev.addr());
            // SAFETY: [INV-01] head sentinel, never retired.
            let mut curr = h.read(unsafe { &prev.deref().data().next }, 0);
            loop {
                if curr.mark() & FROZEN != 0 {
                    saw_frozen = true;
                    continue 'retry; // zone under replacement: restart
                }
                let curr_clean = curr.unmarked();
                debug_assert!(!curr_clean.is_null());
                h.record_node_traversed();
                // SAFETY: [INV-01] within `cadence` hops of our posted anchor,
                // or reached via validated unmarked edges — DTA's contract.
                let curr_node = unsafe { curr_clean.deref() }.data();
                let next = h.read(&curr_node.next, 0);
                if next.mark() & FROZEN != 0 {
                    saw_frozen = true;
                    continue 'retry;
                }
                if next.mark() & DELETED != 0 {
                    // splice out the deleted node
                    // SAFETY: [INV-01] prev protected by the anchor contract.
                    let prev_node = unsafe { prev.deref() }.data();
                    if prev_node
                        .next
                        .compare_exchange(
                            curr_clean,
                            next.unmarked(),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_err()
                    {
                        continue 'retry;
                    }
                    // SAFETY: [INV-04] the winning splice uniquely retires it.
                    unsafe { h.retire(curr_clean) };
                    curr = next.unmarked();
                    continue;
                }
                if curr_node.key >= key {
                    return Position { prev, curr: curr_clean, curr_key: curr_node.key };
                }
                prev = curr_clean;
                curr = next;
                hops += 1;
                if hops.is_multiple_of(cadence) {
                    // Post the anchor on the predecessor: every reference we
                    // hold until the next post lies within `cadence` hops.
                    h.post_anchor(prev.addr());
                    // Validate prev is still linked & unfrozen: its next
                    // field must not have gained a freeze bit.
                    // SAFETY: [INV-01] prev covered by the anchor just posted.
                    let check = unsafe { prev.deref() }.data().next.load(Ordering::Acquire);
                    if check.mark() & FROZEN != 0 {
                        saw_frozen = true;
                        continue 'retry;
                    }
                }
            }
        }
    }

    /// Adds `key`; returns `false` if present.
    pub fn insert(&self, h: &mut DtaHandle, key: u64) -> bool {
        assert!(key < u64::MAX);
        h.start_op();
        loop {
            let pos = self.seek(h, key);
            if pos.curr_key == key {
                h.end_op();
                return false;
            }
            let new = h.alloc(Node { key, next: Atomic::new(pos.curr) });
            // SAFETY: [INV-01] prev covered by the anchor contract.
            let prev_node = unsafe { pos.prev.deref() }.data();
            match prev_node.next.compare_exchange(
                pos.curr,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    h.end_op();
                    return true;
                }
                // SAFETY: [INV-03] CAS failed: never published, still ours.
                Err(_) => unsafe { new.drop_owned() },
            }
        }
    }

    /// Removes `key`; returns `false` if absent.
    pub fn remove(&self, h: &mut DtaHandle, key: u64) -> bool {
        h.start_op();
        loop {
            let pos = self.seek(h, key);
            if pos.curr_key != key {
                h.end_op();
                return false;
            }
            // SAFETY: [INV-01] curr covered by the anchor contract.
            let curr_node = unsafe { pos.curr.deref() }.data();
            let next = h.read(&curr_node.next, 0);
            if next.mark() != 0 {
                continue; // frozen or concurrently deleted; re-seek decides
            }
            if curr_node
                .next
                .compare_exchange(next, next.with_mark(DELETED), Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // SAFETY: [INV-01] prev covered by the anchor contract.
            let prev_node = unsafe { pos.prev.deref() }.data();
            if prev_node
                .next
                .compare_exchange(pos.curr, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: [INV-04] the winning splice uniquely retires it.
                unsafe { h.retire(pos.curr) };
            } else {
                let _ = self.seek(h, key);
            }
            h.end_op();
            return true;
        }
    }

    /// Membership test.
    pub fn contains(&self, h: &mut DtaHandle, key: u64) -> bool {
        h.start_op();
        let pos = self.seek(h, key);
        h.end_op();
        pos.curr_key == key
    }

    /// Collects all keys (test helper).
    pub fn collect(&self, h: &mut DtaHandle) -> Vec<u64> {
        let mut out = Vec::new();
        h.start_op();
        let mut pos = self.seek(h, 0);
        while pos.curr_key != u64::MAX {
            out.push(pos.curr_key);
            pos = self.seek(h, pos.curr_key + 1);
        }
        h.end_op();
        out
    }
}

/// `DtaList` plugs into the common benchmark interface, but only under the
/// [`Dta`] scheme — the type-level encoding of "DTA cannot currently be
/// applied to other data structures" (§6) and vice versa.
impl crate::ConcurrentSet<Dta> for DtaList {
    fn new(smr: &Arc<Dta>) -> Self {
        DtaList::new(smr)
    }

    fn insert(&self, h: &mut DtaHandle, key: u64) -> bool {
        DtaList::insert(self, h, key)
    }

    fn remove(&self, h: &mut DtaHandle, key: u64) -> bool {
        DtaList::remove(self, h, key)
    }

    fn contains(&self, h: &mut DtaHandle, key: u64) -> bool {
        DtaList::contains(self, h, key)
    }

    fn name() -> &'static str {
        "dta-list"
    }
}

impl Drop for DtaList {
    // PROTECTION: exclusive — `&mut self` in drop: no handle can still hold a
    // protected reference, so the walk needs no pin span.
    fn drop(&mut self) {
        // The freezer walks our nodes; disarm it before freeing them.
        self.smr.clear_freezer();
        let mut curr = self.head;
        while !curr.is_null() {
            // SAFETY: [INV-03] exclusive access during drop; nodes freed once.
            let node = unsafe { curr.deref() }.data();
            // ORDERING: reason = exclusive — teardown under `&mut self` rules
            // out concurrent writers, so the Relaxed load cannot race.
            let next = node.next.load(Ordering::Relaxed).unmarked();
            // SAFETY: [INV-03] exclusive access; each node freed exactly once.
            unsafe { curr.drop_owned() };
            curr = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_smr::{Config, Smr};

    fn cfg() -> Config {
        Config::default()
            .with_max_threads(8)
            .with_empty_freq(4)
            .with_epoch_freq(8)
            .with_anchor_hops(4)
            .with_stall_patience(3)
    }

    #[test]
    fn sequential_semantics() {
        let smr = Dta::new(cfg());
        let list = DtaList::new(&smr);
        let mut h = smr.register();
        assert!(list.insert(&mut h, 3));
        assert!(list.insert(&mut h, 1));
        assert!(list.insert(&mut h, 2));
        assert!(!list.insert(&mut h, 2));
        assert_eq!(list.collect(&mut h), vec![1, 2, 3]);
        assert!(list.remove(&mut h, 2));
        assert!(!list.remove(&mut h, 2));
        assert!(list.contains(&mut h, 1));
        assert!(!list.contains(&mut h, 2));
    }

    #[test]
    fn sequential_model_check() {
        use mp_util::RngExt;
        let smr = Dta::new(cfg());
        let list = DtaList::new(&smr);
        let mut h = smr.register();
        let mut model = std::collections::BTreeSet::new();
        let mut rng = mp_util::rng();
        for _ in 0..3000 {
            let key = rng.random_range(0..64u64);
            match rng.random_range(0..3) {
                0 => assert_eq!(list.insert(&mut h, key), model.insert(key)),
                1 => assert_eq!(list.remove(&mut h, key), model.remove(&key)),
                _ => assert_eq!(list.contains(&mut h, key), model.contains(&key)),
            }
        }
        assert_eq!(list.collect(&mut h), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_stress() {
        use mp_util::RngExt;
        let smr = Dta::new(cfg());
        let list = Arc::new(DtaList::new(&smr));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let list = list.clone();
                let smr = smr.clone();
                s.spawn(move || {
                    let mut h = smr.register();
                    let mut rng = mp_util::rng();
                    for i in 0..2500usize {
                        let key = rng.random_range(0..32u64);
                        match (i + t) % 3 {
                            0 => {
                                list.insert(&mut h, key);
                            }
                            1 => {
                                list.remove(&mut h, key);
                            }
                            _ => {
                                list.contains(&mut h, key);
                            }
                        }
                    }
                });
            }
        });
        let mut h = smr.register();
        let keys = list.collect(&mut h);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn freezing_unblocks_a_stalled_thread() {
        // A thread stalls mid-traversal with an anchor posted; churn by a
        // worker must eventually be reclaimable again after the zone is
        // frozen and replaced, and the list must stay correct.
        let smr = Dta::new(cfg());
        let list = DtaList::new(&smr);
        let mut stalled = smr.register();
        let mut worker = smr.register();

        // Prefill.
        for k in 0..32u64 {
            worker.insert_helper(&list, k);
        }

        // The stalled thread starts an op and posts an anchor at the head,
        // then stops taking steps.
        stalled.start_op();
        stalled.post_anchor(list.head.addr());

        // Worker churns with short ops until the stall is detected, frozen,
        // and reclamation resumes.
        for round in 0..200u64 {
            let k = round % 32;
            list.remove(&mut worker, k);
            list.insert(&mut worker, k);
        }
        assert!(smr.frozen_count() > 0, "stall must trigger freezing");
        assert!(
            worker.retired_len() < 150,
            "reclamation must resume after freezing, {} pinned",
            worker.retired_len()
        );

        // The stalled thread wakes up: its traversal hits the frozen zone,
        // restarts from the head, and sees a consistent list.
        let keys = {
            // finish the stalled op first
            stalled.end_op();
            list.collect(&mut stalled)
        };
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys.len(), 32);
    }

    // Small helper so tests read naturally.
    trait InsertHelper {
        fn insert_helper(&mut self, list: &DtaList, k: u64);
    }
    impl InsertHelper for DtaHandle {
        fn insert_helper(&mut self, list: &DtaList, k: u64) {
            assert!(list.insert(self, k));
        }
    }
}
