//! Michael's lock-free hash table (SPAA 2002 — the same paper as the
//! list): a fixed array of lock-free sorted list buckets.
//!
//! This is the "hash tables" half of the paper the linked list came from,
//! and a natural MP client beyond the three structures the paper
//! evaluates: each bucket is an independent search structure, so MP's
//! search-interval maintenance and midpoint index assignment apply
//! per-bucket unchanged. One SMR scheme instance protects all buckets —
//! margins/hazards are index/address based and bucket-agnostic.
//!
//! The table is not resizable (Michael's original; resizing lock-free hash
//! tables is a separate line of work). Pick `buckets` for the expected
//! load; performance degrades gracefully to the list's O(n/buckets).

use std::sync::Arc;

use mp_smr::Smr;

use crate::list::LinkedList;
use crate::ConcurrentSet;

/// Fibonacci multiplicative hash: spreads sequential keys uniformly.
#[inline]
fn bucket_of(key: u64, buckets: usize) -> usize {
    (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % buckets
}

/// Michael's lock-free hash set/map over list buckets.
///
/// ```
/// use mp_smr::{Config, Smr, schemes::Mp};
/// use mp_ds::{ConcurrentSet, HashMap};
///
/// let smr = Mp::new(Config::default());
/// let map = HashMap::<Mp, u64>::with_buckets(&smr, 64);
/// let mut h = smr.register();
/// assert!(map.insert_kv(&mut h, 7, 49));
/// assert_eq!(map.get(&mut h, 7), Some(49));
/// assert!(map.remove(&mut h, 7));
/// ```
pub struct HashMap<S: Smr, V = ()> {
    buckets: Box<[LinkedList<S, V>]>,
}

/// Default bucket count used by [`ConcurrentSet::new`].
pub const DEFAULT_BUCKETS: usize = 256;

impl<S: Smr, V: Send + Sync + Default + 'static> HashMap<S, V> {
    /// Creates a table with `buckets` independent list buckets, all managed
    /// by `smr`.
    pub fn with_buckets(smr: &Arc<S>, buckets: usize) -> Self {
        assert!(buckets > 0);
        HashMap {
            buckets: (0..buckets).map(|_| LinkedList::new(smr)).collect(),
        }
    }

    #[inline]
    fn bucket(&self, key: u64) -> &LinkedList<S, V> {
        &self.buckets[bucket_of(key, self.buckets.len())]
    }

    /// Adds `key` mapped to `value`; returns `false` if present.
    pub fn insert_kv(&self, h: &mut S::Handle, key: u64, value: V) -> bool {
        self.bucket(key).insert_kv(h, key, value)
    }

    /// Returns a copy of the value stored under `key`, if present.
    pub fn get(&self, h: &mut S::Handle, key: u64) -> Option<V>
    where
        V: Clone,
    {
        self.bucket(key).get(h, key)
    }

    /// Number of elements (test helper; not linearizable).
    pub fn len(&self, h: &mut S::Handle) -> usize {
        self.buckets.iter().map(|b| b.len(h)).sum()
    }

    /// True if no element is present (test helper).
    pub fn is_empty(&self, h: &mut S::Handle) -> bool {
        self.buckets.iter().all(|b| b.is_empty(h))
    }

    /// Collects all keys in unspecified order (test helper).
    pub fn collect(&self, h: &mut S::Handle) -> Vec<u64> {
        let mut out: Vec<u64> = self.buckets.iter().flat_map(|b| b.collect(h)).collect();
        out.sort_unstable();
        out
    }
}

impl<S: Smr, V: Send + Sync + Default + 'static> ConcurrentSet<S> for HashMap<S, V> {
    fn new(smr: &Arc<S>) -> Self {
        Self::with_buckets(smr, DEFAULT_BUCKETS)
    }

    fn insert(&self, h: &mut S::Handle, key: u64) -> bool {
        self.bucket(key).insert(h, key)
    }

    fn remove(&self, h: &mut S::Handle, key: u64) -> bool {
        self.bucket(key).remove(h, key)
    }

    fn contains(&self, h: &mut S::Handle, key: u64) -> bool {
        self.bucket(key).contains(h, key)
    }

    fn name() -> &'static str {
        "hashmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_smr::schemes::{Ebr, Hp, Mp};
    use mp_smr::Config;

    fn cfg() -> Config {
        Config::default().with_max_threads(8).with_empty_freq(4).with_epoch_freq(8)
    }

    fn smoke<S: Smr>() {
        let smr = S::new(cfg());
        let map: HashMap<S> = HashMap::with_buckets(&smr, 16);
        let mut h = smr.register();
        assert!(map.is_empty(&mut h));
        for k in 0..200u64 {
            assert!(map.insert(&mut h, k), "insert {k}");
        }
        assert!(!map.insert(&mut h, 100));
        assert_eq!(map.len(&mut h), 200);
        for k in 0..200u64 {
            assert!(map.contains(&mut h, k));
        }
        assert!(!map.contains(&mut h, 200));
        for k in (0..200u64).step_by(2) {
            assert!(map.remove(&mut h, k));
        }
        assert_eq!(map.collect(&mut h), (1..200u64).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn smoke_multiple_schemes() {
        smoke::<Mp>();
        smoke::<Hp>();
        smoke::<Ebr>();
    }

    #[test]
    fn kv_roundtrip() {
        let smr = Mp::new(cfg());
        let map: HashMap<Mp, String> = HashMap::with_buckets(&smr, 8);
        let mut h = smr.register();
        assert!(map.insert_kv(&mut h, 1, "a".into()));
        assert!(map.insert_kv(&mut h, 9, "b".into())); // may share bucket with 1
        assert_eq!(map.get(&mut h, 1).as_deref(), Some("a"));
        assert_eq!(map.get(&mut h, 9).as_deref(), Some("b"));
        assert_eq!(map.get(&mut h, 17), None);
    }

    #[test]
    fn bucket_distribution_is_uniformish() {
        let mut counts = vec![0usize; 64];
        for k in 0..64_000u64 {
            counts[bucket_of(k, 64)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "sequential keys must spread: min {min} max {max}");
    }

    #[test]
    fn sequential_model_check() {
        use mp_util::RngExt;
        let smr = Mp::new(cfg());
        let map: HashMap<Mp> = HashMap::with_buckets(&smr, 32);
        let mut h = smr.register();
        let mut model = std::collections::BTreeSet::new();
        let mut rng = mp_util::rng();
        for _ in 0..4000 {
            let key = rng.random_range(0..256u64);
            match rng.random_range(0..3) {
                0 => assert_eq!(map.insert(&mut h, key), model.insert(key)),
                1 => assert_eq!(map.remove(&mut h, key), model.remove(&key)),
                _ => assert_eq!(map.contains(&mut h, key), model.contains(&key)),
            }
        }
        assert_eq!(map.collect(&mut h), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_stress() {
        use mp_util::RngExt;
        let smr = Mp::new(cfg());
        let map: Arc<HashMap<Mp>> = Arc::new(HashMap::with_buckets(&smr, 32));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let (smr, map) = (smr.clone(), map.clone());
                s.spawn(move || {
                    let mut h = smr.register();
                    let mut rng = mp_util::rng();
                    for i in 0..2500usize {
                        let key = rng.random_range(0..128u64);
                        match (i + t) % 3 {
                            0 => {
                                map.insert(&mut h, key);
                            }
                            1 => {
                                map.remove(&mut h, key);
                            }
                            _ => {
                                map.contains(&mut h, key);
                            }
                        }
                    }
                });
            }
        });
        let mut h = smr.register();
        let keys = map.collect(&mut h);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
