//! # mp-ds — Nonblocking search data structures, generic over SMR
//!
//! The three client data structures the margin-pointers paper evaluates
//! (§5), each parameterized by the reclamation scheme `S: Smr`:
//!
//! * [`LinkedList`] — Michael's lock-free sorted linked list (SPAA 2002)
//!   with a tail sentinel, §5.2 Listing 7.
//! * [`SkipList`] — Fraser's lock-free skip list (2004), §5.2.
//! * [`NmTree`] — the Natarajan–Mittal external binary search tree
//!   (PPoPP 2014), §5.3 Listings 8–9.
//! * [`DtaList`] — the list specialized for Drop-the-Anchor, providing the
//!   freezing procedure DTA's recovery requires (§3.1).
//! * [`HashMap`] — Michael's lock-free hash table (same SPAA 2002 paper as
//!   the list): fixed list buckets, a further MP client beyond the paper's
//!   three.
//!
//! All structures implement the common [`ConcurrentSet`] interface over
//! `u64` keys. Keys must be `< MAX_KEY` (the top values are reserved for
//! sentinels). Every shared pointer access goes through the SMR handle's
//! `read`, and insert paths maintain the MP search interval via
//! `update_lower_bound` / `update_upper_bound` — so plugging in [`Mp`]
//! yields margin protection, while any other scheme works unchanged.
//!
//! [`Mp`]: mp_smr::schemes::Mp

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod dta_list;
pub mod hashmap;
pub mod list;
pub mod nmtree;
pub mod skiplist;

use std::sync::Arc;

use mp_smr::Smr;

pub use dta_list::DtaList;
pub use hashmap::HashMap;
pub use list::LinkedList;
pub use nmtree::NmTree;
pub use skiplist::SkipList;

/// Largest usable client key; larger values are reserved for sentinels
/// (list/skip-list tail `u64::MAX`, tree sentinels `∞₀ < ∞₁ < ∞₂`).
pub const MAX_KEY: u64 = u64::MAX - 3;

/// The common set interface the paper benchmarks (integer keys, §6).
///
/// Operations take the caller's SMR handle explicitly — the Rust equivalent
/// of the paper's per-thread SMR state. Handles must come from the same
/// scheme instance the structure was built with.
pub trait ConcurrentSet<S: Smr>: Send + Sync + Sized + 'static {
    /// Creates an empty set managed by `smr`.
    fn new(smr: &Arc<S>) -> Self;

    /// Adds `key`; returns `false` if it was already present.
    fn insert(&self, handle: &mut S::Handle, key: u64) -> bool;

    /// Removes `key`; returns `false` if it was absent.
    fn remove(&self, handle: &mut S::Handle, key: u64) -> bool;

    /// Membership test.
    fn contains(&self, handle: &mut S::Handle, key: u64) -> bool;

    /// Structure name for reports ("list", "skiplist", "nmtree").
    fn name() -> &'static str;
}
