//! Michael's nonblocking sorted linked list (SPAA 2002), paper §5.2.
//!
//! Keys are kept sorted between a head sentinel (`-∞`, index 0) and a tail
//! sentinel (`u64::MAX`, index `max_index` — paper §5.2). Deletion is
//! two-step: a CAS sets the *deleted* mark bit in the victim's `next`
//! pointer (logical removal, freezing the field), then the node is spliced
//! out by a CAS on its predecessor (physical removal) and retired by
//! whichever thread wins that splice.
//!
//! The MP integration (Listing 7) is the two bolded lines: during `seek`,
//! passing a node with a smaller key updates the search interval's lower
//! endpoint; the stopping node updates the upper endpoint. `insert` then
//! allocates with the midpoint index of the final `(pred, succ)` interval.

use std::sync::Arc;
use std::sync::atomic::Ordering;

use mp_smr::{Atomic, Shared, Smr, SmrHandle, Telemetry};

use crate::ConcurrentSet;

/// Deleted-bit on a node's `next` pointer (the node owning the field is
/// logically removed).
const DELETED: u64 = 0b01;

/// Protection slot roles; rotated as the traversal advances.
const SLOTS: [usize; 3] = [0, 1, 2];

/// List node payload: immutable key, optional value, next link.
pub struct Node<V = ()> {
    key: u64,
    value: V,
    next: Atomic<Node<V>>,
}

/// Michael's lock-free sorted linked-list set.
///
/// ```
/// use std::sync::Arc;
/// use mp_smr::{Config, Smr, schemes::Mp};
/// use mp_ds::{ConcurrentSet, LinkedList};
///
/// let smr = Mp::new(Config::default().with_max_threads(2));
/// let list = LinkedList::<Mp>::new(&smr);
/// let mut h = smr.register();
/// assert!(list.insert(&mut h, 7));
/// assert!(list.contains(&mut h, 7));
/// assert!(list.remove(&mut h, 7));
/// assert!(!list.contains(&mut h, 7));
/// ```
pub struct LinkedList<S: Smr, V = ()> {
    /// Head sentinel; never removed, so it may be dereferenced freely.
    head: Shared<Node<V>>,
    smr: Arc<S>,
}

// SAFETY: [INV-07] all node access goes through `Shared`/`Atomic` words under
// an SMR handle, and the payload type is required `Send + Sync`.
unsafe impl<S: Smr, V: Send + Sync> Send for LinkedList<S, V> {}
// SAFETY: [INV-07] see above.
unsafe impl<S: Smr, V: Send + Sync> Sync for LinkedList<S, V> {}

/// Result of a successful `seek`: `curr` is the first node with
/// `key ≥ target`; `prev` is its predecessor. Both are protected under the
/// recorded slots until `end_op`.
struct Position<V> {
    prev: Shared<Node<V>>,
    curr: Shared<Node<V>>,
    curr_key: u64,
    /// A slot whose protection is no longer needed; safe to overwrite with
    /// further reads (e.g. `remove` re-reading `curr->next`).
    free_slot: usize,
}

impl<S: Smr, V: Send + Sync + 'static> LinkedList<S, V> {
    /// Searches for the first node with key ≥ `key`, splicing out any
    /// marked nodes encountered (Listing 7). On return, MP's search
    /// interval is `(prev.key, curr.key)`.
    // PROTECTION: caller — seek runs inside the caller's start_op/end_op
    // span; every deref below is of a slot-protected read made in this op.
    fn seek(&self, h: &mut S::Handle, key: u64) -> Position<V> {
        'retry: loop {
            // Slot roles rotate: prev, curr, next.
            let (mut prev_s, mut curr_s, mut next_s) = (SLOTS[0], SLOTS[1], SLOTS[2]);
            let mut prev = self.head;
            // SAFETY: [INV-01] head is a sentinel, never retired.
            let mut curr = h.read(unsafe { &prev.deref().data().next }, curr_s);
            if curr.mark() != 0 {
                // Head can never be deleted; a marked value here means we
                // raced an in-flight splice representation — retry.
                continue 'retry;
            }
            loop {
                h.record_node_traversed();
                debug_assert!(!curr.is_null(), "tail sentinel bounds every traversal");
                // SAFETY: [INV-01] curr was returned by a protected read this op.
                let curr_node = unsafe { curr.deref() }.data();
                let next = h.read(&curr_node.next, next_s);
                if next.mark() != 0 {
                    // curr is logically deleted: splice it out of the list.
                    let next_clean = next.unmarked();
                    // SAFETY: [INV-01] prev is protected (or the head sentinel).
                    let prev_node = unsafe { prev.deref() }.data();
                    if prev_node
                        .next
                        .compare_exchange(curr, next_clean, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        continue 'retry;
                    }
                    // SAFETY: [INV-04] the winning splice uniquely retires curr.
                    unsafe { h.retire(curr) };
                    // next_clean was protected under next_s; it becomes curr.
                    std::mem::swap(&mut curr_s, &mut next_s);
                    curr = next_clean;
                    continue;
                }
                let ckey = curr_node.key;
                if ckey >= key {
                    h.update_upper_bound(curr);
                    // next_s protected curr's successor, which the caller
                    // does not need; hand it back as scratch.
                    return Position { prev, curr, curr_key: ckey, free_slot: next_s };
                }
                h.update_lower_bound(curr);
                // Advance: curr becomes prev, next becomes curr; the slot
                // that protected the old prev is recycled for future reads.
                prev = curr;
                curr = next;
                let recycled = prev_s;
                prev_s = curr_s;
                curr_s = next_s;
                next_s = recycled;
            }
        }
    }

    /// Adds `key` mapped to `value`; returns `false` (dropping `value`'s
    /// node) if the key is already present. The map flavor of `insert`.
    pub fn insert_kv(&self, h: &mut S::Handle, key: u64, value: V) -> bool {
        assert!(key < u64::MAX, "key space reserved for the tail sentinel");
        h.start_op();
        let mut value = value;
        loop {
            let pos = self.seek(h, key);
            if pos.curr_key == key {
                h.end_op();
                return false;
            }
            // MP assigns the midpoint index of (pred, succ) — the bounds
            // seek just maintained (Listing 5).
            let new = h.alloc(Node { key, value, next: Atomic::new(pos.curr) });
            // SAFETY: [INV-01] prev is protected (or the head sentinel).
            let prev_node = unsafe { pos.prev.deref() }.data();
            match prev_node.next.compare_exchange(
                pos.curr,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    h.end_op();
                    return true;
                }
                Err(_) => {
                    // Never published; the node is exclusively ours.
                    // SAFETY: [INV-03] the CAS failed, so no other thread
                    // ever saw `new`. Recover the value for the next attempt.
                    value = unsafe { new.take_owned() }.value;
                }
            }
        }
    }

    /// Returns a copy of the value stored under `key`, if present. The
    /// clone happens while the node is protected, so the returned value is
    /// never read from reclaimed memory.
    pub fn get(&self, h: &mut S::Handle, key: u64) -> Option<V>
    where
        V: Clone,
    {
        h.start_op();
        let pos = self.seek(h, key);
        let out = if pos.curr_key == key {
            // SAFETY: [INV-01] curr is protected by seek until end_op.
            Some(unsafe { pos.curr.deref() }.data().value.clone())
        } else {
            None
        };
        h.end_op();
        out
    }

    /// Number of elements (test/diagnostic helper; not linearizable under
    /// concurrent updates).
    pub fn len(&self, h: &mut S::Handle) -> usize {
        h.start_op();
        let mut n = 0;
        let mut pos = self.seek(h, 0);
        while pos.curr_key != u64::MAX {
            n += 1;
            pos = self.seek(h, pos.curr_key + 1);
        }
        h.end_op();
        n
    }

    /// True if the list holds no client keys (same caveats as [`len`]).
    ///
    /// [`len`]: LinkedList::len
    pub fn is_empty(&self, h: &mut S::Handle) -> bool {
        h.start_op();
        let pos = self.seek(h, 0);
        h.end_op();
        pos.curr_key == u64::MAX
    }

    /// Collects all keys in order (test helper).
    pub fn collect(&self, h: &mut S::Handle) -> Vec<u64> {
        let mut out = Vec::new();
        h.start_op();
        let mut pos = self.seek(h, 0);
        while pos.curr_key != u64::MAX {
            out.push(pos.curr_key);
            pos = self.seek(h, pos.curr_key + 1);
        }
        h.end_op();
        out
    }
}

impl<S: Smr, V: Send + Sync + Default + 'static> ConcurrentSet<S> for LinkedList<S, V> {
    fn new(smr: &Arc<S>) -> Self {
        let mut h = smr.register();
        // Sentinel indices per §5.2: head 0, tail max_index. The tail's key
        // is u64::MAX; client keys must stay below it.
        let tail = h.alloc_with_index(
            Node { key: u64::MAX, value: V::default(), next: Atomic::null() },
            u32::MAX - 1,
        );
        let head = h
            .alloc_with_index(Node { key: 0, value: V::default(), next: Atomic::new(tail) }, 0);
        LinkedList { head, smr: smr.clone() }
    }

    fn insert(&self, h: &mut S::Handle, key: u64) -> bool {
        self.insert_kv(h, key, V::default())
    }

    fn remove(&self, h: &mut S::Handle, key: u64) -> bool {
        h.start_op();
        loop {
            let pos = self.seek(h, key);
            if pos.curr_key != key {
                h.end_op();
                return false;
            }
            // SAFETY: [INV-01] curr is protected by seek.
            let curr_node = unsafe { pos.curr.deref() }.data();
            let next = h.read(&curr_node.next, pos.free_slot);
            if next.mark() != 0 {
                continue; // already being deleted; re-seek decides the winner
            }
            // Logical removal: set the deleted bit on curr's next pointer.
            if curr_node
                .next
                .compare_exchange(next, next.with_mark(DELETED), Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // Physical removal: try to splice; on failure, a seek does it.
            // SAFETY: [INV-01] prev is protected by seek (or the head sentinel).
            let prev_node = unsafe { pos.prev.deref() }.data();
            if prev_node
                .next
                .compare_exchange(pos.curr, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: [INV-04] the winning splice uniquely retires the node.
                unsafe { h.retire(pos.curr) };
            } else {
                let _ = self.seek(h, key); // helper splice + retire
            }
            h.end_op();
            return true;
        }
    }

    fn contains(&self, h: &mut S::Handle, key: u64) -> bool {
        h.start_op();
        let pos = self.seek(h, key);
        h.end_op();
        pos.curr_key == key
    }

    fn name() -> &'static str {
        "list"
    }
}

impl<S: Smr, V> Drop for LinkedList<S, V> {
    // PROTECTION: exclusive — `&mut self` in drop: no handle can still hold a
    // protected reference, so the walk needs no pin span.
    fn drop(&mut self) {
        // Exclusive access: free every node still linked, sentinels included.
        let mut curr = self.head;
        while !curr.is_null() {
            // SAFETY: [INV-03] exclusive access during drop; nodes freed once.
            let node = unsafe { curr.deref() }.data();
            // ORDERING: reason = exclusive — teardown under `&mut self` rules
            // out concurrent writers, so the Relaxed load cannot race.
            let next = node.next.load(Ordering::Relaxed).unmarked();
            // SAFETY: [INV-03] exclusive access; each node freed exactly once.
            unsafe { curr.drop_owned() };
            curr = next;
        }
        let _ = &self.smr; // scheme owned at least as long as its nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_smr::schemes::{Ebr, He, Hp, Ibr, Leaky, Mp};
    use mp_smr::Config;

    fn cfg() -> Config {
        Config::default().with_max_threads(8).with_empty_freq(4).with_epoch_freq(8)
    }

    fn smoke<S: Smr>() {
        let smr = S::new(cfg());
        let list: LinkedList<S> = LinkedList::new(&smr);
        let mut h = smr.register();
        assert!(list.is_empty(&mut h));
        assert!(list.insert(&mut h, 5));
        assert!(list.insert(&mut h, 1));
        assert!(list.insert(&mut h, 9));
        assert!(!list.insert(&mut h, 5), "duplicate rejected");
        assert_eq!(list.collect(&mut h), vec![1, 5, 9]);
        assert!(list.contains(&mut h, 1));
        assert!(!list.contains(&mut h, 2));
        assert!(list.remove(&mut h, 5));
        assert!(!list.remove(&mut h, 5));
        assert_eq!(list.collect(&mut h), vec![1, 9]);
        assert_eq!(list.len(&mut h), 2);
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Mp>();
        smoke::<Hp>();
        smoke::<Ebr>();
        smoke::<He>();
        smoke::<Ibr>();
        smoke::<Leaky>();
    }

    #[test]
    fn sequential_model_check_mp() {
        use mp_util::RngExt;
        let smr = Mp::new(cfg());
        let list: LinkedList<Mp> = LinkedList::new(&smr);
        let mut h = smr.register();
        let mut model = std::collections::BTreeSet::new();
        let mut rng = mp_util::rng();
        for _ in 0..4000 {
            let key = rng.random_range(0..64u64);
            match rng.random_range(0..3) {
                0 => assert_eq!(list.insert(&mut h, key), model.insert(key)),
                1 => assert_eq!(list.remove(&mut h, key), model.remove(&key)),
                _ => assert_eq!(list.contains(&mut h, key), model.contains(&key)),
            }
        }
        assert_eq!(list.collect(&mut h), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_stress_mp() {
        concurrent_stress::<Mp>();
    }

    #[test]
    fn concurrent_stress_hp() {
        concurrent_stress::<Hp>();
    }

    #[test]
    fn concurrent_stress_ebr() {
        concurrent_stress::<Ebr>();
    }

    fn concurrent_stress<S: Smr>() {
        use mp_util::RngExt;
        let smr = S::new(cfg());
        let list = Arc::new(LinkedList::<S>::new(&smr));
        let threads = 4;
        let ops = 3000;
        std::thread::scope(|s| {
            for t in 0..threads {
                let list = list.clone();
                let smr = smr.clone();
                s.spawn(move || {
                    let mut h = smr.register();
                    let mut rng = mp_util::rng();
                    for i in 0..ops {
                        let key = rng.random_range(0..32u64);
                        match (i + t) % 3 {
                            0 => {
                                list.insert(&mut h, key);
                            }
                            1 => {
                                list.remove(&mut h, key);
                            }
                            _ => {
                                list.contains(&mut h, key);
                            }
                        }
                    }
                });
            }
        });
        // Structure invariant: keys strictly sorted.
        let mut h = smr.register();
        let keys = list.collect(&mut h);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
    }

    #[test]
    fn mp_midpoint_indices_follow_key_order() {
        let smr = Mp::new(cfg());
        let list = LinkedList::new(&smr);
        let mut h = smr.register();
        // Insert in an order that keeps splitting intervals.
        for key in [500u64, 250, 750, 125, 375, 625, 875] {
            assert!(list.insert(&mut h, key));
        }
        // Walk the list and check index monotonicity (allowing USE_HP
        // collisions, which are protected separately).
        h.start_op();
        let mut pos = self_seek(&list, &mut h, 0);
        let mut last_idx = 0u32;
        while pos.curr_key != u64::MAX {
            // SAFETY: [INV-12] test-controlled: protected by the open span.
            let idx = unsafe { pos.curr.deref() }.index();
            if idx != mp_smr::node::USE_HP {
                assert!(idx >= last_idx, "indices must respect key order");
                last_idx = idx;
            }
            let k = pos.curr_key;
            pos = self_seek(&list, &mut h, k + 1);
        }
        h.end_op();
    }

    fn self_seek<S: Smr>(list: &LinkedList<S, ()>, h: &mut S::Handle, key: u64) -> Position<()> {
        list.seek(h, key)
    }
}
