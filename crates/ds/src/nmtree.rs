//! The Natarajan–Mittal nonblocking external BST (PPoPP 2014), paper §5.3.
//!
//! An external (leaf-oriented) unbalanced BST: leaves store the client
//! keys, internal nodes only route searches. Deletion marks *edges* rather
//! than nodes, by stealing the two low pointer bits: a **flagged** edge
//! means the leaf it points to is being deleted; a **tagged** edge can
//! never change again. A deletion *injects* a flag on the parent→leaf edge,
//! then *cleans up* by tagging the parent's sibling edge and swinging the
//! ancestor's edge from the successor to the sibling subtree — unlinking
//! the parent and the leaf (and, when deletions chain, the whole tagged
//! region) in one CAS.
//!
//! The initial state (paper Figure 1) has routing sentinels `R` (key ∞₂)
//! and `S` (key ∞₁) plus three sentinel leaves ∞₀ < ∞₁ < ∞₂; every client
//! key is `< ∞₀`. Per §5.3, the ∞₀ leaf gets MP index `max_index` and the
//! other initial nodes `USE_HP`; `R` and `S` are never removed.
//!
//! MP integration (Listing 9): `seek` shrinks the search interval at every
//! internal node it navigates — the two bolded `update_*_bound` lines.

use std::sync::Arc;
use std::sync::atomic::Ordering;

use mp_smr::node::USE_HP;
use mp_smr::{Atomic, Shared, Smr, SmrHandle, Telemetry};

use crate::ConcurrentSet;

/// Edge mark: the leaf this edge points to is being deleted.
const FLAG: u64 = 0b01;
/// Edge mark: this edge is immutable (its tail node is being unlinked).
const TAG: u64 = 0b10;

/// A severed edge: null with both marks set — a combination no live edge
/// ever carries (flagged/tagged edges always hold real pointers, leaf child
/// edges are null and unmarked). `retire_region` overwrites every edge of a
/// detached node with this word *before* retiring the node, so a reader
/// re-validating (HP/MP) or re-reading (IBR/HE) the edge observes a change
/// instead of a frozen pointer into freed memory; `seek` restarts when it
/// reads one. Without this, the region's interior edges would never change
/// again, and protect-then-validate schemes would happily follow them to
/// nodes reclaimed out from under the traversal (see DESIGN.md, "Findings").
fn dead<V>() -> Shared<Node<V>> {
    Shared::null().with_mark(FLAG | TAG)
}

/// True iff `e` is the severed-edge sentinel written by `retire_region`.
fn is_dead<V>(e: Shared<Node<V>>) -> bool {
    e.mark() == (FLAG | TAG) && e.is_null()
}

/// Sentinel keys ∞₀ < ∞₁ < ∞₂ (client keys must be `< ∞₀`).
const INF0: u64 = u64::MAX - 2;
const INF1: u64 = u64::MAX - 1;
const INF2: u64 = u64::MAX;

/// Minimum protection slots a tree operation needs (4 seek-record roles +
/// one in-flight read + one spare).
pub const SLOTS_NEEDED: usize = 6;

/// Tree node payload. Leaves have both children null; only leaves carry
/// meaningful values (internal nodes route searches).
pub struct Node<V = ()> {
    key: u64,
    value: V,
    left: Atomic<Node<V>>,
    right: Atomic<Node<V>>,
}

impl<V> Node<V> {
    fn leaf(key: u64, value: V) -> Self {
        Node { key, value, left: Atomic::null(), right: Atomic::null() }
    }
}

/// The Natarajan–Mittal lock-free external BST set.
pub struct NmTree<S: Smr, V = ()> {
    /// Root routing node `R`; never removed.
    root: Shared<Node<V>>,
    /// Routing node `S` (= `R.left`); never removed.
    s: Shared<Node<V>>,
    smr: Arc<S>,
}

// SAFETY: [INV-07] all node access goes through `Shared`/`Atomic` words under
// an SMR handle, and the payload type is required `Send + Sync`.
unsafe impl<S: Smr, V: Send + Sync> Send for NmTree<S, V> {}
// SAFETY: [INV-07] see above.
unsafe impl<S: Smr, V: Send + Sync> Sync for NmTree<S, V> {}

/// A protected node: the packed word plus the slot (refno) guarding it.
/// `slot == None` for the `R`/`S` sentinels, which are never reclaimed.
struct Prot<V> {
    node: Shared<Node<V>>,
    slot: Option<u8>,
}

impl<V> Clone for Prot<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for Prot<V> {}

/// Reference-counted pool of protection slots. Seek-record roles share
/// slots when they alias the same node; a slot is reusable once no role
/// holds it. This is how the rotating-role traversal keeps every recorded
/// node continuously protected without re-announcing (and re-fencing).
struct SlotPool {
    cnt: [u8; SLOTS_NEEDED],
}

impl SlotPool {
    fn new() -> Self {
        SlotPool { cnt: [0; SLOTS_NEEDED] }
    }

    /// Claims a currently unused slot.
    fn acquire(&mut self) -> u8 {
        for (i, c) in self.cnt.iter_mut().enumerate() {
            if *c == 0 {
                *c = 1;
                return i as u8;
            }
        }
        unreachable!("at most 5 of {SLOTS_NEEDED} slots are ever held")
    }

    /// `dst = src`, maintaining refcounts.
    fn assign<V>(&mut self, dst: &mut Prot<V>, src: Prot<V>) {
        if let Some(s) = src.slot {
            self.cnt[s as usize] += 1;
        }
        if let Some(s) = dst.slot {
            self.cnt[s as usize] -= 1;
        }
        *dst = src;
    }

    /// Drops one reference to `p`'s slot.
    fn release<V>(&mut self, p: Prot<V>) {
        if let Some(s) = p.slot {
            self.cnt[s as usize] -= 1;
        }
    }
}

/// The seek record (paper Listing 8): four protected nodes plus the edge
/// words needed for subsequent CASes.
struct SeekRecord<V> {
    ancestor: Prot<V>,
    successor: Prot<V>,
    parent: Prot<V>,
    leaf: Prot<V>,
    /// Edge word ancestor→successor at discovery time (CAS expectation for
    /// the cleanup swing).
    successor_edge: Shared<Node<V>>,
    /// Edge word parent→leaf at discovery time (CAS expectation for insert
    /// and for delete's flag injection).
    leaf_edge: Shared<Node<V>>,
}

impl<S: Smr, V: Send + Sync + 'static> NmTree<S, V> {
    /// Navigates from the root to the leaf where `key`'s search terminates
    /// (Listing 9), maintaining the MP search interval along the way.
    /// All four record roles remain protected until the next seek/`end_op`.
    // PROTECTION: caller — seek runs inside the caller's start_op/end_op
    // span; every deref below is of a slot-protected read made in this op.
    fn seek(&self, h: &mut S::Handle, key: u64) -> SeekRecord<V> {
        'restart: loop {
            let pool = &mut SlotPool::new();
            let mut ancestor = Prot { node: self.root, slot: None };
            let mut successor = Prot { node: self.s, slot: None };
            let mut parent = Prot { node: self.s, slot: None };
            // SAFETY: [INV-01] S is a sentinel, never reclaimed.
            let s_node = unsafe { self.s.deref() }.data();
            let lslot = pool.acquire();
            // parent (S) → leaf edge.
            let mut parent_edge = h.read(&s_node.left, lslot as usize);
            let mut leaf = Prot { node: parent_edge.unmarked(), slot: Some(lslot) };
            let mut successor_edge = parent_edge;

            // current = leaf.left (unconditionally: the subtree root under S
            // always carries key ∞₀, greater than every client key).
            if is_dead(parent_edge) {
                continue 'restart;
            }
            let cslot = pool.acquire();
            // SAFETY: [INV-01] leaf protected under lslot.
            let mut current_edge =
                h.read(&unsafe { leaf.node.deref() }.data().left, cslot as usize);
            let mut current = Prot { node: current_edge.unmarked(), slot: Some(cslot) };

            while !current.node.is_null() {
                h.record_node_traversed();
                if parent_edge.mark() & TAG == 0 {
                    pool.assign(&mut ancestor, parent);
                    pool.assign(&mut successor, leaf);
                    successor_edge = parent_edge;
                }
                pool.assign(&mut parent, leaf);
                pool.assign(&mut leaf, current);
                parent_edge = current_edge;

                // SAFETY: [INV-01] current protected under its slot.
                let cur_node = unsafe { current.node.deref() }.data();
                let next_slot = pool.acquire();
                let next_edge = if key < cur_node.key {
                    h.update_upper_bound(current.node);
                    h.read(&cur_node.left, next_slot as usize)
                } else {
                    h.update_lower_bound(current.node);
                    h.read(&cur_node.right, next_slot as usize)
                };
                current_edge = next_edge;
                let next = Prot { node: next_edge.unmarked(), slot: Some(next_slot) };
                pool.release(current);
                current = next;
            }
            // A severed (dead) edge unmarks to null and ends the descent
            // here: the node we stood on was detached and retired, so the
            // record is garbage. Start over.
            if is_dead(current_edge) {
                continue 'restart;
            }
            pool.release(current);
            return SeekRecord {
                ancestor,
                successor,
                parent,
                leaf,
                successor_edge,
                leaf_edge: parent_edge,
            };
        }
    }

    /// The cleanup routine (Natarajan–Mittal): given a seek record whose
    /// parent has a flagged child edge, tag the sibling edge and swing the
    /// ancestor's edge from the successor to the sibling — detaching the
    /// parent, the deleted leaf, and any chained tagged region. The swing
    /// winner retires the whole detached region exactly once.
    ///
    /// Returns true iff this call performed the swing.
    // PROTECTION: caller — runs inside the caller's start_op span; all seek
    // record roles stay protected under their slots until the next seek.
    fn cleanup(&self, h: &mut S::Handle, key: u64, sr: &SeekRecord<V>) -> bool {
        // SAFETY: [INV-01] all record roles are protected (or sentinels).
        let parent_node = unsafe { sr.parent.node.deref() }.data();
        let (child_field, sibling_field) = if key < parent_node.key {
            (&parent_node.left, &parent_node.right)
        } else {
            (&parent_node.right, &parent_node.left)
        };
        let mut sibling_field = sibling_field;
        let child_edge = child_field.load(Ordering::Acquire);
        if child_edge.mark() & FLAG == 0 {
            // The flag is on the other side: we are helping a deletion of
            // the sibling-side leaf.
            sibling_field = child_field;
        }
        // Tag the sibling edge — it can never change again.
        let prev = sibling_field.fetch_or_mark(TAG, Ordering::AcqRel);
        let sibling = prev.unmarked();
        // New ancestor edge: sibling subtree, FLAG preserved (the sibling
        // leaf may itself be under deletion), TAG cleared.
        let new_edge = sibling.with_mark(prev.mark() & FLAG);

        // SAFETY: [INV-01] ancestor protected by the seek record (or root).
        let ancestor_node = unsafe { sr.ancestor.node.deref() }.data();
        let anc_field = if key < ancestor_node.key {
            &ancestor_node.left
        } else {
            &ancestor_node.right
        };
        let expected = sr.successor_edge.unmarked();
        if anc_field
            .compare_exchange(expected, new_edge, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // SAFETY: [INV-04] the swing detached the region rooted at
            // successor (minus the sibling subtree); we are its unique owner.
            unsafe { self.retire_region(h, sr.successor.node, sibling) };
            true
        } else {
            false
        }
    }

    /// Retires every node in the detached region: the tagged path from
    /// `region_root` down to the deletion parent plus the flagged leaves
    /// hanging off it — everything reachable without entering `keep`.
    ///
    /// Each node's outgoing edges are severed (overwritten with [`dead`])
    /// *before* the node is retired. The region's edges would otherwise be
    /// frozen forever, and a reader standing on a region node it protected
    /// in time could follow an unchanged edge to a child that was already
    /// reclaimed: hazard-style revalidation re-reads the edge and sees the
    /// same word, and an interval/era reservation admits any node whose
    /// birth its announced bound covers — both are only sound when retired
    /// nodes stop being reachable. Severing restores that: a reader whose
    /// protection landed before the sever is visible to every reclaimer
    /// scan that could free the child (the sever precedes the retire), and
    /// a reader that arrives after it reads [`dead`] and restarts.
    ///
    /// # Safety
    /// Must be called exactly once per successful cleanup swing, by the
    /// winning thread. The region is unreachable and its edges are all
    /// marked (immutable to every other writer).
    // SAFETY: [INV-11] unsafe fn: contract stated in `# Safety` above,
    // discharged at the single call site in `cleanup`.
    // PROTECTION: caller — the region is detached and we are its unique
    // retirer; its nodes cannot be reclaimed before the retires below.
    unsafe fn retire_region(
        &self,
        h: &mut S::Handle,
        region_root: Shared<Node<V>>,
        keep: Shared<Node<V>>,
    ) {
        let mut stack = vec![region_root.unmarked()];
        while let Some(n) = stack.pop() {
            if n.as_raw() == keep.as_raw() {
                continue; // the surviving sibling subtree
            }
            // SAFETY: [INV-01] region nodes cannot be reclaimed before *we*
            // retire them — we are the unique retirer.
            let node = unsafe { n.deref() }.data();
            let l = node.left.load(Ordering::Acquire);
            let r = node.right.load(Ordering::Acquire);
            node.left.store(dead(), Ordering::Release);
            node.right.store(dead(), Ordering::Release);
            if !l.is_null() {
                stack.push(l.unmarked());
            }
            if !r.is_null() {
                stack.push(r.unmarked());
            }
            // SAFETY: [INV-04] detached region: each node retired exactly
            // once by the unique swing winner (this fn's contract).
            unsafe { h.retire(n) };
        }
    }

    /// In-order key collection. Requires `&mut self`: callers must be
    /// quiescent (no concurrent operations), which exclusive access
    /// enforces statically. Test/diagnostic helper.
    // PROTECTION: quiescent — `&mut self` rules out concurrent operations,
    // so derefs need no pin span.
    pub fn collect_quiescent(&mut self) -> Vec<u64> {
        let mut out = Vec::new();
        // SAFETY: [INV-03] exclusive access; no mutation in flight.
        let s_node = unsafe { self.s.deref() }.data();
        let sub = s_node.left.load(Ordering::Acquire);
        let mut stack = vec![sub.unmarked()];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            // SAFETY: [INV-03] exclusive access; the tree is quiescent.
            let node = unsafe { n.deref() }.data();
            // ORDERING: reason = quiescent — `&mut self` enforces quiescence;
            // these loads have no concurrent writer to race with.
            let l = node.left.load(Ordering::Relaxed);
            let r = node.right.load(Ordering::Relaxed); // ORDERING: reason = quiescent — as above.
            if l.is_null() && r.is_null() {
                if node.key < INF0 {
                    out.push(node.key);
                }
            } else {
                stack.push(l.unmarked());
                stack.push(r.unmarked());
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of client keys (quiescent test helper).
    pub fn len_quiescent(&mut self) -> usize {
        self.collect_quiescent().len()
    }
}

impl<S: Smr, V: Send + Sync + Default + 'static> ConcurrentSet<S> for NmTree<S, V> {
    fn new(smr: &Arc<S>) -> Self {
        let mut h = smr.register();
        // Paper §5.3: ∞₀ gets max_index; the other initial nodes USE_HP.
        let leaf0 = h.alloc_with_index(Node::leaf(INF0, V::default()), u32::MAX - 1);
        let leaf1 = h.alloc_with_index(Node::leaf(INF1, V::default()), USE_HP);
        let leaf2 = h.alloc_with_index(Node::leaf(INF2, V::default()), USE_HP);
        let s = h.alloc_with_index(
            Node {
                key: INF1,
                value: V::default(),
                left: Atomic::new(leaf0),
                right: Atomic::new(leaf1),
            },
            USE_HP,
        );
        let root = h.alloc_with_index(
            Node {
                key: INF2,
                value: V::default(),
                left: Atomic::new(s),
                right: Atomic::new(leaf2),
            },
            USE_HP,
        );
        NmTree { root, s, smr: smr.clone() }
    }

    fn insert(&self, h: &mut S::Handle, key: u64) -> bool {
        self.insert_kv(h, key, V::default())
    }

    fn remove(&self, h: &mut S::Handle, key: u64) -> bool {
        self.remove_inner(h, key)
    }

    fn contains(&self, h: &mut S::Handle, key: u64) -> bool {
        h.start_op();
        let sr = self.seek(h, key);
        // SAFETY: [INV-01] leaf protected by the seek record.
        let found = unsafe { sr.leaf.node.deref() }.data().key == key;
        h.end_op();
        found
    }

    fn name() -> &'static str {
        "nmtree"
    }
}

impl<S: Smr, V: Send + Sync + 'static> NmTree<S, V> {
    /// Adds `key` mapped to `value`; returns `false` (dropping the nodes)
    /// if the key is already present. The map flavor of `insert`.
    pub fn insert_kv(&self, h: &mut S::Handle, key: u64, value: V) -> bool
    where
        V: Default, // internal routing nodes carry a placeholder value
    {
        assert!(key < INF0, "key space reserved for tree sentinels");
        h.start_op();
        let mut value = value;
        loop {
            let sr = self.seek(h, key);
            // SAFETY: [INV-01] leaf protected by the seek record.
            let leaf_node = unsafe { sr.leaf.node.deref() };
            let leaf_key = leaf_node.data().key;
            if leaf_key == key {
                h.end_op();
                return false;
            }
            // Allocate the new leaf with the search interval's midpoint
            // index, and give the routing internal the same index (they are
            // adjacent in key order).
            let new_leaf = h.alloc(Node::leaf(key, value));
            // SAFETY: [INV-02] just allocated, exclusively ours.
            let leaf_idx = unsafe { new_leaf.deref() }.index();
            let leaf_edge_clean = sr.leaf_edge.unmarked();
            let (lc, rc) =
                if key < leaf_key { (new_leaf, leaf_edge_clean) } else { (leaf_edge_clean, new_leaf) };
            let internal = h.alloc_with_index(
                Node {
                    key: key.max(leaf_key),
                    value: V::default(),
                    left: Atomic::new(lc),
                    right: Atomic::new(rc),
                },
                leaf_idx,
            );

            // SAFETY: [INV-01] parent protected by the seek record (or S).
            let parent_node = unsafe { sr.parent.node.deref() }.data();
            let edge =
                if key < parent_node.key { &parent_node.left } else { &parent_node.right };
            match edge.compare_exchange(
                leaf_edge_clean,
                internal,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    h.end_op();
                    return true;
                }
                Err(actual) => {
                    // SAFETY: [INV-03] never published; recover the value
                    // for the retry.
                    unsafe {
                        value = new_leaf.take_owned().value;
                        internal.drop_owned();
                    }
                    // If the edge still leads to our leaf but is marked, a
                    // deletion is pending there: help it finish.
                    if actual.as_raw() == sr.leaf.node.as_raw() && actual.mark() != 0 {
                        self.cleanup(h, key, &sr);
                    }
                }
            }
        }
    }

    /// Returns a copy of the value stored under `key`, if present; cloned
    /// while the leaf is protected.
    pub fn get(&self, h: &mut S::Handle, key: u64) -> Option<V>
    where
        V: Clone,
    {
        h.start_op();
        let sr = self.seek(h, key);
        // SAFETY: [INV-01] leaf protected by the seek record.
        let leaf = unsafe { sr.leaf.node.deref() }.data();
        let out = if leaf.key == key { Some(leaf.value.clone()) } else { None };
        h.end_op();
        out
    }

    fn remove_inner(&self, h: &mut S::Handle, key: u64) -> bool {
        h.start_op();
        let mut injected = false;
        let mut victim: Shared<Node<V>> = Shared::null();
        loop {
            let sr = self.seek(h, key);
            if !injected {
                // INJECTION mode: flag the parent→leaf edge.
                // SAFETY: [INV-01] record roles protected.
                let leaf_key = unsafe { sr.leaf.node.deref() }.data().key;
                if leaf_key != key {
                    h.end_op();
                    return false;
                }
                // SAFETY: [INV-01] parent protected by the seek record.
                let parent_node = unsafe { sr.parent.node.deref() }.data();
                let edge =
                    if key < parent_node.key { &parent_node.left } else { &parent_node.right };
                let expected = sr.leaf_edge.unmarked();
                match edge.compare_exchange(
                    expected,
                    expected.with_mark(FLAG),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        injected = true;
                        victim = sr.leaf.node;
                        if self.cleanup(h, key, &sr) {
                            h.end_op();
                            return true;
                        }
                    }
                    Err(actual) => {
                        if actual.as_raw() == sr.leaf.node.as_raw() && actual.mark() != 0 {
                            // Another operation is deleting this leaf: help.
                            self.cleanup(h, key, &sr);
                        }
                    }
                }
            } else {
                // CLEANUP mode: our flag is planted; finish (or observe that
                // a helper finished) the physical removal.
                if sr.leaf.node.as_raw() != victim.as_raw() {
                    h.end_op();
                    return true; // a helper completed the removal
                }
                if self.cleanup(h, key, &sr) {
                    h.end_op();
                    return true;
                }
            }
        }
    }

}

impl<S: Smr, V> Drop for NmTree<S, V> {
    // PROTECTION: exclusive — `&mut self` in drop: no handle can still hold a
    // protected reference, so the walk needs no pin span.
    fn drop(&mut self) {
        // Exclusive access: free the whole tree.
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            // SAFETY: [INV-03] exclusive during drop; nodes freed once
            // (tree shape: every node has a single parent edge).
            let node = unsafe { n.deref() }.data();
            // ORDERING: reason = exclusive — teardown under `&mut self` rules
            // out concurrent writers, so the Relaxed loads cannot race.
            stack.push(node.left.load(Ordering::Relaxed).unmarked());
            stack.push(node.right.load(Ordering::Relaxed).unmarked()); // ORDERING: reason = exclusive — as above.
            // SAFETY: [INV-03] exclusive access; each node freed exactly once.
            unsafe { n.drop_owned() };
        }
        let _ = &self.smr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_smr::schemes::{Ebr, He, Hp, Ibr, Mp};
    use mp_smr::Config;

    fn cfg() -> Config {
        Config::default().with_max_threads(8).with_empty_freq(4).with_epoch_freq(8)
    }

    fn smoke<S: Smr>() {
        let smr = S::new(cfg());
        let mut tree: NmTree<S> = NmTree::new(&smr);
        let mut h = smr.register();
        assert!(!tree.contains(&mut h, 10));
        for k in [10u64, 5, 20, 1, 7, 15, 30] {
            assert!(tree.insert(&mut h, k), "insert {k}");
        }
        assert!(!tree.insert(&mut h, 10));
        for k in [10u64, 5, 20, 1, 7, 15, 30] {
            assert!(tree.contains(&mut h, k), "contains {k}");
        }
        assert!(!tree.contains(&mut h, 2));
        assert!(tree.remove(&mut h, 5));
        assert!(!tree.remove(&mut h, 5));
        assert!(!tree.contains(&mut h, 5));
        drop(h);
        assert_eq!(tree.collect_quiescent(), vec![1, 7, 10, 15, 20, 30]);
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Mp>();
        smoke::<Hp>();
        smoke::<Ebr>();
        smoke::<He>();
        smoke::<Ibr>();
    }

    // PROTECTION: quiescent — single-threaded test; nothing is retired.
    #[test]
    fn initial_state_matches_figure_1() {
        let smr = Mp::new(cfg());
        let tree = NmTree::<Mp>::new(&smr);
        // SAFETY: [INV-12] test-controlled: quiescent, nothing retired.
        unsafe {
            let r = tree.root.deref();
            assert_eq!(r.data().key, INF2);
            let s = r.data().left.load(Ordering::Relaxed);
            assert_eq!(s.as_raw(), tree.s.as_raw());
            let s_node = s.deref();
            assert_eq!(s_node.data().key, INF1);
            let l0 = s_node.data().left.load(Ordering::Relaxed).deref();
            assert_eq!(l0.data().key, INF0);
            assert_eq!(l0.index(), u32::MAX - 1, "∞₀ leaf gets max_index (§5.3)");
            let l1 = s_node.data().right.load(Ordering::Relaxed).deref();
            assert_eq!(l1.data().key, INF1);
            assert_eq!(l1.index(), USE_HP);
            let l2 = r.data().right.load(Ordering::Relaxed).deref();
            assert_eq!(l2.data().key, INF2);
        }
    }

    #[test]
    fn sequential_model_check_mp() {
        use mp_util::RngExt;
        let smr = Mp::new(cfg());
        let mut tree: NmTree<Mp> = NmTree::new(&smr);
        let mut h = smr.register();
        let mut model = std::collections::BTreeSet::new();
        let mut rng = mp_util::rng();
        for _ in 0..4000 {
            let key = rng.random_range(0..128u64);
            match rng.random_range(0..3) {
                0 => assert_eq!(tree.insert(&mut h, key), model.insert(key), "insert {key}"),
                1 => assert_eq!(tree.remove(&mut h, key), model.remove(&key), "remove {key}"),
                _ => assert_eq!(
                    tree.contains(&mut h, key),
                    model.contains(&key),
                    "contains {key}"
                ),
            }
        }
        drop(h);
        assert_eq!(tree.collect_quiescent(), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_stress_mp() {
        concurrent_stress::<Mp>();
    }

    #[test]
    fn concurrent_stress_hp() {
        concurrent_stress::<Hp>();
    }

    #[test]
    fn concurrent_stress_he() {
        concurrent_stress::<He>();
    }

    fn concurrent_stress<S: Smr>() {
        use mp_util::RngExt;
        let smr = S::new(cfg());
        let tree = Arc::new(NmTree::<S>::new(&smr));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let tree = tree.clone();
                let smr = smr.clone();
                s.spawn(move || {
                    let mut h = smr.register();
                    let mut rng = mp_util::rng();
                    for i in 0..2500usize {
                        let key = rng.random_range(0..64u64);
                        match (i + t) % 3 {
                            0 => {
                                tree.insert(&mut h, key);
                            }
                            1 => {
                                tree.remove(&mut h, key);
                            }
                            _ => {
                                tree.contains(&mut h, key);
                            }
                        }
                    }
                });
            }
        });
        let mut tree = Arc::into_inner(tree).expect("all workers joined");
        let keys = tree.collect_quiescent();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
    }

    #[test]
    fn delete_then_reinsert_same_key() {
        let smr = Mp::new(cfg());
        let mut tree: NmTree<Mp> = NmTree::new(&smr);
        let mut h = smr.register();
        for round in 0..50 {
            assert!(tree.insert(&mut h, 42), "round {round}");
            assert!(tree.remove(&mut h, 42), "round {round}");
        }
        assert!(!tree.contains(&mut h, 42));
        drop(h);
        assert!(tree.collect_quiescent().is_empty());
    }
}
