//! Fraser's nonblocking skip list (2004), paper §5.2.
//!
//! The skip list is a tower of Michael-style sorted linked lists, ordered
//! by containment: every node is linked at level 0, and each higher level
//! skips geometrically more nodes. `find` navigates top-down, producing
//! per-level `(pred, succ)` pairs; `insert` links bottom-up; `remove` marks
//! every level's next pointer top-down and the winner of the level-0 mark
//! physically unlinks (via repeated `find`) and retires the node.
//!
//! MP integration (§5.2): searches update the MP search interval exactly as
//! in the single list — each rightward step updates the lower bound, each
//! descent point updates the upper bound — and two protection slots are
//! used per level (alternating pred/curr), matching the paper's slot
//! budget of "two MPs per level".

use std::sync::Arc;
use std::sync::atomic::Ordering;

use mp_smr::{Atomic, Shared, Smr, SmrHandle, Telemetry};

use crate::ConcurrentSet;

/// Maximum tower height. With p = 1/2, level occupancy halves per level, so
/// 20 levels comfortably cover the paper's 500 K-element experiments.
pub const MAX_HEIGHT: usize = 20;

/// Protection slots a skip-list operation may use: three per level
/// (rotating pred/curr/next roles, so each traversed node costs exactly one
/// protected read) plus a scratch slot for `remove`'s re-reads and a pin
/// slot for the not-yet-fully-linked insert node.
pub const SLOTS_NEEDED: usize = 3 * MAX_HEIGHT + 2;

/// Deleted-bit on a level's next pointer.
const DELETED: u64 = 0b01;

/// Scratch slot for transient next-pointer reads outside `find`.
const SCRATCH: usize = 3 * MAX_HEIGHT;
/// Pin slot keeping an inserter's own node protected while it links the
/// upper levels (a concurrent remove may otherwise retire and free it).
const PIN: usize = 3 * MAX_HEIGHT + 1;

/// The three rotating slots of `level`.
#[inline]
fn slot(level: usize, role: usize) -> usize {
    3 * level + role
}

/// Skip-list node payload: immutable key, optional value, tower of links.
pub struct Node<V = ()> {
    key: u64,
    value: V,
    height: usize,
    next: [Atomic<Node<V>>; MAX_HEIGHT],
}

impl<V> Node<V> {
    fn new(key: u64, value: V, height: usize) -> Self {
        Node { key, value, height, next: std::array::from_fn(|_| Atomic::null()) }
    }
}

/// Fraser's lock-free skip-list set.
///
/// ```
/// use mp_smr::{Config, Smr, schemes::Mp};
/// use mp_ds::{ConcurrentSet, SkipList, skiplist::SLOTS_NEEDED};
///
/// let smr = Mp::new(Config::default().with_slots_per_thread(SLOTS_NEEDED));
/// let sl = SkipList::<Mp>::new(&smr);
/// let mut h = smr.register();
/// assert!(sl.insert(&mut h, 3));
/// assert!(sl.contains(&mut h, 3));
/// assert!(sl.remove(&mut h, 3));
/// ```
pub struct SkipList<S: Smr, V = ()> {
    head: Shared<Node<V>>,
    tail: Shared<Node<V>>,
    smr: Arc<S>,
}

// SAFETY: [INV-07] all node access goes through `Shared`/`Atomic` words under
// an SMR handle, and the payload type is required `Send + Sync`.
unsafe impl<S: Smr, V: Send + Sync> Send for SkipList<S, V> {}
// SAFETY: [INV-07] see above.
unsafe impl<S: Smr, V: Send + Sync> Sync for SkipList<S, V> {}

/// Per-level predecessor/successor pairs produced by `find`. Each level's
/// pair stays protected by that level's two slots until the next `find` or
/// `end_op`.
struct FindResult<V> {
    preds: [Shared<Node<V>>; MAX_HEIGHT],
    succs: [Shared<Node<V>>; MAX_HEIGHT],
    found: bool,
}

/// Pseudorandom tower height with p = 1/2 from a thread-local xorshift
/// (allocation-free, no external RNG on the hot path).
fn random_height() -> usize {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0) };
    }
    STATE.with(|s| {
        let mut x = s.get();
        if x == 0 {
            // First use on this thread: derive a distinct stream from the
            // TLS slot's address.
            // CAST-OK: the address is a seed (entropy only), never decoded.
            x = 0x9e37_79b9_7f4a_7c15 ^ (s as *const _ as u64);
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    })
}

impl<S: Smr, V: Send + Sync + 'static> SkipList<S, V> {
    /// Top-down search. Returns protected per-level (pred, succ) pairs with
    /// `pred.key < key ≤ succ.key` at every level, splicing marked nodes
    /// encountered along the way. Maintains the MP search interval across
    /// the whole descent (§5.2).
    // PROTECTION: caller — find runs inside the caller's start_op/end_op
    // span; every deref below is of a slot-protected read made in this op.
    fn find(&self, h: &mut S::Handle, key: u64) -> FindResult<V> {
        'retry: loop {
            let mut preds = [self.head; MAX_HEIGHT];
            let mut succs = [self.tail; MAX_HEIGHT];
            // pred enters each level protected either as a sentinel or by an
            // upper level's slot, which lower levels never overwrite.
            let mut pred = self.head;
            for level in (0..MAX_HEIGHT).rev() {
                // Three-slot rotation (as in the list seek): one protected
                // read per traversed node. Each level owns its three slots,
                // so the recorded (pred, succ) pair stays protected while
                // lower levels — and the caller — do further reads.
                let (mut pred_s, mut curr_s, mut next_s) =
                    (slot(level, 0), slot(level, 1), slot(level, 2));
                // SAFETY: [INV-01] pred is protected (sentinel or upper-level slot).
                let mut pred_node = unsafe { pred.deref() }.data();
                let mut curr = h.read(&pred_node.next[level], curr_s);
                if curr.mark() != 0 {
                    continue 'retry; // pred deleted under us
                }
                loop {
                    h.record_node_traversed();
                    debug_assert!(!curr.is_null(), "tail bounds every level");
                    // SAFETY: [INV-01] curr protected under curr_s.
                    let curr_node = unsafe { curr.deref() }.data();
                    let next = h.read(&curr_node.next[level], next_s);
                    if next.mark() != 0 {
                        // curr deleted at this level: splice it out. The
                        // level-0 marker retires, not us.
                        let next_clean = next.unmarked();
                        if pred_node.next[level]
                            .compare_exchange(
                                curr,
                                next_clean,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_err()
                        {
                            continue 'retry;
                        }
                        // next_clean (protected under next_s) becomes curr.
                        std::mem::swap(&mut curr_s, &mut next_s);
                        curr = next_clean;
                        continue;
                    }
                    if curr_node.key < key {
                        h.update_lower_bound(curr);
                        // Advance right: rotate roles, no extra read.
                        pred = curr;
                        pred_node = curr_node;
                        curr = next;
                        let recycled = pred_s;
                        pred_s = curr_s;
                        curr_s = next_s;
                        next_s = recycled;
                        continue;
                    }
                    // Descend: record this level's pair; its slots are never
                    // reused below this level or by the caller.
                    h.update_upper_bound(curr);
                    preds[level] = pred;
                    succs[level] = curr;
                    break;
                }
            }
            let found = {
                // SAFETY: [INV-01] succs[0] protected by level 0's slot.
                unsafe { succs[0].deref() }.data().key == key
            };
            return FindResult { preds, succs, found };
        }
    }

    /// Links `new` at levels `from..height`, re-finding on interference.
    /// Returns once linking is complete or the node was concurrently
    /// removed. `new` must be pinned under [`PIN`].
    // PROTECTION: caller — runs inside the caller's start_op span; `new` is
    // pinned under PIN and preds stay protected by the most recent find.
    fn link_upper_levels(
        &self,
        h: &mut S::Handle,
        new: Shared<Node<V>>,
        key: u64,
        mut r: FindResult<V>,
        height: usize,
    ) {
        let mut level = 1;
        while level < height {
            // SAFETY: [INV-01] new pinned under PIN.
            let new_node = unsafe { new.deref() }.data();
            let cur_fwd = new_node.next[level].load(Ordering::Acquire);
            if cur_fwd.mark() != 0 {
                return; // concurrently removed; stop linking
            }
            let succ = r.succs[level];
            // Point our forward pointer at succ before exposing the level.
            if cur_fwd != succ
                && new_node.next[level]
                    .compare_exchange(cur_fwd, succ, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
            {
                return; // marked concurrently
            }
            // SAFETY: [INV-01] pred protected by the most recent find.
            let pred_node = unsafe { r.preds[level].deref() }.data();
            if pred_node.next[level]
                .compare_exchange(succ, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                level += 1;
                continue;
            }
            // Interference: recompute the neighborhood and retry the level.
            r = self.find(h, key);
            if !r.found || r.succs[0] != new {
                return; // removed while linking
            }
        }
    }

    /// Adds `key` mapped to `value`; returns `false` (dropping the node)
    /// if the key is already present. The map flavor of `insert`.
    pub fn insert_kv(&self, h: &mut S::Handle, key: u64, value: V) -> bool {
        assert!(key < u64::MAX, "key space reserved for the tail sentinel");
        h.start_op();
        let height = random_height();
        let mut value = value;
        loop {
            let r = self.find(h, key);
            if r.found {
                h.end_op();
                return false;
            }
            // Midpoint index of the search interval find just maintained.
            let payload = Node::new(key, value, height);
            for (l, succ) in r.succs.iter().enumerate().take(height) {
                // ORDERING: reason = owned-store — the node is unpublished;
                // the level-0 AcqRel CAS below is what publishes these stores.
                payload.next[l].store(*succ, Ordering::Relaxed);
            }
            let new = h.alloc(payload);
            // Pin our node before publishing: a concurrent remove may retire
            // it as soon as it is reachable, but cannot reclaim it past this
            // protection. The cell is stack-local, so validation is trivial.
            let pin_cell = Atomic::new(new);
            let new = h.read(&pin_cell, PIN);

            // Level-0 link is the linearization point.
            // SAFETY: [INV-01] preds are protected by find (or sentinels).
            let pred0 = unsafe { r.preds[0].deref() }.data();
            if pred0
                .next[0]
                .compare_exchange(r.succs[0], new, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // SAFETY: [INV-03] never published; exclusively ours.
                // Recover the value for the next attempt.
                value = unsafe { new.take_owned() }.value;
                continue;
            }
            self.link_upper_levels(h, new, key, r, height);
            h.end_op();
            return true;
        }
    }

    /// Returns a copy of the value stored under `key`, if present; cloned
    /// while the node is protected.
    pub fn get(&self, h: &mut S::Handle, key: u64) -> Option<V>
    where
        V: Clone,
    {
        h.start_op();
        let r = self.find(h, key);
        let out = if r.found {
            // SAFETY: [INV-01] succs[0] protected by find until end_op.
            Some(unsafe { r.succs[0].deref() }.data().value.clone())
        } else {
            None
        };
        h.end_op();
        out
    }

    /// Collects all keys in order (test helper; not linearizable).
    pub fn collect(&self, h: &mut S::Handle) -> Vec<u64> {
        let mut out = Vec::new();
        h.start_op();
        let mut cursor = 0u64;
        loop {
            let r = self.find(h, cursor);
            // SAFETY: [INV-01] protected by find.
            let key = unsafe { r.succs[0].deref() }.data().key;
            if key == u64::MAX {
                break;
            }
            out.push(key);
            cursor = key + 1;
        }
        h.end_op();
        out
    }

    /// Number of live keys (test helper).
    pub fn len(&self, h: &mut S::Handle) -> usize {
        self.collect(h).len()
    }

    /// True if no client key is present (test helper).
    pub fn is_empty(&self, h: &mut S::Handle) -> bool {
        self.collect(h).is_empty()
    }
}

impl<S: Smr, V: Send + Sync + Default + 'static> ConcurrentSet<S> for SkipList<S, V> {
    fn new(smr: &Arc<S>) -> Self {
        let mut h = smr.register();
        // Sentinel indices per §5.2: head 0, tail max_index.
        let tail =
            h.alloc_with_index(Node::new(u64::MAX, V::default(), MAX_HEIGHT), u32::MAX - 1);
        let head_payload = Node::new(0, V::default(), MAX_HEIGHT);
        for l in 0..MAX_HEIGHT {
            // ORDERING: reason = owned-store — head is unpublished until the
            // constructor returns; it is handed out via &self afterwards.
            head_payload.next[l].store(tail, Ordering::Relaxed);
        }
        let head = h.alloc_with_index(head_payload, 0);
        SkipList { head, tail, smr: smr.clone() }
    }

    fn insert(&self, h: &mut S::Handle, key: u64) -> bool {
        self.insert_kv(h, key, V::default())
    }
    fn remove(&self, h: &mut S::Handle, key: u64) -> bool {
        h.start_op();
        let r = self.find(h, key);
        if !r.found {
            h.end_op();
            return false;
        }
        let victim = r.succs[0];
        // SAFETY: [INV-01] victim protected by find (level-0 slot, untouched below
        // until the unlink loop's finds, by which point we only compare
        // addresses and, as unique retirer, know it cannot be freed).
        let victim_node = unsafe { victim.deref() }.data();
        let height = victim_node.height;

        // Mark top-down, levels height-1 .. 1.
        for level in (1..height).rev() {
            loop {
                let next = h.read(&victim_node.next[level], SCRATCH);
                if next.mark() != 0 {
                    break;
                }
                if victim_node.next[level]
                    .compare_exchange(
                        next,
                        next.with_mark(DELETED),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }

        // The level-0 mark is the logical deletion; its winner retires.
        loop {
            let next = h.read(&victim_node.next[0], SCRATCH);
            if next.mark() != 0 {
                h.end_op();
                return false; // another thread won the deletion
            }
            if victim_node.next[0]
                .compare_exchange(
                    next,
                    next.with_mark(DELETED),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                break;
            }
        }

        // Physically unlink at every level (find splices marked nodes),
        // then retire. Compare identities — a same-key node may reappear.
        loop {
            let r = self.find(h, key);
            if !r.found || r.succs[0] != victim {
                break;
            }
        }
        // SAFETY: [INV-04] fully unlinked and we won the level-0 mark —
        // unique retirer.
        unsafe { h.retire(victim) };
        h.end_op();
        true
    }

    fn contains(&self, h: &mut S::Handle, key: u64) -> bool {
        h.start_op();
        let r = self.find(h, key);
        h.end_op();
        r.found
    }

    fn name() -> &'static str {
        "skiplist"
    }
}

impl<S: Smr, V> Drop for SkipList<S, V> {
    // PROTECTION: exclusive — `&mut self` in drop: no handle can still hold a
    // protected reference, so the walk needs no pin span.
    fn drop(&mut self) {
        // Exclusive access: walk level 0 and free everything.
        let mut curr = self.head;
        while !curr.is_null() {
            // SAFETY: [INV-03] exclusive during drop; each node freed once.
            let node = unsafe { curr.deref() }.data();
            // ORDERING: reason = exclusive — teardown under `&mut self` rules
            // out concurrent writers, so the Relaxed load cannot race.
            let next = node.next[0].load(Ordering::Relaxed).unmarked();
            // SAFETY: [INV-03] exclusive access; each node freed exactly once.
            unsafe { curr.drop_owned() };
            curr = next;
        }
        let _ = &self.smr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_smr::schemes::{Ebr, He, Hp, Ibr, Mp};
    use mp_smr::Config;

    fn cfg() -> Config {
        Config::default()
            .with_max_threads(8)
            .with_slots_per_thread(SLOTS_NEEDED)
            .with_empty_freq(4)
            .with_epoch_freq(8)
    }

    fn smoke<S: Smr>() {
        let smr = S::new(cfg());
        let sl: SkipList<S> = SkipList::new(&smr);
        let mut h = smr.register();
        assert!(sl.is_empty(&mut h));
        for k in [42u64, 7, 99, 3, 55] {
            assert!(sl.insert(&mut h, k));
        }
        assert!(!sl.insert(&mut h, 42));
        assert_eq!(sl.collect(&mut h), vec![3, 7, 42, 55, 99]);
        assert!(sl.contains(&mut h, 55));
        assert!(!sl.contains(&mut h, 56));
        assert!(sl.remove(&mut h, 42));
        assert!(!sl.remove(&mut h, 42));
        assert_eq!(sl.collect(&mut h), vec![3, 7, 55, 99]);
        assert_eq!(sl.len(&mut h), 4);
    }

    #[test]
    fn smoke_all_schemes() {
        smoke::<Mp>();
        smoke::<Hp>();
        smoke::<Ebr>();
        smoke::<He>();
        smoke::<Ibr>();
    }

    #[test]
    fn random_height_distribution() {
        let mut counts = [0usize; MAX_HEIGHT + 1];
        for _ in 0..10_000 {
            let ht = random_height();
            assert!((1..=MAX_HEIGHT).contains(&ht));
            counts[ht] += 1;
        }
        assert!(counts[1] > counts[3], "geometric decay expected");
    }

    #[test]
    fn sequential_model_check_mp() {
        use mp_util::RngExt;
        let smr = Mp::new(cfg());
        let sl: SkipList<Mp> = SkipList::new(&smr);
        let mut h = smr.register();
        let mut model = std::collections::BTreeSet::new();
        let mut rng = mp_util::rng();
        for _ in 0..4000 {
            let key = rng.random_range(0..128u64);
            match rng.random_range(0..3) {
                0 => assert_eq!(sl.insert(&mut h, key), model.insert(key), "insert {key}"),
                1 => assert_eq!(sl.remove(&mut h, key), model.remove(&key), "remove {key}"),
                _ => {
                    assert_eq!(sl.contains(&mut h, key), model.contains(&key), "contains {key}")
                }
            }
        }
        assert_eq!(sl.collect(&mut h), model.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_stress_mp() {
        concurrent_stress::<Mp>();
    }

    #[test]
    fn concurrent_stress_hp() {
        concurrent_stress::<Hp>();
    }

    #[test]
    fn concurrent_stress_ibr() {
        concurrent_stress::<Ibr>();
    }

    fn concurrent_stress<S: Smr>() {
        use mp_util::RngExt;
        let smr = S::new(cfg());
        let sl = Arc::new(SkipList::<S>::new(&smr));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let sl = sl.clone();
                let smr = smr.clone();
                s.spawn(move || {
                    let mut h = smr.register();
                    let mut rng = mp_util::rng();
                    for i in 0..2500usize {
                        let key = rng.random_range(0..64u64);
                        match (i + t) % 3 {
                            0 => {
                                sl.insert(&mut h, key);
                            }
                            1 => {
                                sl.remove(&mut h, key);
                            }
                            _ => {
                                sl.contains(&mut h, key);
                            }
                        }
                    }
                });
            }
        });
        let mut h = smr.register();
        let keys = sl.collect(&mut h);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
    }

    #[test]
    fn tall_and_short_towers_coexist() {
        let smr = Mp::new(cfg());
        let sl: SkipList<Mp> = SkipList::new(&smr);
        let mut h = smr.register();
        for k in 0..200u64 {
            assert!(sl.insert(&mut h, k));
        }
        for k in (0..200u64).step_by(2) {
            assert!(sl.remove(&mut h, k));
        }
        let expect: Vec<u64> = (1..200).step_by(2).collect();
        assert_eq!(sl.collect(&mut h), expect);
    }
}
