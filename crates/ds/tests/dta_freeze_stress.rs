//! Regression stress for DTA's freezing recovery: a repeatedly parking
//! thread forces stall detection, freezing, zone replacement, and stamp
//! refresh, all under concurrent insert/remove/contains churn. This exact
//! scenario exposed three races in earlier revisions (use-after-free of a
//! falsely-neutralized thread's traversal, fixed-hop zones outrun by
//! concurrent insertions, and retire-stamp windows missing preempted
//! removers), so it stays as a permanent canary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mp_ds::DtaList;
use mp_smr::schemes::Dta;
use mp_smr::{Config, Smr, SmrHandle};

#[test]
fn freezing_survives_heavy_concurrency() {
    for _round in 0..30 {
        let cfg = Config::default()
            .with_max_threads(8)
            .with_empty_freq(4)
            .with_epoch_freq(8)
            .with_anchor_hops(4)
            .with_stall_patience(1); // aggressive: false positives guaranteed
        let smr = Dta::new(cfg);
        let list = Arc::new(DtaList::new(&smr));
        {
            let mut h = smr.register();
            for k in 0..200u64 {
                list.insert(&mut h, k);
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            // A thread that repeatedly parks mid-operation.
            {
                let (smr, list, stop) = (smr.clone(), list.clone(), stop.clone());
                s.spawn(move || {
                    let mut h = smr.register();
                    while !stop.load(Ordering::Relaxed) {
                        h.start_op();
                        list.contains(&mut h, 100);
                        h.start_op();
                        std::thread::sleep(Duration::from_micros(300));
                        h.end_op();
                    }
                });
            }
            // Churners.
            for t in 0..4u64 {
                let (smr, list, stop) = (smr.clone(), list.clone(), stop.clone());
                s.spawn(move || {
                    let mut h = smr.register();
                    let mut x = t + 1;
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 200;
                        match x % 3 {
                            0 => {
                                list.insert(&mut h, k);
                            }
                            1 => {
                                list.remove(&mut h, k);
                            }
                            _ => {
                                list.contains(&mut h, k);
                            }
                        }
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(60));
            stop.store(true, Ordering::Release);
        });
        // The list must remain a sorted duplicate-free set.
        let mut h = smr.register();
        let keys = list.collect(&mut h);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "list corrupted");
    }
}
