//! The key/value flavor of the structures (Definition 4.1 covers "a set or
//! key/value data type"): `insert_kv` / `get` on every structure, value
//! integrity under concurrent churn, and drop-correctness of owned values.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mp_ds::{ConcurrentSet, LinkedList, NmTree, SkipList};
use mp_smr::schemes::Mp;
use mp_smr::{Config, Smr};

fn cfg() -> Config {
    Config::default()
        .with_max_threads(8)
        .with_slots_per_thread(mp_ds::skiplist::SLOTS_NEEDED)
        .with_empty_freq(4)
        .with_epoch_freq(8)
}

#[test]
fn list_map_roundtrip() {
    let smr = Mp::new(cfg());
    let map: LinkedList<Mp, String> = LinkedList::new(&smr);
    let mut h = smr.register();
    assert!(map.insert_kv(&mut h, 3, "three".into()));
    assert!(map.insert_kv(&mut h, 1, "one".into()));
    assert!(!map.insert_kv(&mut h, 3, "shadow".into()), "duplicate key keeps old value");
    assert_eq!(map.get(&mut h, 3).as_deref(), Some("three"));
    assert_eq!(map.get(&mut h, 1).as_deref(), Some("one"));
    assert_eq!(map.get(&mut h, 2), None);
    assert!(map.remove(&mut h, 3));
    assert_eq!(map.get(&mut h, 3), None);
}

#[test]
fn skiplist_map_roundtrip() {
    let smr = Mp::new(cfg());
    let map: SkipList<Mp, u64> = SkipList::new(&smr);
    let mut h = smr.register();
    for k in 0..100u64 {
        assert!(map.insert_kv(&mut h, k, k * k));
    }
    for k in 0..100u64 {
        assert_eq!(map.get(&mut h, k), Some(k * k));
    }
    assert_eq!(map.get(&mut h, 100), None);
}

#[test]
fn nmtree_map_roundtrip() {
    let smr = Mp::new(cfg());
    let map: NmTree<Mp, u64> = NmTree::new(&smr);
    let mut h = smr.register();
    for k in [50u64, 25, 75, 10, 60, 90] {
        assert!(map.insert_kv(&mut h, k, !k));
    }
    for k in [50u64, 25, 75, 10, 60, 90] {
        assert_eq!(map.get(&mut h, k), Some(!k));
    }
    assert_eq!(map.get(&mut h, 51), None);
    assert!(map.remove(&mut h, 50));
    assert_eq!(map.get(&mut h, 50), None);
}

#[test]
fn values_survive_concurrent_churn() {
    // Every key's value is a function of the key; readers must never see a
    // torn or stale-freed value under insert/remove churn.
    let smr = Mp::new(cfg());
    let map: Arc<SkipList<Mp, u64>> = Arc::new(SkipList::new(&smr));
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let (smr, map) = (smr.clone(), map.clone());
            s.spawn(move || {
                let mut h = smr.register();
                let mut x = t + 1;
                for _ in 0..4000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 64;
                    map.remove(&mut h, k);
                    map.insert_kv(&mut h, k, k.wrapping_mul(0x9e37_79b9));
                }
            });
        }
        for _ in 0..2 {
            let (smr, map) = (smr.clone(), map.clone());
            s.spawn(move || {
                let mut h = smr.register();
                let mut x = 99u64;
                for _ in 0..6000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 64;
                    if let Some(v) = map.get(&mut h, k) {
                        assert_eq!(v, k.wrapping_mul(0x9e37_79b9), "torn value for {k}");
                    }
                }
            });
        }
    });
}

#[test]
fn owned_values_dropped_exactly_once() {
    // Heap-owning values: every inserted value's destructor must run
    // exactly once, whether the node is removed + reclaimed, dropped with
    // the structure, or its insert CAS lost the race.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    #[derive(Default)]
    struct Counted(#[allow(dead_code)] Option<Box<u64>>);
    impl Drop for Counted {
        fn drop(&mut self) {
            if self.0.is_some() {
                DROPS.fetch_add(1, Ordering::AcqRel);
            }
        }
    }
    let calls = {
        let smr = Mp::new(cfg());
        let map: Arc<LinkedList<Mp, Counted>> = Arc::new(LinkedList::new(&smr));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let (smr, map, total) = (smr.clone(), map.clone(), total.clone());
                s.spawn(move || {
                    let mut h = smr.register();
                    let mut x = t * 31 + 1;
                    for _ in 0..2000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 48;
                        if x % 2 == 0 {
                            // Whether this lands in the map, loses the CAS
                            // race, or is rejected as a duplicate, its value
                            // must be dropped exactly once overall.
                            map.insert_kv(&mut h, k, Counted(Some(Box::new(k))));
                            total.fetch_add(1, Ordering::AcqRel);
                        } else {
                            map.remove(&mut h, k);
                        }
                    }
                });
            }
        });
        total.load(Ordering::Acquire)
    }; // map + scheme dropped: every node reclaimed
    assert_eq!(
        DROPS.load(Ordering::Acquire),
        calls,
        "each insert_kv call's value drops exactly once (no leak, no double drop)"
    );
}
