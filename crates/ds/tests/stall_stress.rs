//! Stall-under-load safety for MP on every structure: while worker threads
//! churn, one thread repeatedly parks mid-operation *holding announced
//! margins* (it traverses before parking). This exercises the Listing 10
//! fast path's epoch interaction — the exact window where a node born
//! after the parked thread's epoch could be margin-covered yet invisible
//! to the reclaimer's filter (see mp.rs module docs for the deviation that
//! closes it).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mp_ds::{ConcurrentSet, LinkedList, NmTree, SkipList};
use mp_smr::schemes::Mp;
use mp_smr::{Config, Smr, SmrHandle};

fn stall_churn<D: ConcurrentSet<Mp>>() -> usize {
    let cfg = Config::default()
        .with_max_threads(8)
        .with_slots_per_thread(mp_ds::skiplist::SLOTS_NEEDED)
        .with_empty_freq(4)
        .with_epoch_freq(8); // fast epochs: maximal fallback churn
    let smr = Mp::new(cfg);
    let ds = Arc::new(D::new(&smr));
    {
        let mut h = smr.register();
        let mut x = 7u64;
        for _ in 0..300 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ds.insert(&mut h, x % 512);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Parker: traverses (announcing margins), then sleeps mid-op.
        {
            let (smr, ds, stop) = (smr.clone(), ds.clone(), stop.clone());
            s.spawn(move || {
                let mut h = smr.register();
                let mut x = 3u64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    // A real operation leaves the handle with announced
                    // margins; starting the next op and stalling keeps the
                    // epoch pinned while slots stay populated mid-window.
                    ds.contains(&mut h, x % 512);
                    h.start_op();
                    std::thread::sleep(Duration::from_micros(200));
                    h.end_op();
                }
            });
        }
        for t in 0..3u64 {
            let (smr, ds, stop) = (smr.clone(), ds.clone(), stop.clone());
            s.spawn(move || {
                let mut h = smr.register();
                let mut x = t * 13 + 1;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = x % 512;
                    match x % 3 {
                        0 => {
                            ds.insert(&mut h, k);
                        }
                        1 => {
                            ds.remove(&mut h, k);
                        }
                        _ => {
                            ds.contains(&mut h, k);
                        }
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(120));
        stop.store(true, Ordering::Release);
    });
    smr.retired_pending()
}

#[test]
fn mp_list_safe_and_bounded_under_repeated_stalls() {
    for _ in 0..5 {
        let pending = stall_churn::<LinkedList<Mp>>();
        assert!(pending < 5_000, "waste {pending} not bounded");
    }
}

#[test]
fn mp_skiplist_safe_and_bounded_under_repeated_stalls() {
    for _ in 0..5 {
        let pending = stall_churn::<SkipList<Mp>>();
        assert!(pending < 5_000, "waste {pending} not bounded");
    }
}

#[test]
fn mp_nmtree_safe_and_bounded_under_repeated_stalls() {
    for _ in 0..5 {
        let pending = stall_churn::<NmTree<Mp>>();
        assert!(pending < 5_000, "waste {pending} not bounded");
    }
}
