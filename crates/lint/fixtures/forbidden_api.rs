//! Negative fixture — pass 4 (forbidden): one hit per denied API.
//! Linted by `tests/lint_fixtures.rs` under the display path
//! `crates/smr/src/forbidden_api.rs` — non-test code, outside both the
//! `stats_mut` shim (`api.rs`) and the cast sanctum (`packed.rs`).

use core::mem;

pub fn leak_guard(guard: OpGuard) {
    mem::forget(guard); //~ ERROR[forbidden]: forgetting an OpGuard
}

pub fn raw_counters(api: &mut Api) -> &mut Stats {
    api.stats_mut() //~ ERROR[forbidden]: deprecated shim
}

pub fn unfinished() {
    todo!("wire this up") //~ ERROR[forbidden]: stub reachable at
}

pub fn pun(node_ptr: *const u8) -> usize {
    node_ptr as usize //~ ERROR[forbidden]: raw pointer-width
}
