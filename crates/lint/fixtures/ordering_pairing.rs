//! Negative fixture — pass 2 (ordering): pairing-graph *resolution* errors.
//! Linted by `tests/lint_fixtures.rs` under the display path
//! `crates/smr/src/node.rs`, so the real `crates/lint/ordering.rules`
//! classifications apply: `new`/`reclaim` are gated `retire_load` sites,
//! `live_nodes` is `counter`, and `Drop::drop` is `exempt`. Every
//! annotation head below parses — the errors come from resolving the
//! `pairs` references against the file's site table.

use core::sync::atomic::{AtomicU64, Ordering};

pub struct Hdr(AtomicU64);

impl Drop for Hdr {
    /// Classified `exempt`: a real site, but outside the protocol argument.
    fn drop(&mut self) {
        let _ = self.0.load(Ordering::Acquire);
    }
}

impl Hdr {
    /// Counter-role site: un-gated, but also not a legal pairing target.
    pub fn live_nodes(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn new(&self) {
        // ORDERING: pairs = node.rs:drop — cites the exempt Drop site.
        let _ = self.0.load(Ordering::Relaxed); //~ ERROR[ordering]: cites a site classified `exempt`
        // ORDERING: pairs = node.rs:reclaim — that fn holds only Relaxed
        // sites, so there is nothing to pair with.
        let _ = self.0.load(Ordering::Relaxed); //~ ERROR[ordering]: role-incompatible pair
    }

    pub fn reclaim(&self) {
        // ORDERING: pairs = node.rs:nonexistent_fn — no such site anywhere.
        let _ = self.0.load(Ordering::Relaxed); //~ ERROR[ordering]: dangling `pairs = node.rs:nonexistent_fn`
        // ORDERING: pairs = node.rs:live_nodes — cites the counter site.
        let _ = self.0.load(Ordering::Relaxed); //~ ERROR[ordering]: cites a site classified `counter`
    }
}
