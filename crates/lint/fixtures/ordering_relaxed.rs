//! Negative fixture — pass 2 (ordering): gated `Ordering::Relaxed` sites
//! and an unclassified site. Linted by `tests/lint_fixtures.rs` under the
//! display path `crates/smr/src/schemes/hp.rs`, so the *real*
//! `crates/lint/ordering.rules` classifications apply: `read` is a
//! `publish` site, `empty` is `retire_load`, and `mystery` matches no rule.

use core::sync::atomic::{AtomicUsize, Ordering};

pub struct Slot(AtomicUsize);

impl Slot {
    /// Bare Relaxed at a publish-role site: always an error.
    pub fn read(&self) -> usize {
        self.0.load(Ordering::Relaxed) //~ ERROR[ordering]: at a publish site
    }

    /// Justification present but names no pairing fence or structural
    /// reason, so it does not discharge the gate.
    pub fn empty(&self) -> usize {
        // ORDERING: because the scan squints hard enough.
        self.0.load(Ordering::Relaxed) //~ ERROR[ordering]: at a retire_load site
    }

    /// No rule classifies `mystery`: in a scoped file every site must be
    /// classified, whatever its ordering.
    pub fn mystery(&self) -> usize {
        self.0.load(Ordering::Acquire) //~ ERROR[ordering]: unclassified
    }
}
