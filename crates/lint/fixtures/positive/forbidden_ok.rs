//! Positive fixture — pass 4 (forbidden): escaped and exempt uses of the
//! denied APIs. Linted under `crates/smr/src/forbidden_ok.rs`; must be
//! clean.

use core::mem;

pub fn entropy(seed_addr: *const u8) -> usize {
    // CAST-OK: the address seeds a hash; it is never decoded back.
    seed_addr as usize
}

pub fn hand_off(buf: IoBuf) {
    // FORBID-OK: ownership moved to the device; drop must not run.
    mem::forget(buf);
}

#[cfg(test)]
mod tests {
    #[test]
    fn stubs_are_fine_in_test_spans() {
        if false {
            todo!("unreached in tests")
        }
    }
}
