//! Positive fixture — pass 2 (ordering): counter-role sites are not gated,
//! so bare Relaxed is fine. Linted under the display path
//! `crates/smr/src/schemes/common.rs`, whose `add`/`get` rules classify
//! these functions as `counter`; must be clean.

use core::sync::atomic::{AtomicU64, Ordering};

pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}
