//! Positive fixture — pass 2 (ordering): gated sites with strong orderings
//! or structured `// ORDERING:` annotations. Linted under the display path
//! `crates/smr/src/schemes/hp.rs` (publish/retire_load rules apply); must
//! be clean.

use core::sync::atomic::{AtomicUsize, Ordering};

pub struct Slot(AtomicUsize);

impl Slot {
    /// Strong ordering at a publish site needs no justification.
    pub fn read(&self) -> usize {
        self.0.load(Ordering::SeqCst)
    }

    /// Relaxed at a publish site, justified by citing the pairing site —
    /// `read` above carries the SeqCst this pairing needs, so the
    /// reference resolves within the file.
    pub fn start_op(&self) {
        // ORDERING: pairs = schemes/hp.rs:read — the validated SeqCst
        // re-read on the protect path orders this publish.
        self.0.store(1, Ordering::Relaxed);
    }

    /// Trailing-comment form of a structural reason.
    pub fn empty(&self) -> bool {
        self.0.load(Ordering::Relaxed) == 0 // ORDERING: reason = exclusive — caller holds &mut.
    }
}
