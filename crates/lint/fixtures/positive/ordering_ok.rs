//! Positive fixture — pass 2 (ordering): gated sites with strong orderings
//! or pairing-fence justifications. Linted under the display path
//! `crates/smr/src/schemes/hp.rs` (publish/retire_load rules apply); must
//! be clean.

use core::sync::atomic::{AtomicUsize, Ordering};

pub struct Slot(AtomicUsize);

impl Slot {
    /// Strong ordering at a publish site needs no justification.
    pub fn read(&self) -> usize {
        self.0.load(Ordering::SeqCst)
    }

    /// Relaxed at a publish site, justified by naming the pairing fence.
    pub fn start_op(&self) {
        // ORDERING: Release publish; pairs with the Acquire snapshot load
        // on the reclamation-scan side.
        self.0.store(1, Ordering::Relaxed);
    }

    /// Trailing-comment form of the justification.
    pub fn empty(&self) -> bool {
        self.0.load(Ordering::Relaxed) == 0 // ORDERING: exclusive — caller holds &mut.
    }
}
