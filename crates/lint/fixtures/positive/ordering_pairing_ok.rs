//! Positive fixture — pass 2 (ordering): resolvable pairing references.
//! Linted under the display path `crates/smr/src/schemes/mp.rs`, so the
//! real rules classify `read`/`announce_margin` as `publish` and `empty`
//! as `retire_load`; must be clean.

use core::sync::atomic::{fence, AtomicU64, Ordering};

pub struct Margin(AtomicU64);

impl Margin {
    /// The announcement: Release publish plus the SeqCst announce fence —
    /// the pairing target the fast path cites.
    pub fn announce_margin(&self) {
        self.0.store(1, Ordering::Release);
        fence(Ordering::SeqCst);
    }

    /// Fence-free fast path, justified by citing the announce fence.
    pub fn read(&self) -> u64 {
        // ORDERING: pairs = schemes/mp.rs:announce_margin — the announce
        // fence orders the margin publish before this validating load.
        self.0.load(Ordering::Relaxed)
    }

    /// Scan-side structural reason in trailing position.
    pub fn empty(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ORDERING: reason = quiescent — scan revalidates under its own fence.
    }
}
