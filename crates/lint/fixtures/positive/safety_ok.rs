//! Positive fixture — pass 1 (safety): every annotation form the audit
//! accepts. Linted under `crates/smr/src/safety_ok.rs`; must be clean.

pub struct Token(*const u8);

// SAFETY: [INV-07] the pointer is an opaque id on this type; it is never
// dereferenced, so handing the value across threads cannot alias memory.
unsafe impl Send for Token {}
// SAFETY: [INV-07] see above.
unsafe impl Sync for Token {}

/// # Safety
/// `p` must point to a live, aligned `u64`.
// SAFETY: [INV-11] unsafe fn: contract stated in `# Safety` above,
// discharged by every caller.
pub unsafe fn read_raw(p: *const u64) -> u64 {
    // SAFETY: [INV-11] forwarded from this fn's own contract.
    unsafe { *p }
}

pub fn cited_block(p: *const u64) -> u64 {
    // SAFETY: [INV-12] test-controlled: `p` is valid by construction here.
    unsafe { *p }
}

pub fn trailing_form(p: *const u64) -> u64 {
    unsafe { *p } // SAFETY: [INV-12] valid by construction.
}

pub fn multi_citation(p: *const u64) -> u64 {
    // SAFETY: [INV-03] exclusive access during teardown; see also [INV-04]
    // for the single-retire argument.
    unsafe { *p }
}
