//! Positive fixture — pass 3 (scope): every way a deref can be covered.
//! Linted under `crates/ds/src/scope_ok.rs`; must be clean.

pub fn lookup(smr: &Smr, shared: Shared<'_, Node>) -> u64 {
    let _op = smr.pin();
    shared.deref().key
}

pub fn lookup_handle(h: &Handle, shared: Shared<'_, Node>) -> u64 {
    let _g = h.start_op();
    shared.as_ref().unwrap().key
}

// PROTECTION: caller — runs inside the caller's start_op/end_op span.
pub fn helper(shared: Shared<'_, Node>) -> u64 {
    shared.deref().key
}
