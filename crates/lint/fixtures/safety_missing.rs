//! Negative fixture — pass 1 (safety): unsafe sites that fail the
//! invariant audit. Linted by `tests/lint_fixtures.rs` under the display
//! path `crates/smr/src/fixture_safety.rs`; every marked line must produce
//! exactly one `safety` diagnostic.
//!
//! Marker format (see `tests/lint_fixtures.rs`): tilde-ERROR, the pass
//! name in brackets, then a message substring, trailing the offending
//! line. Marker text deliberately avoids the linter's own gate keywords so
//! it cannot satisfy a pass by accident.

pub fn uncited(p: *const u64) -> u64 {
    unsafe { *p } //~ ERROR[safety]: without an attached
}

pub fn free_text(p: *const u64) -> u64 {
    // SAFETY: trust me, this one is fine.
    unsafe { *p } //~ ERROR[safety]: cites no
}

pub fn unknown_id(p: *const u64) -> u64 {
    // SAFETY: [INV-99] cites an invariant that was never declared.
    unsafe { *p } //~ ERROR[safety]: unknown invariant
}

pub struct Token(*const u8);

unsafe impl Send for Token {} //~ ERROR[safety]: without an attached
