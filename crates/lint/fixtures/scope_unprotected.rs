//! Negative fixture — pass 3 (scope): derefs with no protection span.
//! Linted by `tests/lint_fixtures.rs` under the display path
//! `crates/ds/src/scope_unprotected.rs`, which puts it inside the
//! protection-scope heuristic's territory.

pub fn lookup(shared: Shared<'_, Node>) -> u64 {
    let node = shared.deref(); //~ ERROR[scope]: no preceding pin()/start_op()
    node.key
}

pub fn peek(shared: Shared<'_, Node>) -> Option<u64> {
    shared.as_ref().map(|n| n.key) //~ ERROR[scope]: no preceding pin()/start_op()
}
