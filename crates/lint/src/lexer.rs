//! A minimal Rust lexer: just enough token structure for protocol linting.
//!
//! The linter never needs a full parse tree. Every pass works on a stream of
//! *items* — code tokens interleaved with comment trivia, each carrying a
//! line/column — plus a brace-matched map of function bodies. The lexer's
//! only hard job is classification: `unsafe` inside a string, a doc example,
//! or a `/* */` block must not count as an unsafe site, and `'a` must not
//! open a character literal.

/// A code token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `fn`, `Ordering`, …). Raw
    /// identifiers (`r#type`) are stored without the `r#` prefix.
    Ident(String),
    /// One punctuation character. Multi-character operators arrive as
    /// consecutive puncts (`::` is `:`,`:`), which is all the passes need.
    Punct(char),
    /// A lifetime (`'a`, `'static`); consumed as one token so the leading
    /// quote is never mistaken for a character literal.
    Lifetime,
    /// String / char / byte / numeric literal. Contents are dropped: no
    /// pass inspects literal bodies, they only must not leak tokens.
    Literal,
}

/// A comment, with its kind preserved so passes can accept annotations in
/// either plain (`//`) or doc (`///`, `//!`) position.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// One element of the lexed stream.
#[derive(Debug, Clone)]
pub enum Item {
    Tok { tok: Tok, line: u32, col: u32 },
    Comment(Comment),
}

impl Item {
    pub fn line(&self) -> u32 {
        match self {
            Item::Tok { line, .. } => *line,
            Item::Comment(c) => c.line,
        }
    }
}

/// A lexed file: the item stream plus the indices of code tokens (comments
/// excluded), in order — the passes scan `code`, and walk `items` when they
/// need surrounding trivia.
#[derive(Debug, Default)]
pub struct LexFile {
    pub items: Vec<Item>,
    /// Indices into `items` of every `Item::Tok`, in stream order.
    pub code: Vec<usize>,
}

impl LexFile {
    /// The token at code position `i` (None past the end).
    pub fn tok(&self, i: usize) -> Option<&Tok> {
        self.code.get(i).map(|&idx| match &self.items[idx] {
            Item::Tok { tok, .. } => tok,
            Item::Comment(_) => unreachable!("code indices point at tokens"),
        })
    }

    /// Line of the token at code position `i`.
    pub fn line_of(&self, i: usize) -> u32 {
        self.items[self.code[i]].line()
    }

    /// Column of the token at code position `i`.
    pub fn col_of(&self, i: usize) -> u32 {
        match &self.items[self.code[i]] {
            Item::Tok { col, .. } => *col,
            Item::Comment(_) => 0,
        }
    }

    /// True if the token at code position `i` is the identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        matches!(self.tok(i), Some(Tok::Ident(s)) if s == name)
    }

    /// True if the token at code position `i` is the punctuation `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        matches!(self.tok(i), Some(Tok::Punct(p)) if *p == c)
    }

    /// Comment text "attached" before code position `i`: walking backward
    /// through the stream, collect every comment until a statement/block
    /// boundary token (`;`, `{`, `}`) or the file start. Plain tokens in
    /// between (attributes, `pub`, `let x =`, …) are skipped, so the
    /// annotation may sit above the whole statement or item:
    ///
    /// ```text
    /// // SAFETY: [INV-01] …
    /// #[inline]
    /// pub unsafe fn f() { … }
    /// ```
    pub fn attached_comment(&self, code_i: usize) -> String {
        let mut out = Vec::new();
        let stop = self.code[code_i];
        for item in self.items[..stop].iter().rev() {
            match item {
                Item::Comment(c) => out.push(c.text.as_str()),
                Item::Tok { tok: Tok::Punct(';' | '{' | '}'), .. } => break,
                Item::Tok { .. } => {}
            }
        }
        out.reverse();
        out.join("\n")
    }

    /// Comment text trailing code position `i` on the same source line
    /// (`foo.store(x, Ordering::Relaxed); // ORDERING: …`).
    pub fn trailing_comment(&self, code_i: usize) -> String {
        let line = self.line_of(code_i);
        let mut out = String::new();
        for item in &self.items[self.code[code_i]..] {
            match item {
                Item::Comment(c) if c.line == line => {
                    out.push_str(&c.text);
                    out.push('\n');
                }
                Item::Comment(_) => break,
                Item::Tok { line: l, .. } if *l > line => break,
                Item::Tok { .. } => {}
            }
        }
        out
    }
}

/// Lexes `src`. Never fails: unterminated constructs consume to EOF, which
/// degrades one file's diagnostics rather than aborting the run.
pub fn lex(src: &str) -> LexFile {
    let b = src.as_bytes();
    let mut out = LexFile::default();
    let (mut i, mut line, mut col) = (0usize, 1u32, 1u32);

    macro_rules! bump {
        () => {{
            if b[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                let at = line;
                while i < b.len() && b[i] != b'\n' {
                    bump!();
                }
                out.items.push(Item::Comment(Comment {
                    text: src[start..i].to_string(),
                    line: at,
                }));
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let at = line;
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        bump!();
                        bump!();
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        bump!();
                        bump!();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        bump!();
                    }
                }
                out.items.push(Item::Comment(Comment {
                    text: src[start..i.min(src.len())].to_string(),
                    line: at,
                }));
            }
            b'"' => {
                let (l, cl) = (line, col);
                bump!();
                while i < b.len() {
                    match b[i] {
                        b'\\' => {
                            bump!();
                            if i < b.len() {
                                bump!();
                            }
                        }
                        b'"' => {
                            bump!();
                            break;
                        }
                        _ => bump!(),
                    }
                }
                push_tok(&mut out, Tok::Literal, l, cl);
            }
            b'r' | b'b'
                if is_raw_or_byte_string(b, i) =>
            {
                let (l, cl) = (line, col);
                // Skip prefix letters (`r`, `b`, `br`, `rb`).
                while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
                    bump!();
                }
                if i < b.len() && b[i] == b'#' || i < b.len() && b[i] == b'"' {
                    // Raw string r"…" / r#"…"# (any number of hashes).
                    let mut hashes = 0usize;
                    while i < b.len() && b[i] == b'#' {
                        hashes += 1;
                        bump!();
                    }
                    if i < b.len() && b[i] == b'"' {
                        bump!();
                        'raw: while i < b.len() {
                            if b[i] == b'"' {
                                // Check for the closing hash run.
                                let mut k = 0usize;
                                while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                                    k += 1;
                                }
                                if k == hashes {
                                    bump!();
                                    for _ in 0..hashes {
                                        bump!();
                                    }
                                    break 'raw;
                                }
                            }
                            bump!();
                        }
                    }
                    push_tok(&mut out, Tok::Literal, l, cl);
                } else {
                    // `b'x'` byte char.
                    if i < b.len() && b[i] == b'\'' {
                        bump!();
                        while i < b.len() {
                            match b[i] {
                                b'\\' => {
                                    bump!();
                                    if i < b.len() {
                                        bump!();
                                    }
                                }
                                b'\'' => {
                                    bump!();
                                    break;
                                }
                                _ => bump!(),
                            }
                        }
                    }
                    push_tok(&mut out, Tok::Literal, l, cl);
                }
            }
            b'\'' => {
                let (l, cl) = (line, col);
                // Lifetime (`'a` not followed by a closing quote) vs char
                // literal (`'a'`, `'\n'`, `'\u{1F600}'`).
                let mut j = i + 1;
                let mut is_lifetime = false;
                if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') {
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    if j >= b.len() || b[j] != b'\'' {
                        is_lifetime = true;
                    }
                }
                if is_lifetime {
                    while i < j {
                        bump!();
                    }
                    push_tok(&mut out, Tok::Lifetime, l, cl);
                } else {
                    bump!();
                    while i < b.len() {
                        match b[i] {
                            b'\\' => {
                                bump!();
                                if i < b.len() {
                                    bump!();
                                }
                            }
                            b'\'' => {
                                bump!();
                                break;
                            }
                            _ => bump!(),
                        }
                    }
                    push_tok(&mut out, Tok::Literal, l, cl);
                }
            }
            c if c.is_ascii_digit() => {
                let (l, cl) = (line, col);
                // Numbers (incl. 0x…, suffixes, floats). An exponent's sign
                // splits into a separate punct, which no pass cares about.
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // `1..=3` range: do not swallow the second dot.
                    if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        break;
                    }
                    bump!();
                }
                push_tok(&mut out, Tok::Literal, l, cl);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let (l, cl) = (line, col);
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    bump!();
                }
                push_tok(&mut out, Tok::Ident(src[start..i].to_string()), l, cl);
            }
            _ => {
                let (l, cl) = (line, col);
                // Raw identifier `r#ident` is handled above via the string
                // branch guard; here `#` etc. are plain puncts.
                push_tok(&mut out, Tok::Punct(c as char), l, cl);
                bump!();
            }
        }
    }
    out
}

/// True if position `i` starts a string-ish literal prefixed with `r`/`b`
/// (`r"`, `r#"`, `b"`, `br"`, `b'`, …) rather than a plain identifier.
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    if j >= b.len() {
        return false;
    }
    b[j] == b'"' || b[j] == b'\'' && b[i] == b'b' || b[j] == b'#' && j + 1 < b.len() && {
        let mut k = j;
        while k < b.len() && b[k] == b'#' {
            k += 1;
        }
        k < b.len() && b[k] == b'"'
    }
}

fn push_tok(out: &mut LexFile, tok: Tok, line: u32, col: u32) {
    out.code.push(out.items.len());
    out.items.push(Item::Tok { tok, line, col });
}

/// A function body span over *code token* positions: `fn_kw..close` where
/// `body` is the position of the opening `{` (None for bodyless trait
/// declarations).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Code position of the `fn` keyword.
    pub fn_kw: usize,
    /// Code position of the body's `{`, if the fn has a body.
    pub body: Option<usize>,
    /// Code position one past the body's matching `}` (== body for bodyless).
    pub end: usize,
}

/// Finds every `fn` item and its brace-matched body. Nested functions and
/// closures inside a body stay inside the enclosing span; `enclosing_fn`
/// returns the innermost match.
pub fn fn_spans(f: &LexFile) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut stack: Vec<(usize, Option<usize>)> = Vec::new(); // (brace pos, span idx)
    // Pending fn header: set at `fn name`, resolved at its body `{` or a `;`.
    let mut pending: Option<(String, usize)> = None;
    let n = f.code.len();
    for i in 0..n {
        match f.tok(i).unwrap() {
            Tok::Ident(id) if id == "fn" => {
                if let Some(Tok::Ident(name)) = f.tok(i + 1) {
                    pending = Some((name.clone(), i));
                }
            }
            Tok::Punct(';') => {
                // Trait method declaration without a body.
                if let Some((name, fn_kw)) = pending.take() {
                    spans.push(FnSpan { name, fn_kw, body: None, end: i });
                }
            }
            Tok::Punct('{') => {
                if let Some((name, fn_kw)) = pending.take() {
                    spans.push(FnSpan { name, fn_kw, body: Some(i), end: usize::MAX });
                    stack.push((i, Some(spans.len() - 1)));
                } else {
                    stack.push((i, None));
                }
            }
            Tok::Punct('}') => {
                if let Some((_, Some(si))) = stack.pop() {
                    spans[si].end = i + 1;
                }
            }
            _ => {}
        }
    }
    // Unclosed bodies (lexer resilience): extend to EOF.
    for s in &mut spans {
        if s.end == usize::MAX {
            s.end = n;
        }
    }
    spans
}

/// The innermost function span containing code position `i`.
pub fn enclosing_fn(spans: &[FnSpan], i: usize) -> Option<&FnSpan> {
    spans
        .iter()
        .filter(|s| {
            let start = s.body.unwrap_or(s.fn_kw);
            start <= i && i < s.end
        })
        .min_by_key(|s| s.end - s.body.unwrap_or(s.fn_kw))
}

/// Code-position ranges lexically inside `#[cfg(test)] mod … { }` blocks or
/// `#[test]` functions — the "test code" exemption for the forbidden-API
/// pass.
pub fn test_spans(f: &LexFile) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let n = f.code.len();
    for i in 0..n {
        let is_mod = f.is_ident(i, "mod");
        let is_fn = f.is_ident(i, "fn");
        if !is_mod && !is_fn {
            continue;
        }
        // Look back a bounded window for `cfg ( test` / `# [ test ]` /
        // `# [ should_panic` attribute tokens.
        let lo = i.saturating_sub(24);
        let mut attr_test = false;
        for j in lo..i {
            if is_mod && f.is_ident(j, "cfg") && f.is_punct(j + 1, '(') && f.is_ident(j + 2, "test")
            {
                attr_test = true;
            }
            if is_fn
                && f.is_punct(j, '#')
                && f.is_punct(j + 1, '[')
                && (f.is_ident(j + 2, "test") || f.is_ident(j + 2, "should_panic"))
            {
                attr_test = true;
            }
        }
        if !attr_test {
            continue;
        }
        // Find the block's opening brace, then its match.
        let mut k = i;
        while k < n && !f.is_punct(k, '{') {
            if f.is_punct(k, ';') {
                break; // `mod foo;` — nothing to span
            }
            k += 1;
        }
        if k >= n || !f.is_punct(k, '{') {
            continue;
        }
        let mut depth = 0usize;
        let mut end = n;
        for j in k..n {
            if f.is_punct(j, '{') {
                depth += 1;
            } else if f.is_punct(j, '}') {
                depth -= 1;
                if depth == 0 {
                    end = j + 1;
                    break;
                }
            }
        }
        spans.push((i, end));
    }
    spans
}

/// True if code position `i` falls in any of `spans`.
pub fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(a, b)| a <= i && i < b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let f = lex(r#"let s = "unsafe { } Ordering::Relaxed"; // unsafe in comment"#);
        assert!(!f.code.iter().any(|&i| matches!(
            &f.items[i],
            Item::Tok { tok: Tok::Ident(id), .. } if id == "unsafe" || id == "Ordering"
        )));
        // But the comment is preserved as trivia.
        assert!(f.items.iter().any(|it| matches!(it, Item::Comment(c) if c.text.contains("unsafe"))));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';");
        let lifetimes = f.code.iter().filter(|&&i| matches!(f.items[i], Item::Tok { tok: Tok::Lifetime, .. })).count();
        assert_eq!(lifetimes, 3);
        // 'x' is one literal, not a lifetime.
        assert!(f.code.iter().any(|&i| matches!(f.items[i], Item::Tok { tok: Tok::Literal, .. })));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let f = lex(r##"let s = r#"unsafe { "nested" }"#; let t = 1;"##);
        assert!(!f.code.iter().any(|&i| matches!(
            &f.items[i],
            Item::Tok { tok: Tok::Ident(id), .. } if id == "unsafe"
        )));
        assert!(f.code.iter().any(|&i| matches!(
            &f.items[i],
            Item::Tok { tok: Tok::Ident(id), .. } if id == "t"
        )));
    }

    #[test]
    fn attached_comment_skips_attributes_and_modifiers() {
        let src = "\
// SAFETY: [INV-01] fine\n\
#[inline]\n\
pub unsafe fn f() {}\n";
        let f = lex(src);
        let unsafe_pos = f.code.iter().position(|&i| matches!(
            &f.items[i],
            Item::Tok { tok: Tok::Ident(id), .. } if id == "unsafe"
        ));
        let pos = f.code.iter().enumerate().find_map(|(ci, &i)| match &f.items[i] {
            Item::Tok { tok: Tok::Ident(id), .. } if id == "unsafe" => Some(ci),
            _ => None,
        });
        assert!(unsafe_pos.is_some());
        let c = f.attached_comment(pos.unwrap());
        assert!(c.contains("SAFETY: [INV-01]"), "{c}");
    }

    #[test]
    fn attached_comment_stops_at_statement_boundary() {
        let src = "// SAFETY: [INV-01] first\nfoo();\nunsafe { bar() }\n";
        let f = lex(src);
        let pos = f.code.iter().enumerate().find_map(|(ci, &i)| match &f.items[i] {
            Item::Tok { tok: Tok::Ident(id), .. } if id == "unsafe" => Some(ci),
            _ => None,
        });
        let c = f.attached_comment(pos.unwrap());
        assert!(!c.contains("SAFETY"), "comment beyond `;` must not attach: {c}");
    }

    #[test]
    fn fn_spans_nest_and_resolve() {
        let src = "fn outer() { let c = || { inner_call(); }; } fn next() {}";
        let f = lex(src);
        let spans = fn_spans(&f);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "next");
        // A position inside the closure still maps to `outer`.
        let call = f.code.iter().enumerate().find_map(|(ci, &i)| match &f.items[i] {
            Item::Tok { tok: Tok::Ident(id), .. } if id == "inner_call" => Some(ci),
            _ => None,
        });
        assert_eq!(enclosing_fn(&spans, call.unwrap()).unwrap().name, "outer");
    }

    #[test]
    fn cfg_test_mod_spans_detected() {
        let src = "fn lib() {} #[cfg(test)] mod tests { fn helper() { todo_marker(); } }";
        let f = lex(src);
        let spans = test_spans(&f);
        assert_eq!(spans.len(), 1);
        let marker = f.code.iter().enumerate().find_map(|(ci, &i)| match &f.items[i] {
            Item::Tok { tok: Tok::Ident(id), .. } if id == "todo_marker" => Some(ci),
            _ => None,
        });
        assert!(in_spans(&spans, marker.unwrap()));
    }
}
