//! `mp-lint` — the in-tree SMR protocol linter.
//!
//! The MP paper's correctness argument (§4, Theorem 4.2) rests on protocol
//! invariants the Rust compiler cannot check: every `Shared::deref` must be
//! dominated by an active protection, and every protection announcement
//! must be ordered before the revalidating read by the right fence. This
//! crate makes those invariants *build-breaking*:
//!
//! 1. **unsafe-invariant audit** — every `unsafe` site cites a named
//!    invariant from `INVARIANTS.md` via `// SAFETY: [INV-xx]`.
//! 2. **memory-ordering gate** — `Ordering::*` call sites are classified by
//!    role in `crates/lint/ordering.rules`; `Relaxed` at publish / CAS /
//!    retire-load sites requires a structured `// ORDERING:` annotation
//!    (`pairs = <path-suffix>:<fn>` or `reason = …`), every `pairs`
//!    reference is resolved against the whole-tree site table, and the
//!    resolved protocol graph is emittable as a JSON/DOT artifact.
//! 3. **protection-scope heuristic** — `deref()` outside a lexical
//!    `pin()` / `start_op()` span needs a `// PROTECTION:` annotation.
//! 4. **forbidden-API pass** — `mem::forget`, the deprecated `stats_mut()`
//!    shim, `todo!`/`unimplemented!` in non-test code, and raw
//!    pointer-width `as` casts outside `packed.rs`.
//!
//! Zero dependencies, a hand-rolled lexer (tokens + brace tree, no full
//! parser), run as `cargo run -p mp-lint -- crates/ tests/ examples/ src/`.

pub mod lexer;
pub mod passes;
pub mod registry;
pub mod rules;

use std::path::{Path, PathBuf};

pub use passes::ordering::{Annotation, OrderingSite, Reason};

pub const PASS_SAFETY: &str = "safety";
pub const PASS_ORDERING: &str = "ordering";
pub const PASS_SCOPE: &str = "scope";
pub const PASS_FORBIDDEN: &str = "forbidden";

/// One finding. `file` is the normalized (forward-slash) path as given.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub pass: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.pass, self.msg
        )
    }
}

/// Linter configuration: where the registry and rule file live.
pub struct LintConfig {
    pub invariants: PathBuf,
    pub ordering_rules: PathBuf,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            invariants: PathBuf::from("INVARIANTS.md"),
            ordering_rules: PathBuf::from("crates/lint/ordering.rules"),
        }
    }
}

/// Directory names never descended into. `fixtures` holds the deliberately
/// failing lint corpus; linting it would make the clean-tree run fail.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// Recursively collects `.rs` files under each path (files pass through).
pub fn collect_rs_files(paths: &[PathBuf]) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for p in paths {
        walk(p, &mut out)?;
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(p: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if p.is_dir() {
        if p.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| SKIP_DIRS.contains(&n))
        {
            return Ok(());
        }
        for entry in std::fs::read_dir(p)? {
            walk(&entry?.path(), out)?;
        }
    } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
        out.push(p.to_path_buf());
    }
    Ok(())
}

/// Lints one already-lexed file, including same-file pairing resolution.
/// Separated out so fixture tests can drive single files with a custom rule
/// set; `pairs =` references must resolve within the file in this mode.
pub fn lint_file(
    path_display: &str,
    src: &str,
    reg: &registry::Registry,
    rules: &rules::RuleSet,
    out: &mut Vec<Diagnostic>,
) {
    let mut sites = Vec::new();
    lint_file_collect(path_display, src, reg, rules, &mut sites, out);
    passes::ordering::resolve(&sites, out);
}

/// Phase 1 of [`lint_file`]: runs the per-file passes and appends the file's
/// classified ordering sites to `sites` without resolving `pairs`
/// references — the whole-tree walk resolves once over all files.
pub fn lint_file_collect(
    path_display: &str,
    src: &str,
    reg: &registry::Registry,
    rules: &rules::RuleSet,
    sites: &mut Vec<OrderingSite>,
    out: &mut Vec<Diagnostic>,
) {
    let f = lexer::lex(src);
    let spans = lexer::fn_spans(&f);
    let tspans = lexer::test_spans(&f);
    passes::safety::run(path_display, &f, reg, out);
    passes::ordering::run(path_display, &f, &spans, &tspans, rules, sites, out);
    passes::scope::run(path_display, &f, &spans, out);
    passes::forbidden::run(path_display, &f, &tspans, out);
}

/// Runs all passes over every `.rs` file under `paths`. Returns the sorted
/// diagnostics; configuration errors (missing registry / rule file) are
/// `Err` — they must fail the build, not read as a clean run.
pub fn lint_paths(paths: &[PathBuf], cfg: &LintConfig) -> Result<Vec<Diagnostic>, String> {
    lint_paths_with_sites(paths, cfg).map(|(diags, _)| diags)
}

/// Like [`lint_paths`], but also returns the whole-tree ordering site table
/// (the data model behind the committed pairing-graph artifact).
///
/// This is where the two cross-file checks run: the `ordering.rules`
/// shadowed-rule self-check (reported against the rule file itself) and
/// pairing resolution over the merged site table.
pub fn lint_paths_with_sites(
    paths: &[PathBuf],
    cfg: &LintConfig,
) -> Result<(Vec<Diagnostic>, Vec<OrderingSite>), String> {
    let reg = registry::Registry::load(&cfg.invariants)?;
    let rules = rules::RuleSet::load(&cfg.ordering_rules)?;
    let files = collect_rs_files(paths).map_err(|e| format!("walking inputs: {e}"))?;
    if files.is_empty() {
        return Err("no .rs files found under the given paths".to_string());
    }
    let mut out = Vec::new();
    let rules_display = cfg.ordering_rules.display().to_string().replace('\\', "/");
    for (a, b) in rules.shadowed() {
        out.push(Diagnostic {
            file: rules_display.clone(),
            line: b.line as u32,
            col: 1,
            pass: PASS_ORDERING,
            msg: format!(
                "rule `{} {} {}` is shadowed by earlier rule `{} {} {}` (line {}) — \
                 first match wins, so this rule can never apply",
                b.path_suffix,
                b.fn_glob,
                b.role.name(),
                a.path_suffix,
                a.fn_glob,
                a.role.name(),
                a.line,
            ),
        });
    }
    let mut sites = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let display = file.display().to_string().replace('\\', "/");
        lint_file_collect(&display, &src, &reg, &rules, &mut sites, &mut out);
    }
    passes::ordering::resolve(&sites, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok((out, sites))
}

/// Serializes diagnostics as a JSON array (schema `mp-lint/v1`) for CI
/// annotation tooling: `{"file", "line", "col", "pass", "msg"}` per entry.
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[\n");
    let lines: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "  {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"pass\": \"{}\", \
                 \"msg\": \"{}\"}}",
                json_escape(&d.file),
                d.line,
                d.col,
                json_escape(d.pass),
                json_escape(&d.msg),
            )
        })
        .collect();
    s.push_str(&lines.join(",\n"));
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// Minimal JSON string escaping (the only JSON writer this zero-dependency
/// crate needs).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
