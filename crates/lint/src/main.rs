//! CLI for the SMR protocol linter.
//!
//! ```text
//! cargo run -p mp-lint -- crates/ tests/ examples/ src/
//! ```
//!
//! Exits 0 on a clean tree, 1 on any diagnostic, 2 on configuration errors
//! (missing registry / rule file — those must fail the gate loudly, never
//! read as "no findings").

use std::path::PathBuf;
use std::process::ExitCode;

use mp_lint::{lint_paths, LintConfig};

const USAGE: &str = "usage: mp-lint [--invariants <path>] [--rules <path>] <path>...";

fn main() -> ExitCode {
    let mut cfg = LintConfig::default();
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--invariants" => match args.next() {
                Some(p) => cfg.invariants = PathBuf::from(p),
                None => return usage_error("--invariants needs a path"),
            },
            "--rules" => match args.next() {
                Some(p) => cfg.ordering_rules = PathBuf::from(p),
                None => return usage_error("--rules needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(PathBuf::from(a)),
        }
    }
    if paths.is_empty() {
        return usage_error("no input paths");
    }
    match lint_paths(&paths, &cfg) {
        Ok(diags) if diags.is_empty() => {
            println!("mp-lint: clean (0 diagnostics)");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                eprintln!("{d}");
            }
            let mut by_pass: std::collections::BTreeMap<&str, usize> = Default::default();
            for d in &diags {
                *by_pass.entry(d.pass).or_default() += 1;
            }
            let summary = by_pass
                .iter()
                .map(|(p, n)| format!("{p}: {n}"))
                .collect::<Vec<_>>()
                .join(", ");
            eprintln!("mp-lint: {} diagnostic(s) ({summary})", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("mp-lint: configuration error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("mp-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
