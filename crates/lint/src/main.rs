//! CLI for the SMR protocol linter.
//!
//! ```text
//! cargo run -p mp-lint -- crates/ tests/ examples/ src/
//! cargo run -p mp-lint -- --json crates/                     # CI annotations
//! cargo run -p mp-lint -- --emit-graph ORDERING_GRAPH.json \
//!                         --emit-dot ORDERING_GRAPH.dot crates/
//! ```
//!
//! Exits 0 on a clean tree, 1 on any diagnostic, 2 on configuration errors
//! (missing registry / rule file — those must fail the gate loudly, never
//! read as "no findings"). Graph artifacts are written even when
//! diagnostics exist, so a drift check can still compare them.

use std::path::PathBuf;
use std::process::ExitCode;

use mp_lint::{diagnostics_json, lint_paths_with_sites, passes::ordering, LintConfig};

const USAGE: &str = "usage: mp-lint [--invariants <path>] [--rules <path>] [--json] \
     [--emit-graph <path>] [--emit-dot <path>] <path>...";

fn main() -> ExitCode {
    let mut cfg = LintConfig::default();
    let mut paths = Vec::new();
    let mut json = false;
    let mut emit_graph: Option<PathBuf> = None;
    let mut emit_dot: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--invariants" => match args.next() {
                Some(p) => cfg.invariants = PathBuf::from(p),
                None => return usage_error("--invariants needs a path"),
            },
            "--rules" => match args.next() {
                Some(p) => cfg.ordering_rules = PathBuf::from(p),
                None => return usage_error("--rules needs a path"),
            },
            "--json" => json = true,
            "--emit-graph" => match args.next() {
                Some(p) => emit_graph = Some(PathBuf::from(p)),
                None => return usage_error("--emit-graph needs a path"),
            },
            "--emit-dot" => match args.next() {
                Some(p) => emit_dot = Some(PathBuf::from(p)),
                None => return usage_error("--emit-dot needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(PathBuf::from(a)),
        }
    }
    if paths.is_empty() {
        return usage_error("no input paths");
    }
    let (diags, sites) = match lint_paths_with_sites(&paths, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mp-lint: configuration error: {e}");
            return ExitCode::from(2);
        }
    };
    for (path, contents) in [
        (emit_graph, ordering::graph_json(&sites)),
        (emit_dot, ordering::graph_dot(&sites)),
    ] {
        if let Some(p) = path {
            if let Err(e) = std::fs::write(&p, contents) {
                eprintln!("mp-lint: cannot write {}: {e}", p.display());
                return ExitCode::from(2);
            }
        }
    }
    if json {
        print!("{}", diagnostics_json(&diags));
        return if diags.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    if diags.is_empty() {
        println!("mp-lint: clean (0 diagnostics)");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        eprintln!("{d}");
    }
    let mut by_pass: std::collections::BTreeMap<&str, usize> = Default::default();
    for d in &diags {
        *by_pass.entry(d.pass).or_default() += 1;
    }
    let summary = by_pass
        .iter()
        .map(|(p, n)| format!("{p}: {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    eprintln!("mp-lint: {} diagnostic(s) ({summary})", diags.len());
    ExitCode::FAILURE
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("mp-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
