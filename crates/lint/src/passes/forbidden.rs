//! Pass 4 — forbidden-API pass.
//!
//! Mechanical denials of APIs that break protocol invariants in ways the
//! other passes cannot see:
//!
//! * `mem::forget` / `forget(…)` — forgetting an `OpGuard` leaks an open
//!   protection span (the scheme believes the thread is mid-operation
//!   forever, pinning every later retiree). Type resolution is out of reach
//!   for a lexer, so *all* forgets are denied; a genuinely safe one takes a
//!   `// FORBID-OK:` justification.
//! * `stats_mut()` — deprecated raw-counter shim; only its definition site
//!   (`crates/smr/src/api.rs`) may mention it.
//! * `todo!` / `unimplemented!` in non-test code.
//! * raw `as`-casts of pointer-width values outside `packed.rs` — the
//!   packed-word layout (§4.3.1) is the one audited place where addresses
//!   and integers may be punned. Detected shapes: `as *const` / `as *mut`,
//!   `as_raw() as …`, and `<ident ending in ptr/addr> as usize|u64`.
//!   Escape hatch: `// CAST-OK:` with a reason.

use crate::lexer::{in_spans, LexFile, Tok};
use crate::{Diagnostic, PASS_FORBIDDEN};

/// Files whose *definition* of `stats_mut` is the allowed shim.
const STATS_MUT_SHIM: &str = "crates/smr/src/api.rs";
/// The one module allowed to pun pointers and integers freely.
const CAST_SANCTUM: &str = "crates/smr/src/packed.rs";

pub fn run(
    file: &str,
    f: &LexFile,
    test_spans: &[(usize, usize)],
    out: &mut Vec<Diagnostic>,
) {
    let in_tests_dir = file.contains("/tests/") || file.starts_with("tests/");
    for i in 0..f.code.len() {
        let id = match f.tok(i) {
            Some(Tok::Ident(id)) => id.as_str(),
            _ => continue,
        };
        match id {
            "forget" if f.is_punct(i + 1, '(') && !escaped(f, i, "FORBID-OK:") => {
                out.push(diag(
                    file,
                    f,
                    i,
                    "mem::forget is forbidden: forgetting an OpGuard leaks an open \
                     protection span (end_op never runs). Use ManuallyDrop in the \
                     rare legitimate case and justify with `// FORBID-OK:`",
                ));
            }
            "stats_mut"
                if !file.ends_with(STATS_MUT_SHIM) && !escaped(f, i, "FORBID-OK:") =>
            {
                out.push(diag(
                    file,
                    f,
                    i,
                    "stats_mut() is a deprecated shim: use the typed Telemetry \
                     recorders (record_node_traversed, reset_telemetry, …)",
                ));
            }
            "todo" | "unimplemented"
                if f.is_punct(i + 1, '!') && !in_tests_dir && !in_spans(test_spans, i) =>
            {
                out.push(diag(
                    file,
                    f,
                    i,
                    "todo!/unimplemented! in non-test code: stub reachable at \
                     runtime",
                ));
            }
            "as" => {
                if file.ends_with(CAST_SANCTUM) || in_tests_dir || in_spans(test_spans, i) {
                    continue;
                }
                if let Some(shape) = ptr_cast_shape(f, i) {
                    if !escaped(f, i, "CAST-OK:") {
                        out.push(diag(
                            file,
                            f,
                            i,
                            &format!(
                                "raw pointer-width `as` cast ({shape}) outside packed.rs — \
                                 route through the packed-pointer API (Shared::addr, \
                                 Shared::as_raw) or justify with `// CAST-OK:`"
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Classifies the `as` at code position `i` as a pointer-width pun, if any.
fn ptr_cast_shape(f: &LexFile, i: usize) -> Option<&'static str> {
    // `as *const T` / `as *mut T`
    if f.is_punct(i + 1, '*')
        && (f.is_ident(i + 2, "const") || f.is_ident(i + 2, "mut"))
    {
        return Some("`as *const`/`as *mut`");
    }
    // `.as_raw() as …`
    if i >= 3
        && f.is_ident(i - 3, "as_raw")
        && f.is_punct(i - 2, '(')
        && f.is_punct(i - 1, ')')
    {
        return Some("`as_raw() as …`");
    }
    // `<ptr-ish ident> as usize|u64`
    if f.is_ident(i + 1, "usize") || f.is_ident(i + 1, "u64") {
        if let Some(Tok::Ident(prev)) = f.tok(i.wrapping_sub(1)) {
            let p = prev.as_str();
            if p == "ptr" || p == "addr" || p.ends_with("_ptr") || p.ends_with("_addr") {
                return Some("`<ptr> as int`");
            }
        }
    }
    None
}

fn escaped(f: &LexFile, i: usize, marker: &str) -> bool {
    (f.attached_comment(i) + &f.trailing_comment(i)).contains(marker)
}

fn diag(file: &str, f: &LexFile, i: usize, msg: &str) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line: f.line_of(i),
        col: f.col_of(i),
        pass: PASS_FORBIDDEN,
        msg: msg.to_string(),
    }
}
