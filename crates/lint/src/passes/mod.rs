pub mod forbidden;
pub mod ordering;
pub mod safety;
pub mod scope;
