//! Pass 2 — memory-ordering gate and pairing-graph resolution.
//!
//! Re-derives the paper's §4.3 fence placement mechanically, in two phases:
//!
//! 1. **Collection** ([`run`], per file): every `Ordering::*` call site in a
//!    rule-scoped file is classified by protocol role via `ordering.rules`
//!    and recorded as an [`OrderingSite`]. `Relaxed` at a gated role
//!    (`publish`, `cas`, `retire_load`) must carry a *structured*
//!    `// ORDERING:` annotation:
//!
//!    ```text
//!    // ORDERING: pairs = <path-suffix>:<fn> — free prose after the head.
//!    // ORDERING: reason = exclusive|quiescent|seqlock|owned-store — prose.
//!    ```
//!
//!    Free-text justifications, unknown reasons, and unclassified sites are
//!    errors. Code inside `#[cfg(test)]` modules or `#[test]` functions is
//!    auto-exempt (no per-test rows in `ordering.rules` needed).
//!
//! 2. **Resolution** ([`resolve`], whole tree): each `pairs` reference is
//!    resolved against the collected site table. Dangling references,
//!    references to `exempt`/`counter` sites, and role-incompatible pairs
//!    (the cited function provides only `Relaxed` sites — no
//!    Acquire/Release/SeqCst ordering or fence to pair with) are errors.
//!
//! The resolved table is also the data model for the committed protocol
//! graph ([`graph_json`] / [`graph_dot`]) that DESIGN.md embeds.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{enclosing_fn, in_spans, FnSpan, LexFile};
use crate::rules::{Role, RuleSet};
use crate::{json_escape, Diagnostic, PASS_ORDERING};

/// Structural reason a gated `Relaxed` needs no pairing fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Reason {
    /// Single-owner access: `&mut self`, single-writer cell, teardown.
    Exclusive,
    /// All racing threads are provably quiescent (e.g. collection under a
    /// lock that revalidates with its own fence).
    Quiescent,
    /// Part of a seqlock read/publish protocol whose version word carries
    /// the ordering (crossbeam `SeqLock` pattern).
    Seqlock,
    /// Store to memory not yet published to any other thread.
    OwnedStore,
}

impl Reason {
    fn parse(s: &str) -> Option<Reason> {
        Some(match s {
            "exclusive" => Reason::Exclusive,
            "quiescent" => Reason::Quiescent,
            "seqlock" => Reason::Seqlock,
            "owned-store" => Reason::OwnedStore,
            _ => return None,
        })
    }

    /// The grammar keyword for this reason.
    pub fn name(self) -> &'static str {
        match self {
            Reason::Exclusive => "exclusive",
            Reason::Quiescent => "quiescent",
            Reason::Seqlock => "seqlock",
            Reason::OwnedStore => "owned-store",
        }
    }
}

/// Parsed head of a structured `// ORDERING:` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Annotation {
    /// `pairs = <path-suffix>:<fn>` — names the site holding the pairing
    /// fence / release edge.
    Pairs {
        /// Path suffix of the file holding the cited site (same matching
        /// semantics as `ordering.rules`).
        path_suffix: String,
        /// Function name of the cited site.
        target_fn: String,
    },
    /// `reason = …` — structural justification; no pairing site exists.
    Reason(Reason),
}

/// One classified ordering site: an `Ordering::*` token (or a call to the
/// `counted_fence` SeqCst helper, recorded as a fence site) in a rule-scoped
/// file, outside test code.
#[derive(Debug, Clone)]
pub struct OrderingSite {
    /// Normalized (forward-slash) path the site was linted under.
    pub file: String,
    /// Enclosing function, `None` for statics/consts.
    pub fn_name: Option<String>,
    /// `"Relaxed"`, `"Acquire"`, `"SeqCst"`, … or `"counted_fence"` for a
    /// call to the counted SeqCst-fence helper.
    pub ordering: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Protocol role from the first matching `ordering.rules` rule.
    pub role: Role,
    /// Parsed annotation — populated only for gated `Relaxed` sites whose
    /// annotation parsed cleanly.
    pub annotation: Option<Annotation>,
}

/// Phase 1: collects and gate-checks one file's ordering sites.
pub fn run(
    file: &str,
    f: &LexFile,
    spans: &[FnSpan],
    tspans: &[(usize, usize)],
    rules: &RuleSet,
    sites: &mut Vec<OrderingSite>,
    out: &mut Vec<Diagnostic>,
) {
    if !rules.in_scope(file) {
        return;
    }
    for i in 0..f.code.len() {
        // `counted_fence(...)` calls are fence sites pairable by `pairs =`
        // references even though no `Ordering::` token appears at the call.
        if f.is_ident(i, "counted_fence") && f.is_punct(i + 1, '(') && !in_spans(tspans, i) {
            let fn_name = enclosing_fn(spans, i).map(|s| s.name.clone());
            if let Some(rule) = rules.classify(file, fn_name.as_deref()) {
                sites.push(OrderingSite {
                    file: file.to_string(),
                    fn_name,
                    ordering: "counted_fence".to_string(),
                    line: f.line_of(i),
                    col: f.col_of(i),
                    role: rule.role,
                    annotation: None,
                });
            }
            continue;
        }
        if !(f.is_ident(i, "Ordering") && f.is_punct(i + 1, ':') && f.is_punct(i + 2, ':')) {
            continue;
        }
        let name = match f.tok(i + 3) {
            Some(crate::lexer::Tok::Ident(id)) => id.clone(),
            _ => continue,
        };
        // Auto-exemption: `#[cfg(test)]` modules and `#[test]` functions are
        // out of protocol scope — no rule rows, no diagnostics, no sites.
        if in_spans(tspans, i) {
            continue;
        }
        let fn_name = enclosing_fn(spans, i).map(|s| s.name.clone());
        let rule = match rules.classify(file, fn_name.as_deref()) {
            Some(r) => r,
            None => {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: f.line_of(i),
                    col: f.col_of(i),
                    pass: PASS_ORDERING,
                    msg: format!(
                        "unclassified Ordering::{name} site in `{}` — add a \
                         (path, fn, role) rule to crates/lint/ordering.rules",
                        fn_name.as_deref().unwrap_or("<no fn>"),
                    ),
                });
                continue;
            }
        };
        let mut annotation = None;
        if name == "Relaxed" && rule.role.gates_relaxed() {
            let just = f.attached_comment(i) + &f.trailing_comment(i);
            match parse_annotation(&just) {
                Ok(a) => annotation = Some(a),
                Err(why) => out.push(Diagnostic {
                    file: file.to_string(),
                    line: f.line_of(i),
                    col: f.col_of(i),
                    pass: PASS_ORDERING,
                    msg: format!(
                        "Ordering::Relaxed at a {} site (rule {}:{}) — {why}",
                        rule.role.name(),
                        rule.path_suffix,
                        rule.line,
                    ),
                }),
            }
        }
        sites.push(OrderingSite {
            file: file.to_string(),
            fn_name,
            ordering: name,
            line: f.line_of(i),
            col: f.col_of(i),
            role: rule.role,
            annotation,
        });
    }
}

const GRAMMAR_HINT: &str = "use `// ORDERING: pairs = <path-suffix>:<fn>` or \
     `// ORDERING: reason = exclusive|quiescent|seqlock|owned-store`";

/// Parses the structured head of an `// ORDERING:` annotation out of the
/// comment text attached to a site. Free prose is allowed after the head.
fn parse_annotation(comment: &str) -> Result<Annotation, String> {
    let pos = match comment.find("ORDERING:") {
        Some(p) => p,
        None => {
            return Err(format!(
                "strengthen the ordering or attach a structured annotation: {GRAMMAR_HINT}"
            ))
        }
    };
    let tail = comment[pos + "ORDERING:".len()..].trim_start();
    let (key, rest) = split_word(tail);
    match key {
        "pairs" => {
            let rest = expect_eq(rest, "pairs")?;
            let (val, _) = split_word(rest);
            let val = val.trim_end_matches(['.', ',', ';']);
            let (suffix, target_fn) = match val.rsplit_once(':') {
                Some((s, f)) if !s.is_empty() && is_ident(f) => (s, f),
                _ => {
                    return Err(format!(
                        "malformed `pairs` value `{val}` — expected `<path-suffix>:<fn>` \
                         (e.g. `pairs = schemes/mp.rs:announce_margin`)"
                    ))
                }
            };
            Ok(Annotation::Pairs {
                path_suffix: suffix.to_string(),
                target_fn: target_fn.to_string(),
            })
        }
        "reason" => {
            let rest = expect_eq(rest, "reason")?;
            let (val, _) = split_word(rest);
            let val = val.trim_end_matches(['.', ',', ';']);
            Reason::parse(val).map(Annotation::Reason).ok_or_else(|| {
                format!("unknown reason `{val}` — expected exclusive|quiescent|seqlock|owned-store")
            })
        }
        other => Err(format!(
            "free-text `// ORDERING:` annotation (starts `{other}`) is no longer accepted — \
             {GRAMMAR_HINT}"
        )),
    }
}

/// Splits off the first whitespace-delimited word.
fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(p) => (&s[..p], &s[p..]),
        None => (s, ""),
    }
}

fn expect_eq<'a>(s: &'a str, key: &str) -> Result<&'a str, String> {
    let s = s.trim_start();
    s.strip_prefix('=')
        .ok_or_else(|| format!("`{key}` must be followed by `=` in the annotation head"))
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Phase 2: resolves every `pairs` reference against the whole-tree site
/// table. Call once per lint run, after all files are collected.
pub fn resolve(sites: &[OrderingSite], out: &mut Vec<Diagnostic>) {
    for s in sites {
        let (suffix, target_fn) = match &s.annotation {
            Some(Annotation::Pairs { path_suffix, target_fn }) => (path_suffix, target_fn),
            _ => continue,
        };
        let label = format!("{suffix}:{target_fn}");
        let targets: Vec<&OrderingSite> = sites
            .iter()
            .filter(|t| {
                t.file.ends_with(suffix.as_str()) && t.fn_name.as_deref() == Some(target_fn)
            })
            .collect();
        if targets.is_empty() {
            out.push(Diagnostic {
                file: s.file.clone(),
                line: s.line,
                col: s.col,
                pass: PASS_ORDERING,
                msg: format!(
                    "dangling `pairs = {label}` reference — no classified Ordering/fence \
                     site matches (check the path suffix, the fn name, and that the target \
                     is covered by crates/lint/ordering.rules)"
                ),
            });
            continue;
        }
        if targets.iter().all(|t| matches!(t.role, Role::Exempt | Role::Counter)) {
            out.push(Diagnostic {
                file: s.file.clone(),
                line: s.line,
                col: s.col,
                pass: PASS_ORDERING,
                msg: format!(
                    "`pairs = {label}` cites a site classified `{}` — exempt/counter sites \
                     are outside the fence-placement argument and cannot justify a gated \
                     Relaxed",
                    targets[0].role.name(),
                ),
            });
            continue;
        }
        if !targets.iter().any(|t| t.ordering != "Relaxed") {
            out.push(Diagnostic {
                file: s.file.clone(),
                line: s.line,
                col: s.col,
                pass: PASS_ORDERING,
                msg: format!(
                    "role-incompatible pair: `pairs = {label}` cites only Relaxed sites — \
                     the cited fn provides no Acquire/Release/SeqCst ordering or fence to \
                     pair with"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol-graph emission (committed JSON/DOT artifact)
// ---------------------------------------------------------------------------

/// Aggregated node of the protocol graph: one (file, fn) bucket.
struct GraphNode<'a> {
    role: Role,
    orderings: BTreeSet<&'a str>,
    sites: usize,
}

type NodeKey<'a> = (&'a str, &'a str); // (file, fn)

/// Edge of the protocol graph, from a gated-Relaxed bucket.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
enum GraphEdge<'a> {
    Pairs { from: NodeKey<'a>, to: NodeKey<'a>, reference: String },
    Reason { from: NodeKey<'a>, reason: Reason },
}

fn build_graph<'a>(
    sites: &'a [OrderingSite],
) -> (BTreeMap<NodeKey<'a>, GraphNode<'a>>, BTreeSet<GraphEdge<'a>>) {
    let mut edges = BTreeSet::new();
    let mut keep: BTreeSet<NodeKey<'a>> = BTreeSet::new();
    for s in sites {
        let from = (s.file.as_str(), s.fn_name.as_deref().unwrap_or("<static>"));
        match &s.annotation {
            Some(Annotation::Pairs { path_suffix, target_fn }) => {
                keep.insert(from);
                for t in sites.iter().filter(|t| {
                    t.file.ends_with(path_suffix.as_str())
                        && t.fn_name.as_deref() == Some(target_fn)
                }) {
                    let to = (t.file.as_str(), t.fn_name.as_deref().unwrap_or("<static>"));
                    keep.insert(to);
                    edges.insert(GraphEdge::Pairs {
                        from,
                        to,
                        reference: format!("{path_suffix}:{target_fn}"),
                    });
                }
            }
            Some(Annotation::Reason(r)) => {
                keep.insert(from);
                edges.insert(GraphEdge::Reason { from, reason: *r });
            }
            None => {}
        }
    }
    let mut nodes: BTreeMap<NodeKey<'a>, GraphNode<'a>> = BTreeMap::new();
    for s in sites {
        let key = (s.file.as_str(), s.fn_name.as_deref().unwrap_or("<static>"));
        if !keep.contains(&key) {
            continue;
        }
        let n = nodes.entry(key).or_insert_with(|| GraphNode {
            role: s.role,
            orderings: BTreeSet::new(),
            sites: 0,
        });
        n.orderings.insert(s.ordering.as_str());
        n.sites += 1;
    }
    (nodes, edges)
}

/// Renders the protocol graph as deterministic JSON (schema
/// `mp-ordering-graph/v1`). Only buckets that carry a gated-Relaxed
/// annotation, or are cited by one, appear — this is the fence-placement
/// argument, not a census of every atomic. Line numbers are deliberately
/// omitted so the committed artifact does not churn on unrelated edits.
pub fn graph_json(sites: &[OrderingSite]) -> String {
    let (nodes, edges) = build_graph(sites);
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"mp-ordering-graph/v1\",\n  \"nodes\": [\n");
    let node_lines: Vec<String> = nodes
        .iter()
        .map(|((file, f), n)| {
            let ords: Vec<String> =
                n.orderings.iter().map(|o| format!("\"{}\"", json_escape(o))).collect();
            format!(
                "    {{\"id\": \"{}:{}\", \"file\": \"{}\", \"fn\": \"{}\", \"role\": \"{}\", \
                 \"orderings\": [{}], \"sites\": {}}}",
                json_escape(file),
                json_escape(f),
                json_escape(file),
                json_escape(f),
                n.role.name(),
                ords.join(", "),
                n.sites,
            )
        })
        .collect();
    s.push_str(&node_lines.join(",\n"));
    s.push_str("\n  ],\n  \"edges\": [\n");
    let edge_lines: Vec<String> = edges
        .iter()
        .map(|e| match e {
            GraphEdge::Pairs { from, to, reference } => format!(
                "    {{\"from\": \"{}:{}\", \"kind\": \"pairs\", \"to\": \"{}:{}\", \
                 \"reference\": \"{}\"}}",
                json_escape(from.0),
                json_escape(from.1),
                json_escape(to.0),
                json_escape(to.1),
                json_escape(reference),
            ),
            GraphEdge::Reason { from, reason } => format!(
                "    {{\"from\": \"{}:{}\", \"kind\": \"reason\", \"reason\": \"{}\"}}",
                json_escape(from.0),
                json_escape(from.1),
                reason.name(),
            ),
        })
        .collect();
    s.push_str(&edge_lines.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

/// Renders the protocol graph as Graphviz DOT (same node set as
/// [`graph_json`]; `reason` edges point at synthetic ellipse nodes).
pub fn graph_dot(sites: &[OrderingSite]) -> String {
    let (nodes, edges) = build_graph(sites);
    fn short(file: &str) -> &str {
        file.rsplit("/src/").next().unwrap_or(file)
    }
    let mut s = String::new();
    s.push_str("digraph ordering_pairings {\n  rankdir=LR;\n");
    s.push_str("  node [shape=box, fontsize=10, fontname=\"monospace\"];\n");
    for ((file, f), n) in &nodes {
        let color = match n.role {
            Role::Publish => "#1f77b4",
            Role::Cas => "#d62728",
            Role::RetireLoad => "#2ca02c",
            Role::Counter | Role::Exempt => "#7f7f7f",
        };
        let ords: Vec<&str> = n.orderings.iter().copied().collect();
        s.push_str(&format!(
            "  \"{file}:{f}\" [label=\"{}\\n{f} ({})\\n[{}]\", color=\"{color}\"];\n",
            short(file),
            n.role.name(),
            ords.join(", "),
        ));
    }
    let mut reasons: BTreeSet<Reason> = BTreeSet::new();
    for e in &edges {
        if let GraphEdge::Reason { reason, .. } = e {
            reasons.insert(*reason);
        }
    }
    for r in &reasons {
        s.push_str(&format!(
            "  \"reason:{}\" [shape=ellipse, style=dashed, label=\"{}\"];\n",
            r.name(),
            r.name(),
        ));
    }
    for e in &edges {
        match e {
            GraphEdge::Pairs { from, to, .. } => s.push_str(&format!(
                "  \"{}:{}\" -> \"{}:{}\" [label=\"pairs\"];\n",
                from.0, from.1, to.0, to.1
            )),
            GraphEdge::Reason { from, reason } => s.push_str(&format!(
                "  \"{}:{}\" -> \"reason:{}\" [style=dashed];\n",
                from.0, from.1,
                reason.name()
            )),
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_grammar_parses_heads_and_allows_prose() {
        assert_eq!(
            parse_annotation("// ORDERING: pairs = schemes/mp.rs:announce_margin — prose."),
            Ok(Annotation::Pairs {
                path_suffix: "schemes/mp.rs".into(),
                target_fn: "announce_margin".into()
            })
        );
        assert_eq!(
            parse_annotation("// ORDERING: reason = exclusive — caller holds &mut."),
            Ok(Annotation::Reason(Reason::Exclusive))
        );
        // Trailing punctuation on the value is tolerated.
        assert_eq!(
            parse_annotation("// ORDERING: reason = seqlock."),
            Ok(Annotation::Reason(Reason::Seqlock))
        );
    }

    #[test]
    fn annotation_grammar_rejects_free_text_and_unknown_reasons() {
        assert!(parse_annotation("// no annotation at all").is_err());
        assert!(parse_annotation("// ORDERING: because the scan squints").is_err());
        assert!(parse_annotation("// ORDERING: reason = vibes").is_err());
        assert!(parse_annotation("// ORDERING: pairs = missing_colon").is_err());
        assert!(parse_annotation("// ORDERING: pairs schemes/mp.rs:f").is_err());
    }

    fn site(file: &str, fn_name: &str, ordering: &str, role: Role, ann: Option<Annotation>) -> OrderingSite {
        OrderingSite {
            file: file.into(),
            fn_name: Some(fn_name.into()),
            ordering: ordering.into(),
            line: 1,
            col: 1,
            role,
            annotation: ann,
        }
    }

    #[test]
    fn resolve_flags_dangling_exempt_and_relaxed_only_targets() {
        let pairs = |s: &str, f: &str| {
            Some(Annotation::Pairs { path_suffix: s.into(), target_fn: f.into() })
        };
        let sites = vec![
            site("crates/smr/src/a.rs", "announce", "Release", Role::Publish, None),
            site("crates/smr/src/a.rs", "dbg", "Acquire", Role::Exempt, None),
            site("crates/smr/src/a.rs", "weak", "Relaxed", Role::Cas, Some(Annotation::Reason(Reason::Exclusive))),
            // ok: cites a Release site
            site("crates/smr/src/a.rs", "ok", "Relaxed", Role::Publish, pairs("a.rs", "announce")),
            // dangling
            site("crates/smr/src/a.rs", "d", "Relaxed", Role::Publish, pairs("a.rs", "nope")),
            // exempt target
            site("crates/smr/src/a.rs", "e", "Relaxed", Role::Publish, pairs("a.rs", "dbg")),
            // relaxed-only target
            site("crates/smr/src/a.rs", "r", "Relaxed", Role::Publish, pairs("a.rs", "weak")),
        ];
        let mut out = Vec::new();
        resolve(&sites, &mut out);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().any(|d| d.msg.contains("dangling `pairs = a.rs:nope`")));
        assert!(out.iter().any(|d| d.msg.contains("classified `exempt`")));
        assert!(out.iter().any(|d| d.msg.contains("role-incompatible")));
    }

    #[test]
    fn counted_fence_call_is_a_pairable_fence_site() {
        let sites = vec![
            site("crates/smr/src/a.rs", "hot", "counted_fence", Role::Publish, None),
            site(
                "crates/smr/src/a.rs",
                "rd",
                "Relaxed",
                Role::Publish,
                Some(Annotation::Pairs { path_suffix: "a.rs".into(), target_fn: "hot".into() }),
            ),
        ];
        let mut out = Vec::new();
        resolve(&sites, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn graph_emission_is_deterministic_and_scoped_to_the_argument() {
        let sites = vec![
            site("crates/smr/src/a.rs", "announce", "Release", Role::Publish, None),
            site("crates/smr/src/a.rs", "unrelated", "SeqCst", Role::RetireLoad, None),
            site(
                "crates/smr/src/a.rs",
                "rd",
                "Relaxed",
                Role::Publish,
                Some(Annotation::Pairs {
                    path_suffix: "a.rs".into(),
                    target_fn: "announce".into(),
                }),
            ),
            site("crates/smr/src/a.rs", "own", "Relaxed", Role::Cas, Some(Annotation::Reason(Reason::OwnedStore))),
        ];
        let j1 = graph_json(&sites);
        let j2 = graph_json(&sites);
        assert_eq!(j1, j2);
        assert!(j1.contains("\"mp-ordering-graph/v1\""));
        assert!(j1.contains("rd"), "{j1}");
        assert!(j1.contains("announce"));
        assert!(!j1.contains("unrelated"), "uncited buckets stay out of the artifact: {j1}");
        let d = graph_dot(&sites);
        assert!(d.contains("digraph"));
        assert!(d.contains("reason:owned-store"));
        assert!(d.contains("-> \"crates/smr/src/a.rs:announce\""));
    }
}
