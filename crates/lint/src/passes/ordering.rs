//! Pass 2 — memory-ordering gate.
//!
//! Re-derives the paper's §4.3 fence placement mechanically: every
//! `Ordering::*` call site in a rule-scoped file is classified by protocol
//! role via `ordering.rules`, and `Relaxed` at a `publish`, `cas`, or
//! `retire_load` site is an error unless the site carries an
//! `// ORDERING:` justification naming its pairing fence (or why none is
//! needed — exclusive access, quiescence). Unclassified sites in scoped
//! files are errors too, so new atomics cannot dodge classification.

use crate::lexer::{enclosing_fn, FnSpan, LexFile};
use crate::rules::RuleSet;
use crate::{Diagnostic, PASS_ORDERING};

/// Words one of which the justification must contain: the pairing fence /
/// ordering, or the structural reason no pairing is needed.
const PAIRING_WORDS: &[&str] = &[
    "fence", "SeqCst", "Acquire", "Release", "AcqRel", "exclusive", "single-thread",
    "quiescent", "owned", "monotonic",
];

pub fn run(
    file: &str,
    f: &LexFile,
    spans: &[FnSpan],
    rules: &RuleSet,
    out: &mut Vec<Diagnostic>,
) {
    if !rules.in_scope(file) {
        return;
    }
    for i in 0..f.code.len() {
        if !(f.is_ident(i, "Ordering") && f.is_punct(i + 1, ':') && f.is_punct(i + 2, ':')) {
            continue;
        }
        let name = match f.tok(i + 3) {
            Some(crate::lexer::Tok::Ident(id)) => id.clone(),
            _ => continue,
        };
        let fn_name = enclosing_fn(spans, i).map(|s| s.name.clone());
        let rule = match rules.classify(file, fn_name.as_deref()) {
            Some(r) => r,
            None => {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: f.line_of(i),
                    col: f.col_of(i),
                    pass: PASS_ORDERING,
                    msg: format!(
                        "unclassified Ordering::{name} site in `{}` — add a \
                         (path, fn, role) rule to crates/lint/ordering.rules",
                        fn_name.as_deref().unwrap_or("<no fn>"),
                    ),
                });
                continue;
            }
        };
        if name == "Relaxed" && rule.role.gates_relaxed() {
            let just = f.attached_comment(i) + &f.trailing_comment(i);
            let ok = just
                .find("ORDERING:")
                .map(|p| {
                    let tail = &just[p..];
                    tail.len() > 12 && PAIRING_WORDS.iter().any(|w| tail.contains(w))
                })
                .unwrap_or(false);
            if !ok {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: f.line_of(i),
                    col: f.col_of(i),
                    pass: PASS_ORDERING,
                    msg: format!(
                        "Ordering::Relaxed at a {} site (rule {}:{}) — strengthen the \
                         ordering or attach `// ORDERING:` naming the pairing fence",
                        rule.role.name(),
                        rule.path_suffix,
                        rule.line,
                    ),
                });
            }
        }
    }
}
