//! Pass 1 — unsafe-invariant audit.
//!
//! Every `unsafe` block, `unsafe fn`, `unsafe impl`, and `unsafe trait`
//! must carry an attached `// SAFETY: [INV-xx]` comment citing a declared
//! invariant from `INVARIANTS.md`. "Attached" means within the contiguous
//! comment/attribute run directly above the statement or item (see
//! [`crate::lexer::LexFile::attached_comment`]); a site may cite several
//! invariants. Unknown IDs are as fatal as missing ones — a typo must not
//! pass the gate.

use crate::lexer::LexFile;
use crate::registry::{cited_invariants, Registry};
use crate::{Diagnostic, PASS_SAFETY};

pub fn run(file: &str, f: &LexFile, registry: &Registry, out: &mut Vec<Diagnostic>) {
    for i in 0..f.code.len() {
        if !f.is_ident(i, "unsafe") {
            continue;
        }
        let kind = match f.tok(i + 1) {
            Some(crate::lexer::Tok::Punct('{')) => "unsafe block",
            Some(crate::lexer::Tok::Ident(id)) => match id.as_str() {
                "fn" => "unsafe fn",
                "impl" => "unsafe impl",
                "trait" => "unsafe trait",
                "extern" => "unsafe extern block",
                // `pub unsafe fn` never occurs (`unsafe` follows `pub`), but
                // qualifiers after `unsafe` do: `unsafe extern "C" fn`.
                _ => "unsafe item",
            },
            _ => "unsafe item",
        };
        let comment = f.attached_comment(i) + &f.trailing_comment(i);
        if !comment.contains("SAFETY:") {
            out.push(Diagnostic {
                file: file.to_string(),
                line: f.line_of(i),
                col: f.col_of(i),
                pass: PASS_SAFETY,
                msg: format!(
                    "{kind} without an attached `// SAFETY: [INV-xx]` comment \
                     citing an invariant from INVARIANTS.md"
                ),
            });
            continue;
        }
        let cited = cited_invariants(&comment);
        if cited.is_empty() {
            out.push(Diagnostic {
                file: file.to_string(),
                line: f.line_of(i),
                col: f.col_of(i),
                pass: PASS_SAFETY,
                msg: format!(
                    "{kind}: SAFETY comment cites no `[INV-xx]` invariant ID \
                     (free-text safety arguments are not auditable)"
                ),
            });
            continue;
        }
        for id in cited {
            if !registry.contains(&id) {
                out.push(Diagnostic {
                    file: file.to_string(),
                    line: f.line_of(i),
                    col: f.col_of(i),
                    pass: PASS_SAFETY,
                    msg: format!(
                        "{kind}: SAFETY comment cites unknown invariant `[{id}]` \
                         (not declared in INVARIANTS.md)"
                    ),
                });
            }
        }
    }
}
