//! Pass 3 — protection-scope heuristic.
//!
//! A `Shared::deref()` (or `as_ref()`) is only sound under an active
//! protection (paper §2, §4.2). The lexical approximation enforced here:
//! inside data-structure and scheme code, every `.deref(` / `.as_ref(`
//! call must either
//!
//! 1. follow a `pin()` / `start_op()` call earlier in the same function
//!    body (the protection span is opened locally), or
//! 2. sit in a function annotated `// PROTECTION: <who-protects>` — for
//!    helpers that run inside a caller's span (`seek`), teardown paths with
//!    exclusive access (`Drop`), and scheme-internal validation machinery.
//!
//! The annotation is load-bearing documentation: it states *whose* span
//! discharges the obligation, and it is what a reviewer checks.

use crate::lexer::{enclosing_fn, FnSpan, LexFile};
use crate::{Diagnostic, PASS_SCOPE};

/// Files subject to the heuristic (normalized path infixes).
const SCOPE_INFIXES: &[&str] = &["crates/ds/src/", "crates/smr/src/schemes/"];

pub fn in_scope(file: &str) -> bool {
    SCOPE_INFIXES.iter().any(|p| file.contains(p))
}

pub fn run(file: &str, f: &LexFile, spans: &[FnSpan], out: &mut Vec<Diagnostic>) {
    if !in_scope(file) {
        return;
    }
    for i in 0..f.code.len() {
        let callee = if f.is_punct(i, '.') && f.is_punct(i + 2, '(') {
            match f.tok(i + 1) {
                Some(crate::lexer::Tok::Ident(id)) if id == "deref" || id == "as_ref" => id.clone(),
                _ => continue,
            }
        } else {
            continue;
        };
        let span = match enclosing_fn(spans, i) {
            Some(s) => s,
            None => {
                out.push(diag(file, f, i, &callee, "outside any function body"));
                continue;
            }
        };
        // (1) A pin()/start_op() call earlier in this function body.
        let body_start = span.body.unwrap_or(span.fn_kw);
        let mut pinned = false;
        for j in body_start..i {
            if (f.is_ident(j, "pin") || f.is_ident(j, "start_op")) && f.is_punct(j + 1, '(') {
                pinned = true;
                break;
            }
        }
        if pinned {
            continue;
        }
        // (2) A `// PROTECTION:` annotation on the enclosing function.
        if f.attached_comment(span.fn_kw).contains("PROTECTION:") {
            continue;
        }
        out.push(diag(
            file,
            f,
            i,
            &callee,
            &format!(
                "in `{}` with no preceding pin()/start_op() in the function body",
                span.name
            ),
        ));
    }
}

fn diag(file: &str, f: &LexFile, i: usize, callee: &str, detail: &str) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line: f.line_of(i),
        col: f.col_of(i),
        pass: PASS_SCOPE,
        msg: format!(
            ".{callee}() {detail} — open a protection span first, or annotate the \
             fn with `// PROTECTION: <who discharges the obligation>`"
        ),
    }
}
