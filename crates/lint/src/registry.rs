//! Parser for the machine-readable invariant registry (`INVARIANTS.md`).
//!
//! The registry is ordinary Markdown constrained to one convention: every
//! invariant is introduced by a level-2 heading of the form
//! `## INV-xx — title`. The linter only needs the set of declared IDs; the
//! prose (statement, paper citation, discharge obligations) is for humans.

use std::collections::BTreeSet;
use std::path::Path;

/// The set of declared invariant IDs (`INV-01`, `INV-02`, …).
#[derive(Debug, Default)]
pub struct Registry {
    pub ids: BTreeSet<String>,
}

impl Registry {
    /// Parses `INVARIANTS.md`. Returns an error string when the file is
    /// missing or declares no invariants — an empty registry would silently
    /// accept nothing and reject everything.
    pub fn load(path: &Path) -> Result<Registry, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read invariant registry {}: {e}", path.display()))?;
        let mut ids = BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("## ") {
                let id: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                    .collect();
                if id.starts_with("INV-") && id.len() > 4 {
                    ids.insert(id);
                }
            }
        }
        if ids.is_empty() {
            return Err(format!(
                "invariant registry {} declares no `## INV-xx` headings",
                path.display()
            ));
        }
        Ok(Registry { ids })
    }

    pub fn contains(&self, id: &str) -> bool {
        self.ids.contains(id)
    }
}

/// Extracts every `[INV-xx]` citation from a comment block.
pub fn cited_invariants(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("[INV-") {
        let tail = &rest[pos + 1..];
        let id: String =
            tail.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-').collect();
        if let Some(after) = tail.get(id.len()..) {
            if after.starts_with(']') && id.len() > 4 {
                out.push(id);
            }
        }
        rest = &rest[pos + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn citations_extracted() {
        let c = "// SAFETY: [INV-01] protected read; see also [INV-12].";
        assert_eq!(cited_invariants(c), vec!["INV-01", "INV-12"]);
        assert!(cited_invariants("// SAFETY: no citation").is_empty());
        assert!(cited_invariants("// [INV-] malformed").is_empty());
    }
}
