//! Parser for the memory-ordering rule file (`crates/lint/ordering.rules`).
//!
//! Each non-comment line classifies the `Ordering::*` call sites of one
//! (file, function) bucket by protocol role:
//!
//! ```text
//! # path-suffix        fn-glob      role
//! schemes/hp.rs        read         publish
//! schemes/hp.rs        empty        retire_load
//! schemes/hp.rs        *            counter
//! ```
//!
//! * `path-suffix` — matched against the end of the normalized (`/`) path.
//! * `fn-glob` — exact function name, `*` (any), or `prefix*`.
//! * `role` — one of `publish`, `cas`, `retire_load`, `counter`, `exempt`.
//!
//! Rules apply top-down, first match wins. A file with at least one rule is
//! *in scope*: every `Ordering::*` site in it must match some rule, so the
//! rule file cannot silently rot as functions are added.

use std::path::Path;

/// Protocol role of an `Ordering::*` call site (paper §4.3 fence placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Protection-publish store (hazard slot, margin announcement, epoch
    /// pin): `Relaxed` here lets the scan miss the announcement.
    Publish,
    /// CAS linearization point of a data-structure transition.
    Cas,
    /// Load of retire-era/epoch state judged by a reclamation scan.
    RetireLoad,
    /// Statistics / diagnostics counter: any ordering is fine.
    Counter,
    /// Explicitly out of protocol scope (tests, debug impls).
    Exempt,
}

impl Role {
    fn parse(s: &str) -> Option<Role> {
        Some(match s {
            "publish" => Role::Publish,
            "cas" => Role::Cas,
            "retire_load" => Role::RetireLoad,
            "counter" => Role::Counter,
            "exempt" => Role::Exempt,
            _ => return None,
        })
    }

    /// Roles where a `Relaxed` ordering requires an `// ORDERING:`
    /// justification naming the pairing fence.
    pub fn gates_relaxed(self) -> bool {
        matches!(self, Role::Publish | Role::Cas | Role::RetireLoad)
    }

    pub fn name(self) -> &'static str {
        match self {
            Role::Publish => "publish",
            Role::Cas => "cas",
            Role::RetireLoad => "retire_load",
            Role::Counter => "counter",
            Role::Exempt => "exempt",
        }
    }
}

/// One classification rule.
#[derive(Debug, Clone)]
pub struct Rule {
    pub path_suffix: String,
    pub fn_glob: String,
    pub role: Role,
    pub line: usize,
}

/// The parsed rule file.
#[derive(Debug, Default)]
pub struct RuleSet {
    pub rules: Vec<Rule>,
}

impl RuleSet {
    pub fn load(path: &Path) -> Result<RuleSet, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read ordering rules {}: {e}", path.display()))?;
        Self::parse(&text, &path.display().to_string())
    }

    pub fn parse(text: &str, origin: &str) -> Result<RuleSet, String> {
        let mut rules = Vec::new();
        for (lno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (p, f, r) = match (parts.next(), parts.next(), parts.next()) {
                (Some(p), Some(f), Some(r)) => (p, f, r),
                _ => {
                    return Err(format!(
                        "{origin}:{}: rule needs `path-suffix fn-glob role`, got `{line}`",
                        lno + 1
                    ))
                }
            };
            let role = Role::parse(r).ok_or_else(|| {
                format!("{origin}:{}: unknown role `{r}` (publish|cas|retire_load|counter|exempt)", lno + 1)
            })?;
            rules.push(Rule {
                path_suffix: p.to_string(),
                fn_glob: f.to_string(),
                role,
                line: lno + 1,
            });
        }
        if rules.is_empty() {
            return Err(format!("{origin}: rule file declares no rules"));
        }
        Ok(RuleSet { rules })
    }

    /// True if `file` (normalized with `/`) has at least one rule.
    pub fn in_scope(&self, file: &str) -> bool {
        self.rules.iter().any(|r| file.ends_with(&r.path_suffix))
    }

    /// First rule matching (file, fn). `fn_name` is `None` for sites outside
    /// any function (statics, consts), matched only by `*`.
    pub fn classify(&self, file: &str, fn_name: Option<&str>) -> Option<&Rule> {
        self.rules.iter().find(|r| {
            file.ends_with(&r.path_suffix) && glob_match(&r.fn_glob, fn_name)
        })
    }

    /// Self-check: rules unreachable under first-match-wins. Rule `B` is
    /// shadowed by an earlier rule `A` when every (file, fn) matching `B`
    /// also matches `A`: `B`'s path suffix ends with `A`'s (so any file
    /// matching `B` matches `A`) and `A`'s fn glob covers `B`'s. Returns
    /// `(earlier, shadowed)` pairs — silent config rot otherwise.
    pub fn shadowed(&self) -> Vec<(&Rule, &Rule)> {
        let mut out = Vec::new();
        for (bi, b) in self.rules.iter().enumerate() {
            if let Some(a) = self.rules[..bi].iter().find(|a| {
                b.path_suffix.ends_with(&a.path_suffix) && glob_covers(&a.fn_glob, &b.fn_glob)
            }) {
                out.push((a, b));
            }
        }
        out
    }
}

/// True if every fn name matching glob `b` also matches glob `a`.
fn glob_covers(a: &str, b: &str) -> bool {
    if a == "*" {
        return true;
    }
    if b == "*" {
        return false;
    }
    match (a.strip_suffix('*'), b.strip_suffix('*')) {
        (Some(ap), Some(bp)) => bp.starts_with(ap),
        (Some(ap), None) => b.starts_with(ap),
        (None, Some(_)) => false,
        (None, None) => a == b,
    }
}

fn glob_match(glob: &str, name: Option<&str>) -> bool {
    if glob == "*" {
        return true;
    }
    let name = match name {
        Some(n) => n,
        None => return false,
    };
    if let Some(prefix) = glob.strip_suffix('*') {
        name.starts_with(prefix)
    } else {
        name == glob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_classify_first_match_wins() {
        let rs = RuleSet::parse(
            "# comment\nschemes/hp.rs read publish\nschemes/hp.rs * counter\n",
            "test",
        )
        .unwrap();
        assert!(rs.in_scope("crates/smr/src/schemes/hp.rs"));
        assert!(!rs.in_scope("crates/smr/src/schemes/mp.rs"));
        let r = rs.classify("crates/smr/src/schemes/hp.rs", Some("read")).unwrap();
        assert_eq!(r.role, Role::Publish);
        let r = rs.classify("crates/smr/src/schemes/hp.rs", Some("other")).unwrap();
        assert_eq!(r.role, Role::Counter);
    }

    #[test]
    fn bad_role_rejected() {
        assert!(RuleSet::parse("a.rs f sloppy\n", "test").is_err());
        assert!(RuleSet::parse("a.rs f\n", "test").is_err());
        assert!(RuleSet::parse("# only comments\n", "test").is_err());
    }

    #[test]
    fn shadowed_rules_detected() {
        // Exact duplicate: shadowed.
        let rs = RuleSet::parse("a.rs read publish\na.rs read counter\n", "t").unwrap();
        assert_eq!(rs.shadowed().len(), 1);
        // Earlier `*` swallows everything after it for that suffix.
        let rs = RuleSet::parse("a.rs * cas\na.rs read publish\n", "t").unwrap();
        let sh = rs.shadowed();
        assert_eq!(sh.len(), 1);
        assert_eq!(sh[0].0.line, 1);
        assert_eq!(sh[0].1.line, 2);
        // Earlier prefix glob covers a longer exact name.
        let rs = RuleSet::parse("a.rs snap* retire_load\na.rs snapshot_into publish\n", "t").unwrap();
        assert_eq!(rs.shadowed().len(), 1);
        // Shorter path suffix matches a superset of files.
        let rs = RuleSet::parse("mp.rs read publish\nschemes/mp.rs read cas\n", "t").unwrap();
        assert_eq!(rs.shadowed().len(), 1);
        // Not shadowed: disjoint fns, disjoint suffixes, or the wider rule later.
        let rs = RuleSet::parse(
            "a.rs read publish\na.rs empty retire_load\nb.rs read cas\na.rs * counter\n\
             schemes/mp.rs read publish\nmp.rs read cas\n",
            "t",
        )
        .unwrap();
        assert!(rs.shadowed().is_empty(), "{:?}", rs.shadowed());
    }

    #[test]
    fn prefix_glob() {
        let rs = RuleSet::parse("a.rs snapshot_* retire_load\na.rs * exempt\n", "t").unwrap();
        assert_eq!(rs.classify("a.rs", Some("snapshot_hazards")).unwrap().role, Role::RetireLoad);
        assert_eq!(rs.classify("a.rs", None).unwrap().role, Role::Exempt);
    }
}
