//! Runtime scheme selection: [`SchemeKind`], [`AnySmr`], [`AnyHandle`].
//!
//! The seven schemes are distinct types, which is right for benchmarks
//! (static dispatch, no accidental cross-scheme state) but wrong for
//! operators: a binary that wants "the scheme named in `MP_SCHEME`" had to
//! carry a hand-written match in every driver. `AnySmr` is that match,
//! written once — an enum-dispatched facade implementing [`Smr`] whose
//! handles ([`AnyHandle`]) implement [`SmrHandle`], so every generic client
//! (data structures, the bench driver, the examples) runs unchanged over a
//! scheme chosen at runtime:
//!
//! ```
//! use mp_smr::{AnySmr, Config, SchemeKind, Smr, SmrHandle};
//!
//! let smr = AnySmr::try_with_kind(SchemeKind::Ebr, Config::default()).unwrap();
//! assert_eq!(smr.scheme_name(), "EBR");
//! let mut h = smr.try_register().unwrap();
//! let mut op = h.pin();
//! let node = op.alloc(42u32);
//! unsafe { op.retire(node) };
//! ```
//!
//! Selection precedence when no kind is given explicitly
//! ([`AnySmr::try_new`], [`SmrBuilder::try_build_any`]): the `MP_SCHEME`
//! environment variable if set (`mp`, `hp`, `ebr`, `he`, `ibr`, `dta`,
//! `leaky`, case-insensitive), else MP.
//!
//! The cost is one enum discriminant branch per handle call — noise next
//! to the fences the calls themselves issue. Benchmarks that measure those
//! fences should keep instantiating concrete scheme types.
//!
//! [`SmrBuilder::try_build_any`]: crate::builder::SmrBuilder::try_build_any

use std::sync::Arc;

use crate::api::{Config, Smr, SmrHandle};
use crate::backpressure::BackpressurePolicy;
use crate::error::SmrError;
use crate::packed::{Atomic, Shared};
use crate::schemes::{Dta, Ebr, He, Hp, Ibr, Leaky, Mp};
use crate::schemes::{DtaHandle, EbrHandle, HeHandle, HpHandle, IbrHandle, LeakyHandle, MpHandle};
use crate::telemetry::{HandleTelemetry, SchemeTelemetry, Telemetry};

/// Names one of the seven reclamation schemes, for runtime selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Margin pointers (the paper's scheme).
    Mp,
    /// Hazard pointers.
    Hp,
    /// Epoch-based reclamation.
    Ebr,
    /// Hazard eras.
    He,
    /// Interval-based reclamation.
    Ibr,
    /// Drop the Anchor.
    Dta,
    /// No reclamation (baseline).
    Leaky,
}

impl SchemeKind {
    /// Every selectable scheme, in the benchmark harness's canonical order.
    pub const ALL: [SchemeKind; 7] = [
        SchemeKind::Mp,
        SchemeKind::Hp,
        SchemeKind::Ebr,
        SchemeKind::He,
        SchemeKind::Ibr,
        SchemeKind::Dta,
        SchemeKind::Leaky,
    ];

    /// The scheme's display name, identical to its [`Smr::name`].
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Mp => "MP",
            SchemeKind::Hp => "HP",
            SchemeKind::Ebr => "EBR",
            SchemeKind::He => "HE",
            SchemeKind::Ibr => "IBR",
            SchemeKind::Dta => "DTA",
            SchemeKind::Leaky => "Leaky",
        }
    }

    /// The kind named by the `MP_SCHEME` environment variable, or `None`
    /// when the variable is unset or empty.
    ///
    /// # Panics
    /// On an unrecognized value — an operator typo should fail the process
    /// at startup, not silently benchmark the wrong scheme.
    pub fn from_env() -> Option<SchemeKind> {
        let raw = std::env::var("MP_SCHEME").ok()?;
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        match raw.parse() {
            Ok(kind) => Some(kind),
            Err(e) => panic!("MP_SCHEME: {e}"),
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchemeKind {
    type Err = String;

    fn from_str(s: &str) -> Result<SchemeKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "mp" => Ok(SchemeKind::Mp),
            "hp" => Ok(SchemeKind::Hp),
            "ebr" => Ok(SchemeKind::Ebr),
            "he" => Ok(SchemeKind::He),
            "ibr" => Ok(SchemeKind::Ibr),
            "dta" => Ok(SchemeKind::Dta),
            "leaky" => Ok(SchemeKind::Leaky),
            other => Err(format!(
                "unknown scheme {other:?} (expected one of: mp, hp, ebr, he, ibr, dta, leaky)"
            )),
        }
    }
}

/// Runtime-selected SMR scheme (see module docs).
pub enum AnySmr {
    /// A wrapped [`Mp`] instance.
    Mp(Arc<Mp>),
    /// A wrapped [`Hp`] instance.
    Hp(Arc<Hp>),
    /// A wrapped [`Ebr`] instance.
    Ebr(Arc<Ebr>),
    /// A wrapped [`He`] instance.
    He(Arc<He>),
    /// A wrapped [`Ibr`] instance.
    Ibr(Arc<Ibr>),
    /// A wrapped [`Dta`] instance.
    Dta(Arc<Dta>),
    /// A wrapped [`Leaky`] instance.
    Leaky(Arc<Leaky>),
}

/// Per-thread handle for [`AnySmr`].
pub enum AnyHandle {
    /// A wrapped [`Mp`] handle.
    Mp(MpHandle),
    /// A wrapped [`Hp`] handle.
    Hp(HpHandle),
    /// A wrapped [`Ebr`] handle.
    Ebr(EbrHandle),
    /// A wrapped [`He`] handle.
    He(HeHandle),
    /// A wrapped [`Ibr`] handle.
    Ibr(IbrHandle),
    /// A wrapped [`Dta`] handle.
    Dta(DtaHandle),
    /// A wrapped [`Leaky`] handle.
    Leaky(LeakyHandle),
}

/// One `match` covering every variant of [`AnySmr`] or [`AnyHandle`],
/// binding the inner value as `$inner` for `$body`.
macro_rules! delegate {
    ($enum:ident, $on:expr, $inner:ident => $body:expr) => {
        match $on {
            $enum::Mp($inner) => $body,
            $enum::Hp($inner) => $body,
            $enum::Ebr($inner) => $body,
            $enum::He($inner) => $body,
            $enum::Ibr($inner) => $body,
            $enum::Dta($inner) => $body,
            $enum::Leaky($inner) => $body,
        }
    };
}

impl AnySmr {
    /// Constructs the named scheme behind the facade.
    pub fn try_with_kind(kind: SchemeKind, cfg: Config) -> Result<Arc<AnySmr>, SmrError> {
        Ok(Arc::new(match kind {
            SchemeKind::Mp => AnySmr::Mp(Mp::try_new(cfg)?),
            SchemeKind::Hp => AnySmr::Hp(Hp::try_new(cfg)?),
            SchemeKind::Ebr => AnySmr::Ebr(Ebr::try_new(cfg)?),
            SchemeKind::He => AnySmr::He(He::try_new(cfg)?),
            SchemeKind::Ibr => AnySmr::Ibr(Ibr::try_new(cfg)?),
            SchemeKind::Dta => AnySmr::Dta(Dta::try_new(cfg)?),
            SchemeKind::Leaky => AnySmr::Leaky(Leaky::try_new(cfg)?),
        }))
    }

    /// Which scheme this facade wraps.
    pub fn kind(&self) -> SchemeKind {
        match self {
            AnySmr::Mp(_) => SchemeKind::Mp,
            AnySmr::Hp(_) => SchemeKind::Hp,
            AnySmr::Ebr(_) => SchemeKind::Ebr,
            AnySmr::He(_) => SchemeKind::He,
            AnySmr::Ibr(_) => SchemeKind::Ibr,
            AnySmr::Dta(_) => SchemeKind::Dta,
            AnySmr::Leaky(_) => SchemeKind::Leaky,
        }
    }

    /// The wrapped scheme's display name ("MP", "HP", …) — unlike
    /// [`Smr::name`], which is static and answers `"ANY"` for this type.
    pub fn scheme_name(&self) -> &'static str {
        self.kind().name()
    }

    /// The wrapped [`Dta`] instance, when this facade selected DTA — for
    /// clients that need the scheme-specific freezer hook.
    pub fn as_dta(&self) -> Option<&Arc<Dta>> {
        match self {
            AnySmr::Dta(s) => Some(s),
            _ => None,
        }
    }
}

impl Smr for AnySmr {
    type Handle = AnyHandle;

    /// Constructs the scheme named by `MP_SCHEME` (default: MP).
    fn try_new(cfg: Config) -> Result<Arc<Self>, SmrError> {
        let kind = SchemeKind::from_env().unwrap_or(SchemeKind::Mp);
        AnySmr::try_with_kind(kind, cfg)
    }

    fn try_register(self: &Arc<Self>) -> Result<AnyHandle, SmrError> {
        Ok(match &**self {
            AnySmr::Mp(s) => AnyHandle::Mp(s.try_register()?),
            AnySmr::Hp(s) => AnyHandle::Hp(s.try_register()?),
            AnySmr::Ebr(s) => AnyHandle::Ebr(s.try_register()?),
            AnySmr::He(s) => AnyHandle::He(s.try_register()?),
            AnySmr::Ibr(s) => AnyHandle::Ibr(s.try_register()?),
            AnySmr::Dta(s) => AnyHandle::Dta(s.try_register()?),
            AnySmr::Leaky(s) => AnyHandle::Leaky(s.try_register()?),
        })
    }

    fn name() -> &'static str {
        "ANY"
    }

    fn telemetry(&self) -> &SchemeTelemetry {
        delegate!(AnySmr, self, s => s.telemetry())
    }

    fn backpressure_policy(&self) -> &BackpressurePolicy {
        delegate!(AnySmr, self, s => s.backpressure_policy())
    }
}

impl AnyHandle {
    /// Which scheme this handle belongs to.
    pub fn kind(&self) -> SchemeKind {
        match self {
            AnyHandle::Mp(_) => SchemeKind::Mp,
            AnyHandle::Hp(_) => SchemeKind::Hp,
            AnyHandle::Ebr(_) => SchemeKind::Ebr,
            AnyHandle::He(_) => SchemeKind::He,
            AnyHandle::Ibr(_) => SchemeKind::Ibr,
            AnyHandle::Dta(_) => SchemeKind::Dta,
            AnyHandle::Leaky(_) => SchemeKind::Leaky,
        }
    }
}

impl Telemetry for AnyHandle {
    fn tele(&self) -> &HandleTelemetry {
        delegate!(AnyHandle, self, h => h.tele())
    }

    fn tele_mut(&mut self) -> &mut HandleTelemetry {
        delegate!(AnyHandle, self, h => h.tele_mut())
    }
}

impl SmrHandle for AnyHandle {
    fn start_op(&mut self) {
        delegate!(AnyHandle, self, h => h.start_op())
    }

    fn end_op(&mut self) {
        delegate!(AnyHandle, self, h => h.end_op())
    }

    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, refno: usize) -> Shared<T> {
        delegate!(AnyHandle, self, h => h.read(src, refno))
    }

    fn unprotect(&mut self, refno: usize) {
        delegate!(AnyHandle, self, h => h.unprotect(refno))
    }

    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T> {
        delegate!(AnyHandle, self, h => h.alloc(data))
    }

    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T> {
        delegate!(AnyHandle, self, h => h.alloc_with_index(data, index))
    }

    // SAFETY: [INV-11] trait contract forwarded verbatim to the wrapped
    // handle; this facade adds no aliasing of its own.
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>) {
        // SAFETY: [INV-04] forwarded from this fn's own contract.
        delegate!(AnyHandle, self, h => unsafe { h.retire(node) })
    }

    fn update_lower_bound<T: Send + Sync>(&mut self, node: Shared<T>) {
        delegate!(AnyHandle, self, h => h.update_lower_bound(node))
    }

    fn update_upper_bound<T: Send + Sync>(&mut self, node: Shared<T>) {
        delegate!(AnyHandle, self, h => h.update_upper_bound(node))
    }

    fn retired_len(&self) -> usize {
        delegate!(AnyHandle, self, h => h.retired_len())
    }

    fn force_empty(&mut self) {
        delegate!(AnyHandle, self, h => h.force_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_all_names_case_insensitively() {
        for kind in SchemeKind::ALL {
            assert_eq!(kind.name().parse::<SchemeKind>().unwrap(), kind);
            assert_eq!(kind.name().to_ascii_lowercase().parse::<SchemeKind>().unwrap(), kind);
        }
        assert!("btrfs".parse::<SchemeKind>().is_err());
    }

    #[test]
    fn facade_runs_the_full_handle_protocol_per_scheme() {
        for kind in SchemeKind::ALL {
            let smr =
                AnySmr::try_with_kind(kind, Config::default().with_max_threads(2)).unwrap();
            assert_eq!(smr.kind(), kind);
            assert_eq!(smr.scheme_name(), kind.name());
            let mut h = smr.try_register().unwrap();
            assert_eq!(h.kind(), kind);
            let mut op = h.pin();
            let node = op.alloc(7u64);
            let cell = Atomic::new(node);
            let r = op.read(&cell, 0);
            // SAFETY: [INV-12] protected by the read above within this op.
            assert_eq!(unsafe { *r.deref().data() }, 7);
            cell.store(Shared::null(), core::sync::atomic::Ordering::Release);
            // SAFETY: [INV-12] unlinked above, retired once.
            unsafe { op.retire(node) };
            drop(op);
            h.force_empty();
            drop(h);
        }
    }

    #[test]
    fn registry_exhaustion_surfaces_through_the_facade() {
        let smr =
            AnySmr::try_with_kind(SchemeKind::Hp, Config::default().with_max_threads(1)).unwrap();
        let h = smr.try_register().unwrap();
        match smr.try_register() {
            Err(SmrError::RegistryExhausted { max_threads }) => assert_eq!(max_threads, 1),
            Err(e) => panic!("unexpected error: {e}"),
            Ok(_) => panic!("expected RegistryExhausted"),
        }
        drop(h);
        assert!(smr.try_register().is_ok(), "slot recycles after handle drop");
    }

    #[test]
    fn dta_accessor_exposes_the_freezer_hook() {
        let smr =
            AnySmr::try_with_kind(SchemeKind::Dta, Config::default().with_max_threads(1)).unwrap();
        assert!(smr.as_dta().is_some());
        let smr =
            AnySmr::try_with_kind(SchemeKind::Mp, Config::default().with_max_threads(1)).unwrap();
        assert!(smr.as_dta().is_none());
    }
}
