//! The SMR scheme interface (paper §2, Listing 1).
//!
//! A scheme is split into shared state ([`Smr`]) and a per-thread handle
//! ([`SmrHandle`]). The handle carries the thread's retired list, protection
//! slots cursor, and statistics; it is `Send` (movable to the thread that
//! will use it) but not shared between threads, matching the paper's model
//! of per-thread SMR state.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Instant;

use crate::error::SmrError;
use crate::packed::{Atomic, Shared};
use crate::stats::OpStats;
use crate::telemetry::{self, SchemeTelemetry, Telemetry};

/// Tunable SMR parameters (paper §4.3 Listing 2 constants + §6 defaults).
#[derive(Debug, Clone)]
pub struct Config {
    /// Capacity of per-thread slot arrays; at most this many handles may be
    /// registered concurrently (`thread_cnt`).
    pub max_threads: usize,
    /// Protection slots per thread (`MPs_per_thread`); each `refno` passed
    /// to [`SmrHandle::read`] must be `< slots_per_thread`.
    pub slots_per_thread: usize,
    /// Retire calls between reclamation attempts (`empty_freq`; §6 uses 30).
    /// Under the adaptive watermark trigger this is the *re-arm floor*: the
    /// minimum number of further retires before the next scan when the
    /// previous one could not shrink the list (stalled reader).
    pub empty_freq: usize,
    /// Adaptive scan watermark in retired nodes per handle: a reclamation
    /// scan triggers when the handle's retired list reaches this length.
    /// `0` (the default) auto-derives HP's classical `k × H` rule —
    /// `max(empty_freq, 2 · max_threads · slots_per_thread)` — so scan
    /// frequency tracks the retire rate, not the operation rate. When left
    /// at `0`, the `MP_SCAN_WATERMARK` environment variable (read at scheme
    /// construction) supplies the value before the auto rule kicks in; an
    /// explicit non-zero knob always wins over the environment.
    pub scan_watermark: usize,
    /// Adaptive scan watermark in retired *bytes* per handle: when non-zero,
    /// a scan also triggers once the handle's buffered retired bytes reach
    /// this figure (large payloads scan sooner than the node-count rule
    /// alone would). `0` disables the bytes trigger unless the
    /// `MP_SCAN_WATERMARK_BYTES` environment variable supplies one; an
    /// explicit non-zero knob always wins over the environment.
    pub scan_watermark_bytes: usize,
    /// Events (allocations for HE/IBR/EBR, unlinks for MP) a thread performs
    /// between increments of the global epoch (`epoch_freq`; §6 uses 150·T).
    pub epoch_freq: usize,
    /// MP protection interval size (`margin`; §6 picks 2^20). Must exceed
    /// 2^16 or the pointer-precision check can never pass (§4.3.1).
    pub margin: u32,
    /// Maximal assignable index (`max_index`).
    pub max_index: u32,
    /// DTA: node traversals between anchor updates (the paper uses 100).
    pub anchor_hops: usize,
    /// DTA: reclamation attempts tolerated before a non-advancing thread is
    /// declared stalled and its anchored segment is frozen.
    pub stall_patience: usize,
    /// Ablation switch: disable the §6 snapshot optimization in `empty()`
    /// (rescan the live slot arrays for every retired node, as the
    /// unoptimized IBR-framework baselines did).
    pub ablation_naive_scan: bool,
    /// Ablation switch: fence after clearing each slot in `end_op` instead
    /// of once after clearing them all (undoes the other §6 optimization).
    pub ablation_per_slot_fence: bool,
    /// Ablation switch: restore the pre-watermark fixed scan cadence (one
    /// `empty()` every `empty_freq` retires, regardless of how much the
    /// previous scan reclaimed). Baseline for the scan-cost-per-free
    /// comparison in `BENCH_throughput.json`.
    pub ablation_fixed_cadence: bool,
    /// Backpressure hard cap in retired payload bytes (0 = disabled).
    /// When the scheme's retired-bytes gauge reaches half this figure,
    /// retiring threads escalate onto the help-scan rung (adopt orphans,
    /// scan for laggards); at the full figure allocations additionally
    /// take a bounded backoff. When left at `0`, the `MP_BP_BYTES`
    /// environment variable (read at scheme construction) supplies the
    /// cap; an explicit non-zero knob always wins over the environment.
    /// See [`crate::backpressure`].
    pub backpressure_bytes: usize,
    /// Ablation switch: MP index assignment policy (default midpoint).
    pub index_policy: IndexPolicy,
}

/// MP's new-node index assignment policy (§4.1 mentions the midpoint as one
/// of several possible policies; this knob enables the ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexPolicy {
    /// `(pred.index + succ.index) / 2` — the paper's choice.
    #[default]
    Midpoint,
    /// `pred.index + 1` — clusters indices toward the predecessor; collides
    /// as soon as a gap fills from the left.
    AfterPred,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_threads: 32,
            slots_per_thread: 8,
            empty_freq: 30,
            scan_watermark: 0,
            scan_watermark_bytes: 0,
            epoch_freq: 150,
            margin: 1 << 20,
            max_index: u32::MAX - 1,
            anchor_hops: 100,
            stall_patience: 8,
            ablation_naive_scan: false,
            ablation_per_slot_fence: false,
            ablation_fixed_cadence: false,
            backpressure_bytes: 0,
            index_policy: IndexPolicy::Midpoint,
        }
    }
}

/// A violated [`Config`] invariant, reported by [`Config::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `margin` does not exceed the 2^16 pointer precision (§4.3.1): the
    /// packed index check could then never pass and every read would take
    /// the hazard-pointer fallback.
    MarginTooSmall {
        /// The rejected margin.
        margin: u32,
    },
    /// `max_index` is not greater than `2 · margin`: the index space would
    /// not fit even two disjoint protection intervals, so midpoint
    /// assignment degenerates immediately into `USE_HP` collisions.
    MaxIndexTooSmall {
        /// The rejected maximal index.
        max_index: u32,
        /// The margin it must exceed twice over.
        margin: u32,
    },
    /// `slots_per_thread` is zero: no operation could protect anything.
    ZeroSlots,
    /// `max_threads` is zero: no handle could ever register.
    ZeroThreads,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::MarginTooSmall { margin } => write!(
                f,
                "margin ({margin}) must exceed pointer precision (2^16 = {}), §4.3.1",
                1u32 << 16
            ),
            ConfigError::MaxIndexTooSmall { max_index, margin } => write!(
                f,
                "max_index ({max_index}) must exceed 2·margin ({})",
                2u64 * margin as u64
            ),
            ConfigError::ZeroSlots => write!(f, "slots_per_thread must be > 0"),
            ConfigError::ZeroThreads => write!(f, "max_threads must be > 0"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Checks every cross-field invariant; every scheme's [`Smr::new`]
    /// calls this, so an invalid combination (e.g. a `max_index` smaller
    /// than the margin it is supposed to contain) fails loudly at
    /// construction instead of silently degrading protection.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.slots_per_thread == 0 {
            return Err(ConfigError::ZeroSlots);
        }
        if self.margin <= 1 << 16 {
            return Err(ConfigError::MarginTooSmall { margin: self.margin });
        }
        if self.max_index as u64 <= 2 * self.margin as u64 {
            return Err(ConfigError::MaxIndexTooSmall {
                max_index: self.max_index,
                margin: self.margin,
            });
        }
        Ok(())
    }

    /// Sets the maximum number of concurrently registered handles.
    pub fn with_max_threads(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.max_threads = n;
        self
    }

    /// Sets the number of protection slots per thread.
    pub fn with_slots_per_thread(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.slots_per_thread = n;
        self
    }

    /// Sets how many retires elapse between reclamation attempts.
    pub fn with_empty_freq(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.empty_freq = n;
        self
    }

    /// Sets the adaptive scan watermark in retired nodes per handle
    /// (`0` = auto-derive `max(empty_freq, 2·T·H)` at scheme construction).
    pub fn with_scan_watermark(mut self, n: usize) -> Self {
        self.scan_watermark = n;
        self
    }

    /// Sets the adaptive scan watermark in retired bytes per handle
    /// (`0` = bytes trigger disabled).
    pub fn with_scan_watermark_bytes(mut self, n: usize) -> Self {
        self.scan_watermark_bytes = n;
        self
    }

    /// Sets how many allocations/unlinks elapse between epoch increments.
    pub fn with_epoch_freq(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.epoch_freq = n;
        self
    }

    /// Sets MP's margin (protected interval size). Must be > 2^16.
    pub fn with_margin(mut self, margin: u32) -> Self {
        assert!(margin > 1 << 16, "margin must exceed pointer precision (2^16)");
        self.margin = margin;
        self
    }

    /// Sets the maximal assignable index. Must exceed `2 · margin` (checked
    /// by [`validate`](Config::validate) at scheme construction).
    pub fn with_max_index(mut self, n: u32) -> Self {
        assert!(n > 0);
        self.max_index = n;
        self
    }

    /// Sets DTA's anchor distance (node hops between anchor updates).
    pub fn with_anchor_hops(mut self, k: usize) -> Self {
        assert!(k > 0);
        self.anchor_hops = k;
        self
    }

    /// Sets DTA's stall-detection patience.
    pub fn with_stall_patience(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.stall_patience = n;
        self
    }

    /// Disables the snapshot optimization in reclamation scans (ablation).
    pub fn with_naive_scan(mut self, on: bool) -> Self {
        self.ablation_naive_scan = on;
        self
    }

    /// Fences per cleared slot in `end_op` (ablation).
    pub fn with_per_slot_fence(mut self, on: bool) -> Self {
        self.ablation_per_slot_fence = on;
        self
    }

    /// Restores the fixed `empty_freq` scan cadence (ablation baseline for
    /// the adaptive watermark trigger).
    pub fn with_fixed_cadence(mut self, on: bool) -> Self {
        self.ablation_fixed_cadence = on;
        self
    }

    /// Sets the backpressure hard cap in retired payload bytes
    /// (`0` = ladder disabled unless `MP_BP_BYTES` supplies a cap).
    pub fn with_backpressure_bytes(mut self, n: usize) -> Self {
        self.backpressure_bytes = n;
        self
    }

    /// Selects MP's index assignment policy (ablation).
    pub fn with_index_policy(mut self, p: IndexPolicy) -> Self {
        self.index_policy = p;
        self
    }
}

/// Shared state of an SMR scheme.
pub trait Smr: Send + Sync + Sized + 'static {
    /// The per-thread handle type.
    type Handle: SmrHandle;

    /// Constructs the scheme with the given configuration, reporting an
    /// invalid configuration as [`SmrError::Config`] instead of panicking.
    fn try_new(cfg: Config) -> Result<Arc<Self>, SmrError>;

    /// Registers the calling context as a participating thread and returns
    /// its handle, or [`SmrError::RegistryExhausted`] when
    /// `Config::max_threads` handles are already live — a recoverable
    /// condition: retry after a peer drops its handle (tids recycle).
    fn try_register(self: &Arc<Self>) -> Result<Self::Handle, SmrError>;

    /// Constructs the scheme with the given configuration.
    ///
    /// Panicking shim over [`try_new`](Smr::try_new), kept for one release;
    /// new code should prefer the fallible constructor.
    fn new(cfg: Config) -> Arc<Self> {
        match Self::try_new(cfg) {
            Ok(smr) => smr,
            Err(e) => panic!("{e}"),
        }
    }

    /// Registers the calling context as a participating thread and returns
    /// its handle. Panics if `Config::max_threads` handles are already live.
    ///
    /// Panicking shim over [`try_register`](Smr::try_register), kept for
    /// one release; new code should prefer the fallible constructor.
    fn register(self: &Arc<Self>) -> Self::Handle {
        match self.try_register() {
            Ok(h) => h,
            Err(SmrError::RegistryExhausted { .. }) => {
                panic!("SMR: more handles registered than Config::max_threads")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Human-readable scheme name (used by the benchmark harness).
    fn name() -> &'static str;

    /// Scheme-wide telemetry: the pending-waste gauge and the waste
    /// time-series (Fig. 6 as a live curve). Every scheme exposes the
    /// same state, so consumers never match on scheme types.
    fn telemetry(&self) -> &SchemeTelemetry;

    /// The backpressure watermarks this scheme instance resolved at
    /// construction (see [`crate::backpressure`]).
    fn backpressure_policy(&self) -> &crate::backpressure::BackpressurePolicy;

    /// Global gauge: retired nodes not yet reclaimed, across all handles
    /// (the paper's *wasted memory*). Includes orphaned retired nodes.
    fn retired_pending(&self) -> usize {
        self.telemetry().pending()
    }

    /// Whether the scheme is at or above its backpressure hard cap right
    /// now — `Err` carries the gauge reading and the cap. For producers
    /// that prefer shedding load over being throttled; always `Ok` when
    /// backpressure is disabled.
    fn check_backpressure(&self) -> Result<(), crate::error::BackpressureError> {
        crate::backpressure::check(self.backpressure_policy(), self.telemetry().pending_bytes())
    }

    /// Appends one sample — (now, pending nodes, pending bytes) — to the
    /// waste time-series. Allocation-free and lock-free; call it from a
    /// poller loop or hand the scheme to a
    /// [`WasteSampler`](crate::telemetry::WasteSampler). Both figures are
    /// scheme-wide (this instance only): the bytes no longer read the
    /// process-global node gauge, which conflated concurrently live
    /// schemes.
    fn sample_waste(&self) {
        let t = self.telemetry();
        t.waste().record(t.pending() as u64, t.pending_bytes() as u64);
    }
}

/// Per-thread SMR operations (paper Listing 1).
///
/// # Protocol
///
/// * Bracket every data-structure operation with [`start_op`]/[`end_op`].
/// * Load shared node pointers only through [`read`], passing a `refno`
///   identifying which local reference is being refreshed (`prev`, `curr`,
///   …). The returned [`Shared`] may be dereferenced until `end_op` (or
///   until the same `refno` is reused, for address-protecting schemes).
/// * `read(src, refno)` is only sound when `src` is a field of a node that
///   is itself protected by this handle (or a structure root), and the
///   client follows the usual hazard-pointer validation discipline — the
///   schemes revalidate `*src` after announcing protection, which proves
///   the target was linked at announcement time (§3.1).
/// * Do not hold references across operations (§2 model assumption).
///
/// [`start_op`]: SmrHandle::start_op
/// [`end_op`]: SmrHandle::end_op
/// [`read`]: SmrHandle::read
pub trait SmrHandle: Send + Telemetry + 'static {
    /// Begins an operation and returns an RAII guard that ends it on drop.
    ///
    /// This is the preferred client entry point: the returned [`OpGuard`]
    /// calls [`start_op`](SmrHandle::start_op) on creation and
    /// [`end_op`](SmrHandle::end_op) when dropped (including during
    /// unwinding), so unbalanced bracketing is impossible. The guard
    /// derefs to the handle, so `read`/`alloc`/`retire` are called on it
    /// directly:
    ///
    /// ```
    /// use mp_smr::{Config, Smr, SmrHandle, schemes::Mp};
    ///
    /// let smr = Mp::new(Config::default().with_max_threads(1));
    /// let mut h = smr.register();
    /// let mut op = h.pin();
    /// let node = op.alloc_with_index(42u64, 7 << 16);
    /// // ... link `node`, traverse via op.read(...), later unlink it ...
    /// unsafe { op.retire(node) };
    /// drop(op); // end_op: all protections released
    /// ```
    ///
    /// Operations must not be nested: do not call `pin` (or a data-structure
    /// operation, which pins internally) while a guard from the same handle
    /// is alive. Under `--features oracle` this rule is enforced: a nested
    /// `pin` on one thread panics with the offending scheme and replay seed.
    fn pin(&mut self) -> OpGuard<'_, Self>
    where
        Self: Sized,
    {
        #[cfg(feature = "oracle")]
        crate::oracle::pin_enter();
        // When telemetry is armed the guard times the whole operation into
        // the op-latency histogram; disarmed this is one relaxed load.
        let t0 = telemetry::timer();
        self.start_op();
        OpGuard { handle: self, t0 }
    }

    /// Begins a data-structure operation (announces epoch/activity).
    ///
    /// Prefer [`pin`](SmrHandle::pin), which cannot leak the operation;
    /// the raw `start_op`/`end_op` pair remains for implementors of data
    /// structures that manage bracketing across helper functions.
    fn start_op(&mut self);

    /// Ends the operation and releases all protections (one fence).
    fn end_op(&mut self);

    /// Protected pointer load: dereferencing the returned pointer is safe
    /// until `end_op`, provided the caller respects the trait-level
    /// protocol. Loops internally until protection is validated, so it is
    /// lock-free rather than wait-free (paper Thm 4.4).
    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, refno: usize) -> Shared<T>;

    /// Declares that the local reference `refno` is dropped. A no-op in MP
    /// (margins keep protecting future accesses, §4.3) and in epoch-based
    /// schemes; clears the slot in HP.
    fn unprotect(&mut self, _refno: usize) {}

    /// Allocates a node for `data`. For MP the index is the midpoint of the
    /// current search interval maintained via [`update_lower_bound`] /
    /// [`update_upper_bound`] (Listing 5); other schemes ignore indices.
    ///
    /// # Allocation behavior
    ///
    /// Node memory is served from a per-thread segregated block pool
    /// ([`mp_util::pool`]) when possible, so steady-state churn —
    /// alloc, retire, reclaim, alloc again — performs no real heap
    /// allocations; [`OpStats::pool_hits`]/[`OpStats::pool_misses`] record
    /// the split. Reclaimed node blocks are returned to the same pool.
    ///
    /// [`update_lower_bound`]: SmrHandle::update_lower_bound
    /// [`update_upper_bound`]: SmrHandle::update_upper_bound
    /// [`OpStats::pool_hits`]: crate::stats::OpStats::pool_hits
    /// [`OpStats::pool_misses`]: crate::stats::OpStats::pool_misses
    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T>;

    /// Allocates a node with an explicit index — for sentinel nodes whose
    /// position in the key space is fixed (paper §5.1 step 3).
    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T>;

    /// Retires a removed node: buffers it and reclaims it once unprotected.
    ///
    /// # Safety
    /// `node` must be *removed* (no shared pointer leads to it), non-null,
    /// and retired at most once (§2 model).
    // SAFETY: [INV-11] trait declaration: obligation stated in `# Safety`
    // above, discharged by every caller ([INV-04]).
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>);

    /// MP extension: the search interval's lower endpoint moved to `node`
    /// (Listing 5). Default no-op; requires `node` to be protected.
    fn update_lower_bound<T: Send + Sync>(&mut self, _node: Shared<T>) {}

    /// MP extension: the search interval's upper endpoint moved to `node`.
    fn update_upper_bound<T: Send + Sync>(&mut self, _node: Shared<T>) {}

    /// Immutable view of this handle's counters. For a mergeable copy
    /// that includes latency histograms, use
    /// [`Telemetry::snapshot`](crate::telemetry::Telemetry::snapshot).
    fn stats(&self) -> &OpStats {
        self.tele().stats()
    }

    /// Mutable counters.
    ///
    /// Deprecated: raw field pokes bypass event tracing and saturation.
    /// Use the typed recorders on [`Telemetry`] instead —
    /// [`record_node_traversed`](Telemetry::record_node_traversed) for
    /// Figure 5's denominator,
    /// [`reset_telemetry`](Telemetry::reset_telemetry) to zero a
    /// measurement window.
    #[deprecated(
        since = "0.2.0",
        note = "use the typed Telemetry recorders (record_node_traversed, \
                reset_telemetry, …) instead of poking OpStats fields"
    )]
    fn stats_mut(&mut self) -> &mut OpStats {
        self.tele_mut().stats_raw_mut()
    }

    /// Current length of this handle's retired list (wasted memory held by
    /// this thread).
    fn retired_len(&self) -> usize;

    /// Forces a reclamation attempt regardless of `empty_freq` cadence.
    ///
    /// Scans are allocation-free in steady state: the retired list swaps
    /// through a handle-retained scratch `Vec` and protection snapshots
    /// refill handle-owned buffers in place. [`OpStats::scan_heap_allocs`]
    /// counts the scans that still had to grow a buffer (warm-up or a new
    /// high-water mark).
    ///
    /// [`OpStats::scan_heap_allocs`]: crate::stats::OpStats::scan_heap_allocs
    fn force_empty(&mut self);
}

/// RAII scope of one SMR-bracketed operation, created by
/// [`SmrHandle::pin`]: `start_op` has run, and `end_op` runs exactly once
/// when the guard drops — on every exit path, including panics. Derefs
/// mutably to the handle so all [`SmrHandle`] methods are available on the
/// guard itself.
///
/// Pointers returned by [`read`](SmrHandle::read) during the guard's
/// lifetime must not be dereferenced after it drops (the same rule as the
/// raw API's "until `end_op`", now enforced by scope ordering in typical
/// usage).
pub struct OpGuard<'a, H: SmrHandle> {
    handle: &'a mut H,
    /// Armed-telemetry op timer; `None` when telemetry is disarmed.
    t0: Option<Instant>,
}

impl<H: SmrHandle> Deref for OpGuard<'_, H> {
    type Target = H;

    #[inline]
    fn deref(&self) -> &H {
        self.handle
    }
}

impl<H: SmrHandle> DerefMut for OpGuard<'_, H> {
    #[inline]
    fn deref_mut(&mut self) -> &mut H {
        self.handle
    }
}

impl<H: SmrHandle> Drop for OpGuard<'_, H> {
    fn drop(&mut self) {
        self.handle.end_op();
        // Time after end_op so the sample includes the release fence —
        // that is the latency a client actually observes per operation.
        if let Some(t0) = self.t0 {
            self.handle.tele_mut().record_op_nanos(t0.elapsed().as_nanos() as u64);
        }
        #[cfg(feature = "oracle")]
        crate::oracle::pin_exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_section6() {
        let c = Config::default();
        assert_eq!(c.empty_freq, 30);
        assert_eq!(c.epoch_freq, 150);
        assert_eq!(c.margin, 1 << 20);
        assert_eq!(c.anchor_hops, 100);
        assert!(c.margin > 1 << 16);
        assert_eq!(c.scan_watermark, 0, "watermark auto-derives k·H by default");
        assert_eq!(c.scan_watermark_bytes, 0, "bytes trigger off by default");
        assert_eq!(c.backpressure_bytes, 0, "backpressure ladder off by default");
        assert!(!c.ablation_fixed_cadence);
    }

    #[test]
    #[should_panic(expected = "margin must exceed")]
    fn margin_below_precision_rejected() {
        let _ = Config::default().with_margin(1 << 16);
    }

    #[test]
    fn builder_setters() {
        let c = Config::default()
            .with_max_threads(4)
            .with_slots_per_thread(3)
            .with_empty_freq(10)
            .with_epoch_freq(20)
            .with_margin(1 << 18)
            .with_max_index(1 << 24)
            .with_anchor_hops(50)
            .with_stall_patience(2)
            .with_scan_watermark(128)
            .with_scan_watermark_bytes(1 << 20)
            .with_backpressure_bytes(1 << 22)
            .with_fixed_cadence(true);
        assert_eq!(c.max_threads, 4);
        assert_eq!(c.slots_per_thread, 3);
        assert_eq!(c.empty_freq, 10);
        assert_eq!(c.epoch_freq, 20);
        assert_eq!(c.margin, 1 << 18);
        assert_eq!(c.max_index, 1 << 24);
        assert_eq!(c.anchor_hops, 50);
        assert_eq!(c.stall_patience, 2);
        assert_eq!(c.scan_watermark, 128);
        assert_eq!(c.scan_watermark_bytes, 1 << 20);
        assert_eq!(c.backpressure_bytes, 1 << 22);
        assert!(c.ablation_fixed_cadence);
    }

    #[test]
    fn validate_accepts_default_and_rejects_each_invariant() {
        assert_eq!(Config::default().validate(), Ok(()));

        let c = Config { max_threads: 0, ..Config::default() };
        assert_eq!(c.validate(), Err(ConfigError::ZeroThreads));

        let c = Config { slots_per_thread: 0, ..Config::default() };
        assert_eq!(c.validate(), Err(ConfigError::ZeroSlots));

        // 2^16 exactly is not strictly greater than the precision.
        let c = Config { margin: 1 << 16, ..Config::default() };
        assert_eq!(c.validate(), Err(ConfigError::MarginTooSmall { margin: 1 << 16 }));

        // Silently-accepted combination from before this check existed:
        // a max_index the margin swallows whole.
        let c = Config::default().with_margin(1 << 20).with_max_index(1 << 20);
        assert_eq!(
            c.validate(),
            Err(ConfigError::MaxIndexTooSmall { max_index: 1 << 20, margin: 1 << 20 })
        );
        // The boundary itself is rejected (strict inequality)...
        let c = Config::default().with_margin(1 << 20).with_max_index(1 << 21);
        assert!(c.validate().is_err());
        // ... one past it is accepted.
        let c = Config::default().with_margin(1 << 20).with_max_index((1 << 21) + 1);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn config_error_messages_name_the_fields() {
        let e = ConfigError::MaxIndexTooSmall { max_index: 5, margin: 70_000 };
        let msg = e.to_string();
        assert!(msg.contains("max_index") && msg.contains("140000"), "{msg}");
        assert!(ConfigError::MarginTooSmall { margin: 3 }.to_string().contains("65536"));
    }

    #[test]
    fn schemes_reject_invalid_config_at_construction() {
        let bad = Config::default().with_margin(1 << 20).with_max_index(1 << 19);
        for result in [
            std::panic::catch_unwind(|| crate::schemes::Mp::new(bad.clone())).map(drop),
            std::panic::catch_unwind(|| crate::schemes::Hp::new(bad.clone())).map(drop),
            std::panic::catch_unwind(|| crate::schemes::Ebr::new(bad.clone())).map(drop),
        ] {
            assert!(result.is_err(), "invalid config must be rejected by every scheme");
        }
    }

    #[test]
    fn op_guard_brackets_and_releases_on_drop() {
        use crate::schemes::Mp;
        let smr = Mp::new(Config::default().with_max_threads(1));
        let mut h = smr.register();
        let fences_before = h.stats().fences;
        let mut op = h.pin();
        assert_eq!(op.stats().ops, 1, "pin must start_op");
        let n = op.alloc_with_index(1u8, 5 << 16);
        unsafe { op.retire(n) }; // SAFETY: [INV-12] never published, retired once.
        drop(op);
        // Amortized MP: the first start_op announces the epoch (one fence);
        // end_op releases hazard slots fence-free and keeps the margins.
        assert_eq!(h.stats().fences, fences_before + 1, "first pin announces once");
        assert_eq!(h.stats().fences_start_op, 1);
        assert_eq!(h.stats().fences_end_op, 0, "amortized end_op is fence-free");
        // The handle is reusable after the guard drops.
        let op = h.pin();
        assert_eq!(op.stats().ops, 2);
    }

    #[test]
    fn op_guard_ends_op_during_unwind() {
        use crate::schemes::Mp;
        let smr = Mp::new(Config::default().with_max_threads(1));
        let mut h = smr.register();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _op = h.pin();
            panic!("client panicked mid-operation");
        }));
        assert!(caught.is_err());
        assert_eq!(h.stats().ops, 1);
        // end_op (fence-free under amortized MP) must still have run: the
        // hazard row is cleared even though no fence is issued.
        assert_eq!(h.stats().fences, 1, "only the start_op announcement fences");
    }
}
