//! The SMR scheme interface (paper §2, Listing 1).
//!
//! A scheme is split into shared state ([`Smr`]) and a per-thread handle
//! ([`SmrHandle`]). The handle carries the thread's retired list, protection
//! slots cursor, and statistics; it is `Send` (movable to the thread that
//! will use it) but not shared between threads, matching the paper's model
//! of per-thread SMR state.

use std::sync::Arc;

use crate::packed::{Atomic, Shared};
use crate::stats::OpStats;

/// Tunable SMR parameters (paper §4.3 Listing 2 constants + §6 defaults).
#[derive(Debug, Clone)]
pub struct Config {
    /// Capacity of per-thread slot arrays; at most this many handles may be
    /// registered concurrently (`thread_cnt`).
    pub max_threads: usize,
    /// Protection slots per thread (`MPs_per_thread`); each `refno` passed
    /// to [`SmrHandle::read`] must be `< slots_per_thread`.
    pub slots_per_thread: usize,
    /// Retire calls between reclamation attempts (`empty_freq`; §6 uses 30).
    pub empty_freq: usize,
    /// Events (allocations for HE/IBR/EBR, unlinks for MP) a thread performs
    /// between increments of the global epoch (`epoch_freq`; §6 uses 150·T).
    pub epoch_freq: usize,
    /// MP protection interval size (`margin`; §6 picks 2^20). Must exceed
    /// 2^16 or the pointer-precision check can never pass (§4.3.1).
    pub margin: u32,
    /// Maximal assignable index (`max_index`).
    pub max_index: u32,
    /// DTA: node traversals between anchor updates (the paper uses 100).
    pub anchor_hops: usize,
    /// DTA: reclamation attempts tolerated before a non-advancing thread is
    /// declared stalled and its anchored segment is frozen.
    pub stall_patience: usize,
    /// Ablation switch: disable the §6 snapshot optimization in `empty()`
    /// (rescan the live slot arrays for every retired node, as the
    /// unoptimized IBR-framework baselines did).
    pub ablation_naive_scan: bool,
    /// Ablation switch: fence after clearing each slot in `end_op` instead
    /// of once after clearing them all (undoes the other §6 optimization).
    pub ablation_per_slot_fence: bool,
    /// Ablation switch: MP index assignment policy (default midpoint).
    pub index_policy: IndexPolicy,
}

/// MP's new-node index assignment policy (§4.1 mentions the midpoint as one
/// of several possible policies; this knob enables the ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexPolicy {
    /// `(pred.index + succ.index) / 2` — the paper's choice.
    #[default]
    Midpoint,
    /// `pred.index + 1` — clusters indices toward the predecessor; collides
    /// as soon as a gap fills from the left.
    AfterPred,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_threads: 32,
            slots_per_thread: 8,
            empty_freq: 30,
            epoch_freq: 150,
            margin: 1 << 20,
            max_index: u32::MAX - 1,
            anchor_hops: 100,
            stall_patience: 8,
            ablation_naive_scan: false,
            ablation_per_slot_fence: false,
            index_policy: IndexPolicy::Midpoint,
        }
    }
}

impl Config {
    /// Sets the maximum number of concurrently registered handles.
    pub fn with_max_threads(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.max_threads = n;
        self
    }

    /// Sets the number of protection slots per thread.
    pub fn with_slots_per_thread(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.slots_per_thread = n;
        self
    }

    /// Sets how many retires elapse between reclamation attempts.
    pub fn with_empty_freq(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.empty_freq = n;
        self
    }

    /// Sets how many allocations/unlinks elapse between epoch increments.
    pub fn with_epoch_freq(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.epoch_freq = n;
        self
    }

    /// Sets MP's margin (protected interval size). Must be > 2^16.
    pub fn with_margin(mut self, margin: u32) -> Self {
        assert!(margin > 1 << 16, "margin must exceed pointer precision (2^16)");
        self.margin = margin;
        self
    }

    /// Sets DTA's anchor distance (node hops between anchor updates).
    pub fn with_anchor_hops(mut self, k: usize) -> Self {
        assert!(k > 0);
        self.anchor_hops = k;
        self
    }

    /// Sets DTA's stall-detection patience.
    pub fn with_stall_patience(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.stall_patience = n;
        self
    }

    /// Disables the snapshot optimization in reclamation scans (ablation).
    pub fn with_naive_scan(mut self, on: bool) -> Self {
        self.ablation_naive_scan = on;
        self
    }

    /// Fences per cleared slot in `end_op` (ablation).
    pub fn with_per_slot_fence(mut self, on: bool) -> Self {
        self.ablation_per_slot_fence = on;
        self
    }

    /// Selects MP's index assignment policy (ablation).
    pub fn with_index_policy(mut self, p: IndexPolicy) -> Self {
        self.index_policy = p;
        self
    }
}

/// Shared state of an SMR scheme.
pub trait Smr: Send + Sync + Sized + 'static {
    /// The per-thread handle type.
    type Handle: SmrHandle;

    /// Constructs the scheme with the given configuration.
    fn new(cfg: Config) -> Arc<Self>;

    /// Registers the calling context as a participating thread and returns
    /// its handle. Panics if `Config::max_threads` handles are already live.
    fn register(self: &Arc<Self>) -> Self::Handle;

    /// Human-readable scheme name (used by the benchmark harness).
    fn name() -> &'static str;

    /// Global gauge: retired nodes not yet reclaimed, across all handles
    /// (the paper's *wasted memory*). Includes orphaned retired nodes.
    fn retired_pending(&self) -> usize;
}

/// Per-thread SMR operations (paper Listing 1).
///
/// # Protocol
///
/// * Bracket every data-structure operation with [`start_op`]/[`end_op`].
/// * Load shared node pointers only through [`read`], passing a `refno`
///   identifying which local reference is being refreshed (`prev`, `curr`,
///   …). The returned [`Shared`] may be dereferenced until `end_op` (or
///   until the same `refno` is reused, for address-protecting schemes).
/// * `read(src, refno)` is only sound when `src` is a field of a node that
///   is itself protected by this handle (or a structure root), and the
///   client follows the usual hazard-pointer validation discipline — the
///   schemes revalidate `*src` after announcing protection, which proves
///   the target was linked at announcement time (§3.1).
/// * Do not hold references across operations (§2 model assumption).
///
/// [`start_op`]: SmrHandle::start_op
/// [`end_op`]: SmrHandle::end_op
/// [`read`]: SmrHandle::read
pub trait SmrHandle: Send + 'static {
    /// Begins a data-structure operation (announces epoch/activity).
    fn start_op(&mut self);

    /// Ends the operation and releases all protections (one fence).
    fn end_op(&mut self);

    /// Protected pointer load: dereferencing the returned pointer is safe
    /// until `end_op`, provided the caller respects the trait-level
    /// protocol. Loops internally until protection is validated, so it is
    /// lock-free rather than wait-free (paper Thm 4.4).
    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, refno: usize) -> Shared<T>;

    /// Declares that the local reference `refno` is dropped. A no-op in MP
    /// (margins keep protecting future accesses, §4.3) and in epoch-based
    /// schemes; clears the slot in HP.
    fn unprotect(&mut self, _refno: usize) {}

    /// Allocates a node for `data`. For MP the index is the midpoint of the
    /// current search interval maintained via [`update_lower_bound`] /
    /// [`update_upper_bound`] (Listing 5); other schemes ignore indices.
    ///
    /// [`update_lower_bound`]: SmrHandle::update_lower_bound
    /// [`update_upper_bound`]: SmrHandle::update_upper_bound
    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T>;

    /// Allocates a node with an explicit index — for sentinel nodes whose
    /// position in the key space is fixed (paper §5.1 step 3).
    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T>;

    /// Retires a removed node: buffers it and reclaims it once unprotected.
    ///
    /// # Safety
    /// `node` must be *removed* (no shared pointer leads to it), non-null,
    /// and retired at most once (§2 model).
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>);

    /// MP extension: the search interval's lower endpoint moved to `node`
    /// (Listing 5). Default no-op; requires `node` to be protected.
    fn update_lower_bound<T: Send + Sync>(&mut self, _node: Shared<T>) {}

    /// MP extension: the search interval's upper endpoint moved to `node`.
    fn update_upper_bound<T: Send + Sync>(&mut self, _node: Shared<T>) {}

    /// Immutable view of this handle's counters.
    fn stats(&self) -> &OpStats;

    /// Mutable counters — used by client structures to bump
    /// `nodes_traversed` (Figure 5's denominator).
    fn stats_mut(&mut self) -> &mut OpStats;

    /// Current length of this handle's retired list (wasted memory held by
    /// this thread).
    fn retired_len(&self) -> usize;

    /// Forces a reclamation attempt regardless of `empty_freq` cadence.
    fn force_empty(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_section6() {
        let c = Config::default();
        assert_eq!(c.empty_freq, 30);
        assert_eq!(c.epoch_freq, 150);
        assert_eq!(c.margin, 1 << 20);
        assert_eq!(c.anchor_hops, 100);
        assert!(c.margin > 1 << 16);
    }

    #[test]
    #[should_panic(expected = "margin must exceed")]
    fn margin_below_precision_rejected() {
        let _ = Config::default().with_margin(1 << 16);
    }

    #[test]
    fn builder_setters() {
        let c = Config::default()
            .with_max_threads(4)
            .with_slots_per_thread(3)
            .with_empty_freq(10)
            .with_epoch_freq(20)
            .with_margin(1 << 18)
            .with_anchor_hops(50)
            .with_stall_patience(2);
        assert_eq!(c.max_threads, 4);
        assert_eq!(c.slots_per_thread, 3);
        assert_eq!(c.empty_freq, 10);
        assert_eq!(c.epoch_freq, 20);
        assert_eq!(c.margin, 1 << 18);
        assert_eq!(c.anchor_hops, 50);
        assert_eq!(c.stall_patience, 2);
    }
}
