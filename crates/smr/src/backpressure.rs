//! Memory backpressure: the policy ladder that keeps wasted memory under a
//! configured byte cap even when threads misbehave.
//!
//! Theorem 4.2 bounds wasted memory under well-behaved threads; a stalled
//! reader turns that bound into a plateau, and an unbounded retire stream
//! from the *other* threads is what actually drives a process toward OOM.
//! This module adds the deployment-side defence the robustness literature
//! (Hyaline, see PAPERS.md) calls for: when the scheme's retired-bytes
//! gauge crosses a configurable watermark, retiring writers escalate
//! through a ladder —
//!
//! 1. **Help-scan** (`bytes ≥ cap/2`): the retiring thread adopts any
//!    orphaned retired lists ([`Registry::adopt_orphans`]) and runs a
//!    reclamation scan on behalf of laggards, so memory parked behind a
//!    churned-out or stalled peer is drained by whoever notices first.
//! 2. **Throttle** (`bytes ≥ cap`): allocations additionally take a
//!    *bounded* [`mp_util::Backoff`] wait, slowing producers until scans
//!    catch up. The wait never blocks indefinitely and allocation never
//!    fails — the ladder trades throughput for memory, never liveness.
//!
//! De-escalation is hysteretic: the ladder only returns to `Normal` once
//! the gauge falls to `cap/4`, so it does not flap around a watermark.
//! Every scheme-wide transition is counted in [`BackpressureState`] and
//! traced as a [`EventKind::BackpressureEngage`] /
//! [`EventKind::BackpressureRelease`] event, and the per-handle work is
//! visible in the `help_scans` / `throttle_waits` counters — all of which
//! flow into the Prometheus/JSON exporters.
//!
//! Within a single operation a handle's *applied* rung is monotone: once
//! an op has helped (or throttled) it does not drop back to a lower rung
//! until the next `start_op`, which keeps the per-op cost model simple and
//! is pinned by a property test in `tests/backpressure.rs`.
//!
//! [`Registry::adopt_orphans`]: crate::registry::Registry
//! [`EventKind::BackpressureEngage`]: crate::telemetry::EventKind::BackpressureEngage
//! [`EventKind::BackpressureRelease`]: crate::telemetry::EventKind::BackpressureRelease

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use crate::api::Config;
use crate::error::BackpressureError;
use crate::telemetry::{EventKind, HandleTelemetry};

/// A rung of the backpressure ladder, ordered by severity.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BpLevel {
    /// Gauge below every watermark: no intervention.
    Normal = 0,
    /// Gauge at or above the help watermark (`cap/2`): retiring threads
    /// adopt orphans and scan on behalf of laggards.
    HelpScan = 1,
    /// Gauge at or above the hard cap: allocations additionally take a
    /// bounded backoff.
    Throttle = 2,
}

impl BpLevel {
    /// Decodes a packed discriminant (saturates corrupt values to
    /// [`BpLevel::Throttle`], the conservative reading).
    pub fn from_u8(v: u8) -> BpLevel {
        match v {
            0 => BpLevel::Normal,
            1 => BpLevel::HelpScan,
            _ => BpLevel::Throttle,
        }
    }

    /// Stable lowercase name (used by exporters and logs).
    pub fn name(self) -> &'static str {
        match self {
            BpLevel::Normal => "normal",
            BpLevel::HelpScan => "help_scan",
            BpLevel::Throttle => "throttle",
        }
    }
}

/// The resolved backpressure watermarks, derived from [`Config`] once at
/// scheme construction (the same knob-beats-env precedence as
/// [`ScanPolicy`](crate::schemes::common::ScanPolicy)).
#[derive(Debug, Clone)]
pub struct BackpressurePolicy {
    /// Hard cap in retired payload bytes; `0` disables the ladder.
    cap_bytes: usize,
    /// Help-scan watermark (`cap/2`).
    help_bytes: usize,
    /// Hysteresis floor (`cap/4`): the ladder releases to `Normal` only
    /// once the gauge falls to or below this.
    release_bytes: usize,
}

impl BackpressurePolicy {
    /// Resolves the policy: the explicit `Config::backpressure_bytes` knob
    /// first, then the `MP_BP_BYTES` environment variable (consulted only
    /// when the knob is 0), else disabled.
    pub fn from_config(cfg: &Config) -> Self {
        let mut cap = cfg.backpressure_bytes;
        if cap == 0 {
            cap = std::env::var("MP_BP_BYTES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
        }
        BackpressurePolicy::with_cap(cap)
    }

    /// A policy with an explicit hard cap in bytes (0 = disabled).
    pub fn with_cap(cap_bytes: usize) -> Self {
        BackpressurePolicy {
            cap_bytes,
            help_bytes: cap_bytes / 2,
            release_bytes: cap_bytes / 4,
        }
    }

    /// Whether the ladder is active at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cap_bytes != 0
    }

    /// The hard (throttle) cap in bytes; 0 when disabled.
    pub fn cap_bytes(&self) -> usize {
        self.cap_bytes
    }

    /// The help-scan watermark in bytes.
    pub fn help_bytes(&self) -> usize {
        self.help_bytes
    }

    /// The hysteresis release watermark in bytes.
    pub fn release_bytes(&self) -> usize {
        self.release_bytes
    }

    /// The rung the gauge value `bytes` maps to, given the ladder is
    /// `current`ly on some rung (hysteresis: inside the band between the
    /// release floor and the help watermark, an engaged ladder holds the
    /// help rung instead of flapping).
    pub fn assess(&self, bytes: usize, current: BpLevel) -> BpLevel {
        if !self.enabled() {
            return BpLevel::Normal;
        }
        if bytes >= self.cap_bytes {
            return BpLevel::Throttle;
        }
        if bytes >= self.help_bytes {
            return BpLevel::HelpScan;
        }
        if bytes <= self.release_bytes {
            return BpLevel::Normal;
        }
        if current >= BpLevel::HelpScan {
            BpLevel::HelpScan
        } else {
            BpLevel::Normal
        }
    }
}

/// Scheme-wide ladder state: the current rung plus monotone transition
/// counters, embedded in every scheme's
/// [`SchemeTelemetry`](crate::telemetry::SchemeTelemetry) so exporters and
/// tests read it without matching on scheme types.
#[derive(Debug, Default)]
pub struct BackpressureState {
    level: AtomicU8,
    help_engagements: AtomicU64,
    throttle_engagements: AtomicU64,
    releases: AtomicU64,
}

impl BackpressureState {
    /// Fresh state on the `Normal` rung.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ladder's current rung.
    #[inline]
    pub fn level(&self) -> BpLevel {
        BpLevel::from_u8(self.level.load(Ordering::Acquire))
    }

    /// Times the ladder escalated onto the help rung.
    pub fn help_engagements(&self) -> u64 {
        self.help_engagements.load(Ordering::Acquire)
    }

    /// Times the ladder escalated onto the throttle rung.
    pub fn throttle_engagements(&self) -> u64 {
        self.throttle_engagements.load(Ordering::Acquire)
    }

    /// Times the ladder de-escalated (any downward transition).
    pub fn releases(&self) -> u64 {
        self.releases.load(Ordering::Acquire)
    }

    /// Total upward transitions (help + throttle engagements) — the
    /// "backpressure engaged at least once" witness the soak gate checks.
    pub fn engagements(&self) -> u64 {
        self.help_engagements().saturating_add(self.throttle_engagements())
    }

    /// Moves the scheme-wide rung to `target`, counting and tracing the
    /// transition through the observing handle's ring. Racing observers
    /// are serialized by the CAS: each actual change is counted once.
    pub(crate) fn observe(&self, target: BpLevel, tele: &mut HandleTelemetry) {
        let mut cur = self.level.load(Ordering::Acquire);
        loop {
            if cur == target as u8 {
                return;
            }
            match self.level.compare_exchange(
                cur,
                target as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if (target as u8) > cur {
            match target {
                BpLevel::Throttle => {
                    self.throttle_engagements.fetch_add(1, Ordering::AcqRel);
                }
                _ => {
                    self.help_engagements.fetch_add(1, Ordering::AcqRel);
                }
            }
            tele.trace(EventKind::BackpressureEngage, target as u64);
        } else {
            self.releases.fetch_add(1, Ordering::AcqRel);
            tele.trace(EventKind::BackpressureRelease, target as u64);
        }
    }
}

/// Retire-path hook, called by every scheme after buffering a retired
/// node: re-assesses the gauge, records any scheme-wide transition, and
/// floors the result at the handle's in-op rung (`rung`, reset by
/// `start_op`) so the applied ladder is monotone within one operation.
/// Returns `true` when the caller must run a help-scan (adopt orphans,
/// then `empty()`).
#[inline]
pub(crate) fn after_retire(
    policy: &BackpressurePolicy,
    state: &BackpressureState,
    pending_bytes: usize,
    rung: &mut BpLevel,
    tele: &mut HandleTelemetry,
) -> bool {
    if !policy.enabled() {
        return false;
    }
    let target = policy.assess(pending_bytes, state.level());
    state.observe(target, tele);
    let applied = target.max(*rung);
    *rung = applied;
    applied >= BpLevel::HelpScan
}

/// Allocation-path hook: while the scheme-wide ladder (floored at the
/// handle's in-op rung) is on the throttle rung, takes one bounded backoff
/// wait per allocation. Never blocks indefinitely, never fails the
/// allocation.
#[inline]
pub(crate) fn before_alloc(
    policy: &BackpressurePolicy,
    state: &BackpressureState,
    rung: &mut BpLevel,
    tele: &mut HandleTelemetry,
) {
    if !policy.enabled() {
        return;
    }
    let applied = state.level().max(*rung);
    if applied < BpLevel::Throttle {
        return;
    }
    *rung = BpLevel::Throttle;
    tele.record_throttle_wait();
    throttle_wait();
}

/// One bounded throttle wait: a full exponential-backoff ramp followed by
/// a single scheduler yield — roughly a hundred spin-loop hints, bounded
/// by construction (no loop on the gauge).
fn throttle_wait() {
    let mut backoff = mp_util::Backoff::new();
    while !backoff.is_completed() {
        backoff.spin();
    }
    backoff.snooze();
}

/// Checks the gauge against the policy's hard cap, for callers that
/// prefer shedding load to being throttled (see
/// [`Smr::check_backpressure`](crate::Smr::check_backpressure)).
pub(crate) fn check(
    policy: &BackpressurePolicy,
    pending_bytes: usize,
) -> Result<(), BackpressureError> {
    if policy.enabled() && pending_bytes >= policy.cap_bytes() {
        Err(BackpressureError { pending_bytes, cap_bytes: policy.cap_bytes() })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_leaves_normal() {
        let p = BackpressurePolicy::with_cap(0);
        assert!(!p.enabled());
        assert_eq!(p.assess(usize::MAX, BpLevel::Normal), BpLevel::Normal);
        assert!(check(&p, usize::MAX).is_ok());
    }

    #[test]
    fn ladder_escalates_at_watermarks_and_releases_with_hysteresis() {
        let p = BackpressurePolicy::with_cap(1000);
        assert_eq!((p.help_bytes(), p.release_bytes()), (500, 250));
        assert_eq!(p.assess(0, BpLevel::Normal), BpLevel::Normal);
        assert_eq!(p.assess(499, BpLevel::Normal), BpLevel::Normal);
        assert_eq!(p.assess(500, BpLevel::Normal), BpLevel::HelpScan);
        assert_eq!(p.assess(999, BpLevel::HelpScan), BpLevel::HelpScan);
        assert_eq!(p.assess(1000, BpLevel::HelpScan), BpLevel::Throttle);
        // Falling out of throttle: help rung while >= help watermark...
        assert_eq!(p.assess(600, BpLevel::Throttle), BpLevel::HelpScan);
        // ...held through the hysteresis band...
        assert_eq!(p.assess(300, BpLevel::HelpScan), BpLevel::HelpScan);
        // ...and released only at the release floor.
        assert_eq!(p.assess(250, BpLevel::HelpScan), BpLevel::Normal);
        // An idle ladder inside the band stays idle (no spurious engage).
        assert_eq!(p.assess(300, BpLevel::Normal), BpLevel::Normal);
    }

    #[test]
    fn observe_counts_each_transition_once_and_traces() {
        let state = BackpressureState::new();
        let mut tele = HandleTelemetry::new(0);
        assert_eq!(state.level(), BpLevel::Normal);
        state.observe(BpLevel::HelpScan, &mut tele);
        state.observe(BpLevel::HelpScan, &mut tele); // no-op: same rung
        state.observe(BpLevel::Throttle, &mut tele);
        state.observe(BpLevel::Normal, &mut tele);
        assert_eq!(state.help_engagements(), 1);
        assert_eq!(state.throttle_engagements(), 1);
        assert_eq!(state.releases(), 1);
        assert_eq!(state.engagements(), 2);
        assert_eq!(state.level(), BpLevel::Normal);
    }

    #[test]
    fn after_retire_is_monotone_within_an_op() {
        let p = BackpressurePolicy::with_cap(1000);
        let state = BackpressureState::new();
        let mut tele = HandleTelemetry::new(0);
        let mut rung = BpLevel::Normal;
        assert!(after_retire(&p, &state, 1200, &mut rung, &mut tele), "throttle rung helps too");
        assert_eq!(rung, BpLevel::Throttle);
        // Gauge collapsed mid-op (a help-scan freed everything): the
        // scheme-wide ladder releases but the in-op rung stays pinned.
        assert!(after_retire(&p, &state, 0, &mut rung, &mut tele));
        assert_eq!(rung, BpLevel::Throttle, "applied rung is monotone within the op");
        assert_eq!(state.level(), BpLevel::Normal, "scheme-wide ladder tracked the gauge down");
        // Next op starts from a fresh rung.
        let mut rung = BpLevel::Normal;
        assert!(!after_retire(&p, &state, 0, &mut rung, &mut tele));
        assert_eq!(rung, BpLevel::Normal);
    }

    #[test]
    fn check_reports_cap_excess() {
        let p = BackpressurePolicy::with_cap(100);
        assert!(check(&p, 99).is_ok());
        let err = check(&p, 100).unwrap_err();
        assert_eq!(err.cap_bytes, 100);
        assert_eq!(err.pending_bytes, 100);
    }
}
