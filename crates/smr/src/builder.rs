//! One fluent constructor for every scheme: [`SmrBuilder`].
//!
//! Before this builder, examples and benches threaded three separate
//! mechanisms to stand up a scheme: a [`Config`] value, the `MP_POOL` env
//! var / `mp_util::pool::set_enabled` toggle, and (now) the
//! `MP_TELEMETRY` arming flag. `SmrBuilder` folds them into one chain
//! that ends in the scheme's `new`:
//!
//! ```
//! use mp_smr::{schemes::Mp, SmrBuilder, Smr};
//!
//! let smr = SmrBuilder::new()
//!     .max_threads(8)
//!     .slots_per_thread(4)
//!     .margin(1 << 20)
//!     .telemetry(false) // disarm tracing/timing for this process
//!     .pool(true)       // node-recycling block pool on
//!     .build::<Mp>();
//! let _h = smr.register();
//! ```
//!
//! The pool and telemetry switches are **process-global** (they gate
//! thread-local and per-handle state shared by every scheme instance);
//! the builder applies them before construction so handles registered
//! from the new scheme see the requested state. Leaving a switch unset
//! keeps whatever the process already chose (env var or a previous
//! override).

use std::sync::Arc;

use crate::any::{AnySmr, SchemeKind};
use crate::api::{Config, IndexPolicy, Smr};
use crate::error::SmrError;
use crate::telemetry;

/// Fluent builder unifying [`Config`], the telemetry arming switch, and
/// the node-pool toggle. Construct with [`SmrBuilder::new`] (paper §6
/// defaults) or [`SmrBuilder::from_config`], chain setters, finish with
/// [`try_build`](SmrBuilder::try_build) for a statically chosen scheme or
/// [`try_build_any`](SmrBuilder::try_build_any) for one selected at
/// runtime via [`scheme`](SmrBuilder::scheme) / `MP_SCHEME`.
#[derive(Debug, Clone, Default)]
pub struct SmrBuilder {
    cfg: Config,
    kind: Option<SchemeKind>,
    telemetry: Option<bool>,
    event_capacity: Option<usize>,
    pool: Option<bool>,
}

impl SmrBuilder {
    /// A builder over the default [`Config`].
    pub fn new() -> SmrBuilder {
        SmrBuilder::default()
    }

    /// A builder starting from an existing [`Config`].
    pub fn from_config(cfg: Config) -> SmrBuilder {
        SmrBuilder { cfg, ..SmrBuilder::default() }
    }

    /// The configuration as currently accumulated.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Sets the maximum number of concurrently registered handles.
    pub fn max_threads(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_max_threads(n);
        self
    }

    /// Sets the number of protection slots per thread.
    pub fn slots_per_thread(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_slots_per_thread(n);
        self
    }

    /// Sets how many retires elapse between reclamation attempts.
    pub fn empty_freq(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_empty_freq(n);
        self
    }

    /// Sets how many allocations/unlinks elapse between epoch increments.
    pub fn epoch_freq(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_epoch_freq(n);
        self
    }

    /// Sets MP's margin (protected interval size). Must be > 2^16.
    pub fn margin(mut self, margin: u32) -> Self {
        self.cfg = self.cfg.with_margin(margin);
        self
    }

    /// Sets the maximal assignable index.
    pub fn max_index(mut self, n: u32) -> Self {
        self.cfg = self.cfg.with_max_index(n);
        self
    }

    /// Sets DTA's anchor distance.
    pub fn anchor_hops(mut self, k: usize) -> Self {
        self.cfg = self.cfg.with_anchor_hops(k);
        self
    }

    /// Sets DTA's stall-detection patience.
    pub fn stall_patience(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_stall_patience(n);
        self
    }

    /// Sets the retired-count scan watermark (0 = auto-derive `k·H`).
    pub fn scan_watermark(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_scan_watermark(n);
        self
    }

    /// Sets the retired-bytes scan watermark (0 = disabled).
    pub fn scan_watermark_bytes(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_scan_watermark_bytes(n);
        self
    }

    /// Reverts scan triggering to the fixed `empty_freq` cadence (ablation).
    pub fn fixed_cadence(mut self, on: bool) -> Self {
        self.cfg = self.cfg.with_fixed_cadence(on);
        self
    }

    /// Disables the snapshot optimization in reclamation scans (ablation).
    pub fn naive_scan(mut self, on: bool) -> Self {
        self.cfg = self.cfg.with_naive_scan(on);
        self
    }

    /// Fences per cleared slot in `end_op` (ablation).
    pub fn per_slot_fence(mut self, on: bool) -> Self {
        self.cfg = self.cfg.with_per_slot_fence(on);
        self
    }

    /// Selects MP's index assignment policy (ablation).
    pub fn index_policy(mut self, p: IndexPolicy) -> Self {
        self.cfg = self.cfg.with_index_policy(p);
        self
    }

    /// Sets the backpressure hard cap in retired payload bytes
    /// (`0` = ladder disabled unless `MP_BP_BYTES` supplies a cap).
    pub fn backpressure_bytes(mut self, n: usize) -> Self {
        self.cfg = self.cfg.with_backpressure_bytes(n);
        self
    }

    /// Selects the scheme [`try_build_any`](SmrBuilder::try_build_any)
    /// constructs, overriding the `MP_SCHEME` environment variable.
    pub fn scheme(mut self, kind: SchemeKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Arms (or disarms) timed/traced telemetry process-wide before
    /// construction, overriding `MP_TELEMETRY`. Handles registered from
    /// the built scheme then carry event rings and record latencies.
    pub fn telemetry(mut self, armed: bool) -> Self {
        self.telemetry = Some(armed);
        self
    }

    /// Event-ring capacity (records) for handles registered after
    /// `build`. Implies nothing about arming; combine with
    /// [`telemetry(true)`](SmrBuilder::telemetry).
    pub fn event_capacity(mut self, records: usize) -> Self {
        self.event_capacity = Some(records);
        self
    }

    /// Enables (or disables) the per-thread node block pool process-wide,
    /// overriding `MP_POOL`.
    pub fn pool(mut self, enabled: bool) -> Self {
        self.pool = Some(enabled);
        self
    }

    /// Applies the process-global switches and constructs the scheme,
    /// reporting an invalid accumulated [`Config`] as
    /// [`SmrError::Config`].
    pub fn try_build<S: Smr>(self) -> Result<Arc<S>, SmrError> {
        self.apply_globals();
        S::try_new(self.cfg)
    }

    /// Applies the process-global switches and constructs the scheme
    /// (which validates the accumulated [`Config`]).
    ///
    /// Panicking shim over [`try_build`](SmrBuilder::try_build), kept for
    /// one release; new code should prefer the fallible constructor.
    pub fn build<S: Smr>(self) -> Arc<S> {
        match self.try_build() {
            Ok(smr) => smr,
            Err(e) => panic!("{e}"),
        }
    }

    /// Constructs the scheme selected at runtime behind the [`AnySmr`]
    /// facade: the kind set via [`scheme`](SmrBuilder::scheme) if any,
    /// else the `MP_SCHEME` environment variable, else MP.
    pub fn try_build_any(self) -> Result<Arc<AnySmr>, SmrError> {
        let kind =
            self.kind.or_else(SchemeKind::from_env).unwrap_or(SchemeKind::Mp);
        self.apply_globals();
        AnySmr::try_with_kind(kind, self.cfg)
    }

    fn apply_globals(&self) {
        if let Some(cap) = self.event_capacity {
            telemetry::set_event_capacity(cap);
        }
        if let Some(armed) = self.telemetry {
            telemetry::set_armed(armed);
        }
        if let Some(pool_on) = self.pool {
            mp_util::pool::set_enabled(pool_on);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{Ebr, Mp};
    use crate::SmrHandle;

    #[test]
    fn builder_accumulates_config_and_builds_any_scheme() {
        let b = SmrBuilder::new()
            .max_threads(3)
            .slots_per_thread(5)
            .empty_freq(11)
            .epoch_freq(22)
            .margin(1 << 18)
            .max_index(1 << 24)
            .anchor_hops(33)
            .stall_patience(4)
            .scan_watermark(96)
            .scan_watermark_bytes(1 << 19)
            .fixed_cadence(true)
            .naive_scan(true)
            .per_slot_fence(true)
            .index_policy(IndexPolicy::AfterPred);
        let c = b.config();
        assert_eq!(c.max_threads, 3);
        assert_eq!(c.slots_per_thread, 5);
        assert_eq!(c.empty_freq, 11);
        assert_eq!(c.epoch_freq, 22);
        assert_eq!(c.margin, 1 << 18);
        assert_eq!(c.max_index, 1 << 24);
        assert_eq!(c.anchor_hops, 33);
        assert_eq!(c.stall_patience, 4);
        assert_eq!(c.scan_watermark, 96);
        assert_eq!(c.scan_watermark_bytes, 1 << 19);
        assert!(c.ablation_fixed_cadence);
        assert!(c.ablation_naive_scan);
        assert!(c.ablation_per_slot_fence);
        assert_eq!(c.index_policy, IndexPolicy::AfterPred);

        let mp = b.clone().build::<Mp>();
        let mut h = mp.register();
        let op = h.pin();
        assert_eq!(op.stats().ops, 1);
        drop(op);

        let ebr = b.build::<Ebr>();
        let _h = ebr.register();
    }

    #[test]
    fn from_config_preserves_the_seed_config() {
        let cfg = Config::default().with_empty_freq(7);
        assert_eq!(SmrBuilder::from_config(cfg).config().empty_freq, 7);
    }

    #[test]
    #[should_panic(expected = "margin must exceed")]
    fn builder_rejects_invalid_margin_eagerly() {
        let _ = SmrBuilder::new().margin(1 << 10);
    }

    #[test]
    fn explicit_scheme_kind_wins_for_build_any() {
        let smr = SmrBuilder::new()
            .max_threads(2)
            .scheme(crate::any::SchemeKind::He)
            .try_build_any()
            .unwrap();
        assert_eq!(smr.scheme_name(), "HE");
        let _h = smr.try_register().unwrap();
    }

    #[test]
    fn try_build_surfaces_config_errors() {
        let cfg = Config { max_threads: 0, ..Config::default() };
        let res = SmrBuilder::from_config(cfg).try_build::<Mp>();
        assert!(matches!(res, Err(crate::error::SmrError::Config(_))));
    }
}
