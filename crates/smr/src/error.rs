//! The unified error surface of the SMR crate.
//!
//! Historically each failure had its own shape: `Config::validate`
//! returned [`ConfigError`], registry slot exhaustion panicked inside
//! `register`, and backpressure had no surface at all. [`SmrError`] folds
//! them into one hierarchy returned by the fallible constructors
//! ([`Smr::try_new`], [`Smr::try_register`], `SmrBuilder::try_build`), so
//! callers that want to recover — retry registration after a peer churns
//! out, shed load while the retired-bytes gauge is above its cap — can
//! match on a variant instead of catching a panic. The panicking entry
//! points ([`Smr::new`], [`Smr::register`]) remain as thin wrappers for
//! one release.
//!
//! [`Smr::try_new`]: crate::Smr::try_new
//! [`Smr::try_register`]: crate::Smr::try_register
//! [`Smr::new`]: crate::Smr::new
//! [`Smr::register`]: crate::Smr::register

use std::fmt;

use crate::api::ConfigError;

/// Why the scheme's backpressure machinery reports distress: the
/// retired-bytes gauge sits at or above the configured hard cap, so the
/// ladder is (or would be) on its throttle rung. Returned by
/// [`Smr::check_backpressure`](crate::Smr::check_backpressure) for callers
/// that prefer shedding load over being throttled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackpressureError {
    /// The scheme's retired-but-unreclaimed payload bytes at check time.
    pub pending_bytes: usize,
    /// The configured hard cap (`Config::backpressure_bytes`).
    pub cap_bytes: usize,
}

impl fmt::Display for BackpressureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backpressure engaged: {} retired bytes pending >= cap of {}",
            self.pending_bytes, self.cap_bytes
        )
    }
}

impl std::error::Error for BackpressureError {}

/// Any failure the SMR crate reports through its fallible constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmrError {
    /// The [`Config`](crate::Config) violates a cross-field invariant.
    Config(ConfigError),
    /// `Config::max_threads` handles are already registered; the caller
    /// may retry after a peer drops its handle (tids are recycled).
    RegistryExhausted {
        /// The configured handle capacity that is fully claimed.
        max_threads: usize,
    },
    /// The scheme is above its backpressure hard cap.
    Backpressure(BackpressureError),
}

impl fmt::Display for SmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmrError::Config(e) => write!(f, "invalid SMR Config: {e}"),
            SmrError::RegistryExhausted { max_threads } => write!(
                f,
                "SMR: more handles registered than Config::max_threads ({max_threads})"
            ),
            SmrError::Backpressure(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SmrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmrError::Config(e) => Some(e),
            SmrError::Backpressure(e) => Some(e),
            SmrError::RegistryExhausted { .. } => None,
        }
    }
}

impl From<ConfigError> for SmrError {
    fn from(e: ConfigError) -> Self {
        SmrError::Config(e)
    }
}

impl From<BackpressureError> for SmrError {
    fn from(e: BackpressureError) -> Self {
        SmrError::Backpressure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_names_the_failure_and_the_limit() {
        let e = SmrError::RegistryExhausted { max_threads: 4 };
        assert!(e.to_string().contains("max_threads (4)"), "{e}");

        let e = SmrError::from(ConfigError::ZeroSlots);
        assert!(e.to_string().contains("invalid SMR Config"), "{e}");
        assert!(e.source().is_some(), "config cause is chained");

        let bp = BackpressureError { pending_bytes: 2048, cap_bytes: 1024 };
        let e = SmrError::from(bp);
        assert!(e.to_string().contains("2048") && e.to_string().contains("1024"), "{e}");
        assert!(e.source().is_some());
        assert!(SmrError::RegistryExhausted { max_threads: 1 }.source().is_none());
    }
}
