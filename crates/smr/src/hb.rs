//! Happens-before oracle glue (`--features hb-oracle`).
//!
//! Routes the schemes' instrumentation hooks into one process-global
//! [`mp_util::hb::HbTracker`], translating per-scheme protection semantics
//! into the tracker's vocabulary via an [`HbPolicy`] installed at each
//! `start_op`, and turning tracker verdicts into
//! [`oracle::violation`](crate::oracle::violation) panics — which carry the
//! scheme name, thread, and `MP_CHECK_SEED` replay context — *after* the
//! tracker lock is released, so a `#[should_panic]` negative test cannot
//! poison the ledger for later tests in the same process.
//!
//! Every hook is a free function so call sites stay one cfg-gated line.
//! Threads self-register on first contact and unregister when their TLS
//! slot is destroyed at thread exit, recycling the tracker tid so clock
//! widths track the peak live-thread count; handles dropped mid-teardown
//! route through [`on_handle_drop`] so a dead thread's protection claims
//! do not outlive its (cleared) announcement rows.

use std::cell::Cell;
use std::sync::OnceLock;

use mp_util::hb::{HbTracker, HbViolation};

/// How a scheme's protection claims map onto tracker records. Installed
/// per-thread by `start_op`; consulted by the deref/free hooks.
#[derive(Clone, Copy, Debug)]
pub struct HbPolicy {
    /// Blanket (epoch-style) protection: while the thread is in an op,
    /// every deref is justified without per-node records.
    pub blanket: bool,
    /// Check frees against live foreign protection records. Only sound
    /// when the scheme's protect hook fires strictly after a validated
    /// announce fence (the hazard-pointer re-read protocol), making
    /// "record happens-before free" imply "the scan saw the hazard".
    pub free_check: bool,
    /// Protection records die at op boundaries (hazards are cleared by
    /// `end_op`) rather than persisting (margins, eras).
    pub op_scoped: bool,
}

impl HbPolicy {
    /// Margin pointers: per-node records (margins + HP fallback) that
    /// persist across ops — margins and the epoch announcement are only
    /// re-announced lazily, so a claim outlives the op that made it.
    pub const MP: HbPolicy = HbPolicy { blanket: false, free_check: false, op_scoped: false };
    /// Hazard pointers: slot-keyed, op-scoped records; the validated
    /// re-read protocol makes the free check exact.
    pub const HP: HbPolicy = HbPolicy { blanket: false, free_check: true, op_scoped: true };
    /// Hazard eras: one era announcement covers many nodes, and eras
    /// persist until overwritten — per-node, non-scoped records, no free
    /// check (the era read never re-validates the source pointer).
    pub const HE: HbPolicy = HbPolicy { blanket: false, free_check: false, op_scoped: false };
    /// Epoch-style schemes (EBR/IBR/DTA/Leaky): blanket protection.
    pub const EPOCH: HbPolicy = HbPolicy { blanket: true, free_check: false, op_scoped: true };
}

fn tracker() -> &'static HbTracker {
    static TRACKER: OnceLock<HbTracker> = OnceLock::new();
    TRACKER.get_or_init(HbTracker::new)
}

/// Thread-local tid holder whose `Drop` (thread exit) withdraws the
/// thread's claims and recycles its tracker tid, keeping vector-clock
/// widths bounded by the peak live-thread count even when a test harness
/// spawns thousands of short-lived threads.
struct TidSlot(Cell<Option<usize>>);

impl Drop for TidSlot {
    fn drop(&mut self) {
        if let Some(id) = self.0.get() {
            tracker().release_thread(id);
        }
    }
}

thread_local! {
    static TID: TidSlot = const { TidSlot(Cell::new(None)) };
    // Teardown paths (struct Drop impls freeing live nodes) run outside any
    // op; default to the blanket policy so they are never free-checked.
    static POLICY: Cell<HbPolicy> = const { Cell::new(HbPolicy::EPOCH) };
}

/// The calling thread's tracker tid, or `None` when its TLS slot is
/// already destroyed (a hook firing during thread teardown) — hooks then
/// no-op, which only under-approximates the tracked relation.
fn tid() -> Option<usize> {
    TID.try_with(|t| match t.0.get() {
        Some(id) => id,
        None => {
            let id = tracker().register_thread();
            t.0.set(Some(id));
            id
        }
    })
    .ok()
}

fn bail(v: HbViolation) -> ! {
    crate::oracle::violation(v.what, v.addr, v.detail)
}

/// `start_op` hook: installs the scheme's policy and opens an op span.
pub fn on_start_op(policy: HbPolicy) {
    let Some(id) = tid() else { return };
    let _ = POLICY.try_with(|p| p.set(policy));
    tracker().begin_op(id, policy.blanket, policy.op_scoped);
}

/// `end_op` hook: closes the op span (op-scoped records die).
pub fn on_end_op() {
    let Some(id) = tid() else { return };
    tracker().end_op(id);
}

/// Handle-`Drop` hook: the thread's announcement rows are being cleared,
/// so all of its protection claims are withdrawn with them.
pub fn on_handle_drop() {
    let Some(id) = tid() else { return };
    tracker().clear_thread(id);
}

/// SeqCst-fence hook (`counted_fence` and the schemes' raw scan fences).
pub fn on_fence_sc() {
    let Some(id) = tid() else { return };
    tracker().fence_sc(id);
}

/// Validated-protection hook: the calling thread announced protection of
/// `addr` and validated the announcement. `slot` keys single-address
/// (hazard) records; `None` records interval/era/margin claims.
pub fn on_protect(slot: Option<usize>, addr: u64) {
    let Some(id) = tid() else { return };
    tracker().protect(id, slot, addr);
}

/// Protection-withdrawal hook for slot-keyed records.
pub fn on_unprotect(slot: usize) {
    let Some(id) = tid() else { return };
    tracker().unprotect(id, slot);
}

/// Allocation hook (after the reclamation oracle's `on_alloc`).
pub fn on_alloc(addr: u64) {
    let Some(id) = tid() else { return };
    tracker().on_alloc(id, addr);
}

/// Retire hook (after the reclamation oracle's `on_retire`, so a
/// double-retire panics with the shadow table's diagnosis first).
pub fn on_retire(addr: u64) {
    let Some(id) = tid() else { return };
    tracker().on_retire(id, addr);
}

/// Free hook: drops the node's tracker state and — under a `free_check`
/// policy — panics if a foreign protection record happens-before the free.
pub fn on_free(addr: u64) {
    let Some(id) = tid() else { return };
    let check = match POLICY.try_with(|p| p.get()) {
        Ok(p) => p.free_check,
        Err(_) => false,
    };
    if let Err(v) = tracker().on_free(id, addr, check) {
        bail(v);
    }
}

/// `Shared::deref` hook: a retired node may only be dereferenced under
/// blanket protection or a live record of this thread.
pub fn on_deref(addr: u64) {
    let Some(id) = tid() else { return };
    if let Err(v) = tracker().deref_check(id, addr) {
        bail(v);
    }
}

/// Snapshot-publish hook: a completed `publish_snapshot` with its Release
/// fence — records both the data writes and the release edge at `site`
/// (the snapshot instance's address).
pub fn on_snapshot_publish(site: u64) {
    let Some(id) = tid() else { return };
    tracker().release(id, site);
}

/// Fence-dropped publish hook (test-only publish variant): records the
/// data writes with *no* release edge, so the next adoption must fail.
pub fn on_snapshot_publish_data_only(site: u64) {
    let Some(id) = tid() else { return };
    tracker().release_data_only(id, site);
}

/// Snapshot-adoption hook (successful `try_adopt_into`): joins the site's
/// release edge and panics if the adopted data is not ordered by it.
pub fn on_snapshot_adopt(site: u64) {
    let Some(id) = tid() else { return };
    if let Err(v) = tracker().acquire_check(id, site) {
        bail(v);
    }
}
