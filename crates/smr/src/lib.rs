//! # mp-smr — Safe Memory Reclamation with Bounded Wasted Memory
//!
//! This crate implements **margin pointers (MP)**, the safe-memory-reclamation
//! (SMR) scheme of Solomon & Morrison (PPoPP 2021), together with the baseline
//! schemes the paper evaluates against: hazard pointers (HP), epoch-based
//! reclamation (EBR), hazard eras (HE), interval-based reclamation (IBR),
//! drop-the-anchor (DTA), and a leaky no-op reclaimer.
//!
//! ## The SMR problem
//!
//! In a nonblocking data structure a removed node cannot be freed immediately:
//! other threads may still hold local references to it. An SMR scheme buffers
//! *retired* nodes and frees each one only once no thread can access it. The
//! number of retired-but-unreclaimed nodes is *wasted memory*; MP is the first
//! self-contained nonblocking scheme that both keeps run-time overhead low and
//! guarantees a *predetermined* bound on wasted memory (independent of thread
//! scheduling), by protecting *logical key intervals* instead of physical
//! node addresses.
//!
//! ## Interface
//!
//! All schemes implement the [`Smr`] trait (shared state) and expose a
//! per-thread [`SmrHandle`] mirroring the paper's Listing 1 API:
//! `start_op` / `end_op`, `read`, `alloc`, `retire`, `unprotect`, plus MP's
//! optional `update_lower_bound` / `update_upper_bound` extension. Client
//! data structures are generic over `S: Smr`, so any scheme plugs into any
//! structure unchanged — MP degrades to plain HP when the extension calls
//! are omitted.
//!
//! ```
//! use mp_smr::{Config, Smr, SmrHandle, schemes::Mp};
//!
//! let smr = Mp::new(Config::default().with_max_threads(4));
//! let mut h = smr.register();
//! let mut op = h.pin(); // RAII: start_op now, end_op on drop
//! let node = op.alloc_with_index(42u64, 7 << 16);
//! // ... link `node` into a structure, later unlink it ...
//! unsafe { op.retire(node) };
//! drop(op);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod any;
pub mod api;
pub mod backpressure;
pub mod builder;
pub mod error;
#[cfg(feature = "hb-oracle")]
pub mod hb;
pub mod node;
#[cfg(feature = "oracle")]
pub mod oracle;
pub mod packed;
pub mod registry;
pub mod schemes;
pub mod stats;
pub mod telemetry;

pub use any::{AnyHandle, AnySmr, SchemeKind};
pub use api::{Config, ConfigError, IndexPolicy, OpGuard, Smr, SmrHandle};
pub use backpressure::{BackpressurePolicy, BackpressureState, BpLevel};
pub use builder::SmrBuilder;
pub use error::{BackpressureError, SmrError};
pub use node::{gauge, SmrNode};
pub use packed::{Atomic, Shared};
pub use stats::{FenceSite, OpStats};
pub use telemetry::{
    Counter, EventKind, EventRecord, EventRing, HandleTelemetry, SchemeTelemetry, Telemetry,
    TelemetrySnapshot, WasteSample, WasteSampler, WasteSeries,
};
