//! Node allocation: the per-node SMR header and type-erased reclamation.
//!
//! Every node managed by an SMR scheme is allocated as an [`SmrNode<T>`]:
//! a fixed header (birth epoch, retire epoch, 32-bit index — the paper's
//! per-node bookkeeping, ≤ 3 words as in Table 1) followed by the client
//! payload. Retired nodes are stored type-erased (the crate-private `Retired` record) so one
//! retired list can hold nodes of any client type.

use core::alloc::Layout;
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Reserved index meaning "protect this node with hazard pointers, not
/// margin pointers" (paper §4.3.2). Assigned on index collision.
pub const USE_HP: u32 = u32::MAX;

/// Start of the *USE_HP class*: any index whose top 16 bits are all ones
/// packs to the same 16-bit value as [`USE_HP`], so the `read` fast path
/// cannot distinguish it from a collision marker. The whole class is
/// therefore handled via hazard pointers (see DESIGN.md).
pub const USE_HP_CLASS_START: u32 = 0xffff_0000;

/// True if `index` must be protected via the hazard-pointer fallback.
#[inline]
pub fn is_use_hp_class(index: u32) -> bool {
    index >= USE_HP_CLASS_START
}

/// The per-node SMR header (paper Listing 10's added `Node` fields).
#[repr(C)]
#[derive(Debug)]
pub struct Header {
    /// Global epoch at allocation time.
    pub(crate) birth: u64,
    /// Global epoch at retirement; `u64::MAX` while the node is live.
    /// Written once by the retiring thread; only that thread's `empty()`
    /// reads it afterwards, but it is atomic so concurrent scans of foreign
    /// retired state (DTA recovery) stay well-defined.
    pub(crate) retire: AtomicU64,
    /// The node's immutable 32-bit MP index.
    pub(crate) index: u32,
    /// Oracle canary: [`crate::oracle::CANARY_ALIVE`] while the node is
    /// live, flipped to the poison value on reclamation and validated by
    /// every `Shared::deref`. Only present under `--features oracle`, so
    /// the default header stays within Table 1's 3-word budget.
    #[cfg(feature = "oracle")]
    pub(crate) canary: u64,
}

/// Canary validation for `Shared::deref`: reads the header through a raw
/// pointer (never materializing a reference to the possibly-poisoned
/// payload) and panics on a reclaimed or wild pointee.
///
/// # Safety
/// `h` must point to memory that is still mapped — guaranteed for any node
/// the oracle has seen, since reclaimed nodes sit in quarantine.
#[cfg(feature = "oracle")]
// SAFETY: [INV-11] the mapped-memory obligation is stated in `# Safety`
// above and discharged by each caller (deref sites in packed.rs).
pub(crate) unsafe fn oracle_check_canary(h: *const Header) {
    // SAFETY: [INV-10] quarantined memory stays mapped until eviction, so
    // this header read is in-bounds even for an already-reclaimed node.
    let canary = unsafe { (*h).canary };
    if canary != crate::oracle::CANARY_ALIVE {
        crate::oracle::uaf_panic(h as u64, canary);
    }
}

/// An SMR-managed node: header followed by the client payload.
///
/// `#[repr(C)]` guarantees the header is at offset 0, so a type-erased
/// `*mut Header` can be recovered from any `*mut SmrNode<T>`.
#[repr(C)]
pub struct SmrNode<T> {
    pub(crate) header: Header,
    data: T,
}

impl<T> SmrNode<T> {
    /// The client payload.
    #[inline]
    pub fn data(&self) -> &T {
        &self.data
    }

    /// The node's immutable MP index.
    #[inline]
    pub fn index(&self) -> u32 {
        self.header.index
    }

    /// The node's birth epoch.
    #[inline]
    pub fn birth(&self) -> u64 {
        self.header.birth
    }
}

/// Live-allocation gauge: incremented on every SMR node allocation and
/// decremented on every reclamation. Lets tests assert leak-freedom and
/// benchmarks report resident nodes.
pub mod gauge {
    use super::*;

    pub(crate) static LIVE: AtomicUsize = AtomicUsize::new(0);

    /// Bytes held by retired-but-unreclaimed nodes (headers + payloads),
    /// process-wide. Maintained by `Retired::new` / `Retired::reclaim`,
    /// so every scheme's waste is measured in bytes without per-scheme
    /// size bookkeeping; the telemetry waste time-series samples it.
    pub(crate) static RETIRED_BYTES: AtomicUsize = AtomicUsize::new(0);

    /// Number of SMR nodes currently allocated and not yet reclaimed
    /// (linked + retired-pending), across all schemes in the process.
    pub fn live_nodes() -> usize {
        LIVE.load(Ordering::Acquire)
    }

    /// Bytes of retired-but-unreclaimed node memory, process-wide (the
    /// paper's wasted memory, in bytes instead of node counts).
    pub fn retired_bytes() -> usize {
        RETIRED_BYTES.load(Ordering::Acquire)
    }
}

#[inline]
fn node_layout<T>() -> Layout {
    Layout::new::<SmrNode<T>>()
}

/// Allocates a node with the given payload, index, and birth epoch.
///
/// The block comes from the thread-local segregated pool
/// (`mp_util::pool`) when a reclaimed block of the right size class is
/// cached, and from the system allocator otherwise.
pub(crate) fn alloc_node<T>(data: T, index: u32, birth: u64) -> *mut SmrNode<T> {
    alloc_node_tracked(data, index, birth).0
}

/// [`alloc_node`] plus per-handle telemetry: records the pool hit/miss
/// split and traces the allocation event. Every `SmrHandle::alloc` routes
/// here.
pub(crate) fn alloc_node_in<T>(
    data: T,
    index: u32,
    birth: u64,
    tele: &mut crate::telemetry::HandleTelemetry,
) -> *mut SmrNode<T> {
    let (ptr, from_pool) = alloc_node_tracked(data, index, birth);
    let addr = ptr as u64; // CAST-OK: opaque event payload for telemetry, never decoded back.
    if from_pool {
        tele.record_pool_hit(addr);
    } else {
        tele.record_pool_miss(addr);
    }
    ptr
}

fn alloc_node_tracked<T>(data: T, index: u32, birth: u64) -> (*mut SmrNode<T>, bool) {
    gauge::LIVE.fetch_add(1, Ordering::AcqRel);
    let (raw, from_pool) = mp_util::pool::alloc(node_layout::<T>());
    let ptr = raw as *mut SmrNode<T>; // CAST-OK: pool block served for exactly node_layout::<T>().
    // SAFETY: [INV-08] `raw` is an exclusively owned block of `SmrNode<T>`'s layout;
    // `write` fully initializes it (recycled pool blocks may hold stale or
    // oracle-poisoned bytes, which `write` overwrites without reading).
    unsafe {
        ptr.write(SmrNode {
            header: Header {
                birth,
                retire: AtomicU64::new(u64::MAX),
                index,
                #[cfg(feature = "oracle")]
                canary: crate::oracle::CANARY_ALIVE,
            },
            data,
        });
    }
    #[cfg(feature = "oracle")]
    crate::oracle::on_alloc(ptr as u64, birth); // CAST-OK: shadow-table key; oracle tracks addresses as u64.
    #[cfg(feature = "hb-oracle")]
    crate::hb::on_alloc(ptr as u64); // CAST-OK: hb-ledger key; tracker records addresses as u64.
    (ptr, from_pool)
}

/// Drops the payload in place, poisons the node, and parks its memory in
/// the oracle quarantine (instead of returning it to the allocator), so a
/// later buggy dereference reads the poison canary deterministically.
///
/// # Safety
/// Same contract as [`dealloc_node`].
#[cfg(feature = "oracle")]
// SAFETY: [INV-11] contract inherited from `dealloc_node` (see `# Safety`);
// each call site cites its own exclusive-ownership argument.
unsafe fn poison_and_quarantine<T>(ptr: *mut SmrNode<T>) {
    // SAFETY: [INV-03] the reclaiming thread owns `ptr` exclusively (scan
    // approved it, per the caller's contract), so dropping the payload and
    // overwriting the bytes races with nothing; [INV-10] the block then
    // transfers to quarantine, keeping it mapped for canary validation.
    unsafe {
        let data = core::ptr::addr_of_mut!((*ptr).data);
        core::ptr::drop_in_place(data);
        // CAST-OK: byte-wise poison fill of the payload we just dropped.
        core::ptr::write_bytes(data as *mut u8, crate::oracle::POISON_BYTE, size_of::<T>());
        (*ptr).header.canary = crate::oracle::CANARY_POISON;
        // CAST-OK: quarantine parks the block as untyped bytes + layout.
        crate::oracle::quarantine_node(ptr as *mut u8, core::alloc::Layout::new::<SmrNode<T>>());
    }
}

/// Frees a node. Without the oracle the block goes back to the thread-local
/// pool for recycling; with the oracle it is poisoned and quarantined first,
/// and only reaches the pool when evicted from quarantine (so UAF detection
/// is not weakened by recycling).
///
/// # Safety
/// `ptr` must have come from [`alloc_node`] and must not be accessed again.
// SAFETY: [INV-11] obligation stated in `# Safety` above; every caller
// (Retired::reclaim via dealloc_erased, tests) cites how it is met.
pub(crate) unsafe fn dealloc_node<T>(ptr: *mut SmrNode<T>) {
    gauge::LIVE.fetch_sub(1, Ordering::AcqRel);
    #[cfg(feature = "oracle")]
    // SAFETY: [INV-03] per this fn's contract the node is scan-approved and
    // never accessed again — the reclaiming thread has exclusive access.
    unsafe {
        // CAST-OK: shadow-table key; oracle tracks addresses as u64.
        crate::oracle::on_free(ptr as u64, (*ptr).header.birth);
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_free(ptr as u64); // CAST-OK: hb-ledger key; tracker records addresses as u64.
        poison_and_quarantine(ptr);
    }
    #[cfg(not(feature = "oracle"))]
    // SAFETY: [INV-03] exclusive access per this fn's contract; [INV-08] the
    // block is returned with the exact layout class it was served for.
    unsafe {
        core::ptr::drop_in_place(ptr);
        // CAST-OK: pool stores free blocks as untyped bytes + layout.
        mp_util::pool::dealloc(ptr as *mut u8, node_layout::<T>());
    }
}

/// Frees a node, returning its payload to the caller.
///
/// # Safety
/// Same as [`dealloc_node`].
// SAFETY: [INV-11] obligation stated in `# Safety` above, discharged at the
// call sites (failed-publication paths that still own the fresh node).
pub(crate) unsafe fn take_node<T>(ptr: *mut SmrNode<T>) -> T {
    gauge::LIVE.fetch_sub(1, Ordering::AcqRel);
    #[cfg(feature = "oracle")]
    // SAFETY: [INV-03] exclusive access per this fn's contract: the payload
    // is moved out exactly once, the bytes poisoned, and the block handed to
    // quarantine ([INV-10]) without further access through `ptr`.
    unsafe {
        // CAST-OK: shadow-table key; oracle tracks addresses as u64.
        crate::oracle::on_free(ptr as u64, (*ptr).header.birth);
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_free(ptr as u64); // CAST-OK: hb-ledger key; tracker records addresses as u64.
        let data = core::ptr::read(core::ptr::addr_of!((*ptr).data));
        core::ptr::write_bytes(
            // CAST-OK: byte-wise poison fill of the payload just moved out.
            core::ptr::addr_of_mut!((*ptr).data) as *mut u8,
            crate::oracle::POISON_BYTE,
            size_of::<T>(),
        );
        (*ptr).header.canary = crate::oracle::CANARY_POISON;
        // CAST-OK: quarantine parks the block as untyped bytes + layout.
        crate::oracle::quarantine_node(ptr as *mut u8, core::alloc::Layout::new::<SmrNode<T>>());
        data
    }
    #[cfg(not(feature = "oracle"))]
    // SAFETY: [INV-03] exclusive access per this fn's contract; the payload
    // is moved out once and the block ([INV-08], same layout class) freed.
    unsafe {
        let data = core::ptr::read(core::ptr::addr_of!((*ptr).data));
        // CAST-OK: pool stores free blocks as untyped bytes + layout.
        mp_util::pool::dealloc(ptr as *mut u8, node_layout::<T>());
        data
    }
}

/// Allocates an SMR node outside any handle (index 0, birth 0). For
/// scheme-internal machinery only — e.g. the replacement copies DTA's
/// freezer splices into a list; ordinary clients allocate through
/// [`crate::SmrHandle::alloc`].
pub fn alloc_bare<T>(data: T) -> *mut SmrNode<T> {
    alloc_node(data, 0, 0)
}

/// Monomorphized eraser stored in [`Retired::drop_fn`].
///
/// # Safety
/// `ptr` must be the header of an `SmrNode<T>` of this exact `T` (recorded
/// at retire time), under [`dealloc_node`]'s contract.
// SAFETY: [INV-11] obligation stated above; Retired::reclaim's call site
// carries the scan-approval argument.
unsafe fn dealloc_erased<T>(ptr: *mut Header) {
    // SAFETY: [INV-09] header is at offset 0 of the #[repr(C)] node, so the
    // erased header pointer converts back to the `*mut SmrNode<T>` that
    // `Retired::new` erased; contract then forwards to `dealloc_node`.
    unsafe { dealloc_node(ptr as *mut SmrNode<T>) } // CAST-OK: [INV-09] pun, see SAFETY above.
}

/// A type-erased retired node, buffered until reclamation is safe.
pub(crate) struct Retired {
    pub(crate) ptr: *mut Header,
    pub(crate) birth: u64,
    pub(crate) retire: u64,
    /// Start stamp of the *operation* that unlinked and retired the node.
    /// `retire` can postdate the unlink arbitrarily (the remover may be
    /// preempted between its splice and its `retire` call); `op_start` is
    /// guaranteed ≤ the unlink time, which DTA's neutralization window
    /// depends on. Defaults to `retire` for schemes that don't need it.
    pub(crate) op_start: u64,
    pub(crate) index: u32,
    /// Size of the node (header + payload) in bytes; keeps the global
    /// retired-bytes gauge exact without re-deriving the erased layout.
    bytes: u32,
    // SAFETY: [INV-11] unsafe fn *type*: the pointee-type obligation is
    // carried by `dealloc_erased`, the only value ever stored here.
    drop_fn: unsafe fn(*mut Header),
}

// SAFETY: [INV-07] a `Retired` is a plain word bundle; the raw pointer moves
// between threads (retiring thread's list → scheme orphan list) but is only
// dereferenced by `reclaim`, whose call sites carry the [INV-05] argument.
unsafe impl Send for Retired {}

impl Retired {
    /// Captures `ptr` for deferred reclamation, stamping `retire_epoch`.
    ///
    /// # Safety
    /// `ptr` must be a removed (unreachable) node retired exactly once.
    // SAFETY: [INV-11] obligation stated above; each scheme's `retire`
    // cites the winning unlink CAS ([INV-04]) at its call site.
    pub(crate) unsafe fn new<T>(ptr: *mut SmrNode<T>, retire_epoch: u64) -> Self {
        let header = ptr as *mut Header; // CAST-OK: [INV-09] header-at-offset-0 pun.
        // SAFETY: [INV-09] in-bounds header reads through the repr(C) pun;
        // [INV-04] the node is removed, so the retiring thread may read it.
        let (birth, index) = unsafe { ((*header).birth, (*header).index) };
        #[cfg(feature = "oracle")]
        crate::oracle::on_retire(header as u64, birth);
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_retire(header as u64); // CAST-OK: hb-ledger key; tracker records addresses as u64.
        // SAFETY: [INV-04] exactly one thread retires the node, and the
        // field is atomic — concurrent scans of foreign retired state stay
        // well-defined while this store publishes the retire epoch.
        unsafe { (*header).retire.store(retire_epoch, Ordering::Release) };
        let bytes = size_of::<SmrNode<T>>() as u32;
        gauge::RETIRED_BYTES.fetch_add(bytes as usize, Ordering::AcqRel);
        Retired {
            ptr: header,
            birth,
            retire: retire_epoch,
            op_start: retire_epoch,
            index,
            bytes,
            drop_fn: dealloc_erased::<T>,
        }
    }

    /// Reclaims the node's memory.
    ///
    /// # Safety
    /// No thread may hold a protected reference to the node.
    // SAFETY: [INV-11] obligation stated above; every scheme's `empty()`
    // call site points at the scan that approved the node ([INV-05]).
    pub(crate) unsafe fn reclaim(self) {
        gauge::RETIRED_BYTES.fetch_sub(self.bytes as usize, Ordering::AcqRel);
        // SAFETY: [INV-05] caller's scan approved the node; `drop_fn` is the
        // monomorphized eraser recorded by `Retired::new` for this node.
        unsafe { (self.drop_fn)(self.ptr) };
    }

    /// The node address as a u64 (for comparison against hazard slots).
    #[inline]
    pub(crate) fn addr(&self) -> u64 {
        self.ptr as u64 // CAST-OK: compared against announced slot words, never decoded.
    }

    /// Size of the node (header + payload) in bytes, for the retired-bytes
    /// scan watermark.
    #[inline]
    pub(crate) fn bytes(&self) -> u32 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_at_offset_zero() {
        let node = alloc_node(0u128, 9, 4);
        // SAFETY: [INV-12] node is live and owned by this test thread.
        assert_eq!(node as usize, unsafe { &(*node).header } as *const _ as usize);
        unsafe { dealloc_node(node) }; // SAFETY: [INV-12] unpublished, test-owned node.
    }

    /// Zero-cost-when-off witness: without the oracle feature the header
    /// carries no canary and stays within Table 1's 3-word budget — any
    /// oracle field leaking onto the hot path fails this at compile/test
    /// time.
    #[cfg(not(feature = "oracle"))]
    #[test]
    fn header_is_three_words_without_the_oracle() {
        assert!(core::mem::size_of::<Header>() <= 3 * core::mem::size_of::<u64>());
    }

    /// Counterpart: under the oracle the canary widens the header by one
    /// word, and a live node's canary reads back alive.
    #[cfg(feature = "oracle")]
    #[test]
    fn header_gains_exactly_one_canary_word_under_the_oracle() {
        assert_eq!(core::mem::size_of::<Header>(), 4 * core::mem::size_of::<u64>());
        let node = alloc_node(7u32, 0, 0);
        // SAFETY: [INV-12] node is live and owned by this test thread.
        assert_eq!(unsafe { (*node).header.canary }, crate::oracle::CANARY_ALIVE);
        unsafe { dealloc_node(node) }; // SAFETY: [INV-12] unpublished, test-owned node.
    }

    #[test]
    fn gauge_tracks_alloc_and_free() {
        // Tests run in parallel, so only lower bounds are reliable here; the
        // exact end-to-end leak check lives in the `leak_check` integration
        // test, which runs alone in its own process.
        let a = alloc_node(vec![1u8, 2, 3], 1, 0);
        let b = alloc_node("hello".to_string(), 2, 0);
        assert!(gauge::live_nodes() >= 2, "our two live nodes must be counted");
        // SAFETY: [INV-12] both nodes are unpublished and test-owned.
        unsafe {
            dealloc_node(a);
            dealloc_node(b);
        }
    }

    #[test]
    fn retired_reclaims_through_type_erasure() {
        struct DropFlag(std::sync::Arc<AtomicUsize>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::AcqRel);
            }
        }
        let flag = std::sync::Arc::new(AtomicUsize::new(0));
        let node = alloc_node(DropFlag(flag.clone()), 11, 3);
        let retired = unsafe { Retired::new(node, 8) }; // SAFETY: [INV-12] never published, retired once.
        assert_eq!(retired.birth, 3);
        assert_eq!(retired.retire, 8);
        assert_eq!(retired.index, 11);
        assert_eq!(retired.bytes as usize, size_of::<SmrNode<DropFlag>>());
        unsafe { retired.reclaim() }; // SAFETY: [INV-12] no other thread ever saw the node.
        assert_eq!(flag.load(Ordering::Acquire), 1, "payload Drop must run");
    }

    /// Pool recycling round-trip: a reclaimed node's block is served to the
    /// next same-class allocation on this thread, the live gauge balances,
    /// and the payload's drop glue runs exactly once per node lifetime
    /// (recycling must never re-drop or skip a payload). Without the oracle
    /// only — the oracle parks freed blocks in quarantine, so immediate
    /// reuse is deliberately impossible there.
    #[cfg(not(feature = "oracle"))]
    #[test]
    fn pool_recycling_round_trip() {
        struct DropFlag(std::sync::Arc<AtomicUsize>);
        impl Drop for DropFlag {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::AcqRel);
            }
        }
        assert!(mp_util::pool::enabled(), "pool must default on");
        let drops = std::sync::Arc::new(AtomicUsize::new(0));

        let a = alloc_node(DropFlag(drops.clone()), 1, 0);
        let a_addr = a as usize;
        unsafe { dealloc_node(a) }; // SAFETY: [INV-12] unpublished, test-owned node.
        assert_eq!(drops.load(Ordering::Acquire), 1, "first payload dropped once");

        // Same thread, same size class: the LIFO free list returns the block.
        let mut tele = crate::telemetry::HandleTelemetry::new(0);
        let b = alloc_node_in(DropFlag(drops.clone()), 2, 0, &mut tele);
        assert_eq!(b as usize, a_addr, "reclaimed block must be recycled");
        assert_eq!(tele.stats().pool_hits, 1);
        assert_eq!(tele.stats().pool_misses, 0);
        assert_eq!(drops.load(Ordering::Acquire), 1, "recycling must not run drop glue");
        // SAFETY: [INV-12] `b` is live and owned by this test thread.
        assert_eq!(unsafe { (*b).header.index }, 2, "header fully re-initialized");

        unsafe { dealloc_node(b) }; // SAFETY: [INV-12] unpublished, test-owned node.
        assert_eq!(drops.load(Ordering::Acquire), 2, "each payload dropped exactly once");
        // Gauge exactness under recycling is asserted in the single-test
        // `zero_alloc` process (the gauge is global; tests here run in
        // parallel) and end-to-end in `leak_check`.
    }

    #[test]
    fn use_hp_class_boundaries() {
        assert!(is_use_hp_class(USE_HP));
        assert!(is_use_hp_class(USE_HP_CLASS_START));
        assert!(!is_use_hp_class(USE_HP_CLASS_START - 1));
        assert!(!is_use_hp_class(0));
    }
}
