//! The reclamation oracle (`--features oracle`): turns latent SMR bugs into
//! immediate, seed-replayable panics.
//!
//! SMR bugs are timing-dependent: a use-after-free or double-free corrupts
//! memory silently and surfaces (if ever) far from the cause. Under this
//! feature every SMR node's lifecycle is mirrored in a shadow table
//! ([`mp_util::shadow::ShadowTable`]) keyed by node address, with the birth
//! epoch as an incarnation tag distinguishing address reuse:
//!
//! ```text
//!   Allocated ──retire──▶ Retired ──reclaim──▶ Freed (entry pruned on
//!       │                                        real deallocation)
//!       └───────owned drop (never published)──────▶ Freed
//! ```
//!
//! Illegal transitions — double retire, retire after free, double free,
//! free of an untracked address, a birth-tag mismatch betraying a stale
//! retired record — panic on the spot, naming the violation, the address,
//! the scheme that last started an operation on the offending thread, the
//! thread, and the replay seed (see [`set_replay_seed`]).
//!
//! ## Poisoning and quarantine
//!
//! On reclamation the payload is dropped in place, overwritten with
//! [`POISON_BYTE`], and the header canary flips from [`CANARY_ALIVE`] to
//! [`CANARY_POISON`]; [`crate::Shared::deref`] validates the canary on
//! every dereference. To keep that check *defined behavior* (not a racy
//! read of returned-to-the-allocator memory), freed nodes are parked in a
//! bounded FIFO quarantine and only handed back to the allocator once the
//! quarantine exceeds [`QUARANTINE_CAP`] — the same trick sanitizers use,
//! giving a deterministic use-after-free detection window without Miri or
//! TSan (which the hermetic toolchain cannot assume).
//!
//! ## Waste-bound monitor
//!
//! Schemes with a bounded-waste guarantee call [`check_waste_bound`] after
//! every `empty()` with their per-handle kept-list length and the bound
//! computed from [`crate::Config`] (MP: the Theorem 4.2 formula; HP: total
//! hazard slots; HE: an era-pile heuristic). EBR/IBR/DTA/Leaky are exempt —
//! their waste is unbounded by design under stalls.
//!
//! Everything here is test machinery: the module (and every call site) is
//! compiled out without `--features oracle`.

use std::alloc::Layout;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use mp_util::shadow::{ShadowSlot, ShadowTable};

/// Lifecycle state: allocated, not yet retired.
pub const ALLOCATED: u8 = 0;
/// Lifecycle state: retired, awaiting reclamation.
pub const RETIRED: u8 = 1;

/// Header canary value of a live (not yet reclaimed) node.
pub(crate) const CANARY_ALIVE: u64 = 0xa11c_0de5_afe5_eed5;
/// Header canary value after reclamation (while the node sits in
/// quarantine).
pub(crate) const CANARY_POISON: u64 = 0xdead_f12e_d00d_beef;
/// Byte poured over the payload when a node is reclaimed.
pub(crate) const POISON_BYTE: u8 = 0x5a;

/// Reclaimed nodes held in quarantine before the allocator gets them back.
/// Inside this window a buggy dereference reads poison deterministically.
pub const QUARANTINE_CAP: usize = 1 << 15;

static REPLAY_SEED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SCHEME: Cell<&'static str> = const { Cell::new("?") };
    static PIN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn table() -> &'static ShadowTable {
    static TABLE: OnceLock<ShadowTable> = OnceLock::new();
    TABLE.get_or_init(ShadowTable::new)
}

/// Records the checker base seed driving the current test, so oracle panics
/// print a `MP_CHECK_SEED=…` replay line. `0` means "unset".
pub fn set_replay_seed(seed: u64) {
    REPLAY_SEED.store(seed, Ordering::Release);
}

/// Notes that `scheme` started an operation on the calling thread; panics
/// from this thread attribute the violation to it. Called by every scheme's
/// `start_op`.
pub fn enter_scheme(name: &'static str) {
    SCHEME.with(|s| s.set(name));
}

/// Diagnostic suffix: offending scheme, thread, and replay seed.
pub(crate) fn context() -> String {
    let scheme = SCHEME.with(|s| s.get());
    let thread = std::thread::current();
    let name = thread.name().map(str::to_owned).unwrap_or_else(|| format!("{:?}", thread.id()));
    let seed = REPLAY_SEED.load(Ordering::Acquire);
    if seed == 0 {
        format!("scheme={scheme} thread={name}; set MP_CHECK_SEED to replay seeded tests")
    } else {
        format!("scheme={scheme} thread={name}; replay with MP_CHECK_SEED={seed:#x}")
    }
}

pub(crate) fn violation(what: &str, addr: u64, detail: String) -> ! {
    panic!("reclamation oracle: {what} of node {addr:#x} ({detail}; {})", context());
}

fn state_name(state: u8) -> &'static str {
    match state {
        ALLOCATED => "Allocated",
        RETIRED => "Retired",
        _ => "?",
    }
}

/// Records a fresh allocation at `addr` with birth-epoch tag `birth`.
///
/// The allocator can only return an address the table does not track: a
/// freed node's entry is pruned exactly when its memory leaves quarantine.
/// A tracked address here means a node was freed behind the oracle's back.
pub(crate) fn on_alloc(addr: u64, birth: u64) {
    let r = table().transition(addr, |cur| match cur {
        None => Ok(Some(ShadowSlot { state: ALLOCATED, tag: birth })),
        Some(s) => Err(format!(
            "allocator returned an address still tracked as {} (tag {})",
            state_name(s.state),
            s.tag
        )),
    });
    if let Err(detail) = r {
        violation("allocation", addr, detail);
    }
}

/// Transitions `addr` to Retired. Fires on double retire, retire after
/// free (the address is untracked or re-incarnated), and retire of a node
/// the oracle never saw allocated.
pub(crate) fn on_retire(addr: u64, birth: u64) {
    let r = table().transition(addr, |cur| match cur {
        Some(s) if s.tag != birth => Err(format!(
            "stale retire: birth tag {} does not match live incarnation {}",
            birth, s.tag
        )),
        Some(s) if s.state == ALLOCATED => Ok(Some(ShadowSlot { state: RETIRED, ..s })),
        Some(s) if s.state == RETIRED => Err("double retire".to_string()),
        Some(s) => Err(format!("retire in state {}", state_name(s.state))),
        None => Err("retire of a freed or never-allocated node".to_string()),
    });
    if let Err(detail) = r {
        violation("retire", addr, detail);
    }
}

/// Transitions `addr` to Freed (entry pruned once the memory leaves
/// quarantine — see [`quarantine_node`]). Accepts `Allocated` (an owned
/// drop of a never-published node) and `Retired` (normal reclamation);
/// anything else is a double free or a free of an untracked node.
pub(crate) fn on_free(addr: u64, birth: u64) {
    let r = table().transition(addr, |cur| match cur {
        Some(s) if s.tag != birth => Err(format!(
            "stale free: birth tag {} does not match live incarnation {}",
            birth, s.tag
        )),
        Some(s) if s.state == ALLOCATED || s.state == RETIRED => Ok(None),
        Some(s) => Err(format!("free in state {}", state_name(s.state))),
        None => Err("double free (or free of a never-allocated node)".to_string()),
    });
    if let Err(detail) = r {
        violation("free", addr, detail);
    }
}

/// Panics with a use-after-free report; called by `Shared::deref` when the
/// header canary is not [`CANARY_ALIVE`].
pub(crate) fn uaf_panic(addr: u64, canary: u64) -> ! {
    let kind = if canary == CANARY_POISON {
        "use-after-free: node dereferenced after reclamation".to_string()
    } else {
        format!("use-after-free or wild pointer: unknown canary {canary:#x}")
    };
    violation("dereference", addr, kind);
}

/// Asserts a scheme's per-handle retired-list length against its
/// predetermined waste bound (called after every `empty()`; also the entry
/// point negative tests use to prove the monitor fires).
///
/// # Panics
/// If `retired_len > bound` — the scheme kept more wasted memory than its
/// formula admits, i.e. its reclamation scan is broken.
pub fn check_waste_bound(scheme: &str, retired_len: usize, bound: u128) {
    if retired_len as u128 > bound {
        panic!(
            "reclamation oracle: waste bound violated for {scheme}: \
             retired list holds {retired_len} nodes > bound {bound} ({})",
            context()
        );
    }
}

struct Quarantined {
    ptr: *mut u8,
    layout: Layout,
}

// SAFETY: [INV-07] the pointer is exclusively owned by the quarantine (the
// node was reclaimed); the only deref-like use is the eviction dealloc,
// which [INV-10] covers.
unsafe impl Send for Quarantined {}

static QUARANTINE: Mutex<VecDeque<Quarantined>> = Mutex::new(VecDeque::new());

/// Parks a reclaimed (already poisoned) node's memory in the FIFO
/// quarantine; once the quarantine exceeds [`QUARANTINE_CAP`], the oldest
/// entry is handed back to the block pool and its shadow entry pruned.
///
/// Ordering contract with the node pool (`mp_util::pool`): a freed block
/// enters quarantine *before* it can ever be reinserted into the pool, and
/// its shadow entry is pruned *before* the pool sees it — so while an
/// address is still tracked as `Freed`, the pool cannot serve it back and
/// every dereference of it reads poison deterministically. Recycling
/// therefore does not weaken UAF detection.
///
/// # Safety
/// `ptr` must be the start of a live allocation of `layout` that no other
/// owner will deallocate.
// SAFETY: [INV-11] obligation stated in `# Safety` above; discharged by
// the poison-and-quarantine paths in node.rs ([INV-10]).
pub(crate) unsafe fn quarantine_node(ptr: *mut u8, layout: Layout) {
    let evicted = {
        let mut q = QUARANTINE.lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(Quarantined { ptr, layout });
        if q.len() > QUARANTINE_CAP {
            q.pop_front()
        } else {
            None
        }
    };
    if let Some(old) = evicted {
        // Prune the shadow entry: the address may now be legitimately
        // reused by the pool or the allocator.
        // CAST-OK: shadow-table key; oracle tracks addresses as u64.
        let _ = table().transition(old.ptr as u64, |_| Ok(None));
        // SAFETY: [INV-10] the quarantine entry owned this allocation
        // exclusively. Handing it to the pool (not straight to `std::alloc`)
        // is what lets recycled blocks flow back to `alloc_node` under the
        // oracle; the shadow entry was pruned first, so `on_alloc` sees an
        // untracked address.
        unsafe { mp_util::pool::dealloc(old.ptr, old.layout) };
    }
}

/// Marks the calling thread as inside a [`crate::SmrHandle::pin`]-scoped
/// operation; panics on nesting, which the trait protocol forbids (a
/// data-structure call pins internally, so pinning around one deadlocks
/// protection bookkeeping silently in release builds).
pub(crate) fn pin_enter() {
    PIN_DEPTH.with(|d| {
        let depth = d.get();
        if depth > 0 {
            panic!(
                "reclamation oracle: nested pin(): an operation guard is already \
                 live on this thread ({})",
                context()
            );
        }
        d.set(depth + 1);
    });
}

/// Closes the scope opened by [`pin_enter`] (runs on every guard drop,
/// including unwinds).
pub(crate) fn pin_exit() {
    PIN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
}

/// Number of addresses currently tracked (live + quarantined nodes).
pub fn tracked_nodes() -> usize {
    table().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The shadow table and quarantine are process-global, shared with every
    // other test in this binary; these tests therefore use only addresses
    // they fabricate (odd, unaligned values no allocator returns) and real
    // nodes they own, and assert relative behavior only.

    #[test]
    fn lifecycle_roundtrip_is_clean() {
        let addr = 0x1001; // fabricated: never a real allocation
        on_alloc(addr, 3);
        on_retire(addr, 3);
        on_free(addr, 3);
        // Freed entries are pruned only on quarantine eviction; prune
        // manually so this fabricated address does not linger.
        let _ = table().transition(addr, |_| Ok(None));
    }

    #[test]
    fn double_retire_is_rejected() {
        let addr = 0x2003;
        on_alloc(addr, 1);
        on_retire(addr, 1);
        let err = std::panic::catch_unwind(|| on_retire(addr, 1));
        assert!(err.is_err(), "second retire must panic");
        let _ = table().transition(addr, |_| Ok(None));
    }

    #[test]
    fn free_without_alloc_is_rejected() {
        let err = std::panic::catch_unwind(|| on_free(0x3005, 0));
        assert!(err.is_err(), "freeing an untracked address must panic");
    }

    #[test]
    fn tag_mismatch_is_rejected() {
        let addr = 0x4007;
        on_alloc(addr, 10);
        let err = std::panic::catch_unwind(|| on_retire(addr, 11));
        assert!(err.is_err(), "stale birth tag must panic");
        let _ = table().transition(addr, |_| Ok(None));
    }

    #[test]
    fn waste_bound_boundary() {
        check_waste_bound("X", 64, 64); // at the bound: fine
        let err = std::panic::catch_unwind(|| check_waste_bound("X", 65, 64));
        assert!(err.is_err(), "one past the bound must panic");
    }

    #[test]
    fn panic_messages_carry_context() {
        enter_scheme("TEST-SCHEME");
        set_replay_seed(0xabcd);
        let err = std::panic::catch_unwind(|| check_waste_bound("HP", 2, 1)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("HP"), "{msg}");
        assert!(msg.contains("TEST-SCHEME"), "{msg}");
        assert!(msg.contains("MP_CHECK_SEED=0xabcd"), "{msg}");
    }

    #[test]
    fn pin_nesting_is_rejected() {
        pin_enter();
        let err = std::panic::catch_unwind(pin_enter);
        assert!(err.is_err(), "nested pin must panic");
        pin_exit();
        // Balanced again: a fresh pin succeeds.
        pin_enter();
        pin_exit();
    }
}
