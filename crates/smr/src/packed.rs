//! Packed pointer representation (paper §4.3.1, Listing 6).
//!
//! MP must know a node's index *without dereferencing the node* (the
//! "chicken and egg" problem of logical protection). A pointer is therefore
//! a single 64-bit word packing:
//!
//! ```text
//!   63            48 47                         2 1    0
//!  +----------------+----------------------------+------+
//!  |  index >> 16   |   virtual address bits      | mark |
//!  +----------------+----------------------------+------+
//! ```
//!
//! * bits 48..64 — the 16 most significant bits of the pointee's 32-bit MP
//!   index (`PRECISION = 16`). Observing packed value `i` means the node's
//!   index lies in `[i << 16, (i << 16) + 0xffff]`.
//! * bits 2..48 — the node address. x86-64 and AArch64 user space use at
//!   most 48 significant address bits, as the paper relies on.
//! * bits 0..2 — untouched by the SMR layer; client data structures use them
//!   as delete/flag/tag marks (Michael list: 1 bit; NM tree: 2 bits).
//!
//! A single-word CAS therefore updates pointer, index, and marks atomically.

use core::fmt;
use core::marker::PhantomData;
use core::sync::atomic::{AtomicU64, Ordering};

use crate::node::SmrNode;

/// Number of index bits carried in a packed pointer.
pub const PRECISION: u32 = 16;
/// Number of significant virtual-address bits.
pub const ADDR_BITS: u32 = 48;
/// Mask extracting the address-plus-mark field.
pub const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;
/// Low bits available to clients as marks.
pub const MARK_MASK: u64 = 0b11;

/// A snapshot of a packed pointer word: address + packed index + marks.
///
/// `Shared` is a plain `Copy` value — the moral equivalent of the paper's
/// `MP_CAS_Ptr` read out of shared memory. Dereferencing requires `unsafe`
/// and is sound only while the pointee is protected by the issuing thread's
/// SMR handle (see [`crate::SmrHandle::read`]).
pub struct Shared<T> {
    word: u64,
    _marker: PhantomData<*mut SmrNode<T>>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<T> {}

impl<T> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        self.word == other.word
    }
}
impl<T> Eq for Shared<T> {}

impl<T> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("addr", &format_args!("{:#x}", self.word & ADDR_MASK & !MARK_MASK))
            .field("packed_index", &self.packed_index())
            .field("mark", &self.mark())
            .finish()
    }
}

impl<T> Shared<T> {
    /// The null pointer (all bits zero; packed index 0, no marks).
    #[inline]
    pub const fn null() -> Self {
        Shared { word: 0, _marker: PhantomData }
    }

    /// Reconstructs a `Shared` from a raw packed word.
    #[inline]
    pub const fn from_word(word: u64) -> Self {
        Shared { word, _marker: PhantomData }
    }

    /// The raw packed word (address + index + marks).
    #[inline]
    pub const fn into_word(self) -> u64 {
        self.word
    }

    /// Packs a freshly allocated node, reading its index from the header.
    ///
    /// # Safety
    /// `ptr` must point to a live `SmrNode<T>` (typically just allocated and
    /// exclusively owned by the caller).
    #[inline]
    // SAFETY: [INV-11] obligation (live node) stated in `# Safety` above;
    // every caller packs a pointer the node allocator just returned.
    pub unsafe fn from_owned(ptr: *mut SmrNode<T>) -> Self {
        // SAFETY: [INV-02] `ptr` is live per this fn's contract, so the
        // header read is in-bounds.
        let index = unsafe { (*ptr).index() };
        Self::pack(ptr, index)
    }

    /// Packs an address with an explicit 32-bit index.
    #[inline]
    pub fn pack(ptr: *mut SmrNode<T>, index: u32) -> Self {
        let addr = ptr as u64;
        debug_assert_eq!(addr & !ADDR_MASK, 0, "address exceeds 48 bits");
        debug_assert_eq!(addr & MARK_MASK, 0, "allocation not 4-byte aligned");
        let packed = (index >> PRECISION) as u64;
        Shared { word: (packed << ADDR_BITS) | addr, _marker: PhantomData }
    }

    /// True if the address field (ignoring marks) is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.word & ADDR_MASK & !MARK_MASK == 0
    }

    /// The node address with index and mark bits stripped.
    #[inline]
    pub fn as_raw(self) -> *mut SmrNode<T> {
        (self.word & ADDR_MASK & !MARK_MASK) as *mut SmrNode<T>
    }

    /// The node address as a bare `u64` (index and mark bits stripped) —
    /// the form announced in hazard/anchor slots and compared by
    /// reclamation scans. This accessor is the one sanctioned
    /// pointer→integer pun for protocol code outside this module; the
    /// linter's forbidden-API pass rejects raw `as` casts elsewhere.
    #[inline]
    pub fn addr(self) -> u64 {
        self.word & ADDR_MASK & !MARK_MASK
    }

    /// The 16 packed index bits (i.e. `index >> 16` of the pointee).
    #[inline]
    pub fn packed_index(self) -> u16 {
        (self.word >> ADDR_BITS) as u16
    }

    /// Inclusive bounds `[lo, hi]` of the pointee's possible 32-bit index,
    /// reconstructed from the packed 16 bits (Listing 10's
    /// `idx_lower_bound` / `idx_upper_bound`).
    #[inline]
    pub fn index_bounds(self) -> (u32, u32) {
        let lo = (self.packed_index() as u32) << PRECISION;
        (lo, lo | ((1 << PRECISION) - 1))
    }

    /// The client mark bits (low 2 bits).
    #[inline]
    pub fn mark(self) -> u64 {
        self.word & MARK_MASK
    }

    /// Copy of this pointer with the mark bits replaced by `mark`.
    #[inline]
    pub fn with_mark(self, mark: u64) -> Self {
        debug_assert_eq!(mark & !MARK_MASK, 0);
        Shared { word: (self.word & !MARK_MASK) | mark, _marker: PhantomData }
    }

    /// Copy of this pointer with all mark bits cleared.
    #[inline]
    pub fn unmarked(self) -> Self {
        Shared { word: self.word & !MARK_MASK, _marker: PhantomData }
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    /// The pointee must be protected from reclamation for the duration of
    /// `'a`: either returned by [`crate::SmrHandle::read`] during the current
    /// operation, just allocated and not yet published, or owned exclusively
    /// (e.g. during `Drop` of the whole structure). Must not be null.
    #[inline]
    // SAFETY: [INV-11] obligation (protected pointee) stated in `# Safety`
    // above; every call site cites [INV-01] or [INV-03].
    pub unsafe fn deref<'a>(self) -> &'a SmrNode<T> {
        debug_assert!(!self.is_null());
        // Oracle: reclaimed nodes stay mapped (quarantined) with a poisoned
        // header canary, so a protection bug panics here deterministically
        // instead of reading freed memory.
        #[cfg(feature = "oracle")]
        // SAFETY: [INV-10] quarantined memory stays mapped, so the canary
        // check may read the header even if protection was violated.
        unsafe {
            crate::node::oracle_check_canary(self.as_raw() as *const crate::node::Header)
        };
        // Hb-oracle: beyond "not freed yet" (the canary above), demand a
        // tracked happens-before justification — blanket epoch coverage or
        // a validated protection record — for dereferencing a retired node.
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_deref(self.addr());
        // SAFETY: [INV-02] the word decodes to a live (protected, per this
        // fn's contract) allocation, so the reference is valid for 'a.
        unsafe { &*self.as_raw() }
    }

    /// Frees a node the caller *exclusively owns*, bypassing the retire
    /// path: a node whose publication CAS failed (it was never shared), or
    /// a node reclaimed during teardown of the whole data structure.
    ///
    /// # Safety
    /// No other thread can hold any reference to the node, and it must not
    /// have been retired.
    // SAFETY: [INV-11] obligation stated in `# Safety` above; call sites
    // cite [INV-03] (failed publication or structure teardown).
    pub unsafe fn drop_owned(self) {
        // SAFETY: [INV-03] forwarded from this fn's own contract.
        unsafe { crate::node::dealloc_node(self.as_raw()) };
    }

    /// Like [`drop_owned`](Shared::drop_owned), but returns the payload —
    /// e.g. to recover the value of a failed insert for the retry.
    ///
    /// # Safety
    /// Same contract as [`drop_owned`](Shared::drop_owned).
    // SAFETY: [INV-11] obligation stated in `# Safety` above; call sites
    // cite [INV-03] (failed publication or structure teardown).
    pub unsafe fn take_owned(self) -> T {
        // SAFETY: [INV-03] forwarded from this fn's own contract.
        unsafe { crate::node::take_node(self.as_raw()) }
    }
}

/// A shared atomic packed pointer — the paper's `MP_CAS_Ptr`.
///
/// Supports the usual load / store / CAS operations over the full packed
/// word, so index and marks travel with the address under a single CAS.
pub struct Atomic<T> {
    word: AtomicU64,
    _marker: PhantomData<*mut SmrNode<T>>,
}

// SAFETY: [INV-07] the packed word is just a number; every deref site is
// separately guarded ([INV-01]/[INV-03]), so sharing the cell transfers no
// access rights. Same argument for all four impls below.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: [INV-07] see above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}
// SAFETY: [INV-07] see above.
unsafe impl<T: Send + Sync> Send for Shared<T> {}
// SAFETY: [INV-07] see above.
unsafe impl<T: Send + Sync> Sync for Shared<T> {}

impl<T> Atomic<T> {
    /// A null atomic pointer.
    pub const fn null() -> Self {
        Atomic { word: AtomicU64::new(0), _marker: PhantomData }
    }

    /// Creates an atomic pointer initialized to `s`.
    pub fn new(s: Shared<T>) -> Self {
        Atomic { word: AtomicU64::new(s.into_word()), _marker: PhantomData }
    }

    /// Atomically loads the packed word.
    #[inline]
    pub fn load(&self, order: Ordering) -> Shared<T> {
        Shared::from_word(self.word.load(order))
    }

    /// Atomically stores the packed word.
    #[inline]
    pub fn store(&self, s: Shared<T>, order: Ordering) {
        self.word.store(s.into_word(), order);
    }

    /// Single-word compare-and-swap over the full packed word.
    ///
    /// On failure returns the current value.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: Shared<T>,
        new: Shared<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Shared<T>, Shared<T>> {
        self.word
            .compare_exchange(current.into_word(), new.into_word(), success, failure)
            .map(Shared::from_word)
            .map_err(Shared::from_word)
    }

    /// Atomically sets mark bits (`mask ⊆ MARK_MASK`), returning the
    /// previous value. Used by the NM tree to *tag* an edge whose current
    /// target is unknown (Natarajan & Mittal's edge marking, paper §5.3).
    #[inline]
    pub fn fetch_or_mark(&self, mask: u64, order: Ordering) -> Shared<T> {
        debug_assert_eq!(mask & !MARK_MASK, 0);
        Shared::from_word(self.word.fetch_or(mask, order))
    }

    /// Weak CAS variant (may fail spuriously); use inside retry loops.
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: Shared<T>,
        new: Shared<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<Shared<T>, Shared<T>> {
        self.word
            .compare_exchange_weak(current.into_word(), new.into_word(), success, failure)
            .map(Shared::from_word)
            .map_err(Shared::from_word)
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.load(Ordering::Relaxed).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::alloc_node;

    #[test]
    fn null_roundtrip() {
        let s: Shared<u32> = Shared::null();
        assert!(s.is_null());
        assert_eq!(s.packed_index(), 0);
        assert_eq!(s.mark(), 0);
        assert!(s.as_raw().is_null());
    }

    #[test]
    fn pack_preserves_address_and_index() {
        let ptr = alloc_node(123u64, 0xdead_beef, 0);
        let s = unsafe { Shared::from_owned(ptr) }; // SAFETY: [INV-12] just allocated.
        assert_eq!(s.as_raw(), ptr);
        assert_eq!(s.packed_index(), 0xdead);
        let (lo, hi) = s.index_bounds();
        assert_eq!(lo, 0xdead_0000);
        assert_eq!(hi, 0xdead_ffff);
        assert!(lo <= 0xdead_beef && 0xdead_beef <= hi);
        unsafe { crate::node::dealloc_node(ptr) }; // SAFETY: [INV-12] test-owned node.
    }

    #[test]
    fn marks_do_not_disturb_address_or_index() {
        let ptr = alloc_node(7u8, 42 << PRECISION, 0);
        let s = unsafe { Shared::from_owned(ptr) }; // SAFETY: [INV-12] just allocated.
        let m = s.with_mark(1);
        assert_eq!(m.mark(), 1);
        assert_eq!(m.as_raw(), ptr);
        assert_eq!(m.packed_index(), 42);
        assert_eq!(m.unmarked(), s);
        let m3 = s.with_mark(3);
        assert_eq!(m3.mark(), 3);
        assert_eq!(m3.unmarked(), s);
        assert!(!m3.is_null());
        unsafe { crate::node::dealloc_node(ptr) }; // SAFETY: [INV-12] test-owned node.
    }

    #[test]
    fn marked_null_is_still_null() {
        let s: Shared<u32> = Shared::null().with_mark(1);
        assert!(s.is_null());
        assert_eq!(s.mark(), 1);
    }

    #[test]
    fn atomic_cas_full_word() {
        let a = alloc_node(1u32, 5 << PRECISION, 0);
        let b = alloc_node(2u32, 9 << PRECISION, 0);
        let sa = unsafe { Shared::from_owned(a) }; // SAFETY: [INV-12] just allocated.
        let sb = unsafe { Shared::from_owned(b) }; // SAFETY: [INV-12] just allocated.
        let cell = Atomic::new(sa);
        // CAS with wrong expected fails and reports the live value.
        assert_eq!(
            cell.compare_exchange(sb, sa, Ordering::AcqRel, Ordering::Acquire),
            Err(sa)
        );
        // Marked expected differs from unmarked stored value.
        assert!(cell
            .compare_exchange(sa.with_mark(1), sb, Ordering::AcqRel, Ordering::Acquire)
            .is_err());
        // On success, CAS returns the previous value (std semantics).
        assert_eq!(
            cell.compare_exchange(sa, sb.with_mark(1), Ordering::AcqRel, Ordering::Acquire),
            Ok(sa)
        );
        let now = cell.load(Ordering::Acquire);
        assert_eq!(now.mark(), 1);
        assert_eq!(now.as_raw(), b);
        assert_eq!(now.packed_index(), 9);
        // SAFETY: [INV-12] both nodes are test-owned.
        unsafe {
            crate::node::dealloc_node(a);
            crate::node::dealloc_node(b);
        }
    }

    #[test]
    fn index_bounds_top_of_range_is_use_hp_class() {
        // A node whose index lies in the top 64K maps to packed 0xffff and
        // reconstructs to an upper bound of u32::MAX — the USE_HP class.
        let ptr = alloc_node((), u32::MAX - 5, 0);
        let s = unsafe { Shared::from_owned(ptr) }; // SAFETY: [INV-12] just allocated.
        let (_, hi) = s.index_bounds();
        assert_eq!(hi, u32::MAX);
        unsafe { crate::node::dealloc_node(ptr) }; // SAFETY: [INV-12] test-owned node.
    }
}
