//! Shared per-thread slot arrays and thread registration.
//!
//! Every scheme announces per-thread protection state in fixed-size shared
//! arrays indexed by a thread id (tid): hazard-pointer slots, margin-pointer
//! slots, epoch/era announcements. The arrays are allocated once at scheme
//! construction ([`Config::max_threads`](crate::Config) rows), each row
//! padded to a cache line so announcements by different threads never
//! false-share.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mp_util::CachePadded;

use crate::node::Retired;

/// A `max_threads × slots_per_thread` matrix of atomic words, one
/// cache-line-padded row per thread.
pub struct SlotArray {
    rows: Box<[CachePadded<Box<[AtomicU64]>>]>,
    init: u64,
}

impl SlotArray {
    /// Creates the matrix with every slot holding `init` (a scheme-specific
    /// "no protection" sentinel).
    pub fn new(threads: usize, slots: usize, init: u64) -> Self {
        let rows = (0..threads)
            .map(|_| {
                CachePadded::new(
                    (0..slots).map(|_| AtomicU64::new(init)).collect::<Box<[AtomicU64]>>(),
                )
            })
            .collect();
        SlotArray { rows, init }
    }

    /// Number of slots per thread.
    #[inline]
    pub fn slots_per_thread(&self) -> usize {
        self.rows[0].len()
    }

    /// Number of thread rows.
    #[inline]
    pub fn threads(&self) -> usize {
        self.rows.len()
    }

    /// The slot cell for `(tid, slot)`.
    #[inline]
    pub fn get(&self, tid: usize, slot: usize) -> &AtomicU64 {
        &self.rows[tid][slot]
    }

    /// Iterates over one thread's slots.
    #[inline]
    pub fn row(&self, tid: usize) -> &[AtomicU64] {
        &self.rows[tid]
    }

    /// Resets every slot of `tid` to the "no protection" sentinel.
    pub fn clear_row(&self, tid: usize, order: Ordering) {
        for s in self.rows[tid].iter() {
            s.store(self.init, order);
        }
    }

    /// The sentinel value this array was initialized with.
    #[inline]
    pub fn init_value(&self) -> u64 {
        self.init
    }
}

/// Thread-id allocator plus the orphan list of retired nodes abandoned by
/// deregistered handles (freed when the scheme itself is dropped, at which
/// point no handle can hold protected references).
pub struct Registry {
    inner: Mutex<RegistryInner>,
    max_threads: usize,
}

struct RegistryInner {
    free: Vec<usize>,
    orphans: Vec<Retired>,
}

impl Registry {
    /// Creates a registry handing out tids `0..max_threads`.
    pub fn new(max_threads: usize) -> Self {
        Registry {
            inner: Mutex::new(RegistryInner {
                free: (0..max_threads).rev().collect(),
                orphans: Vec::new(),
            }),
            max_threads,
        }
    }

    /// Maximum concurrent registrations.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Locks the registry state, tolerating poisoning: the state is a plain
    /// free-list + orphan vector, consistent after any panic, and `release`
    /// runs from `Drop` during unwinding — it must never double-panic.
    fn locked(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Claims a tid. Panics if more than `max_threads` handles are live —
    /// the slot arrays are fixed-size, exactly as in the paper's C model.
    pub(crate) fn acquire(&self) -> usize {
        let tid = self.locked().free.pop(); // guard dropped before a panic
        tid.expect("SMR: more handles registered than Config::max_threads")
    }

    /// Parks one retired node directly in the orphan list (reclaimed only
    /// at scheme teardown).
    pub(crate) fn park_orphan(&self, r: Retired) {
        self.locked().orphans.push(r);
    }

    /// Returns a tid and parks the handle's unreclaimed retired nodes.
    pub(crate) fn release(&self, tid: usize, leftovers: Vec<Retired>) {
        let mut g = self.locked();
        g.orphans.extend(leftovers);
        g.free.push(tid);
    }

    /// Drains the orphan list. Called by scheme `Drop` implementations.
    ///
    /// # Safety
    /// Caller must guarantee no thread can still dereference orphaned nodes
    /// (true during scheme teardown: handles hold an `Arc` to the scheme, so
    /// none remain).
    // SAFETY: [INV-11] obligation stated in `# Safety` above; every scheme
    // `Drop` cites the teardown argument ([INV-06]) at its call site.
    pub(crate) unsafe fn reclaim_orphans(&self) {
        let orphans = std::mem::take(&mut self.locked().orphans);
        for r in orphans {
            // SAFETY: [INV-06] forwarded from this fn's contract: teardown,
            // no handle left to protect any orphan.
            unsafe { r.reclaim() };
        }
    }

    /// Number of orphaned retired nodes awaiting scheme teardown.
    pub fn orphan_count(&self) -> usize {
        self.locked().orphans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_array_layout_and_clear() {
        let a = SlotArray::new(3, 4, u64::MAX);
        assert_eq!(a.threads(), 3);
        assert_eq!(a.slots_per_thread(), 4);
        for t in 0..3 {
            for s in 0..4 {
                assert_eq!(a.get(t, s).load(Ordering::Relaxed), u64::MAX);
            }
        }
        a.get(1, 2).store(7, Ordering::Relaxed);
        assert_eq!(a.get(1, 2).load(Ordering::Relaxed), 7);
        // Other rows untouched.
        assert_eq!(a.get(0, 2).load(Ordering::Relaxed), u64::MAX);
        a.clear_row(1, Ordering::Relaxed);
        assert_eq!(a.get(1, 2).load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn registry_recycles_tids() {
        let r = Registry::new(2);
        let a = r.acquire();
        let b = r.acquire();
        assert_ne!(a, b);
        r.release(a, Vec::new());
        let c = r.acquire();
        assert_eq!(c, a, "released tid must be reused");
    }

    #[test]
    #[should_panic(expected = "more handles registered")]
    fn registry_exhaustion_panics() {
        let r = Registry::new(1);
        let _a = r.acquire();
        let _b = r.acquire();
    }

    #[test]
    fn orphans_counted() {
        let r = Registry::new(1);
        let tid = r.acquire();
        let node = crate::node::alloc_node(5u32, 0, 0);
        let retired = unsafe { Retired::new(node, 1) }; // SAFETY: [INV-12] never published.
        r.release(tid, vec![retired]);
        assert_eq!(r.orphan_count(), 1);
        unsafe { r.reclaim_orphans() }; // SAFETY: [INV-12] single-threaded test.
        assert_eq!(r.orphan_count(), 0);
    }
}
