//! Shared per-thread slot arrays and thread registration.
//!
//! Every scheme announces per-thread protection state in fixed-size shared
//! arrays indexed by a thread id (tid): hazard-pointer slots, margin-pointer
//! slots, epoch/era announcements. The arrays are allocated once at scheme
//! construction ([`Config::max_threads`](crate::Config) rows), each row
//! padded to a cache line so announcements by different threads never
//! false-share.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mp_util::CachePadded;

use crate::node::Retired;

/// A `max_threads × slots_per_thread` matrix of atomic words, one
/// cache-line-padded row per thread.
pub struct SlotArray {
    rows: Box<[CachePadded<Box<[AtomicU64]>>]>,
    init: u64,
}

impl SlotArray {
    /// Creates the matrix with every slot holding `init` (a scheme-specific
    /// "no protection" sentinel).
    pub fn new(threads: usize, slots: usize, init: u64) -> Self {
        let rows = (0..threads)
            .map(|_| {
                CachePadded::new(
                    (0..slots).map(|_| AtomicU64::new(init)).collect::<Box<[AtomicU64]>>(),
                )
            })
            .collect();
        SlotArray { rows, init }
    }

    /// Number of slots per thread.
    #[inline]
    pub fn slots_per_thread(&self) -> usize {
        self.rows[0].len()
    }

    /// Number of thread rows.
    #[inline]
    pub fn threads(&self) -> usize {
        self.rows.len()
    }

    /// The slot cell for `(tid, slot)`.
    #[inline]
    pub fn get(&self, tid: usize, slot: usize) -> &AtomicU64 {
        &self.rows[tid][slot]
    }

    /// Iterates over one thread's slots.
    #[inline]
    pub fn row(&self, tid: usize) -> &[AtomicU64] {
        &self.rows[tid]
    }

    /// Resets every slot of `tid` to the "no protection" sentinel.
    pub fn clear_row(&self, tid: usize, order: Ordering) {
        for s in self.rows[tid].iter() {
            s.store(self.init, order);
        }
    }

    /// The sentinel value this array was initialized with.
    #[inline]
    pub fn init_value(&self) -> u64 {
        self.init
    }
}

/// A claimed thread id plus whether it was ever held by an earlier handle
/// (drives the `tid_recycles` churn counter).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TidLease {
    /// The claimed thread id.
    pub tid: usize,
    /// True if some earlier handle held (and released) this tid.
    pub recycled: bool,
}

/// Thread-id allocator plus the orphan list of retired nodes abandoned by
/// deregistered handles (freed when the scheme itself is dropped, at which
/// point no handle can hold protected references).
///
/// Tid acquire/release is lock-free (a CAS over free-bit words), so handle
/// churn — threads registering and deregistering under load, as the soak
/// harness does — never serializes on a mutex. Only the orphan list, an
/// infrequent deregistration-time path, stays behind a lock.
pub struct Registry {
    /// One bit per tid; set = free. Fixed at `max_threads` bits.
    free_bits: Box<[AtomicU64]>,
    /// One bit per tid; set = acquired at least once (recycle detection).
    ever_used: Box<[AtomicU64]>,
    orphans: Mutex<Vec<Retired>>,
    max_threads: usize,
}

impl Registry {
    /// Creates a registry handing out tids `0..max_threads`.
    pub fn new(max_threads: usize) -> Self {
        let words = max_threads.div_ceil(64);
        let free_bits: Box<[AtomicU64]> = (0..words)
            .map(|w| {
                let lo = w * 64;
                let hi = max_threads.min(lo + 64);
                let mut bits = 0u64;
                for b in 0..(hi - lo) {
                    bits |= 1u64 << b;
                }
                AtomicU64::new(bits)
            })
            .collect();
        Registry {
            free_bits,
            ever_used: (0..words).map(|_| AtomicU64::new(0)).collect(),
            orphans: Mutex::new(Vec::new()),
            max_threads,
        }
    }

    /// Maximum concurrent registrations.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Locks the orphan list, tolerating poisoning: it is a plain vector,
    /// consistent after any panic, and `release` runs from `Drop` during
    /// unwinding — it must never double-panic.
    fn orphans_locked(&self) -> std::sync::MutexGuard<'_, Vec<Retired>> {
        self.orphans.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Claims a tid lock-free, or returns `None` with every tid taken. The
    /// scan restarts while CASes are contended, so `None` is returned only
    /// after a contention-free pass found every bit claimed.
    pub(crate) fn try_acquire(&self) -> Option<TidLease> {
        loop {
            let mut contended = false;
            for (w, word) in self.free_bits.iter().enumerate() {
                let mut bits = word.load(Ordering::Acquire);
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    let mask = 1u64 << b;
                    // The claiming CAS pairs with `release`'s fetch_or: its
                    // Acquire success ordering makes the previous holder's
                    // row clears visible to the new handle.
                    match word.compare_exchange_weak(
                        bits,
                        bits & !mask,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            let recycled =
                                self.ever_used[w].fetch_or(mask, Ordering::AcqRel) & mask != 0;
                            return Some(TidLease { tid: w * 64 + b, recycled });
                        }
                        Err(cur) => {
                            contended = true;
                            bits = cur;
                        }
                    }
                }
            }
            if !contended {
                return None;
            }
        }
    }

    /// Parks one retired node directly in the orphan list (reclaimed only
    /// at scheme teardown).
    pub(crate) fn park_orphan(&self, r: Retired) {
        self.orphans_locked().push(r);
    }

    /// Takes the whole orphan list for adoption by a newly registered
    /// handle, which appends it to its own retired list and frees the nodes
    /// at its next scan under the scheme's usual safety predicate. Orphans
    /// are already-retired (unreachable) nodes, so another handle scanning
    /// them is exactly as safe as scanning its own retirees. Without
    /// adoption, handle churn grows the orphan list without bound: each
    /// dying handle's drain scan parks whatever its peers still pinned at
    /// that instant, and nothing ever re-examines it before teardown.
    pub(crate) fn adopt_orphans(&self) -> Vec<Retired> {
        std::mem::take(&mut *self.orphans_locked())
    }

    /// Returns a tid and parks the handle's unreclaimed retired nodes.
    /// Lock-free on the tid path (the orphan lock is taken only when the
    /// handle actually leaves leftovers) and panic-free: it runs from
    /// `Drop` during unwinding.
    pub(crate) fn release(&self, tid: usize, leftovers: Vec<Retired>) {
        if !leftovers.is_empty() {
            self.orphans_locked().extend(leftovers);
        }
        // Release (via AcqRel): publishes the departing handle's slot-row
        // clears to whichever thread re-acquires this tid.
        self.free_bits[tid / 64].fetch_or(1u64 << (tid % 64), Ordering::AcqRel);
    }

    /// Drains the orphan list. Called by scheme `Drop` implementations.
    ///
    /// # Safety
    /// Caller must guarantee no thread can still dereference orphaned nodes
    /// (true during scheme teardown: handles hold an `Arc` to the scheme, so
    /// none remain).
    // SAFETY: [INV-11] obligation stated in `# Safety` above; every scheme
    // `Drop` cites the teardown argument ([INV-06]) at its call site.
    pub(crate) unsafe fn reclaim_orphans(&self) {
        let orphans = std::mem::take(&mut *self.orphans_locked());
        for r in orphans {
            // SAFETY: [INV-06] forwarded from this fn's contract: teardown,
            // no handle left to protect any orphan.
            unsafe { r.reclaim() };
        }
    }

    /// Number of orphaned retired nodes awaiting scheme teardown.
    pub fn orphan_count(&self) -> usize {
        self.orphans_locked().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_array_layout_and_clear() {
        let a = SlotArray::new(3, 4, u64::MAX);
        assert_eq!(a.threads(), 3);
        assert_eq!(a.slots_per_thread(), 4);
        for t in 0..3 {
            for s in 0..4 {
                assert_eq!(a.get(t, s).load(Ordering::Relaxed), u64::MAX);
            }
        }
        a.get(1, 2).store(7, Ordering::Relaxed);
        assert_eq!(a.get(1, 2).load(Ordering::Relaxed), 7);
        // Other rows untouched.
        assert_eq!(a.get(0, 2).load(Ordering::Relaxed), u64::MAX);
        a.clear_row(1, Ordering::Relaxed);
        assert_eq!(a.get(1, 2).load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn registry_recycles_tids() {
        let r = Registry::new(2);
        let a = r.try_acquire().unwrap();
        let b = r.try_acquire().unwrap();
        assert_ne!(a.tid, b.tid);
        assert!(!a.recycled && !b.recycled, "first acquisitions are fresh");
        r.release(a.tid, Vec::new());
        let c = r.try_acquire().unwrap();
        assert_eq!(c.tid, a.tid, "released tid must be reused");
        assert!(c.recycled, "reuse must be flagged for the churn counter");
    }

    /// Satellite regression: tid recycle under concurrent churn. 16 threads
    /// hammer acquire/release; a claim board asserts no tid is ever held by
    /// two threads at once, and the allocator neither leaks nor invents
    /// tids. Runs on the lock-free CAS path, so this is also the
    /// linearizability test for the free-bit words.
    #[test]
    fn tid_recycle_under_concurrent_churn() {
        use core::sync::atomic::AtomicBool;

        const THREADS: usize = 16;
        const TIDS: usize = 7; // fewer tids than threads forces recycling
        const ROUNDS: usize = 400;

        let r = Registry::new(TIDS);
        let claimed: Vec<AtomicBool> = (0..TIDS).map(|_| AtomicBool::new(false)).collect();
        let recycles = core::sync::atomic::AtomicUsize::new(0);

        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        // More churners than tids: exhaustion is expected,
                        // double-grants are the bug under test.
                        let Some(lease) = r.try_acquire() else {
                            std::thread::yield_now();
                            continue;
                        };
                        assert!(lease.tid < TIDS, "tid {} out of range", lease.tid);
                        assert!(
                            !claimed[lease.tid].swap(true, Ordering::AcqRel),
                            "tid {} granted to two threads at once",
                            lease.tid
                        );
                        if lease.recycled {
                            recycles.fetch_add(1, Ordering::Relaxed);
                        }
                        std::hint::black_box(lease.tid);
                        claimed[lease.tid].store(false, Ordering::Release);
                        r.release(lease.tid, Vec::new());
                    }
                });
            }
        });
        for (tid, c) in claimed.iter().enumerate() {
            assert!(!c.load(Ordering::Acquire), "tid {tid} left claimed");
        }
        assert_eq!(
            r.free_bits.iter().map(|w| w.load(Ordering::Acquire).count_ones()).sum::<u32>(),
            TIDS as u32,
            "every tid must be free again after the churn"
        );
        assert!(
            recycles.load(Ordering::Relaxed) > TIDS,
            "churn must actually exercise the recycle path"
        );
    }

    #[test]
    fn registry_exhaustion_is_recoverable() {
        let r = Registry::new(1);
        let a = r.try_acquire().expect("first claim fits");
        assert!(r.try_acquire().is_none(), "capacity 1 is exhausted");
        r.release(a.tid, Vec::new());
        assert!(r.try_acquire().is_some(), "exhaustion clears when a peer churns out");
    }

    #[test]
    fn orphans_counted() {
        let r = Registry::new(1);
        let tid = r.try_acquire().unwrap().tid;
        let node = crate::node::alloc_node(5u32, 0, 0);
        let retired = unsafe { Retired::new(node, 1) }; // SAFETY: [INV-12] never published.
        r.release(tid, vec![retired]);
        assert_eq!(r.orphan_count(), 1);
        unsafe { r.reclaim_orphans() }; // SAFETY: [INV-12] single-threaded test.
        assert_eq!(r.orphan_count(), 0);
    }
}
