//! Shared building blocks for scheme implementations.

use core::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

use crate::stats::FenceSite;
use crate::telemetry::HandleTelemetry;

/// Sentinel announced-epoch value meaning "thread not inside an operation".
pub const INACTIVE: u64 = u64::MAX;

/// Sentinel hazard-slot value meaning "no node protected".
pub const NO_HAZARD: u64 = 0;

/// Sentinel margin-slot value meaning "no interval protected"
/// (Listing 10's `NO_MARGIN`, widened to the u64 slot width).
pub const NO_MARGIN: u64 = u64::MAX;

/// Issues a full sequentially consistent fence and counts it (Figure 5),
/// attributed to the issuing call site for the per-site fence breakdown.
#[inline]
pub fn counted_fence(tele: &mut HandleTelemetry, site: FenceSite) {
    fence(Ordering::SeqCst);
    tele.record_fence(site);
}

/// Global gauge shared by every scheme instance: retired-but-unreclaimed
/// node count (the paper's wasted memory).
#[derive(Default)]
pub struct PendingGauge(AtomicUsize);

impl PendingGauge {
    /// Records `n` newly retired nodes.
    #[inline]
    pub fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::AcqRel);
    }

    /// Records `n` reclaimed nodes.
    #[inline]
    pub fn sub(&self, n: usize) {
        self.0.fetch_sub(n, Ordering::AcqRel);
    }

    /// Current wasted-memory count.
    #[inline]
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Acquire)
    }
}

/// A monotone global epoch/era clock.
#[derive(Default)]
pub struct EpochClock(AtomicU64);

impl EpochClock {
    /// Creates a clock starting at 1 (0 is reserved so that "birth 0" can
    /// never equal a post-increment retire stamp in edge cases).
    pub fn new() -> Self {
        EpochClock(AtomicU64::new(1))
    }

    /// Reads the current epoch.
    #[inline]
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advances the clock by one.
    #[inline]
    pub fn advance(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_monotone() {
        let c = EpochClock::new();
        let a = c.now();
        let b = c.advance();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn gauge_add_sub() {
        let g = PendingGauge::default();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn fence_counted() {
        let mut t = HandleTelemetry::new(0);
        counted_fence(&mut t, FenceSite::StartOp);
        counted_fence(&mut t, FenceSite::Announce);
        assert_eq!(t.stats().fences, 2);
        assert_eq!(t.stats().fences_start_op, 1);
        assert_eq!(t.stats().fences_announce, 1);
    }
}
