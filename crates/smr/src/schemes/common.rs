//! Shared building blocks for scheme implementations.

use core::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

use mp_util::CachePadded;

use crate::api::Config;
use crate::node::Retired;
use crate::stats::FenceSite;
use crate::telemetry::HandleTelemetry;

/// Sentinel announced-epoch value meaning "thread not inside an operation".
pub const INACTIVE: u64 = u64::MAX;

/// Sentinel hazard-slot value meaning "no node protected".
pub const NO_HAZARD: u64 = 0;

/// Sentinel margin-slot value meaning "no interval protected"
/// (Listing 10's `NO_MARGIN`, widened to the u64 slot width).
pub const NO_MARGIN: u64 = u64::MAX;

/// Issues a full sequentially consistent fence and counts it (Figure 5),
/// attributed to the issuing call site for the per-site fence breakdown.
#[inline]
pub fn counted_fence(tele: &mut HandleTelemetry, site: FenceSite) {
    fence(Ordering::SeqCst);
    #[cfg(feature = "hb-oracle")]
    crate::hb::on_fence_sc();
    tele.record_fence(site);
}

/// Global gauge shared by every scheme instance: retired-but-unreclaimed
/// node count and payload bytes (the paper's wasted memory).
///
/// Both dimensions are kept on the *scheme* (not process-wide like
/// [`crate::node::gauge`]) so waste sampling and backpressure decisions
/// attribute memory to the scheme that actually holds it — several scheme
/// instances in one process (the conformance matrix, the bench harness) no
/// longer read each other's bytes.
#[derive(Default)]
pub struct PendingGauge {
    nodes: AtomicUsize,
    bytes: AtomicUsize,
}

impl PendingGauge {
    /// Records `n` newly retired nodes carrying `bytes` total payload.
    #[inline]
    pub fn add(&self, n: usize, bytes: usize) {
        self.nodes.fetch_add(n, Ordering::AcqRel);
        self.bytes.fetch_add(bytes, Ordering::AcqRel);
    }

    /// Records `n` reclaimed nodes releasing `bytes` total payload.
    #[inline]
    pub fn sub(&self, n: usize, bytes: usize) {
        self.nodes.fetch_sub(n, Ordering::AcqRel);
        self.bytes.fetch_sub(bytes, Ordering::AcqRel);
    }

    /// Current wasted-memory count in nodes.
    #[inline]
    pub fn get(&self) -> usize {
        self.nodes.load(Ordering::Acquire)
    }

    /// Current wasted-memory total in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Acquire)
    }
}

/// When a scheme's next reclamation scan should run, derived from
/// [`Config`] once at scheme construction (paper §3.1 discussion of HP's
/// `empty` cadence, generalized).
///
/// The adaptive trigger replaces the historical "every `empty_freq`
/// retires" cadence with HP's classical watermark rule: scan when the
/// handle's retired list reaches `k × H` entries (`H = max_threads ×
/// slots_per_thread`, `k = 2`), so scan *frequency* tracks the retire rate
/// while scan *cost* (a `T×H` slot walk) is amortized over at least `k×H`
/// retirees — the per-free scan cost becomes a constant instead of growing
/// linearly with thread count. `empty_freq` survives as the re-arm floor:
/// when a scan cannot shrink the list (a stalled reader pins everything),
/// the next scan waits for at least `empty_freq` further retires instead of
/// thrashing on every retire.
#[derive(Debug, Clone)]
pub struct ScanPolicy {
    /// Retired-node count per handle that triggers a scan.
    pub watermark_nodes: usize,
    /// Retired-byte count per handle that triggers a scan (0 = disabled).
    pub watermark_bytes: usize,
    /// Minimum additional retires between consecutive scans when the
    /// retired list is not shrinking (`Config::empty_freq`).
    pub rearm_floor: usize,
    /// `Some(empty_freq)` under `ablation_fixed_cadence`: scan every
    /// `empty_freq` retires exactly as the pre-watermark design did.
    pub fixed_cadence: Option<usize>,
}

impl ScanPolicy {
    /// Resolves the effective policy: explicit `Config` knobs first, then
    /// the `MP_SCAN_WATERMARK` / `MP_SCAN_WATERMARK_BYTES` environment
    /// overrides (consulted only when the corresponding knob is 0, i.e.
    /// unset — a stray env var must not repin the many tests that set
    /// `with_scan_watermark(1)` explicitly), then the `k × H` auto rule.
    pub fn from_config(cfg: &Config) -> Self {
        let env_usize = |key: &str| -> Option<usize> {
            std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
        };
        let mut nodes = cfg.scan_watermark;
        if nodes == 0 {
            nodes = env_usize("MP_SCAN_WATERMARK").unwrap_or(0);
        }
        if nodes == 0 {
            nodes = cfg.empty_freq.max(2 * cfg.max_threads * cfg.slots_per_thread);
        }
        let bytes = if cfg.scan_watermark_bytes != 0 {
            cfg.scan_watermark_bytes
        } else {
            env_usize("MP_SCAN_WATERMARK_BYTES").unwrap_or(0)
        };
        ScanPolicy {
            watermark_nodes: nodes.max(1),
            watermark_bytes: bytes,
            rearm_floor: cfg.empty_freq.max(1),
            fixed_cadence: cfg.ablation_fixed_cadence.then(|| cfg.empty_freq.max(1)),
        }
    }
}

/// Per-handle trigger state for [`ScanPolicy`]; owned by the handle, so no
/// atomics are involved on the retire path.
#[derive(Debug)]
pub struct ScanState {
    retires: usize,
    retired_bytes: usize,
    next_len: usize,
    next_bytes: usize,
}

impl ScanState {
    /// Initial state: the first scan is due at the configured watermark.
    pub fn new(policy: &ScanPolicy) -> Self {
        ScanState {
            retires: 0,
            retired_bytes: 0,
            next_len: policy.watermark_nodes,
            next_bytes: if policy.watermark_bytes == 0 {
                usize::MAX
            } else {
                policy.watermark_bytes
            },
        }
    }

    /// Initial state for a handle that seeds its retired list with an
    /// adopted backlog (orphans parked by churned-out peers): the bytes
    /// trigger accounts the adopted payload up front instead of only
    /// discovering it at the first rearm. The node-count trigger needs no
    /// seeding — [`ScanState::due`] reads the retired list length directly.
    pub fn with_backlog(policy: &ScanPolicy, backlog: &[Retired]) -> Self {
        let mut s = ScanState::new(policy);
        s.retired_bytes = backlog.iter().map(|r| r.bytes() as usize).sum();
        s
    }

    /// Accounts one retired node of `bytes` payload.
    #[inline]
    pub fn note_retire(&mut self, bytes: u32) {
        self.retires += 1;
        self.retired_bytes = self.retired_bytes.saturating_add(bytes as usize);
    }

    /// Total retires accounted so far (epoch-advance cadences key off it).
    #[inline]
    pub fn retires(&self) -> usize {
        self.retires
    }

    /// True when a reclamation scan is due.
    #[inline]
    pub fn due(&self, policy: &ScanPolicy, retired_len: usize) -> bool {
        if let Some(freq) = policy.fixed_cadence {
            return self.retires.is_multiple_of(freq);
        }
        retired_len >= self.next_len || self.retired_bytes >= self.next_bytes
    }

    /// Re-arms the trigger after a scan that kept `kept_len` nodes
    /// (`kept_bytes` bytes): the next scan fires at the watermark, or —
    /// when a pinned backlog already exceeds it — after at least
    /// `rearm_floor` further retires, so a stalled reader costs one slot
    /// walk per `empty_freq` retires instead of one per retire.
    pub fn rearm(&mut self, policy: &ScanPolicy, kept_len: usize, kept_bytes: usize) {
        self.retired_bytes = kept_bytes;
        self.next_len = policy.watermark_nodes.max(kept_len + policy.rearm_floor);
        self.next_bytes = if policy.watermark_bytes == 0 {
            usize::MAX
        } else {
            policy.watermark_bytes.max(kept_bytes + policy.watermark_bytes / 4 + 1)
        };
    }
}

/// A version-stamped shared protection snapshot (hazard addresses for HP,
/// announced eras for HE), published by whichever handle scanned last and
/// adopted by peers whose scan begins before any protection-slot
/// generation bump — those peers skip the `T×H` slot walk entirely.
///
/// # Soundness (see DESIGN.md "Scan scalability")
///
/// A stale snapshot may only **over**-approximate the protected set. The
/// per-thread generation counters enforce this: every protection-announcing
/// store bumps the announcing thread's generation (release-ordered, before
/// that thread's validation fence), and an adopter compares the generation
/// vector it loads *after its own scan fence* with the vector stored at
/// publish time. Equality proves no protection was announced-and-validated
/// between the publisher's fence and the adopter's fence, so the snapshot
/// can only contain protections that have since been *released* — retaining
/// too much, never freeing too little. Any mismatch (or a concurrent
/// publish, detected by the seqlock version) rejects reuse and falls back
/// to a fresh walk.
pub struct SharedSnapshot {
    /// Seqlock word: odd while a publisher is writing.
    version: AtomicU64,
    /// Per-thread protection generations (single writer each; padded so
    /// the hot-path bump never false-shares).
    gens: Box<[CachePadded<AtomicU64>]>,
    /// Generation vector captured by the publisher before its slot walk.
    snap_gens: Box<[AtomicU64]>,
    /// Published snapshot length.
    len: AtomicUsize,
    /// Published sorted snapshot values (capacity `threads × slots`).
    data: Box<[AtomicU64]>,
}

impl SharedSnapshot {
    /// Pre-sizes every buffer (`threads` generations, `threads × slots`
    /// snapshot capacity) so publishing and adopting are allocation-free.
    pub fn new(threads: usize, slots: usize) -> Self {
        SharedSnapshot {
            version: AtomicU64::new(0),
            gens: (0..threads).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            snap_gens: (0..threads).map(|_| AtomicU64::new(u64::MAX)).collect(),
            len: AtomicUsize::new(0),
            data: (0..threads * slots).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Marks a new protection announcement by `tid`. Call after the slot
    /// store and before the announcing thread's validation fence.
    #[inline]
    pub fn bump_gen(&self, tid: usize) {
        // Single-writer counter: only the handle owning `tid` ever bumps
        // its own generation, so an unsynchronized load+store is exact —
        // no RMW needed. This sits on HP's per-hop protect path, where a
        // locked fetch_add would double the per-hop barrier cost.
        //
        // ORDERING: reason = exclusive — the Relaxed load reads a cell only
        // this thread writes (single-writer counter; no RMW needed).
        // Release on the store: a generation reader that observes this bump
        // also observes the slot store sequenced before it, so a publisher
        // whose captured generations include the bump walks a slot array
        // that already shows the protection.
        let g = self.gens[tid].load(Ordering::Relaxed);
        self.gens[tid].store(g.wrapping_add(1), Ordering::Release);
    }

    /// Loads the full generation vector into `out` (cleared and refilled).
    /// Call *after* the scanning handle's SeqCst fence.
    pub fn load_gens_into(&self, out: &mut Vec<u64>) {
        out.clear();
        for g in self.gens.iter() {
            out.push(g.load(Ordering::Acquire));
        }
    }

    /// Attempts to adopt the published snapshot into `out`. Succeeds only
    /// if the snapshot is stable (seqlock even and unchanged) and its
    /// generation vector equals `gens_now`; on success `out` holds the
    /// published sorted snapshot.
    pub fn try_adopt_into(&self, gens_now: &[u64], out: &mut Vec<u64>) -> bool {
        let v1 = self.version.load(Ordering::Acquire);
        if v1 & 1 == 1 {
            return false;
        }
        for (i, &g) in gens_now.iter().enumerate() {
            // ORDERING: reason = seqlock — the re-read of `version` below
            // (with the Acquire fence) rejects any value raced with a
            // concurrent publish.
            if self.snap_gens[i].load(Ordering::Relaxed) != g {
                return false;
            }
        }
        // ORDERING: reason = seqlock — the Acquire fence + version re-read
        // below reject any value raced with a concurrent publish.
        let n = self.len.load(Ordering::Relaxed);
        if n > self.data.len() {
            return false;
        }
        out.clear();
        for slot in &self.data[..n] {
            // ORDERING: reason = seqlock — the Acquire fence + version
            // re-read below reject any slot value raced with a publish.
            out.push(slot.load(Ordering::Relaxed));
        }
        fence(Ordering::Acquire);
        // ORDERING: reason = seqlock — the Relaxed re-read is the classic
        // seqlock validation; the Acquire fence above orders it after the
        // data reads.
        let ok = self.version.load(Ordering::Relaxed) == v1;
        #[cfg(feature = "hb-oracle")]
        if ok {
            // CAST-OK: hb-ledger site key; the snapshot instance's address
            // names this seqlock so parallel tests never share a site.
            crate::hb::on_snapshot_adopt(self as *const Self as u64);
        }
        ok
    }

    /// Publishes a freshly walked snapshot (`snap`, sorted) together with
    /// the generation vector `gens_now` that was loaded *before* the walk.
    /// Best-effort: yields to a concurrent publisher instead of blocking.
    pub fn publish_snapshot(&self, gens_now: &[u64], snap: &[u64]) {
        if snap.len() > self.data.len() || gens_now.len() != self.snap_gens.len() {
            return;
        }
        // ORDERING: reason = seqlock — pre-read; the Acquire CAS below is
        // the synchronizing claim, so a stale value only fails the CAS.
        let v0 = self.version.load(Ordering::Relaxed);
        if v0 & 1 == 1 {
            return;
        }
        // ORDERING: reason = seqlock — Relaxed on failure publishes nothing
        // (we yield to the concurrent publisher); Acquire on success pairs
        // with the closing Release version store of the previous section.
        if self
            .version
            .compare_exchange(v0, v0 + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        // ORDERING: Release fence after the opening CAS (the crossbeam
        // SeqLock pattern): it orders the odd version store before every
        // Relaxed data write below, so a reader that observes any write
        // from this section also observes the odd version on its
        // validating re-read and rejects the torn snapshot. Without it,
        // weakly-ordered hardware may let a data store become visible
        // while both of the reader's version loads still return `v0`.
        fence(Ordering::Release);
        for (dst, &g) in self.snap_gens.iter().zip(gens_now) {
            // ORDERING: reason = seqlock — these Relaxed writes are
            // published by the Release version store closing the section.
            dst.store(g, Ordering::Relaxed);
        }
        for (dst, &v) in self.data.iter().zip(snap) {
            // ORDERING: reason = seqlock — published by the closing Release
            // version store below.
            dst.store(v, Ordering::Relaxed);
        }
        // ORDERING: reason = seqlock — published by the closing Release
        // version store below.
        self.len.store(snap.len(), Ordering::Relaxed);
        self.version.store(v0 + 2, Ordering::Release);
        #[cfg(feature = "hb-oracle")]
        // CAST-OK: hb-ledger site key; the snapshot instance's address
        // names this seqlock so parallel tests never share a site.
        crate::hb::on_snapshot_publish(self as *const Self as u64);
    }

    /// `publish_snapshot` with the section-opening `Release` fence
    /// *deliberately omitted* — the seeded negative for the happens-before
    /// oracle's adoption check (`tests/hb_oracle.rs`). Kept as a duplicate
    /// body rather than a flag on the real path so the production publish
    /// carries zero test plumbing. Never call this outside that test.
    #[cfg(feature = "hb-oracle")]
    #[doc(hidden)]
    pub fn publish_snapshot_skip_release_fence(&self, gens_now: &[u64], snap: &[u64]) {
        if snap.len() > self.data.len() || gens_now.len() != self.snap_gens.len() {
            return;
        }
        let v0 = self.version.load(Ordering::Relaxed);
        if v0 & 1 == 1 {
            return;
        }
        if self
            .version
            .compare_exchange(v0, v0 + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        // The `fence(Ordering::Release)` that belongs here is the seeded
        // omission: data writes below may become visible before the odd
        // version store on weak hardware, the torn-snapshot race the hb
        // oracle must flag at adoption time.
        for (dst, &g) in self.snap_gens.iter().zip(gens_now) {
            dst.store(g, Ordering::Relaxed);
        }
        for (dst, &v) in self.data.iter().zip(snap) {
            dst.store(v, Ordering::Relaxed);
        }
        self.len.store(snap.len(), Ordering::Relaxed);
        self.version.store(v0 + 2, Ordering::Release);
        // CAST-OK: hb-ledger site key; the snapshot instance's address
        // names this seqlock so parallel tests never share a site.
        crate::hb::on_snapshot_publish_data_only(self as *const Self as u64);
    }
}

/// A monotone global epoch/era clock.
#[derive(Default)]
pub struct EpochClock(AtomicU64);

impl EpochClock {
    /// Creates a clock starting at 1 (0 is reserved so that "birth 0" can
    /// never equal a post-increment retire stamp in edge cases).
    pub fn new() -> Self {
        EpochClock(AtomicU64::new(1))
    }

    /// Reads the current epoch.
    #[inline]
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advances the clock by one.
    #[inline]
    pub fn advance(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_monotone() {
        let c = EpochClock::new();
        let a = c.now();
        let b = c.advance();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn gauge_add_sub() {
        let g = PendingGauge::default();
        g.add(5, 320);
        g.sub(2, 128);
        assert_eq!(g.get(), 3);
        assert_eq!(g.bytes(), 192);
    }

    #[test]
    fn scan_policy_auto_derives_k_times_h() {
        let cfg = Config::default().with_max_threads(4).with_slots_per_thread(8);
        let p = ScanPolicy::from_config(&cfg);
        assert_eq!(p.watermark_nodes, 2 * 4 * 8, "k·H with k = 2");
        assert_eq!(p.rearm_floor, cfg.empty_freq);
        assert!(p.fixed_cadence.is_none());

        // Explicit knob wins over the auto rule; empty_freq floors the auto
        // rule when it exceeds k·H.
        let p = ScanPolicy::from_config(&cfg.clone().with_scan_watermark(7));
        assert_eq!(p.watermark_nodes, 7);
        let p = ScanPolicy::from_config(&cfg.clone().with_empty_freq(1000));
        assert_eq!(p.watermark_nodes, 1000);
        let p = ScanPolicy::from_config(&cfg.with_fixed_cadence(true));
        assert_eq!(p.fixed_cadence, Some(30));
    }

    #[test]
    fn scan_state_triggers_at_watermark_and_rearms_under_pinning() {
        let cfg = Config::default().with_max_threads(1).with_slots_per_thread(2);
        let p = ScanPolicy::from_config(&cfg); // watermark = max(30, 4) = 30
        let mut s = ScanState::new(&p);
        for len in 1..30 {
            s.note_retire(64);
            assert!(!s.due(&p, len), "below watermark at len {len}");
        }
        s.note_retire(64);
        assert!(s.due(&p, 30), "watermark reached");
        // Scan kept everything (stalled reader): next scan waits a full
        // rearm_floor of retires, not one.
        s.rearm(&p, 30, 30 * 64);
        assert!(!s.due(&p, 30));
        for len in 31..60 {
            s.note_retire(64);
            assert!(!s.due(&p, len), "inside rearm window at len {len}");
        }
        s.note_retire(64);
        assert!(s.due(&p, 60), "rearm floor elapsed");
        // Scan freed everything: back to the plain watermark.
        s.rearm(&p, 0, 0);
        assert!(!s.due(&p, 29));
        assert!(s.due(&p, 30));
    }

    #[test]
    fn scan_state_bytes_watermark_triggers_before_node_watermark() {
        let cfg = Config::default()
            .with_max_threads(8)
            .with_slots_per_thread(8)
            .with_scan_watermark_bytes(1024);
        let p = ScanPolicy::from_config(&cfg); // node watermark 128
        let mut s = ScanState::new(&p);
        for _ in 0..3 {
            s.note_retire(512); // large payloads
        }
        assert!(s.due(&p, 3), "1.5 KiB retired ≥ 1 KiB bytes watermark");
        s.rearm(&p, 0, 0);
        assert!(!s.due(&p, 3));
    }

    #[test]
    fn scan_state_with_backlog_seeds_bytes_trigger() {
        let cfg = Config::default()
            .with_max_threads(8)
            .with_slots_per_thread(8)
            .with_scan_watermark_bytes(64);
        let p = ScanPolicy::from_config(&cfg);
        let node = crate::node::alloc_node([0u8; 64], 0, 0);
        // SAFETY: [INV-12] test-local node, never published, retired once.
        let backlog = vec![unsafe { Retired::new(node, 1) }];
        // A handle adopting a large-byte orphan backlog must see the bytes
        // watermark immediately, not only after its first rearm.
        let s = ScanState::with_backlog(&p, &backlog);
        assert!(s.due(&p, backlog.len()), "adopted bytes reach the watermark");
        assert!(
            !ScanState::new(&p).due(&p, backlog.len()),
            "unseeded state under-counts the same backlog"
        );
        for r in backlog {
            // SAFETY: [INV-05] never protected by any thread.
            unsafe { r.reclaim() };
        }
    }

    #[test]
    fn fixed_cadence_matches_the_legacy_trigger() {
        let cfg = Config::default().with_empty_freq(5).with_fixed_cadence(true);
        let p = ScanPolicy::from_config(&cfg);
        let mut s = ScanState::new(&p);
        let mut scans = 0;
        for _ in 0..25 {
            s.note_retire(64);
            if s.due(&p, usize::MAX) {
                scans += 1;
            }
        }
        assert_eq!(scans, 5, "exactly every empty_freq retires");
    }

    #[test]
    fn shared_snapshot_adopts_only_at_equal_generations() {
        let snap = SharedSnapshot::new(3, 2);
        let mut gens = Vec::new();
        let mut out = Vec::new();

        // Nothing published yet: the sentinel generations never match.
        snap.load_gens_into(&mut gens);
        assert!(!snap.try_adopt_into(&gens, &mut out));

        snap.publish_snapshot(&gens, &[10, 20, 30]);
        assert!(snap.try_adopt_into(&gens, &mut out), "same generations ⇒ adopt");
        assert_eq!(out, vec![10, 20, 30]);

        // A protection announcement by thread 1 invalidates the snapshot…
        snap.bump_gen(1);
        snap.load_gens_into(&mut gens);
        assert!(!snap.try_adopt_into(&gens, &mut out), "bump ⇒ reject");

        // …until a fresh walk is published under the new generations.
        snap.publish_snapshot(&gens, &[40]);
        assert!(snap.try_adopt_into(&gens, &mut out));
        assert_eq!(out, vec![40]);
    }

    #[test]
    fn shared_snapshot_rejects_oversized_publish() {
        let snap = SharedSnapshot::new(1, 2);
        let mut gens = Vec::new();
        let mut out = Vec::new();
        snap.load_gens_into(&mut gens);
        snap.publish_snapshot(&gens, &[1, 2, 3]); // exceeds capacity: dropped
        assert!(!snap.try_adopt_into(&gens, &mut out), "truncated publish must not adopt");
        snap.publish_snapshot(&gens, &[1, 2]);
        assert!(snap.try_adopt_into(&gens, &mut out));
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn fence_counted() {
        let mut t = HandleTelemetry::new(0);
        counted_fence(&mut t, FenceSite::StartOp);
        counted_fence(&mut t, FenceSite::Announce);
        assert_eq!(t.stats().fences, 2);
        assert_eq!(t.stats().fences_start_op, 1);
        assert_eq!(t.stats().fences_announce, 1);
    }
}
