//! Drop the Anchor (Braginsky, Kogan & Petrank, SPAA 2013; paper §3.1).
//!
//! DTA reduces HP's overhead by announcing an *anchor* once every `k` node
//! traversals instead of a hazard pointer per dereference: the anchor
//! protects every node reachable from it within `k` hops. Reclamation runs
//! an EBR-like fast path; if a thread stalls mid-operation (its announced
//! operation stamp stops changing), the reclaimer *freezes* the `k` nodes
//! protected by the stalled thread's anchor — making them immutable and
//! splicing fresh copies into the structure — after which every non-frozen
//! node can be reclaimed despite the stall.
//!
//! Freezing is data-structure-specific (§3.1: "only a list freezing
//! technique is known"), so the scheme exposes a [`Freezer`] hook that the
//! DTA-enabled linked list registers (`mp-ds::dta_list`). Without a
//! registered freezer the scheme behaves exactly like EBR — which is also
//! its behavior on data structures DTA has never been applied to.
//!
//! Frozen nodes are never reclaimed while the scheme lives, reproducing
//! DTA's documented weakness (Table 1 footnote: frozen memory can grow
//! arbitrarily large).

use std::collections::HashSet;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use core::sync::atomic::Ordering;

use mp_util::CachePadded;

use crate::api::{Config, Smr, SmrHandle};
use crate::backpressure::{self, BackpressurePolicy, BpLevel};
use crate::error::SmrError;
use crate::node::Retired;
use crate::packed::{Atomic, Shared};
use crate::registry::{Registry, SlotArray};
use crate::schemes::common::{counted_fence, EpochClock, ScanPolicy, ScanState, INACTIVE};
use crate::stats::FenceSite;
use crate::telemetry::{HandleTelemetry, SchemeTelemetry, Telemetry};

/// Data-structure-specific freezing callback (see module docs).
///
/// `freeze_from` must render the anchored neighborhood of the node at
/// `anchor_addr` immutable and unlinked from the live structure (replaced by
/// copies), then return the addresses of the frozen nodes. The neighborhood
/// extends until `old_quota` nodes **born before `older_than`** (i.e.
/// pre-existing when the stalled operation started) have been frozen —
/// newly inserted nodes are frozen too but do not count, which is how DTA
/// guarantees coverage of the stalled thread's position even when
/// arbitrarily many nodes were inserted behind it (§3.1's footnote: the
/// insertion-time field). Returning an empty set means freezing could not
/// be performed; the stalled thread then keeps blocking reclamation.
pub trait Freezer: Send + Sync {
    /// Freezes the anchored neighborhood; returns frozen node addresses.
    fn freeze_from(&self, anchor_addr: u64, old_quota: usize, older_than: u64) -> Vec<u64>;
}

/// Drop-the-Anchor SMR scheme (shared state).
pub struct Dta {
    clock: EpochClock,
    /// Operation stamps: the epoch announced at `start_op` (`INACTIVE` idle).
    announce: SlotArray,
    /// One anchor address slot per thread (0 = none).
    anchors: SlotArray,
    registry: Registry,
    scan_policy: ScanPolicy,
    bp_policy: BackpressurePolicy,
    cfg: Config,
    tele: SchemeTelemetry,
    /// Client-registered freezing procedure.
    freezer: RwLock<Option<Arc<dyn Freezer>>>,
    /// Stall bookkeeping: per-tid (last observed stamp, misses) plus the
    /// global set of frozen node addresses.
    recovery: Mutex<RecoveryState>,
}

struct RecoveryState {
    last_stamp: Vec<u64>,
    misses: Vec<usize>,
    /// Per tid: `Some((stamp, freeze_clock))` while the thread is
    /// neutralized — its old stamp pins only nodes retired inside
    /// `[stamp, freeze_clock)`, a fixed window (see `classify_threads`).
    neutralized: Vec<Option<(u64, u64)>>,
    frozen: HashSet<u64>,
}

/// How `empty()` must treat one thread (computed by `classify_threads`).
#[derive(Clone, Copy)]
enum ThreadClass {
    /// Not inside an operation: pins nothing.
    Idle,
    /// Active: pins every node retired at or after its stamp (EBR rule).
    Respected(u64),
    /// Stalled and successfully frozen: its references are confined to the
    /// frozen zone plus nodes retired inside the window `[stamp, fclock)` —
    /// nodes retired at ≥ `fclock` were still linked (hence in the frozen
    /// zone, or unreachable to it) when freezing completed.
    Neutralized { stamp: u64, fclock: u64 },
}

/// Per-thread handle for [`Dta`].
pub struct DtaHandle {
    scheme: Arc<Dta>,
    tid: usize,
    /// Stamp announced by the current operation (`start_op`/`refresh_op`).
    stamp: u64,
    /// Cache-padded retired-list head (no false sharing between handles).
    retired: CachePadded<Vec<Retired>>,
    /// Retained swap buffer for `empty()`.
    scan_scratch: Vec<Retired>,
    /// Retained thread-classification buffer, refilled in place per scan.
    class_scratch: Vec<ThreadClass>,
    scan: ScanState,
    alloc_counter: usize,
    /// In-op backpressure rung (monotone within one op; reset by start_op).
    bp_rung: BpLevel,
    tele: CachePadded<HandleTelemetry>,
}

impl Smr for Dta {
    type Handle = DtaHandle;

    fn try_new(cfg: Config) -> Result<Arc<Self>, SmrError> {
        cfg.validate()?;
        Ok(Arc::new(Dta {
            clock: EpochClock::new(),
            announce: SlotArray::new(cfg.max_threads, 1, INACTIVE),
            anchors: SlotArray::new(cfg.max_threads, 1, 0),
            registry: Registry::new(cfg.max_threads),
            recovery: Mutex::new(RecoveryState {
                last_stamp: vec![INACTIVE; cfg.max_threads],
                misses: vec![0; cfg.max_threads],
                neutralized: vec![None; cfg.max_threads],
                frozen: HashSet::new(),
            }),
            scan_policy: ScanPolicy::from_config(&cfg),
            bp_policy: BackpressurePolicy::from_config(&cfg),
            cfg,
            tele: SchemeTelemetry::new(),
            freezer: RwLock::new(None),
        }))
    }

    fn try_register(self: &Arc<Self>) -> Result<DtaHandle, SmrError> {
        let lease = self
            .registry
            .try_acquire()
            .ok_or(SmrError::RegistryExhausted { max_threads: self.cfg.max_threads })?;
        let mut tele = HandleTelemetry::new(lease.tid);
        if lease.recycled {
            tele.record_tid_recycle();
        }
        Ok(DtaHandle {
            scheme: self.clone(),
            tid: lease.tid,
            stamp: 0,
            retired: CachePadded::new(Vec::new()),
            scan_scratch: Vec::new(),
            class_scratch: Vec::new(),
            scan: ScanState::new(&self.scan_policy),
            alloc_counter: 0,
            bp_rung: BpLevel::Normal,
            tele: CachePadded::new(tele),
        })
    }

    fn name() -> &'static str {
        "DTA"
    }

    fn telemetry(&self) -> &SchemeTelemetry {
        &self.tele
    }

    fn backpressure_policy(&self) -> &BackpressurePolicy {
        &self.bp_policy
    }
}

impl Telemetry for DtaHandle {
    fn tele(&self) -> &HandleTelemetry {
        &self.tele
    }

    fn tele_mut(&mut self) -> &mut HandleTelemetry {
        &mut self.tele
    }
}

impl Drop for Dta {
    fn drop(&mut self) {
        // SAFETY: [INV-06] teardown: every handle holds an `Arc` to the
        // scheme, so no handle exists and orphans are unprotectable. Frozen
        // nodes were parked by the freezer and sit in the orphan list too.
        unsafe { self.registry.reclaim_orphans() };
    }
}

impl Dta {
    /// Registers the data-structure-specific freezing procedure.
    pub fn set_freezer(&self, f: Arc<dyn Freezer>) {
        *self.freezer.write().unwrap() = Some(f);
    }

    /// Unregisters the freezer (called by the client structure's `Drop`,
    /// whose nodes the freezer walks).
    pub fn clear_freezer(&self) {
        *self.freezer.write().unwrap() = None;
    }

    /// Parks a node unlinked by the *freezer* (a frozen original replaced by
    /// a copy) for reclamation at scheme teardown. Frozen nodes are pinned
    /// forever while the scheme lives (Table 1 footnote), so they bypass
    /// the ordinary retire path.
    ///
    /// # Safety
    /// `node` must be removed (unreachable), never retired before, and
    /// present in the frozen set so concurrent `empty()` runs keep pinning
    /// any aliases of it.
    // SAFETY: [INV-11] obligation stated in `# Safety` above; the freezer's
    // replace_reachable_segment cites the winning splice at the call site.
    pub unsafe fn park_frozen<T: Send + Sync>(&self, node: Shared<T>) {
        // SAFETY: [INV-04] forwarded from this fn's own contract (removed,
        // never retired before).
        let retired = unsafe { Retired::new(node.as_raw(), u64::MAX) };
        self.tele.pending.add(1, retired.bytes() as usize);
        self.registry.park_orphan(retired);
    }

    /// Number of nodes currently frozen (for tests and Table 1).
    pub fn frozen_count(&self) -> usize {
        self.recovery.lock().unwrap().frozen.len()
    }

    /// Updates stall bookkeeping and classifies every thread for the
    /// reclamation rule. Runs under the recovery lock, which also guards
    /// every `empty()`'s reclaim loop — so no node is freed while a freeze
    /// walk dereferences the (pinned) anchor chain.
    ///
    /// `out` (a handle-retained buffer) is cleared and refilled in place so
    /// steady-state scans do not allocate.
    #[allow(clippy::needless_range_loop)] // tid indexes three parallel arrays
    fn classify_threads_into(&self, out: &mut Vec<ThreadClass>) {
        out.clear();
        out.resize(self.cfg.max_threads, ThreadClass::Idle);
        let freezer = self.freezer.read().unwrap().clone();
        let mut rec = self.recovery.lock().unwrap();
        for tid in 0..self.cfg.max_threads {
            let stamp = self.announce.get(tid, 0).load(Ordering::Acquire);
            if stamp == INACTIVE {
                rec.last_stamp[tid] = INACTIVE;
                rec.misses[tid] = 0;
                rec.neutralized[tid] = None;
                continue;
            }
            if rec.last_stamp[tid] == stamp {
                rec.misses[tid] += 1;
            } else {
                // The thread progressed to a new operation (stamps are
                // unique and increasing): any previous neutralization ends —
                // its fresh stamp is respected again.
                rec.last_stamp[tid] = stamp;
                rec.misses[tid] = 0;
                rec.neutralized[tid] = None;
            }
            if let Some((s, fclock)) = rec.neutralized[tid] {
                debug_assert_eq!(s, stamp);
                out[tid] = ThreadClass::Neutralized { stamp: s, fclock };
                continue;
            }
            let stalled = rec.misses[tid] >= self.cfg.stall_patience;
            if stalled {
                if let Some(f) = &freezer {
                    let anchor = self.anchors.get(tid, 0).load(Ordering::Acquire);
                    if anchor != 0 {
                        // Freeze the anchored neighborhood: enough nodes
                        // *born before the stalled op* to cover a full
                        // anchor cadence (+2 slack: anchors are posted on
                        // the predecessor, and the thread may stand one hop
                        // past its cadence point).
                        let frozen =
                            f.freeze_from(anchor, self.cfg.anchor_hops + 2, stamp);
                        if !frozen.is_empty() {
                            rec.frozen.extend(frozen.iter().copied());
                            // Revalidate before neutralizing: if the thread
                            // re-anchored or finished meanwhile, it was not
                            // stalled — its references may lie outside the
                            // zone we just froze, so keep respecting it.
                            core::sync::atomic::fence(Ordering::SeqCst);
                            let stamp_now =
                                self.announce.get(tid, 0).load(Ordering::Acquire);
                            let anchor_now =
                                self.anchors.get(tid, 0).load(Ordering::Acquire);
                            if stamp_now == stamp && anchor_now == anchor {
                                // Safe: the thread's references are confined
                                // to the frozen zone (anchor unchanged ⇒ it
                                // is within one cadence of the anchor) plus
                                // nodes retired before this instant.
                                let fclock = self.clock.now();
                                rec.neutralized[tid] = Some((stamp, fclock));
                                out[tid] =
                                    ThreadClass::Neutralized { stamp, fclock };
                                continue;
                            }
                        }
                    }
                }
            }
            out[tid] = ThreadClass::Respected(stamp);
        }
    }
}

impl DtaHandle {
    /// Reclamation scan; allocation-free in steady state (classification
    /// and retired list both cycle through handle-owned buffers).
    fn empty(&mut self) {
        self.tele.record_empty();
        let scan_t0 = Instant::now();
        let caps_before =
            self.retired.capacity() + self.scan_scratch.capacity() + self.class_scratch.capacity();
        core::sync::atomic::fence(Ordering::SeqCst);
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_fence_sc();
        self.scheme.classify_threads_into(&mut self.class_scratch);
        // Frees must hold the recovery lock: freeze walks dereference
        // pinned retired nodes and rely on no concurrent reclamation.
        let rec = self.scheme.recovery.lock().unwrap();
        let mut pending = std::mem::take(&mut self.scan_scratch);
        debug_assert!(pending.is_empty());
        std::mem::swap(&mut pending, &mut *self.retired);
        let before = pending.len();
        let mut kept_bytes = 0usize;
        let mut freed_bytes = 0usize;
        'next: for r in pending.drain(..) {
            if rec.frozen.contains(&r.addr()) {
                kept_bytes += r.bytes() as usize;
                self.retired.push(r);
                continue;
            }
            for class in &self.class_scratch {
                let pins = match *class {
                    ThreadClass::Idle => false,
                    // EBR rule: an active thread may reference anything
                    // retired at or after its announced stamp.
                    ThreadClass::Respected(m) => r.retire >= m,
                    // A neutralized thread pins only the fixed window of
                    // nodes retired during its stall, up to the freeze;
                    // later retirees were linked when freezing completed,
                    // so the thread can reach them only inside the frozen
                    // zone (kept above) or not at all.
                    // Keyed on the *retiring operation's start* rather than
                    // the retire stamp: the remover may be preempted between
                    // its unlink CAS and its retire() call, so only
                    // op_start ≤ unlink-time is guaranteed.
                    ThreadClass::Neutralized { stamp, fclock } => {
                        r.retire >= stamp && r.op_start < fclock
                    }
                };
                if pins {
                    kept_bytes += r.bytes() as usize;
                    self.retired.push(r);
                    continue 'next;
                }
            }
            self.tele.record_free(r.addr());
            freed_bytes += r.bytes() as usize;
            // SAFETY: [INV-05] the classification above (under the recovery
            // lock, after the SeqCst fence) admits no thread class that can
            // still reference this node.
            unsafe { r.reclaim() };
        }
        drop(rec);
        self.scan_scratch = pending;
        let freed = before - self.retired.len();
        self.scheme.tele.pending.sub(freed, freed_bytes);
        self.scan.rearm(&self.scheme.scan_policy, self.retired.len(), kept_bytes);
        if self.retired.capacity() + self.scan_scratch.capacity() + self.class_scratch.capacity()
            > caps_before
        {
            self.tele.record_scan_heap_alloc();
        }
        self.tele.record_scan_elapsed(scan_t0);
    }

    /// Backpressure help-scan. Unlike the other schemes this does NOT adopt
    /// orphans: DTA's orphan list doubles as the frozen-node park (see
    /// [`Dta::park_frozen`]), and frozen nodes must stay parked until scheme
    /// teardown — adopting them would shuttle permanently-pinned nodes
    /// through every scan. The scan itself still helps by re-classifying
    /// stalled peers (possibly freezing them) and draining this handle's
    /// backlog. See [`crate::backpressure`].
    fn help_scan(&mut self) {
        self.tele.record_help_scan();
        self.empty();
    }

    /// The scheme this handle belongs to (used by the DTA list to register
    /// its freezer and to inspect frozen state).
    pub fn scheme(&self) -> &Arc<Dta> {
        &self.scheme
    }

    /// Drops this thread's anchor on `node_addr` — announcing that every
    /// local reference the thread will hold until the next post lies within
    /// `Config::anchor_hops` pointer hops of that node. The client calls
    /// this on its current *predecessor* node, which it knows to be linked
    /// (reached via validated unmarked reads), every `anchor_hops`
    /// traversal steps — DTA's replacement for a hazard fence per read.
    pub fn post_anchor(&mut self, node_addr: u64) {
        self.scheme.anchors.get(self.tid, 0).store(node_addr, Ordering::Release);
        counted_fence(&mut self.tele, FenceSite::Announce);
    }

    /// The configured anchor cadence (hops between posts).
    pub fn anchor_hops(&self) -> usize {
        self.scheme.cfg.anchor_hops
    }

    /// Re-announces a *fresh* operation stamp mid-operation. The client
    /// structure calls this whenever a traversal restarts after reading a
    /// frozen pointer: the thread may have been neutralized (deemed
    /// stalled), in which case its old stamp no longer protects a fresh
    /// traversal — the new, never-seen stamp is respected again by every
    /// reclaimer, and the restart drops all old local references.
    pub fn refresh_op(&mut self) {
        let e = self.scheme.clock.advance();
        self.stamp = e;
        self.scheme.announce.get(self.tid, 0).store(e, Ordering::Release);
        self.scheme.anchors.get(self.tid, 0).store(0, Ordering::Release);
        counted_fence(&mut self.tele, FenceSite::StartOp);
    }

}

impl SmrHandle for DtaHandle {
    fn start_op(&mut self) {
        // Oracle context only: DTA's waste depends on freeze timing and the
        // anchored-segment size, not a predetermined formula — exempt from
        // the waste-bound monitor.
        #[cfg(feature = "oracle")]
        crate::oracle::enter_scheme("DTA");
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_start_op(crate::hb::HbPolicy::EPOCH);
        self.bp_rung = BpLevel::Normal;
        let retired_len = self.retired.len();
        self.tele.record_op_start(retired_len);
        let e = self.scheme.clock.advance(); // fresh stamp ⇒ visible progress
        self.stamp = e;
        self.scheme.announce.get(self.tid, 0).store(e, Ordering::Release);
        counted_fence(&mut self.tele, FenceSite::StartOp);
    }

    fn end_op(&mut self) {
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_end_op();
        self.scheme.announce.get(self.tid, 0).store(INACTIVE, Ordering::Release);
        self.scheme.anchors.get(self.tid, 0).store(0, Ordering::Release);
    }

    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, _refno: usize) -> Shared<T> {
        // Plain load: DTA's protection comes from the EBR stamp plus the
        // anchors the client structure posts via [`DtaHandle::post_anchor`].
        src.load(Ordering::Acquire)
    }

    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T> {
        self.alloc_with_index(data, 0)
    }

    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T> {
        backpressure::before_alloc(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            &mut self.bp_rung,
            &mut self.tele,
        );
        self.tele.record_alloc();
        self.alloc_counter += 1;
        if self.alloc_counter.is_multiple_of(self.scheme.cfg.epoch_freq) {
            let e = self.scheme.clock.advance();
            self.tele.record_epoch_advance(e);
        }
        let ptr = crate::node::alloc_node_in(data, index, self.scheme.clock.now(), &mut self.tele);
        // SAFETY: [INV-02] `ptr` was just returned by the node allocator.
        unsafe { Shared::from_owned(ptr) }
    }

    // SAFETY: [INV-11] trait contract: the caller retires a removed node
    // exactly once (the winning unlink CAS is at the call site).
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>) {
        self.tele.record_retire(node.addr());
        let stamp = self.scheme.clock.now();
        // SAFETY: [INV-04] forwarded from this fn's own contract.
        let mut r = unsafe { Retired::new(node.as_raw(), stamp) };
        // Record when the unlinking operation began (≤ the unlink itself);
        // the neutralization window is keyed on this (see `empty`).
        r.op_start = self.stamp;
        self.scheme.tele.pending.add(1, r.bytes() as usize);
        self.scan.note_retire(r.bytes());
        self.retired.push(r);
        if self.scan.due(&self.scheme.scan_policy, self.retired.len()) {
            self.empty();
        }
        if backpressure::after_retire(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            self.scheme.tele.pending_bytes(),
            &mut self.bp_rung,
            &mut self.tele,
        ) {
            self.help_scan();
        }
    }

    fn retired_len(&self) -> usize {
        self.retired.len()
    }

    fn force_empty(&mut self) {
        self.empty();
    }
}

impl Drop for DtaHandle {
    fn drop(&mut self) {
        self.scheme.announce.get(self.tid, 0).store(INACTIVE, Ordering::Release);
        self.scheme.anchors.get(self.tid, 0).store(0, Ordering::Release);
        // Drain scan before parking leftovers — see HpHandle::drop.
        self.force_empty();
        self.scheme.registry.release(self.tid, std::mem::take(&mut *self.retired));
        mp_util::pool::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(threads: usize) -> Arc<Dta> {
        // watermark 1: scan on every retire, as the old empty_freq=1 did.
        Dta::new(
            Config::default()
                .with_max_threads(threads)
                .with_empty_freq(1)
                .with_epoch_freq(1)
                .with_scan_watermark(1)
                .with_anchor_hops(3)
                .with_stall_patience(2),
        )
    }

    #[test]
    fn behaves_like_ebr_without_freezer() {
        let smr = setup(2);
        let mut stalled = smr.register();
        let mut worker = smr.register();
        stalled.start_op();
        for i in 0..100u32 {
            // Worker runs short, well-behaved operations; only the stalled
            // thread's stale stamp can pin memory.
            worker.start_op();
            let n = worker.alloc(i);
            unsafe { worker.retire(n) }; // SAFETY: [INV-12] never published, retired once.
            worker.end_op();
        }
        assert!(worker.retired_len() >= 100, "no freezer ⇒ stall pins everything (EBR)");
        stalled.end_op();
        worker.end_op();
        worker.force_empty();
        assert_eq!(worker.retired_len(), 0);
    }

    #[test]
    fn reads_are_free_and_anchor_posts_fence() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let n = h.alloc(0u32);
        let cell = Atomic::new(n);
        let f0 = h.stats().fences;
        // Reads are plain loads — DTA's whole point.
        for _ in 0..10 {
            let _ = h.read(&cell, 0);
        }
        assert_eq!(h.stats().fences, f0, "reads must not fence");
        assert_eq!(h.anchor_hops(), 3);
        h.post_anchor(n.addr());
        assert_eq!(h.stats().fences, f0 + 1, "anchor post costs one fence");
        assert_eq!(smr.anchors.get(0, 0).load(Ordering::Relaxed), n.addr());
        h.end_op();
        unsafe { h.retire(n) }; // SAFETY: [INV-12] test-owned, retired once.
        h.force_empty();
    }

    struct FakeFreezer {
        to_freeze: Vec<u64>,
    }
    impl Freezer for FakeFreezer {
        fn freeze_from(&self, _anchor: u64, _quota: usize, _older_than: u64) -> Vec<u64> {
            self.to_freeze.clone()
        }
    }

    #[test]
    fn stalled_thread_neutralized_by_freezing() {
        let smr = setup(2);
        let mut stalled = smr.register();
        let mut worker = smr.register();

        // The stalled thread posts an anchor, then stops taking steps.
        stalled.start_op();
        worker.start_op();
        let anchor_node = worker.alloc(0u32);
        let cell = Atomic::new(anchor_node);
        let _ = stalled.read(&cell, 0);
        stalled.post_anchor(anchor_node.addr());
        assert_ne!(smr.anchors.get(0, 0).load(Ordering::Relaxed), 0);

        // Freezer will claim the anchor node as frozen.
        smr.set_freezer(Arc::new(FakeFreezer { to_freeze: vec![anchor_node.addr()] }));

        // Churn with short operations until stall detection (patience=2)
        // kicks in; the worker's own fresh stamps never pin old nodes.
        for i in 0..50u32 {
            worker.end_op();
            worker.start_op();
            let n = worker.alloc(i);
            unsafe { worker.retire(n) }; // SAFETY: [INV-12] never published, retired once.
        }
        assert!(
            worker.retired_len() < 50,
            "freezing must unblock reclamation, kept {}",
            worker.retired_len()
        );
        assert_eq!(smr.frozen_count(), 1);

        // The frozen node itself must never be reclaimed while the scheme
        // lives, even when retired.
        cell.store(Shared::null(), Ordering::Release);
        unsafe { worker.retire(anchor_node) }; // SAFETY: [INV-12] unlinked above, retired once.
        stalled.end_op();
        worker.end_op();
        worker.force_empty();
        assert_eq!(worker.retired_len(), 1, "frozen node pinned forever");
    }
}
