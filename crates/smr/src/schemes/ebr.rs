//! Epoch-based reclamation (Fraser 2004, McKenney & Slingwine 1998; §3.2).
//!
//! Each thread announces, at operation start, the global epoch it observed.
//! A node retired at epoch `r` can be freed once every *active* thread has
//! announced an epoch `> r`: such threads began their operation after the
//! node was already unlinked, so they cannot hold a reference (threads do
//! not keep references across operations). Reads are plain loads — EBR's
//! per-operation overhead is a single announcement fence.
//!
//! EBR is **not robust**: a thread stalled mid-operation pins its announced
//! epoch forever, so no node retired at or after that epoch is ever freed
//! and wasted memory grows without bound — the failure mode motivating MP.

use std::sync::Arc;
use std::time::Instant;

use core::sync::atomic::Ordering;

use mp_util::CachePadded;

use crate::api::{Config, Smr, SmrHandle};
use crate::backpressure::{self, BackpressurePolicy, BpLevel};
use crate::error::SmrError;
use crate::node::Retired;
use crate::packed::{Atomic, Shared};
use crate::registry::{Registry, SlotArray};
use crate::schemes::common::{counted_fence, EpochClock, ScanPolicy, ScanState, INACTIVE};
use crate::stats::FenceSite;
use crate::telemetry::{HandleTelemetry, SchemeTelemetry, Telemetry};

/// Epoch-based reclamation scheme (shared state).
pub struct Ebr {
    clock: EpochClock,
    /// One announcement slot per thread: observed epoch, or `INACTIVE`.
    announce: SlotArray,
    scan_policy: ScanPolicy,
    bp_policy: BackpressurePolicy,
    registry: Registry,
    cfg: Config,
    tele: SchemeTelemetry,
}

/// Per-thread handle for [`Ebr`].
pub struct EbrHandle {
    scheme: Arc<Ebr>,
    tid: usize,
    /// Cache-padded retired-list head (no false sharing between handles).
    retired: CachePadded<Vec<Retired>>,
    /// Retained swap buffer for `empty()`.
    scan_scratch: Vec<Retired>,
    scan: ScanState,
    alloc_counter: usize,
    /// In-op backpressure rung (monotone within one op; reset by start_op).
    bp_rung: BpLevel,
    tele: CachePadded<HandleTelemetry>,
}

impl Smr for Ebr {
    type Handle = EbrHandle;

    fn try_new(cfg: Config) -> Result<Arc<Self>, SmrError> {
        cfg.validate()?;
        Ok(Arc::new(Ebr {
            clock: EpochClock::new(),
            announce: SlotArray::new(cfg.max_threads, 1, INACTIVE),
            scan_policy: ScanPolicy::from_config(&cfg),
            bp_policy: BackpressurePolicy::from_config(&cfg),
            registry: Registry::new(cfg.max_threads),
            cfg,
            tele: SchemeTelemetry::new(),
        }))
    }

    fn try_register(self: &Arc<Self>) -> Result<EbrHandle, SmrError> {
        let lease = self
            .registry
            .try_acquire()
            .ok_or(SmrError::RegistryExhausted { max_threads: self.cfg.max_threads })?;
        let mut tele = HandleTelemetry::new(lease.tid);
        if lease.recycled {
            tele.record_tid_recycle();
        }
        // Adopt parked orphans: churned-out handles leave behind
        // whatever their drain scan could not free; this handle frees
        // them at its next scan instead of letting them pile to teardown.
        let retired = self.registry.adopt_orphans();
        let scan = ScanState::with_backlog(&self.scan_policy, &retired);
        Ok(EbrHandle {
            scheme: self.clone(),
            tid: lease.tid,
            retired: CachePadded::new(retired),
            scan_scratch: Vec::new(),
            scan,
            alloc_counter: 0,
            bp_rung: BpLevel::Normal,
            tele: CachePadded::new(tele),
        })
    }

    fn name() -> &'static str {
        "EBR"
    }

    fn telemetry(&self) -> &SchemeTelemetry {
        &self.tele
    }

    fn backpressure_policy(&self) -> &BackpressurePolicy {
        &self.bp_policy
    }
}

impl Telemetry for EbrHandle {
    fn tele(&self) -> &HandleTelemetry {
        &self.tele
    }

    fn tele_mut(&mut self) -> &mut HandleTelemetry {
        &mut self.tele
    }
}

impl Drop for Ebr {
    fn drop(&mut self) {
        // SAFETY: [INV-06] teardown: every handle holds an `Arc` to the
        // scheme, so `&mut self` here proves no handle exists and orphaned
        // retired lists can no longer be protected by anyone.
        unsafe { self.registry.reclaim_orphans() };
    }
}

impl Ebr {
    /// Smallest epoch announced by any active thread, or `None` if no thread
    /// is inside an operation.
    fn min_active_epoch(&self) -> Option<u64> {
        let mut min = None;
        for tid in 0..self.announce.threads() {
            let e = self.announce.get(tid, 0).load(Ordering::Acquire);
            if e != INACTIVE {
                min = Some(min.map_or(e, |m: u64| m.min(e)));
            }
        }
        min
    }
}

impl EbrHandle {
    /// Reclamation scan; allocation-free in steady state (the retired list
    /// swaps through the retained `scan_scratch`).
    fn empty(&mut self) {
        self.tele.record_empty();
        let scan_t0 = Instant::now();
        let caps_before = self.retired.capacity() + self.scan_scratch.capacity();
        core::sync::atomic::fence(Ordering::SeqCst);
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_fence_sc();
        let min = self.scheme.min_active_epoch();
        let mut pending = std::mem::take(&mut self.scan_scratch);
        debug_assert!(pending.is_empty());
        std::mem::swap(&mut pending, &mut *self.retired);
        let before = pending.len();
        let mut kept_bytes = 0usize;
        let mut freed_bytes = 0usize;
        for r in pending.drain(..) {
            // Free if every active thread announced strictly after the
            // retirement epoch (see module docs). No active thread: free.
            let safe = match min {
                None => true,
                Some(m) => r.retire < m,
            };
            if safe {
                self.tele.record_free(r.addr());
                freed_bytes += r.bytes() as usize;
                // SAFETY: [INV-05] unreachable since retirement and, by the
                // epoch argument above (every active announcement is newer
                // than the retire stamp), referenced by no active thread.
                unsafe { r.reclaim() };
            } else {
                kept_bytes += r.bytes() as usize;
                self.retired.push(r);
            }
        }
        self.scan_scratch = pending;
        let freed = before - self.retired.len();
        self.scheme.tele.pending.sub(freed, freed_bytes);
        self.scan.rearm(&self.scheme.scan_policy, self.retired.len(), kept_bytes);
        if self.retired.capacity() + self.scan_scratch.capacity() > caps_before {
            self.tele.record_scan_heap_alloc();
        }
        self.tele.record_scan_elapsed(scan_t0);
    }

    /// Backpressure help-scan: adopt orphaned retired lists and scan them.
    /// Under a stalled announcement this cannot shrink the pinned suffix
    /// (EBR is not robust), but it does drain orphans and anything retired
    /// before the stalled epoch. See [`crate::backpressure`].
    fn help_scan(&mut self) {
        self.tele.record_help_scan();
        let orphans = self.scheme.registry.adopt_orphans();
        self.retired.extend(orphans);
        self.empty();
    }
}

impl SmrHandle for EbrHandle {
    fn start_op(&mut self) {
        // Oracle context only: EBR is exempt from the waste-bound monitor —
        // one stalled thread legitimately pins every later retiree (§1).
        #[cfg(feature = "oracle")]
        crate::oracle::enter_scheme("EBR");
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_start_op(crate::hb::HbPolicy::EPOCH);
        self.bp_rung = BpLevel::Normal;
        let retired_len = self.retired.len();
        self.tele.record_op_start(retired_len);
        let e = self.scheme.clock.now();
        self.scheme.announce.get(self.tid, 0).store(e, Ordering::Release);
        // The announcement must be visible before any data-structure read.
        counted_fence(&mut self.tele, FenceSite::StartOp);
    }

    fn end_op(&mut self) {
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_end_op();
        self.scheme.announce.get(self.tid, 0).store(INACTIVE, Ordering::Release);
    }

    #[inline]
    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, _refno: usize) -> Shared<T> {
        src.load(Ordering::Acquire)
    }

    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T> {
        self.alloc_with_index(data, 0)
    }

    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T> {
        backpressure::before_alloc(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            &mut self.bp_rung,
            &mut self.tele,
        );
        self.tele.record_alloc();
        self.alloc_counter += 1;
        if self.alloc_counter.is_multiple_of(self.scheme.cfg.epoch_freq) {
            let e = self.scheme.clock.advance();
            self.tele.record_epoch_advance(e);
        }
        let ptr = crate::node::alloc_node_in(data, index, self.scheme.clock.now(), &mut self.tele);
        // SAFETY: [INV-02] `ptr` was just returned by the node allocator.
        unsafe { Shared::from_owned(ptr) }
    }

    // SAFETY: [INV-11] trait contract: the caller retires a removed node
    // exactly once (the winning unlink CAS is at the call site).
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>) {
        self.tele.record_retire(node.addr());
        let stamp = self.scheme.clock.now();
        // SAFETY: [INV-04] forwarded from this fn's own contract.
        let r = unsafe { Retired::new(node.as_raw(), stamp) };
        self.scheme.tele.pending.add(1, r.bytes() as usize);
        self.scan.note_retire(r.bytes());
        self.retired.push(r);
        if self.scan.due(&self.scheme.scan_policy, self.retired.len()) {
            self.empty();
        }
        if backpressure::after_retire(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            self.scheme.tele.pending_bytes(),
            &mut self.bp_rung,
            &mut self.tele,
        ) {
            self.help_scan();
        }
    }

    fn retired_len(&self) -> usize {
        self.retired.len()
    }

    fn force_empty(&mut self) {
        self.empty();
    }
}

impl Drop for EbrHandle {
    fn drop(&mut self) {
        self.scheme.announce.get(self.tid, 0).store(INACTIVE, Ordering::Release);
        // Drain scan before parking leftovers — see HpHandle::drop.
        self.force_empty();
        self.scheme.registry.release(self.tid, std::mem::take(&mut *self.retired));
        mp_util::pool::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(threads: usize) -> Arc<Ebr> {
        // watermark 1: scan on every retire, as the old empty_freq=1 did.
        Ebr::new(
            Config::default()
                .with_max_threads(threads)
                .with_empty_freq(1)
                .with_epoch_freq(1)
                .with_scan_watermark(1),
        )
    }

    #[test]
    fn idle_system_reclaims_immediately() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let n = h.alloc(1u32);
        h.end_op(); // no active threads now
        unsafe { h.retire(n) }; // SAFETY: [INV-12] test-owned, retired once.
        assert_eq!(h.retired_len(), 0);
    }

    #[test]
    fn active_thread_with_older_epoch_blocks_reclamation() {
        let smr = setup(2);
        let mut stalled = smr.register();
        let mut worker = smr.register();

        stalled.start_op(); // announces current epoch and "stalls"

        worker.start_op();
        let n = worker.alloc(5u64); // advances epoch (epoch_freq=1)
        unsafe { worker.retire(n) }; // SAFETY: [INV-12] never published, retired once.
        worker.end_op();
        assert!(
            worker.retired_len() >= 1,
            "node retired at >= stalled thread's epoch must be pinned"
        );

        stalled.end_op();
        worker.end_op();
        worker.force_empty();
        assert_eq!(worker.retired_len(), 0, "reclaims once the straggler finishes");
    }

    #[test]
    fn stalled_thread_pins_unbounded_waste() {
        // EBR's non-robustness (§3.2): waste grows with churn while a thread
        // is parked mid-operation.
        let smr = setup(2);
        let mut stalled = smr.register();
        let mut worker = smr.register();
        stalled.start_op();
        worker.start_op();
        for i in 0..500u32 {
            let n = worker.alloc(i);
            unsafe { worker.retire(n) }; // SAFETY: [INV-12] never published, retired once.
        }
        assert!(
            worker.retired_len() >= 500,
            "waste {} should grow without bound under a stall",
            worker.retired_len()
        );
        stalled.end_op();
        worker.end_op();
        worker.force_empty();
        assert_eq!(worker.retired_len(), 0);
    }

    #[test]
    fn later_epoch_nodes_freed_even_with_active_threads() {
        let smr = setup(2);
        let mut a = smr.register();
        let mut b = smr.register();
        // b retires a node at an old epoch while a is inactive.
        b.start_op();
        let old = b.alloc(1u32);
        unsafe { b.retire(old) }; // SAFETY: [INV-12] never published, retired once.
        // Advance epochs past the retirement stamp (epoch_freq = 1).
        let fillers: Vec<_> = (0..4).map(|_| b.alloc(0u8)).collect();
        b.end_op();
        // Both threads start ops AFTER the retirement epoch advanced; their
        // fresh announcements cannot pin `old`.
        a.start_op();
        b.start_op();
        b.force_empty();
        assert!(
            !b.retired.iter().any(|r| r.addr() == old.addr()),
            "old node freed despite active thread"
        );
        a.end_op();
        b.end_op();
        for f in fillers {
            unsafe { b.retire(f) }; // SAFETY: [INV-12] never published, retired once.
        }
        b.force_empty();
        assert_eq!(b.retired_len(), 0);
    }
}
