//! Hazard eras (Ramalhete & Correia 2017; paper §3.3).
//!
//! HE keeps HP's per-reference protection slots but stores *eras* (epoch
//! values) instead of addresses. Nodes carry a birth era and a retire era;
//! a retired node may be freed when no announced era lies inside its
//! birth–death interval. Because the global era advances only every
//! `epoch_freq` deletions, consecutive reads usually see an unchanged era
//! and skip the announcement fence — this is how HE undercuts HP's
//! overhead while keeping HP's deployment effort.
//!
//! HE is robust (a stalled thread cannot pin nodes born after its announced
//! eras) but its wasted memory is not bounded by a predetermined value: all
//! nodes alive at the moment a thread stalls stay pinned, which can be the
//! entire data structure (§1).

use std::sync::Arc;
use std::time::Instant;

use core::sync::atomic::Ordering;

use mp_util::CachePadded;

use crate::api::{Config, Smr, SmrHandle};
use crate::backpressure::{self, BackpressurePolicy, BpLevel};
use crate::error::SmrError;
use crate::node::Retired;
use crate::packed::{Atomic, Shared};
use crate::registry::{Registry, SlotArray};
use crate::schemes::common::{counted_fence, EpochClock, ScanPolicy, ScanState, SharedSnapshot, INACTIVE};
use crate::stats::FenceSite;
use crate::telemetry::{HandleTelemetry, SchemeTelemetry, Telemetry};

/// Hazard-eras SMR scheme (shared state).
pub struct He {
    clock: EpochClock,
    /// Era announcement slots (`INACTIVE` = no era announced).
    era_slots: SlotArray,
    /// Version-stamped era snapshot shared across scanning handles;
    /// adopted instead of re-walked when no announcement changed.
    shared_snap: SharedSnapshot,
    scan_policy: ScanPolicy,
    bp_policy: BackpressurePolicy,
    registry: Registry,
    cfg: Config,
    tele: SchemeTelemetry,
}

/// Per-thread handle for [`He`].
pub struct HeHandle {
    scheme: Arc<He>,
    tid: usize,
    /// Local mirror of this thread's announced eras.
    local: Vec<u64>,
    /// Cache-padded retired-list head (no false sharing between handles).
    retired: CachePadded<Vec<Retired>>,
    /// Retained swap buffer for `empty()`.
    scan_scratch: Vec<Retired>,
    /// Retained era-snapshot buffer, refilled in place per scan.
    era_scratch: Vec<u64>,
    /// Retained generation-vector buffer for snapshot adoption.
    gens_scratch: Vec<u64>,
    /// True if the previous scan adopted the shared snapshot. A handle
    /// never adopts twice in a row: releases (unprotect/deregistration) do
    /// not bump generations, so the forced fresh walk bounds how long a
    /// released era can linger in an adopted snapshot.
    adopted_last: bool,
    scan: ScanState,
    /// In-op backpressure rung (monotone within one op; reset by start_op).
    bp_rung: BpLevel,
    tele: CachePadded<HandleTelemetry>,
}

impl Smr for He {
    type Handle = HeHandle;

    fn try_new(cfg: Config) -> Result<Arc<Self>, SmrError> {
        cfg.validate()?;
        Ok(Arc::new(He {
            clock: EpochClock::new(),
            era_slots: SlotArray::new(cfg.max_threads, cfg.slots_per_thread, INACTIVE),
            shared_snap: SharedSnapshot::new(cfg.max_threads, cfg.slots_per_thread),
            scan_policy: ScanPolicy::from_config(&cfg),
            bp_policy: BackpressurePolicy::from_config(&cfg),
            registry: Registry::new(cfg.max_threads),
            cfg,
            tele: SchemeTelemetry::new(),
        }))
    }

    fn try_register(self: &Arc<Self>) -> Result<HeHandle, SmrError> {
        let lease = self
            .registry
            .try_acquire()
            .ok_or(SmrError::RegistryExhausted { max_threads: self.cfg.max_threads })?;
        let mut tele = HandleTelemetry::new(lease.tid);
        if lease.recycled {
            tele.record_tid_recycle();
        }
        // Adopt parked orphans: churned-out handles leave behind
        // whatever their drain scan could not free; this handle frees
        // them at its next scan instead of letting them pile to teardown.
        let retired = self.registry.adopt_orphans();
        let scan = ScanState::with_backlog(&self.scan_policy, &retired);
        Ok(HeHandle {
            scheme: self.clone(),
            tid: lease.tid,
            local: vec![INACTIVE; self.cfg.slots_per_thread],
            retired: CachePadded::new(retired),
            scan_scratch: Vec::new(),
            era_scratch: Vec::new(),
            gens_scratch: Vec::new(),
            adopted_last: false,
            scan,
            bp_rung: BpLevel::Normal,
            tele: CachePadded::new(tele),
        })
    }

    fn name() -> &'static str {
        "HE"
    }

    fn telemetry(&self) -> &SchemeTelemetry {
        &self.tele
    }

    fn backpressure_policy(&self) -> &BackpressurePolicy {
        &self.bp_policy
    }
}

impl Telemetry for HeHandle {
    fn tele(&self) -> &HandleTelemetry {
        &self.tele
    }

    fn tele_mut(&mut self) -> &mut HandleTelemetry {
        &mut self.tele
    }
}

impl Drop for He {
    fn drop(&mut self) {
        // SAFETY: [INV-06] teardown: every handle holds an `Arc` to the
        // scheme, so `&mut self` here proves no handle exists and orphaned
        // retired lists can no longer be protected by anyone.
        unsafe { self.registry.reclaim_orphans() };
    }
}

impl He {
    /// Snapshots every announced era into `snap` (cleared and refilled in
    /// place, sorted) for interval queries; the buffer lives in the handle
    /// so steady-state scans reuse its capacity.
    fn snapshot_eras_into(&self, snap: &mut Vec<u64>) {
        snap.clear();
        for tid in 0..self.era_slots.threads() {
            for slot in self.era_slots.row(tid) {
                let v = slot.load(Ordering::Acquire);
                if v != INACTIVE {
                    snap.push(v);
                }
            }
        }
        snap.sort_unstable();
    }
}

/// True if some announced era in sorted `eras` lies in `[birth, retire]`.
fn interval_hit(eras: &[u64], birth: u64, retire: u64) -> bool {
    let i = eras.partition_point(|&e| e < birth);
    i < eras.len() && eras[i] <= retire
}

impl HeHandle {
    /// Reclamation scan; allocation-free in steady state (era snapshot and
    /// retired list both cycle through handle-owned buffers).
    /// `allow_adopt` permits reusing the shared era snapshot; explicit
    /// `force_empty` calls pass `false` so they always observe the live
    /// slots.
    fn empty(&mut self, allow_adopt: bool) {
        self.tele.record_empty();
        let scan_t0 = Instant::now();
        let caps_before = self.retired.capacity()
            + self.scan_scratch.capacity()
            + self.era_scratch.capacity()
            + self.gens_scratch.capacity();
        core::sync::atomic::fence(Ordering::SeqCst);
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_fence_sc();
        // Same adoption protocol as HP (see SharedSnapshot docs): equal
        // generation vectors prove no era was announced-and-validated since
        // the published walk, so reusing it only over-approximates.
        self.scheme.shared_snap.load_gens_into(&mut self.gens_scratch);
        let adopted = allow_adopt
            && !self.adopted_last
            && self.scheme.shared_snap.try_adopt_into(&self.gens_scratch, &mut self.era_scratch);
        self.adopted_last = adopted;
        if adopted {
            self.tele.record_snapshot_reuse();
            #[cfg(feature = "oracle")]
            {
                // The reused snapshot must contain every era a fresh walk
                // would see (superset check).
                let mut fresh = Vec::new();
                self.scheme.snapshot_eras_into(&mut fresh);
                for v in &fresh {
                    assert!(
                        self.era_scratch.binary_search(v).is_ok(),
                        "snapshot reuse under-approximates: era {v} missing"
                    );
                }
            }
        } else {
            self.scheme.snapshot_eras_into(&mut self.era_scratch);
            self.scheme.shared_snap.publish_snapshot(&self.gens_scratch, &self.era_scratch);
        }
        let mut pending = std::mem::take(&mut self.scan_scratch);
        debug_assert!(pending.is_empty());
        std::mem::swap(&mut pending, &mut *self.retired);
        let before = pending.len();
        let mut kept_bytes = 0usize;
        let mut freed_bytes = 0usize;
        for r in pending.drain(..) {
            if interval_hit(&self.era_scratch, r.birth, r.retire) {
                kept_bytes += r.bytes() as usize;
                self.retired.push(r);
            } else {
                self.tele.record_free(r.addr());
                freed_bytes += r.bytes() as usize;
                // SAFETY: [INV-05] the snapshot taken after the SeqCst fence
                // shows no announced era overlapping the node's lifetime, so
                // no thread can have validated a protection for it (§3.3).
                unsafe { r.reclaim() };
            }
        }
        self.scan_scratch = pending;
        let freed = before - self.retired.len();
        self.scheme.tele.pending.sub(freed, freed_bytes);
        self.scan.rearm(&self.scheme.scan_policy, self.retired.len(), kept_bytes);
        if self.retired.capacity()
            + self.scan_scratch.capacity()
            + self.era_scratch.capacity()
            + self.gens_scratch.capacity()
            > caps_before
        {
            self.tele.record_scan_heap_alloc();
        }
        self.tele.record_scan_elapsed(scan_t0);
        // Oracle: era-pile conformance bound. At most T·H distinct eras are
        // announced; each pins retirees whose lifetime contains it, and the
        // era clock advances every `epoch_freq` allocations per thread, so
        // a pile of more than F·T nodes per announced era (plus the
        // `empty_freq` batch retired since the last scan) means the
        // interval filter is broken. Heuristic, not a paper theorem — HE's
        // waste is not predetermined — but far above anything a correct
        // scan retains at test scale.
        #[cfg(feature = "oracle")]
        {
            let cfg = &self.scheme.cfg;
            let t = cfg.max_threads as u128;
            let h = cfg.slots_per_thread as u128;
            let f = cfg.epoch_freq as u128;
            let bound = t * h * f * t + cfg.empty_freq as u128;
            crate::oracle::check_waste_bound("HE", self.retired.len(), bound);
        }
    }

    /// Backpressure help-scan: adopt whatever retired lists churned-out
    /// peers parked as orphans, then scan against the *live* era slots.
    /// See [`crate::backpressure`].
    fn help_scan(&mut self) {
        self.tele.record_help_scan();
        let orphans = self.scheme.registry.adopt_orphans();
        self.retired.extend(orphans);
        self.empty(false);
    }
}

impl SmrHandle for HeHandle {
    fn start_op(&mut self) {
        #[cfg(feature = "oracle")]
        crate::oracle::enter_scheme("HE");
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_start_op(crate::hb::HbPolicy::HE);
        self.bp_rung = BpLevel::Normal;
        let retired_len = self.retired.len();
        self.tele.record_op_start(retired_len);
    }

    fn end_op(&mut self) {
        // Era slots are *not* cleared between operations (lazy eras): a
        // stale era only pins nodes whose lifetime contains it — a
        // shrinking, finite set — so robustness is unaffected, while the
        // next operation that sees an unchanged global era pays no fence at
        // all. This matches the paper's characterization of HE's per-read
        // cost as "only reading the global epoch" (§6).
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_end_op();
    }

    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, refno: usize) -> Shared<T> {
        // Published HE get_protected loop: (re)announce the era until it is
        // stable across the pointer load. A stable era proves any node seen
        // by the load has birth ≤ era ≤ retire w.r.t. our announcement.
        let mut prev = self.local[refno];
        loop {
            let w = src.load(Ordering::Acquire);
            let era = self.scheme.clock.now();
            if era == prev {
                // Hb-oracle: era stable across the load — the node's
                // lifetime overlaps this handle's validated announcement.
                #[cfg(feature = "hb-oracle")]
                if !w.is_null() {
                    crate::hb::on_protect(None, w.addr());
                }
                return w;
            }
            self.scheme.era_slots.get(self.tid, refno).store(era, Ordering::Release);
            self.local[refno] = era;
            // New era announced: invalidate shared era snapshots (after the
            // slot store, before the validation fence).
            self.scheme.shared_snap.bump_gen(self.tid);
            counted_fence(&mut self.tele, FenceSite::Announce);
            prev = era;
        }
    }

    fn unprotect(&mut self, refno: usize) {
        self.scheme.era_slots.get(self.tid, refno).store(INACTIVE, Ordering::Release);
        self.local[refno] = INACTIVE;
    }

    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T> {
        self.alloc_with_index(data, 0)
    }

    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T> {
        backpressure::before_alloc(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            &mut self.bp_rung,
            &mut self.tele,
        );
        self.tele.record_alloc();
        let ptr = crate::node::alloc_node_in(data, index, self.scheme.clock.now(), &mut self.tele);
        // SAFETY: [INV-02] `ptr` was just returned by the node allocator.
        unsafe { Shared::from_owned(ptr) }
    }

    // SAFETY: [INV-11] trait contract: the caller retires a removed node
    // exactly once (the winning unlink CAS is at the call site).
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>) {
        self.tele.record_retire(node.addr());
        let stamp = self.scheme.clock.now();
        // SAFETY: [INV-04] forwarded from this fn's own contract.
        let r = unsafe { Retired::new(node.as_raw(), stamp) };
        self.scheme.tele.pending.add(1, r.bytes() as usize);
        self.scan.note_retire(r.bytes());
        self.retired.push(r);
        // HE advances the era every constant number of deletions (§3.3).
        if self.scan.retires().is_multiple_of(self.scheme.cfg.epoch_freq) {
            let e = self.scheme.clock.advance();
            self.tele.record_epoch_advance(e);
        }
        if self.scan.due(&self.scheme.scan_policy, self.retired.len()) {
            self.empty(true);
        }
        if backpressure::after_retire(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            self.scheme.tele.pending_bytes(),
            &mut self.bp_rung,
            &mut self.tele,
        ) {
            self.help_scan();
        }
    }

    fn retired_len(&self) -> usize {
        self.retired.len()
    }

    fn force_empty(&mut self) {
        self.empty(false);
    }
}

impl Drop for HeHandle {
    fn drop(&mut self) {
        // Hb-oracle: the row clear below withdraws every era announcement
        // this handle made, so its protection claims must die with it.
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_handle_drop();
        self.scheme.era_slots.clear_row(self.tid, Ordering::Release);
        // Drain scan before parking leftovers — see HpHandle::drop: under
        // watermark triggers plus handle churn, skipping this would leak
        // every retired node of short-lived handles into the orphan list.
        self.force_empty();
        self.scheme.registry.release(self.tid, std::mem::take(&mut *self.retired));
        mp_util::pool::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(threads: usize) -> Arc<He> {
        // watermark 1: scan on every retire, as the old empty_freq=1 did.
        He::new(
            Config::default()
                .with_max_threads(threads)
                .with_empty_freq(1)
                .with_epoch_freq(1)
                .with_scan_watermark(1),
        )
    }

    #[test]
    fn interval_hit_logic() {
        assert!(interval_hit(&[5], 5, 5));
        assert!(interval_hit(&[3, 9], 4, 9));
        assert!(!interval_hit(&[3, 9], 4, 8));
        assert!(!interval_hit(&[], 0, u64::MAX));
        assert!(interval_hit(&[0], 0, 0));
        assert!(!interval_hit(&[10], 0, 9));
        assert!(!interval_hit(&[10], 11, 20));
    }

    #[test]
    fn era_inside_lifetime_blocks_reclamation() {
        let smr = setup(2);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let n = writer.alloc(1u32);
        let cell = Atomic::new(n);

        reader.start_op();
        let got = reader.read(&cell, 0); // announces current era
        assert_eq!(got, n);

        cell.store(Shared::null(), Ordering::Release);
        unsafe { writer.retire(n) }; // SAFETY: [INV-12] unlinked above, retired once.
        writer.force_empty();
        assert_eq!(writer.retired_len(), 1, "announced era within [birth,retire] pins node");
        // SAFETY: [INV-12] reader's announced era still pins the node.
        assert_eq!(unsafe { *got.deref().data() }, 1);

        // Lazy eras: ending the operation keeps the era announced; only
        // deregistering (or a later refresh) releases it.
        reader.end_op();
        drop(reader);
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
        writer.end_op();
    }

    #[test]
    fn nodes_born_after_stall_are_reclaimed() {
        // Robustness: the stalled reader's eras predate new nodes' births.
        let smr = setup(2);
        let mut stalled = smr.register();
        let mut worker = smr.register();

        stalled.start_op();
        worker.start_op();
        let pin = worker.alloc(0u32);
        let cell = Atomic::new(pin);
        let _ = stalled.read(&cell, 0); // stalled announces era, then stops
        // Churn: every alloc is born after the era advanced (epoch_freq=1).
        for i in 0..100u32 {
            let churn = worker.alloc(i);
            unsafe { worker.retire(churn) }; // SAFETY: [INV-12] never published, retired once.
        }
        worker.force_empty();
        assert!(
            worker.retired_len() <= 2,
            "younger nodes must be reclaimed despite stall, kept {}",
            worker.retired_len()
        );
        stalled.end_op();
        drop(stalled); // lazy eras: deregistration releases the stale era
        worker.end_op();
        cell.store(Shared::null(), Ordering::Release);
        unsafe { worker.retire(pin) }; // SAFETY: [INV-12] unlinked above, retired once.
        worker.force_empty();
        assert_eq!(worker.retired_len(), 0);
    }

    #[test]
    fn stable_era_reads_do_not_fence() {
        let cfg = Config::default().with_max_threads(1).with_empty_freq(100).with_epoch_freq(1000);
        let smr = He::new(cfg);
        let mut h = smr.register();
        h.start_op();
        let n = h.alloc(9u8);
        let cell = Atomic::new(n);
        let _ = h.read(&cell, 0);
        let after_first = h.stats().fences;
        for _ in 0..50 {
            let _ = h.read(&cell, 0);
        }
        assert_eq!(h.stats().fences, after_first, "unchanged era ⇒ no fence");
        h.end_op();
        unsafe { h.retire(n) }; // SAFETY: [INV-12] test-owned, retired once.
        h.force_empty();
    }
}
