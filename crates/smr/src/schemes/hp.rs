//! Hazard pointers (Michael 2004; paper §3.1).
//!
//! The canonical pointer-based reclamation scheme: each thread announces
//! every node it is about to dereference in a shared per-thread slot, issues
//! a full fence, and revalidates that the source pointer still points to the
//! node — establishing that protection was announced while the node was
//! linked. Wasted memory is bounded by `O(H·T)` but a fence is paid on
//! (almost) every pointer dereference, which is the overhead MP removes.
//!
//! This implementation includes the two optimizations the paper applied to
//! make HP-based baselines competitive (§6 "Optimizations to IBR
//! Framework"): `end_op` clears all slots with a *single* trailing fence,
//! and `empty()` snapshots all hazard slots once (sorted) instead of
//! rescanning them per retired node.

use std::sync::Arc;
use std::time::Instant;

use core::sync::atomic::Ordering;

use mp_util::CachePadded;

use crate::api::{Config, Smr, SmrHandle};
use crate::backpressure::{self, BackpressurePolicy, BpLevel};
use crate::error::SmrError;
use crate::node::Retired;
use crate::packed::{Atomic, Shared};
use crate::registry::Registry;
use crate::registry::SlotArray;
use crate::schemes::common::{counted_fence, ScanPolicy, ScanState, SharedSnapshot, NO_HAZARD};
use crate::stats::FenceSite;
use crate::telemetry::{HandleTelemetry, SchemeTelemetry, Telemetry};

/// Hazard-pointer SMR scheme (shared state).
pub struct Hp {
    hp_slots: SlotArray,
    /// Version-stamped hazard snapshot shared across scanning handles;
    /// adopted instead of re-walked when no protection changed underneath.
    shared_snap: SharedSnapshot,
    scan_policy: ScanPolicy,
    bp_policy: BackpressurePolicy,
    registry: Registry,
    cfg: Config,
    tele: SchemeTelemetry,
}

/// Per-thread handle for [`Hp`].
pub struct HpHandle {
    scheme: Arc<Hp>,
    tid: usize,
    /// Thread-local mirror of this thread's slots (avoids atomic re-loads
    /// when checking whether a node is already protected).
    local: Vec<u64>,
    /// Cache-padded so adjacent handles never false-share the hot
    /// retired-list head (cf. `registry.rs::SlotArray` rows).
    retired: CachePadded<Vec<Retired>>,
    /// Retained swap buffer for `empty()` (steady-state scans allocate
    /// nothing).
    scan_scratch: Vec<Retired>,
    /// Retained hazard-snapshot buffer, refilled in place per scan.
    hazard_scratch: Vec<u64>,
    /// Retained generation-vector buffer for snapshot adoption.
    gens_scratch: Vec<u64>,
    /// True if the previous scan adopted the shared snapshot. A handle
    /// never adopts twice in a row: releases (unprotect/end_op/drop) do not
    /// bump generations, so the forced fresh walk bounds how long a
    /// released hazard can linger in an adopted snapshot.
    adopted_last: bool,
    scan: ScanState,
    /// In-op backpressure rung (monotone within one op; reset by start_op).
    bp_rung: BpLevel,
    tele: CachePadded<HandleTelemetry>,
}

impl Smr for Hp {
    type Handle = HpHandle;

    fn try_new(cfg: Config) -> Result<Arc<Self>, SmrError> {
        cfg.validate()?;
        Ok(Arc::new(Hp {
            hp_slots: SlotArray::new(cfg.max_threads, cfg.slots_per_thread, NO_HAZARD),
            shared_snap: SharedSnapshot::new(cfg.max_threads, cfg.slots_per_thread),
            scan_policy: ScanPolicy::from_config(&cfg),
            bp_policy: BackpressurePolicy::from_config(&cfg),
            registry: Registry::new(cfg.max_threads),
            cfg,
            tele: SchemeTelemetry::new(),
        }))
    }

    fn try_register(self: &Arc<Self>) -> Result<HpHandle, SmrError> {
        let lease = self
            .registry
            .try_acquire()
            .ok_or(SmrError::RegistryExhausted { max_threads: self.cfg.max_threads })?;
        let mut tele = HandleTelemetry::new(lease.tid);
        if lease.recycled {
            tele.record_tid_recycle();
        }
        // Adopt parked orphans: churned-out handles leave behind
        // whatever their drain scan could not free; this handle frees
        // them at its next scan instead of letting them pile to teardown.
        let retired = self.registry.adopt_orphans();
        let scan = ScanState::with_backlog(&self.scan_policy, &retired);
        Ok(HpHandle {
            scheme: self.clone(),
            tid: lease.tid,
            local: vec![NO_HAZARD; self.cfg.slots_per_thread],
            retired: CachePadded::new(retired),
            scan_scratch: Vec::new(),
            hazard_scratch: Vec::new(),
            gens_scratch: Vec::new(),
            adopted_last: false,
            scan,
            bp_rung: BpLevel::Normal,
            tele: CachePadded::new(tele),
        })
    }

    fn name() -> &'static str {
        "HP"
    }

    fn telemetry(&self) -> &SchemeTelemetry {
        &self.tele
    }

    fn backpressure_policy(&self) -> &BackpressurePolicy {
        &self.bp_policy
    }
}

impl Telemetry for HpHandle {
    fn tele(&self) -> &HandleTelemetry {
        &self.tele
    }

    fn tele_mut(&mut self) -> &mut HandleTelemetry {
        &mut self.tele
    }
}

impl Drop for Hp {
    fn drop(&mut self) {
        // SAFETY: [INV-06] teardown: every handle holds an `Arc` to the
        // scheme, so `&mut self` here proves no handle exists and orphaned
        // retired lists can no longer be protected by anyone.
        unsafe { self.registry.reclaim_orphans() };
        self.tele.pending.sub(self.tele.pending.get(), self.tele.pending.bytes());
    }
}

impl Hp {
    /// Snapshots every announced hazard address into `snap` (cleared and
    /// refilled in place; sorted for binary search). The buffer lives in the
    /// handle so steady-state scans reuse its capacity.
    fn snapshot_hazards_into(&self, snap: &mut Vec<u64>) {
        snap.clear();
        for tid in 0..self.hp_slots.threads() {
            for slot in self.hp_slots.row(tid) {
                let v = slot.load(Ordering::Acquire);
                if v != NO_HAZARD {
                    snap.push(v);
                }
            }
        }
        snap.sort_unstable();
    }
}

impl HpHandle {
    /// Naive per-node rescan of the live slot arrays (the pre-optimization
    /// behavior of the IBR framework; kept for the ablation bench).
    fn hazard_hit_naive(&self, addr: u64) -> bool {
        let slots = &self.scheme.hp_slots;
        for tid in 0..slots.threads() {
            for s in slots.row(tid) {
                if s.load(Ordering::Acquire) == addr {
                    return true;
                }
            }
        }
        false
    }

    /// Reclamation scan; allocation-free in steady state (the hazard
    /// snapshot and the retired list both cycle through handle-owned
    /// buffers). `allow_adopt` permits reusing the shared hazard snapshot;
    /// explicit `force_empty` calls pass `false` so they always observe the
    /// live slots.
    fn empty(&mut self, allow_adopt: bool) {
        self.tele.record_empty();
        let scan_t0 = Instant::now();
        let caps_before = self.retired.capacity()
            + self.scan_scratch.capacity()
            + self.hazard_scratch.capacity()
            + self.gens_scratch.capacity();
        // Ensure retirements we are about to judge are ordered after any
        // protection announcements we will observe.
        core::sync::atomic::fence(Ordering::SeqCst);
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_fence_sc();
        let naive = self.scheme.cfg.ablation_naive_scan;
        if !naive {
            // Generation vector loaded *after* this handle's fence: if it
            // still equals the published snapshot's vector, no protection
            // was announced-and-validated since that snapshot's walk, so
            // adopting it only over-approximates (see SharedSnapshot docs).
            self.scheme.shared_snap.load_gens_into(&mut self.gens_scratch);
            let adopted = allow_adopt
                && !self.adopted_last
                && self
                    .scheme
                    .shared_snap
                    .try_adopt_into(&self.gens_scratch, &mut self.hazard_scratch);
            self.adopted_last = adopted;
            if adopted {
                self.tele.record_snapshot_reuse();
                #[cfg(feature = "oracle")]
                {
                    // The reused snapshot must contain every hazard a fresh
                    // walk would see (superset check).
                    let mut fresh = Vec::new();
                    self.scheme.snapshot_hazards_into(&mut fresh);
                    for v in &fresh {
                        assert!(
                            self.hazard_scratch.binary_search(v).is_ok(),
                            "snapshot reuse under-approximates: hazard {v:#x} missing"
                        );
                    }
                }
            } else {
                self.scheme.snapshot_hazards_into(&mut self.hazard_scratch);
                self.scheme.shared_snap.publish_snapshot(&self.gens_scratch, &self.hazard_scratch);
            }
        }
        // Swap the retired list through the retained scratch (`mem::take`
        // leaves a capacity-0 Vec: no allocation).
        let mut pending = std::mem::take(&mut self.scan_scratch);
        debug_assert!(pending.is_empty());
        std::mem::swap(&mut pending, &mut *self.retired);
        let before = pending.len();
        let mut kept_bytes = 0usize;
        let mut freed_bytes = 0usize;
        for r in pending.drain(..) {
            let protected = if naive {
                self.hazard_hit_naive(r.addr())
            } else {
                self.hazard_scratch.binary_search(&r.addr()).is_ok()
            };
            if protected {
                kept_bytes += r.bytes() as usize;
                self.retired.push(r);
            } else {
                self.tele.record_free(r.addr());
                freed_bytes += r.bytes() as usize;
                // SAFETY: [INV-05] the node is retired (unreachable) and no
                // hazard slot held its address after the SeqCst fence, so no
                // thread can have validated a protection for it.
                unsafe { r.reclaim() };
            }
        }
        self.scan_scratch = pending;
        let freed = before - self.retired.len();
        self.scheme.tele.pending.sub(freed, freed_bytes);
        self.scan.rearm(&self.scheme.scan_policy, self.retired.len(), kept_bytes);
        let caps_after = self.retired.capacity()
            + self.scan_scratch.capacity()
            + self.hazard_scratch.capacity()
            + self.gens_scratch.capacity();
        if caps_after > caps_before {
            self.tele.record_scan_heap_alloc();
        }
        self.tele.record_scan_elapsed(scan_t0);
        // Oracle: every kept node is pinned by some announced hazard, so a
        // handle's list can never exceed the total slot budget (the paper's
        // Table 1 bound for HP).
        #[cfg(feature = "oracle")]
        {
            let cfg = &self.scheme.cfg;
            crate::oracle::check_waste_bound(
                "HP",
                self.retired.len(),
                (cfg.max_threads * cfg.slots_per_thread) as u128,
            );
        }
    }

    /// Backpressure help-scan: adopt whatever retired lists churned-out
    /// peers parked as orphans, then scan against the *live* slots (no
    /// snapshot adoption — helping exists to free memory now, not to be
    /// cheap). See [`crate::backpressure`].
    fn help_scan(&mut self) {
        self.tele.record_help_scan();
        let orphans = self.scheme.registry.adopt_orphans();
        self.retired.extend(orphans);
        // The scan's rearm (inside empty) re-baselines the backlog, so no
        // separate bookkeeping is needed for the adopted nodes.
        self.empty(false);
    }
}

impl SmrHandle for HpHandle {
    fn start_op(&mut self) {
        #[cfg(feature = "oracle")]
        crate::oracle::enter_scheme("HP");
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_start_op(crate::hb::HbPolicy::HP);
        self.bp_rung = BpLevel::Normal;
        let retired_len = self.retired.len();
        self.tele.record_op_start(retired_len);
    }

    fn end_op(&mut self) {
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_end_op();
        if self.scheme.cfg.ablation_per_slot_fence {
            // Unoptimized baseline: fence after clearing each slot.
            for slot in self.scheme.hp_slots.row(self.tid) {
                slot.store(NO_HAZARD, Ordering::Release);
                counted_fence(&mut self.tele, FenceSite::EndOp);
            }
            self.local.fill(NO_HAZARD);
            return;
        }
        // Paper optimization: clear all slots, then a single fence.
        self.scheme.hp_slots.clear_row(self.tid, Ordering::Release);
        self.local.fill(NO_HAZARD);
        counted_fence(&mut self.tele, FenceSite::EndOp);
    }

    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, refno: usize) -> Shared<T> {
        let mut backoff = mp_util::Backoff::new();
        // The candidate is loaded once up front; on a failed validation the
        // validating re-read *becomes* the next candidate instead of being
        // discarded and re-loaded at the top of the loop. A fence is paid
        // only per newly announced address — if a retry lands back on an
        // address this slot already protects (A→B→A churn), the dedup check
        // returns without re-fencing.
        let mut w = src.load(Ordering::Acquire);
        loop {
            let addr = w.addr();
            if addr == 0 {
                return w; // null (possibly marked-null): nothing to protect
            }
            if self.local[refno] == addr {
                // Hb-oracle: this load *is* the (possibly delayed) validating
                // re-read of the standing announcement — the slot was stored
                // and fenced before it — so the protection is validated here
                // even when the original attempt's re-read failed.
                #[cfg(feature = "hb-oracle")]
                crate::hb::on_protect(Some(refno), addr);
                return w; // already protected by this slot
            }
            // Hb-oracle: overwriting the slot withdraws whatever claim it
            // held; the new candidate earns a record only once validated.
            #[cfg(feature = "hb-oracle")]
            crate::hb::on_unprotect(refno);
            self.scheme.hp_slots.get(self.tid, refno).store(addr, Ordering::Release);
            self.local[refno] = addr;
            // New protection announced: invalidate shared hazard snapshots
            // (after the slot store, before the validation fence).
            self.scheme.shared_snap.bump_gen(self.tid);
            counted_fence(&mut self.tele, FenceSite::HpProtect);
            // Validate the node is still reachable from `src`: success means
            // the announcement happened while the node was linked (§3.1).
            let w2 = src.load(Ordering::Acquire);
            if w2 == w {
                // Hb-oracle: announcement validated — the node was linked
                // while the hazard was visible to every later scan fence.
                #[cfg(feature = "hb-oracle")]
                crate::hb::on_protect(Some(refno), addr);
                return w;
            }
            // `src` moved under us: a writer is churning this cell, so back
            // off before re-announcing instead of fencing at full speed.
            backoff.spin();
            w = w2;
        }
    }

    fn unprotect(&mut self, refno: usize) {
        self.scheme.hp_slots.get(self.tid, refno).store(NO_HAZARD, Ordering::Release);
        self.local[refno] = NO_HAZARD;
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_unprotect(refno);
    }

    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T> {
        self.alloc_with_index(data, 0)
    }

    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T> {
        backpressure::before_alloc(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            &mut self.bp_rung,
            &mut self.tele,
        );
        self.tele.record_alloc();
        let ptr = crate::node::alloc_node_in(data, index, 0, &mut self.tele);
        // SAFETY: [INV-02] `ptr` was just returned by the node allocator.
        unsafe { Shared::from_owned(ptr) }
    }

    // SAFETY: [INV-11] trait contract: the caller retires a removed node
    // exactly once (the winning unlink CAS is at the call site).
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>) {
        self.tele.record_retire(node.addr());
        // SAFETY: [INV-04] forwarded from this fn's own contract.
        let r = unsafe { Retired::new(node.as_raw(), 0) };
        self.scheme.tele.pending.add(1, r.bytes() as usize);
        self.scan.note_retire(r.bytes());
        self.retired.push(r);
        if self.scan.due(&self.scheme.scan_policy, self.retired.len()) {
            self.empty(true);
        }
        if backpressure::after_retire(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            self.scheme.tele.pending_bytes(),
            &mut self.bp_rung,
            &mut self.tele,
        ) {
            self.help_scan();
        }
    }

    fn retired_len(&self) -> usize {
        self.retired.len()
    }

    fn force_empty(&mut self) {
        self.empty(false);
    }
}

impl Drop for HpHandle {
    fn drop(&mut self) {
        // Hb-oracle: the row clear below withdraws every announcement this
        // handle made, so its protection claims must die with it.
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_handle_drop();
        self.scheme.hp_slots.clear_row(self.tid, Ordering::Release);
        // Drain scan: with watermark-batched triggers a short-lived handle
        // may never have reached its scan threshold; without this scan its
        // whole retired list would park as orphans (reclaimed only at
        // scheme teardown), unbounded under handle churn. Runs after the
        // row clear so the handle's own stale announcements don't pin its
        // leftovers.
        self.force_empty();
        self.scheme.registry.release(self.tid, std::mem::take(&mut *self.retired));
        mp_util::pool::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(threads: usize) -> Arc<Hp> {
        // watermark 1: scan on every retire, as the old empty_freq=1 did.
        Hp::new(Config::default().with_max_threads(threads).with_empty_freq(1).with_scan_watermark(1))
    }

    #[test]
    fn unprotected_retired_node_is_reclaimed() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let n = h.alloc(1u32);
        // SAFETY: [INV-12] never published, retired once by the test.
        unsafe { h.retire(n) }; // empty_freq=1 → immediate empty()
        assert_eq!(h.retired_len(), 0);
        assert_eq!(smr.retired_pending(), 0);
        h.end_op();
    }

    #[test]
    fn protected_node_survives_empty() {
        let smr = setup(2);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let n = writer.alloc(5u64);
        let cell = Atomic::new(n);

        reader.start_op();
        let got = reader.read(&cell, 0);
        assert_eq!(got, n);

        // Writer unlinks and retires; reader's hazard must block reclamation.
        cell.store(Shared::null(), Ordering::Release);
        unsafe { writer.retire(n) }; // SAFETY: [INV-12] unlinked above, retired once.
        writer.force_empty();
        assert_eq!(writer.retired_len(), 1, "hazard must block reclamation");
        // SAFETY: [INV-12] reader's hazard span is still open and pins the node.
        assert_eq!(unsafe { *got.deref().data() }, 5, "still dereferenceable");

        // Reader drops protection; now reclamation succeeds.
        reader.end_op();
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
        writer.end_op();
    }

    #[test]
    fn read_validates_against_concurrent_swap() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let a = h.alloc(1u32);
        let b = h.alloc(2u32);
        let cell = Atomic::new(a);
        // Simulate a swap happening between announce and validate by
        // pre-poisoning: read returns whatever is current at validation.
        cell.store(b, Ordering::Release);
        let got = h.read(&cell, 0);
        assert_eq!(got, b);
        h.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            h.retire(a);
            h.retire(b);
        }
    }

    #[test]
    fn repeated_read_of_same_node_fences_once() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let n = h.alloc(3u16);
        let cell = Atomic::new(n);
        let f0 = h.stats().fences;
        let _ = h.read(&cell, 0);
        let after_first = h.stats().fences;
        assert_eq!(after_first, f0 + 1);
        for _ in 0..10 {
            let _ = h.read(&cell, 0);
        }
        assert_eq!(h.stats().fences, after_first, "slot dedup avoids refencing");
        h.end_op();
        unsafe { h.retire(n) }; // SAFETY: [INV-12] test-owned, retired once.
    }

    #[test]
    fn wasted_memory_bounded_by_hazards() {
        // A stalled reader pins at most slots_per_thread nodes.
        let cfg = Config::default()
            .with_max_threads(2)
            .with_slots_per_thread(4)
            .with_empty_freq(1)
            .with_scan_watermark(1);
        let smr = Hp::new(cfg);
        let mut reader = smr.register();
        let mut writer = smr.register();

        reader.start_op();
        writer.start_op();
        // Reader protects 4 distinct nodes and then "stalls".
        let mut cells = Vec::new();
        for i in 0..4u32 {
            let n = writer.alloc(i);
            let cell = Atomic::new(n);
            let _ = reader.read(&cell, i as usize);
            cells.push((cell, n));
        }
        // Writer churns: retire the protected nodes + many unprotected ones.
        for (cell, n) in &cells {
            cell.store(Shared::null(), Ordering::Release);
            unsafe { writer.retire(*n) }; // SAFETY: [INV-12] unlinked above, retired once.
        }
        for i in 0..1000u32 {
            let n = writer.alloc(i);
            unsafe { writer.retire(n) }; // SAFETY: [INV-12] never published, retired once.
        }
        writer.force_empty();
        assert!(
            writer.retired_len() <= 4,
            "wasted memory {} exceeds hazard count",
            writer.retired_len()
        );
        reader.end_op();
        writer.end_op();
    }
}
