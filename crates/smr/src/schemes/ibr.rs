//! Interval-based reclamation (Wen et al., PPoPP 2018; paper §3.3).
//!
//! IBR keeps no per-reference slots at all. Each thread reserves an *epoch
//! interval* `[lower, upper]`: `lower` is the epoch observed at operation
//! start and `upper` is bumped to the current global epoch on reads (the
//! 2GE — two-global-epochs — reservation variant). The invariant is that
//! the birth epoch of any node the thread may dereference lies inside its
//! reserved interval. A retired node is reclaimable if, for every active
//! thread, it was retired before the thread's interval began or born after
//! the interval's end.
//!
//! The paper's artifact uses the framework's default *tagged-pointer* IBR,
//! which packs birth epochs into pointer tags. We implement the 2GE variant
//! instead: the reservation semantics and wasted-memory behavior are the
//! same, but 2GE never needs to read a field of a not-yet-protected node —
//! which would be undefined behavior in Rust (see DESIGN.md,
//! "Substitutions").
//!
//! Like HE, IBR is robust but allows arbitrarily large wasted memory: every
//! node alive when a thread stalls stays pinned by its interval.

use std::sync::Arc;
use std::time::Instant;

use core::sync::atomic::Ordering;

use mp_util::CachePadded;

use crate::api::{Config, Smr, SmrHandle};
use crate::backpressure::{self, BackpressurePolicy, BpLevel};
use crate::error::SmrError;
use crate::node::Retired;
use crate::packed::{Atomic, Shared};
use crate::registry::{Registry, SlotArray};
use crate::schemes::common::{counted_fence, EpochClock, ScanPolicy, ScanState, INACTIVE};
use crate::stats::FenceSite;
use crate::telemetry::{HandleTelemetry, SchemeTelemetry, Telemetry};

const LOWER: usize = 0;
const UPPER: usize = 1;

/// Interval-based reclamation scheme (shared state).
pub struct Ibr {
    clock: EpochClock,
    /// Two slots per thread: reserved `[lower, upper]` (INACTIVE = idle).
    reservations: SlotArray,
    scan_policy: ScanPolicy,
    bp_policy: BackpressurePolicy,
    registry: Registry,
    cfg: Config,
    tele: SchemeTelemetry,
}

/// Per-thread handle for [`Ibr`].
pub struct IbrHandle {
    scheme: Arc<Ibr>,
    tid: usize,
    upper_local: u64,
    /// Cache-padded retired-list head (no false sharing between handles).
    retired: CachePadded<Vec<Retired>>,
    /// Retained swap buffer for `empty()`.
    scan_scratch: Vec<Retired>,
    /// Retained reservation-snapshot buffer, refilled in place per scan.
    interval_scratch: Vec<(u64, u64)>,
    scan: ScanState,
    alloc_counter: usize,
    /// In-op backpressure rung (monotone within one op; reset by start_op).
    bp_rung: BpLevel,
    tele: CachePadded<HandleTelemetry>,
}

impl Smr for Ibr {
    type Handle = IbrHandle;

    fn try_new(cfg: Config) -> Result<Arc<Self>, SmrError> {
        cfg.validate()?;
        Ok(Arc::new(Ibr {
            clock: EpochClock::new(),
            reservations: SlotArray::new(cfg.max_threads, 2, INACTIVE),
            scan_policy: ScanPolicy::from_config(&cfg),
            bp_policy: BackpressurePolicy::from_config(&cfg),
            registry: Registry::new(cfg.max_threads),
            cfg,
            tele: SchemeTelemetry::new(),
        }))
    }

    fn try_register(self: &Arc<Self>) -> Result<IbrHandle, SmrError> {
        let lease = self
            .registry
            .try_acquire()
            .ok_or(SmrError::RegistryExhausted { max_threads: self.cfg.max_threads })?;
        let mut tele = HandleTelemetry::new(lease.tid);
        if lease.recycled {
            tele.record_tid_recycle();
        }
        // Adopt parked orphans: churned-out handles leave behind
        // whatever their drain scan could not free; this handle frees
        // them at its next scan instead of letting them pile to teardown.
        let retired = self.registry.adopt_orphans();
        let scan = ScanState::with_backlog(&self.scan_policy, &retired);
        Ok(IbrHandle {
            scheme: self.clone(),
            tid: lease.tid,
            upper_local: INACTIVE,
            retired: CachePadded::new(retired),
            scan_scratch: Vec::new(),
            interval_scratch: Vec::new(),
            scan,
            alloc_counter: 0,
            bp_rung: BpLevel::Normal,
            tele: CachePadded::new(tele),
        })
    }

    fn name() -> &'static str {
        "IBR"
    }

    fn telemetry(&self) -> &SchemeTelemetry {
        &self.tele
    }

    fn backpressure_policy(&self) -> &BackpressurePolicy {
        &self.bp_policy
    }
}

impl Telemetry for IbrHandle {
    fn tele(&self) -> &HandleTelemetry {
        &self.tele
    }

    fn tele_mut(&mut self) -> &mut HandleTelemetry {
        &mut self.tele
    }
}

impl Drop for Ibr {
    fn drop(&mut self) {
        // SAFETY: [INV-06] teardown: every handle holds an `Arc` to the
        // scheme, so `&mut self` here proves no handle exists and orphaned
        // retired lists can no longer be protected by anyone.
        unsafe { self.registry.reclaim_orphans() };
    }
}

impl IbrHandle {
    /// Reclamation scan; allocation-free in steady state (the reservation
    /// snapshot and the retired list both cycle through handle-owned
    /// buffers).
    fn empty(&mut self) {
        self.tele.record_empty();
        let scan_t0 = Instant::now();
        let caps_before = self.retired.capacity()
            + self.scan_scratch.capacity()
            + self.interval_scratch.capacity();
        core::sync::atomic::fence(Ordering::SeqCst);
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_fence_sc();
        // Snapshot all active reservations once, into the retained buffer.
        self.interval_scratch.clear();
        for tid in 0..self.scheme.reservations.threads() {
            let lo = self.scheme.reservations.get(tid, LOWER).load(Ordering::Acquire);
            let hi = self.scheme.reservations.get(tid, UPPER).load(Ordering::Acquire);
            if lo != INACTIVE {
                self.interval_scratch.push((lo, hi.min(INACTIVE - 1)));
            }
        }
        let mut pending = std::mem::take(&mut self.scan_scratch);
        debug_assert!(pending.is_empty());
        std::mem::swap(&mut pending, &mut *self.retired);
        let before = pending.len();
        let mut kept_bytes = 0usize;
        let mut freed_bytes = 0usize;
        for r in pending.drain(..) {
            let conflict =
                self.interval_scratch.iter().any(|&(lo, hi)| !(r.retire < lo || r.birth > hi));
            if conflict {
                kept_bytes += r.bytes() as usize;
                self.retired.push(r);
            } else {
                self.tele.record_free(r.addr());
                freed_bytes += r.bytes() as usize;
                // SAFETY: [INV-05] the snapshot taken after the SeqCst fence
                // shows every active interval began after the node was
                // retired or ended before it was born, so no thread's
                // reservation admits a reference to it.
                unsafe { r.reclaim() };
            }
        }
        self.scan_scratch = pending;
        let freed = before - self.retired.len();
        self.scheme.tele.pending.sub(freed, freed_bytes);
        self.scan.rearm(&self.scheme.scan_policy, self.retired.len(), kept_bytes);
        if self.retired.capacity() + self.scan_scratch.capacity() + self.interval_scratch.capacity()
            > caps_before
        {
            self.tele.record_scan_heap_alloc();
        }
        self.tele.record_scan_elapsed(scan_t0);
    }

    /// Backpressure help-scan: adopt orphaned retired lists and scan them
    /// against the live reservations. See [`crate::backpressure`].
    fn help_scan(&mut self) {
        self.tele.record_help_scan();
        let orphans = self.scheme.registry.adopt_orphans();
        self.retired.extend(orphans);
        self.empty();
    }
}

impl SmrHandle for IbrHandle {
    fn start_op(&mut self) {
        // Oracle context only: IBR (2GE) is exempt from the waste-bound
        // monitor — a stalled reservation pins unboundedly many retirees
        // whose intervals overlap it.
        #[cfg(feature = "oracle")]
        crate::oracle::enter_scheme("IBR");
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_start_op(crate::hb::HbPolicy::EPOCH);
        self.bp_rung = BpLevel::Normal;
        let retired_len = self.retired.len();
        self.tele.record_op_start(retired_len);
        let e = self.scheme.clock.now();
        self.scheme.reservations.get(self.tid, LOWER).store(e, Ordering::Release);
        self.scheme.reservations.get(self.tid, UPPER).store(e, Ordering::Release);
        self.upper_local = e;
        // Reservation must be visible before any data-structure read.
        counted_fence(&mut self.tele, FenceSite::StartOp);
    }

    fn end_op(&mut self) {
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_end_op();
        self.scheme.reservations.get(self.tid, UPPER).store(INACTIVE, Ordering::Release);
        self.scheme.reservations.get(self.tid, LOWER).store(INACTIVE, Ordering::Release);
        self.upper_local = INACTIVE;
    }

    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, _refno: usize) -> Shared<T> {
        // 2GE loop: extend the reserved upper bound until it is stable
        // across the load, guaranteeing any node seen has birth ≤ upper.
        loop {
            let w = src.load(Ordering::Acquire);
            let e = self.scheme.clock.now();
            if e == self.upper_local {
                return w;
            }
            self.scheme.reservations.get(self.tid, UPPER).store(e, Ordering::Release);
            self.upper_local = e;
            // The epoch changed under us — IBR's rare per-read cost.
            counted_fence(&mut self.tele, FenceSite::Announce);
        }
    }

    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T> {
        self.alloc_with_index(data, 0)
    }

    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T> {
        backpressure::before_alloc(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            &mut self.bp_rung,
            &mut self.tele,
        );
        self.tele.record_alloc();
        self.alloc_counter += 1;
        // IBR advances the epoch every constant number of allocations (§3.3).
        if self.alloc_counter.is_multiple_of(self.scheme.cfg.epoch_freq) {
            let e = self.scheme.clock.advance();
            self.tele.record_epoch_advance(e);
        }
        let ptr = crate::node::alloc_node_in(data, index, self.scheme.clock.now(), &mut self.tele);
        // SAFETY: [INV-02] `ptr` was just returned by the node allocator.
        unsafe { Shared::from_owned(ptr) }
    }

    // SAFETY: [INV-11] trait contract: the caller retires a removed node
    // exactly once (the winning unlink CAS is at the call site).
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>) {
        self.tele.record_retire(node.addr());
        let stamp = self.scheme.clock.now();
        // SAFETY: [INV-04] forwarded from this fn's own contract.
        let r = unsafe { Retired::new(node.as_raw(), stamp) };
        self.scheme.tele.pending.add(1, r.bytes() as usize);
        self.scan.note_retire(r.bytes());
        self.retired.push(r);
        if self.scan.due(&self.scheme.scan_policy, self.retired.len()) {
            self.empty();
        }
        if backpressure::after_retire(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            self.scheme.tele.pending_bytes(),
            &mut self.bp_rung,
            &mut self.tele,
        ) {
            self.help_scan();
        }
    }

    fn retired_len(&self) -> usize {
        self.retired.len()
    }

    fn force_empty(&mut self) {
        self.empty();
    }
}

impl Drop for IbrHandle {
    fn drop(&mut self) {
        self.scheme.reservations.clear_row(self.tid, Ordering::Release);
        // Drain scan before parking leftovers — see HpHandle::drop.
        self.force_empty();
        self.scheme.registry.release(self.tid, std::mem::take(&mut *self.retired));
        mp_util::pool::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(threads: usize) -> Arc<Ibr> {
        // watermark 1: scan on every retire, as the old empty_freq=1 did.
        Ibr::new(
            Config::default()
                .with_max_threads(threads)
                .with_empty_freq(1)
                .with_epoch_freq(1)
                .with_scan_watermark(1),
        )
    }

    #[test]
    fn interval_overlap_blocks_reclamation() {
        let smr = setup(2);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let n = writer.alloc(3u32);
        let cell = Atomic::new(n);

        reader.start_op(); // lower = current epoch ≥ birth of n? birth ≤ lower here
        let got = reader.read(&cell, 0);
        assert_eq!(got, n);

        cell.store(Shared::null(), Ordering::Release);
        unsafe { writer.retire(n) }; // SAFETY: [INV-12] unlinked above, retired once.
        writer.force_empty();
        assert_eq!(writer.retired_len(), 1, "overlapping reservation pins node");
        // SAFETY: [INV-12] reader's reservation still pins the node.
        assert_eq!(unsafe { *got.deref().data() }, 3);

        reader.end_op();
        writer.end_op();
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
    }

    #[test]
    fn nodes_born_after_reservation_end_are_reclaimed() {
        let smr = setup(2);
        let mut stalled = smr.register();
        let mut worker = smr.register();

        stalled.start_op(); // reserves [e, e] and stalls
        worker.start_op();
        for i in 0..100u32 {
            // epoch_freq = 1 ⇒ every alloc advances the epoch, so nodes are
            // quickly born after the stalled interval's upper bound.
            let n = worker.alloc(i);
            unsafe { worker.retire(n) }; // SAFETY: [INV-12] never published, retired once.
        }
        worker.force_empty();
        assert!(
            worker.retired_len() <= 3,
            "robustness: younger nodes reclaimed despite stall, kept {}",
            worker.retired_len()
        );
        stalled.end_op();
        worker.end_op();
        worker.force_empty();
        assert_eq!(worker.retired_len(), 0);
    }

    #[test]
    fn stable_epoch_reads_cost_nothing() {
        let cfg = Config::default().with_max_threads(1).with_empty_freq(100).with_epoch_freq(1000);
        let smr = Ibr::new(cfg);
        let mut h = smr.register();
        h.start_op();
        let n = h.alloc(1u8);
        let cell = Atomic::new(n);
        let baseline = h.stats().fences;
        for _ in 0..50 {
            let _ = h.read(&cell, 0);
        }
        assert_eq!(h.stats().fences, baseline, "per-operation overhead only");
        h.end_op();
        unsafe { h.retire(n) }; // SAFETY: [INV-12] test-owned, retired once.
        h.force_empty();
    }
}
