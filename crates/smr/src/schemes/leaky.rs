//! No reclamation: retired nodes are never freed while the scheme lives.
//!
//! `Leaky` is the zero-overhead upper bound used to isolate SMR cost in
//! benchmarks (reads are plain loads; no fences, no scans). Retired nodes
//! are buffered and released only when the scheme itself is dropped, so the
//! process does not actually leak in tests.

use std::sync::Arc;

use core::sync::atomic::Ordering;

use mp_util::CachePadded;

use crate::api::{Config, Smr, SmrHandle};
use crate::backpressure::{self, BackpressurePolicy, BpLevel};
use crate::error::SmrError;
use crate::node::Retired;
use crate::packed::{Atomic, Shared};
use crate::registry::Registry;
use crate::telemetry::{HandleTelemetry, SchemeTelemetry, Telemetry};

/// The leaky "scheme": never reclaims (see module docs).
pub struct Leaky {
    registry: Registry,
    bp_policy: BackpressurePolicy,
    max_threads: usize,
    tele: SchemeTelemetry,
}

/// Per-thread handle for [`Leaky`].
pub struct LeakyHandle {
    scheme: Arc<Leaky>,
    tid: usize,
    /// Cache-padded retired-list head (no false sharing between handles).
    retired: CachePadded<Vec<Retired>>,
    /// In-op backpressure rung (monotone within one op; reset by start_op).
    bp_rung: BpLevel,
    tele: CachePadded<HandleTelemetry>,
}

impl Smr for Leaky {
    type Handle = LeakyHandle;

    fn try_new(cfg: Config) -> Result<Arc<Self>, SmrError> {
        cfg.validate()?;
        Ok(Arc::new(Leaky {
            registry: Registry::new(cfg.max_threads),
            bp_policy: BackpressurePolicy::from_config(&cfg),
            max_threads: cfg.max_threads,
            tele: SchemeTelemetry::new(),
        }))
    }

    fn try_register(self: &Arc<Self>) -> Result<LeakyHandle, SmrError> {
        let lease = self
            .registry
            .try_acquire()
            .ok_or(SmrError::RegistryExhausted { max_threads: self.max_threads })?;
        let mut tele = HandleTelemetry::new(lease.tid);
        if lease.recycled {
            tele.record_tid_recycle();
        }
        Ok(LeakyHandle {
            scheme: self.clone(),
            tid: lease.tid,
            retired: CachePadded::new(Vec::new()),
            bp_rung: BpLevel::Normal,
            tele: CachePadded::new(tele),
        })
    }

    fn name() -> &'static str {
        "Leaky"
    }

    fn telemetry(&self) -> &SchemeTelemetry {
        &self.tele
    }

    fn backpressure_policy(&self) -> &BackpressurePolicy {
        &self.bp_policy
    }
}

impl Telemetry for LeakyHandle {
    fn tele(&self) -> &HandleTelemetry {
        &self.tele
    }

    fn tele_mut(&mut self) -> &mut HandleTelemetry {
        &mut self.tele
    }
}

impl Drop for Leaky {
    fn drop(&mut self) {
        // SAFETY: [INV-06] teardown: every handle holds an `Arc` to the
        // scheme, so `&mut self` here proves no handle exists and orphaned
        // retired lists can no longer be protected by anyone.
        unsafe { self.registry.reclaim_orphans() };
    }
}

impl SmrHandle for LeakyHandle {
    fn start_op(&mut self) {
        // Oracle context only: Leaky never reclaims, so no bound applies —
        // but its allocations and retires are still lifecycle-tracked.
        #[cfg(feature = "oracle")]
        crate::oracle::enter_scheme("Leaky");
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_start_op(crate::hb::HbPolicy::EPOCH);
        self.bp_rung = BpLevel::Normal;
        let retired_len = self.retired.len();
        self.tele.record_op_start(retired_len);
    }

    fn end_op(&mut self) {
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_end_op();
    }

    #[inline]
    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, _refno: usize) -> Shared<T> {
        src.load(Ordering::Acquire)
    }

    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T> {
        self.alloc_with_index(data, 0)
    }

    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T> {
        backpressure::before_alloc(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            &mut self.bp_rung,
            &mut self.tele,
        );
        self.tele.record_alloc();
        let ptr = crate::node::alloc_node_in(data, index, 0, &mut self.tele);
        // SAFETY: [INV-02] `ptr` was just returned by the node allocator.
        unsafe { Shared::from_owned(ptr) }
    }

    // SAFETY: [INV-11] trait contract: the caller retires a removed node
    // exactly once (the winning unlink CAS is at the call site).
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>) {
        self.tele.record_retire(node.addr());
        // SAFETY: [INV-04] forwarded from this fn's own contract.
        let r = unsafe { Retired::new(node.as_raw(), 0) };
        self.scheme.tele.pending.add(1, r.bytes() as usize);
        self.retired.push(r);
        // Leaky has no scan, so the help rung cannot free anything — but
        // the ladder still tracks the gauge so the throttle rung (and the
        // engagement telemetry) work, keeping the no-reclamation baseline
        // honest about its memory pressure.
        let _ = backpressure::after_retire(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            self.scheme.tele.pending_bytes(),
            &mut self.bp_rung,
            &mut self.tele,
        );
    }

    fn retired_len(&self) -> usize {
        self.retired.len()
    }

    fn force_empty(&mut self) {
        // Leaky never reclaims.
        self.tele.record_empty();
    }
}

impl Drop for LeakyHandle {
    fn drop(&mut self) {
        self.scheme.registry.release(self.tid, std::mem::take(&mut *self.retired));
        mp_util::pool::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaky_never_reclaims_until_scheme_drop() {
        let smr = Leaky::new(Config::default().with_max_threads(1));
        let mut h = smr.register();
        h.start_op();
        let n = h.alloc(7u32);
        unsafe { h.retire(n) }; // SAFETY: [INV-12] test-owned, retired once.
        h.force_empty();
        h.end_op();
        assert_eq!(h.retired_len(), 1, "leaky keeps everything");
        assert_eq!(smr.retired_pending(), 1);
        drop(h);
        assert_eq!(smr.registry.orphan_count(), 1, "node parked as orphan on handle drop");
        // Scheme drop reclaims orphans; exact gauge equality is asserted by
        // the single-process `leak_check` integration test.
    }

    #[test]
    fn read_is_plain_load() {
        let smr = Leaky::new(Config::default().with_max_threads(1));
        let mut h = smr.register();
        h.start_op();
        let n = h.alloc(99u64);
        let cell = Atomic::new(n);
        let r = h.read(&cell, 0);
        assert_eq!(r, n);
        assert_eq!(h.stats().fences, 0, "no protection fences");
        // SAFETY: [INV-12] leaky never reclaims; the node is live.
        assert_eq!(unsafe { *r.deref().data() }, 99);
        h.end_op();
        unsafe { h.retire(n) }; // SAFETY: [INV-12] test-owned, retired once.
    }
}
