//! The SMR schemes evaluated in the paper.
//!
//! | Scheme | Paper §| Wasted memory | Protection granularity |
//! |--------|--------|---------------|------------------------|
//! | [`Mp`] | §4 | **Predetermined bound** | logical key intervals (margins) |
//! | [`Hp`] | §3.1 | Predetermined bound | physical node per dereference |
//! | [`Ebr`] | §3.2 | Unbounded (not robust) | whole operations |
//! | [`He`] | §3.3 | Robust, unbounded | era per dereference |
//! | [`Ibr`] | §3.3 | Robust, unbounded | epoch interval per operation |
//! | [`Dta`] | §3.1 | Robust† | anchor every k hops (lists only) |
//! | [`Leaky`] | — | Everything | none (never reclaims) |
//!
//! † frozen-node memory can grow arbitrarily; see §3.1.

pub(crate) mod common;

mod dta;
mod ebr;
mod he;
mod hp;
mod ibr;
mod leaky;
mod mp;

pub use dta::{Dta, DtaHandle, Freezer};
pub use ebr::{Ebr, EbrHandle};
pub use he::{He, HeHandle};
pub use hp::{Hp, HpHandle};
pub use ibr::{Ibr, IbrHandle};
pub use leaky::{Leaky, LeakyHandle};
pub use mp::{Mp, MpHandle};

// Exposed for the hb-oracle's seqlock adoption tests (tests/hb_oracle.rs),
// which drive the shared-snapshot publish/adopt protocol — including the
// seeded fence-dropped publish — directly. Not part of the public API.
#[cfg(feature = "hb-oracle")]
#[doc(hidden)]
pub use common::SharedSnapshot;
