//! Margin pointers — the paper's contribution (§4, Listing 10).
//!
//! MP is pointer-based reclamation where each protection slot announces a
//! *logical key interval* instead of a physical node: a margin pointer with
//! value `i` protects every node whose 32-bit index lies within
//! `margin / 2` of `i`. Because node indices approximate physical proximity
//! (they are assigned as midpoints of the insertion-time search interval,
//! §4.1), one announcement + one fence typically covers a long stretch of a
//! traversal — HP's safety at a fraction of its fence cost.
//!
//! Three mechanisms make the scheme practical (§4.3):
//!
//! 1. **Pointer packing** — pointers carry the pointee's index high bits, so
//!    protection can be checked without dereferencing ([`crate::packed`]).
//! 2. **`USE_HP` fallback** — when a new node's search interval leaves no
//!    room for a fresh index ( |upper − lower| ≤ 1 ), the node is stamped
//!    `USE_HP` and protected with an ordinary hazard pointer. This keeps the
//!    indices of all MP-protected *linked* nodes unique.
//! 3. **Epoch filter** — retired nodes may still collide (same position
//!    re-inserted/re-deleted repeatedly). An HE-style birth/retire epoch
//!    filter, with the epoch advanced every `epoch_freq` unlinks, caps how
//!    many same-index retired nodes one margin can pin (Theorem 4.2).
//!
//! The resulting wasted-memory bound per thread is
//! `#HP + #MP·margin + #MP·margin·epoch_freq·T` — *predetermined*, unlike
//! the robust-but-unbounded HE/IBR.
//!
//! ## Deviations from Listing 10 (documented in DESIGN.md)
//!
//! * The margin-hit fast path re-checks the global epoch (one shared load,
//!   no fence). Without it, a node born *after* the thread's announced
//!   epoch could be returned under margin protection yet be invisible to
//!   the reclaimer's epoch filter — a use-after-free window. With the
//!   check, observing an epoch change switches the operation to hazard
//!   pointers, exactly the fallback §4.3.2 prescribes for the slow path.
//! * `empty()` treats the entire top-64K index range as the `USE_HP` class
//!   (the packed 16 bits cannot distinguish it) and checks *both* HP and MP
//!   slots for every candidate, which is strictly conservative.

use std::sync::Arc;

use core::sync::atomic::{AtomicU64, Ordering};

use mp_util::CachePadded;

use crate::api::{Config, Smr, SmrHandle};
use crate::node::{is_use_hp_class, Retired, USE_HP};
use crate::packed::{Atomic, Shared};
use crate::registry::{Registry, SlotArray};
use crate::schemes::common::{counted_fence, INACTIVE, NO_HAZARD, NO_MARGIN};
use crate::telemetry::{self, HandleTelemetry, SchemeTelemetry, Telemetry};

/// Margin-pointers SMR scheme (shared state).
pub struct Mp {
    /// Global epoch, advanced every `epoch_freq` unlinks per thread (§4.3.2).
    global_epoch: AtomicU64,
    /// Margin announcement slots (32-bit index midpoints; `NO_MARGIN` idle).
    mp_slots: SlotArray,
    /// Hazard fallback slots (node addresses; `NO_HAZARD` idle).
    hp_slots: SlotArray,
    /// Per-thread announced start-of-operation epochs (`INACTIVE` idle).
    local_epochs: SlotArray,
    registry: Registry,
    cfg: Config,
    tele: SchemeTelemetry,
}

/// Per-thread handle for [`Mp`].
pub struct MpHandle {
    scheme: Arc<Mp>,
    tid: usize,
    /// Local mirrors of this thread's announced slots.
    local_mps: Vec<u64>,
    local_hps: Vec<u64>,
    /// Search-interval endpoints maintained by the client's insert
    /// (Listing 5); consumed by [`SmrHandle::alloc`].
    lower_bound: u32,
    upper_bound: u32,
    /// Epoch announced at `start_op`.
    epoch: u64,
    /// Cached `margin / 2` (avoids chasing the config on every read).
    margin_half: i64,
    /// Set when the thread observes the epoch advancing mid-operation;
    /// all subsequent reads protect with HPs (old margins remain valid).
    use_hp_mode: bool,
    /// Retired-list head and stats are cache-padded so two handles adjacent
    /// in memory never false-share their hottest mutable state (same
    /// treatment `registry.rs::SlotArray` gives slot rows).
    retired: CachePadded<Vec<Retired>>,
    /// Retained swap buffer for `empty()`: the drain source on one scan is
    /// the keep destination on the next, so steady-state scans never
    /// allocate.
    scan_scratch: Vec<Retired>,
    /// Retained per-thread slot snapshots (`ThreadSnap` interval/hazard
    /// buffers), refilled in place by every scan.
    snaps: Vec<ThreadSnap>,
    retire_counter: usize,
    unlink_counter: usize,
    tele: CachePadded<HandleTelemetry>,
}

impl Smr for Mp {
    type Handle = MpHandle;

    fn new(cfg: Config) -> Arc<Self> {
        cfg.validate().expect("invalid SMR Config");
        Arc::new(Mp {
            global_epoch: AtomicU64::new(1),
            mp_slots: SlotArray::new(cfg.max_threads, cfg.slots_per_thread, NO_MARGIN),
            hp_slots: SlotArray::new(cfg.max_threads, cfg.slots_per_thread, NO_HAZARD),
            local_epochs: SlotArray::new(cfg.max_threads, 1, INACTIVE),
            registry: Registry::new(cfg.max_threads),
            cfg,
            tele: SchemeTelemetry::new(),
        })
    }

    fn register(self: &Arc<Self>) -> MpHandle {
        let tid = self.registry.acquire();
        MpHandle {
            scheme: self.clone(),
            tid,
            local_mps: vec![NO_MARGIN; self.cfg.slots_per_thread],
            local_hps: vec![NO_HAZARD; self.cfg.slots_per_thread],
            lower_bound: 0,
            upper_bound: 0,
            epoch: 0,
            margin_half: (self.cfg.margin / 2) as i64,
            use_hp_mode: false,
            retired: CachePadded::new(Vec::new()),
            scan_scratch: Vec::new(),
            snaps: Vec::new(),
            retire_counter: 0,
            unlink_counter: 0,
            tele: CachePadded::new(HandleTelemetry::new(tid)),
        }
    }

    fn name() -> &'static str {
        "MP"
    }

    fn telemetry(&self) -> &SchemeTelemetry {
        &self.tele
    }
}

impl Telemetry for MpHandle {
    fn tele(&self) -> &HandleTelemetry {
        &self.tele
    }

    fn tele_mut(&mut self) -> &mut HandleTelemetry {
        &mut self.tele
    }
}

impl Drop for Mp {
    fn drop(&mut self) {
        // SAFETY: [INV-06] teardown: every handle holds an `Arc` to the
        // scheme, so `&mut self` here proves no handle exists and orphaned
        // retired lists can no longer be protected by anyone.
        unsafe { self.registry.reclaim_orphans() };
    }
}

/// One thread's protection state, snapshotted by `empty()` (the paper's
/// snapshot optimization, §6), with the margins preprocessed into a
/// stabbing structure (the "interval tree" optimization §4.3 suggests):
/// intervals sorted by start with a running maximum of ends, so an
/// intersection query is one binary search instead of a slot scan.
/// The buffers live in the *handle* (`MpHandle::snaps`) and are refilled in
/// place by [`Mp::snapshot_into`], so steady-state scans reuse their
/// capacity instead of allocating.
#[derive(Default)]
struct ThreadSnap {
    epoch: u64,
    /// Margin intervals `(lo, hi)` sorted by `lo`.
    intervals: Vec<(i64, i64)>,
    /// `prefix_max_hi[i] = max(intervals[..=i].hi)`.
    prefix_max_hi: Vec<i64>,
    /// Announced hazard addresses, sorted.
    hps: Vec<u64>,
}

impl ThreadSnap {
    /// True if some margin interval of this thread intersects `[lo, hi]`.
    fn covers(&self, lo: i64, hi: i64) -> bool {
        // Candidates: intervals starting at or before `hi`; among them the
        // largest end decides.
        let n = self.intervals.partition_point(|&(s, _)| s <= hi);
        n > 0 && self.prefix_max_hi[n - 1] >= lo
    }

    /// True if `addr` is hazard-announced by this thread.
    fn hazards(&self, addr: u64) -> bool {
        self.hps.binary_search(&addr).is_ok()
    }
}

impl Mp {
    /// Refills `snaps` (one entry per registered thread) in place; after
    /// warm-up every buffer reuses its retained capacity.
    fn snapshot_into(&self, snaps: &mut Vec<ThreadSnap>) {
        let half = (self.cfg.margin / 2) as i64;
        snaps.resize_with(self.cfg.max_threads, ThreadSnap::default);
        for (tid, snap) in snaps.iter_mut().enumerate() {
            snap.intervals.clear();
            snap.intervals.extend(
                self.mp_slots
                    .row(tid)
                    .iter()
                    .map(|s| s.load(Ordering::Acquire))
                    .filter(|&v| v != NO_MARGIN)
                    .map(|mp| (mp as i64 - half, mp as i64 + half)),
            );
            snap.intervals.sort_unstable();
            snap.prefix_max_hi.clear();
            let mut running = i64::MIN;
            for &(_, hi) in &snap.intervals {
                running = running.max(hi);
                snap.prefix_max_hi.push(running);
            }
            snap.hps.clear();
            snap.hps.extend(
                self.hp_slots
                    .row(tid)
                    .iter()
                    .map(|s| s.load(Ordering::Acquire))
                    .filter(|&v| v != NO_HAZARD),
            );
            snap.hps.sort_unstable();
            snap.epoch = self.local_epochs.get(tid, 0).load(Ordering::Acquire);
        }
    }
}

/// The *pointer-precision range* of `index`: due to the 16-bit packing
/// loss, protection must be judged against the full
/// `[index & !0xffff, index | 0xffff]` block (Listing 10, note 7).
fn precision_range(index: u32) -> (i64, i64) {
    ((index & 0xffff_0000) as i64, (index | 0xffff) as i64)
}

impl MpHandle {
    /// Combined capacity of every scan buffer; growth across one `empty()`
    /// means the scan had to touch the heap (counted in `scan_heap_allocs`,
    /// zero in steady state).
    fn scan_caps(&self) -> usize {
        self.retired.capacity()
            + self.scan_scratch.capacity()
            + self.snaps.capacity()
            + self
                .snaps
                .iter()
                .map(|s| s.intervals.capacity() + s.prefix_max_hi.capacity() + s.hps.capacity())
                .sum::<usize>()
    }

    /// Reclamation pass (Listing 10 `empty`), with the slot-snapshot
    /// optimization. Allocation-free in steady state: the slot snapshots
    /// refill handle-owned buffers, and the retired list is swapped through
    /// the retained `scan_scratch` instead of draining into a fresh `Vec`.
    fn empty(&mut self) {
        self.tele.record_empty();
        let scan_t0 = telemetry::timer();
        let caps_before = self.scan_caps();
        core::sync::atomic::fence(Ordering::SeqCst);
        let naive = self.scheme.cfg.ablation_naive_scan;
        if !naive {
            self.scheme.snapshot_into(&mut self.snaps);
        }
        // Swap the retired list through the scratch: `pending` (last scan's
        // scratch) becomes the drain source, the emptied `self.retired`
        // collects the keepers, and the drained Vec is retained for next
        // time. `mem::take` leaves a capacity-0 Vec, so no allocation.
        let mut pending = std::mem::take(&mut self.scan_scratch);
        debug_assert!(pending.is_empty());
        std::mem::swap(&mut pending, &mut *self.retired);
        let before = pending.len();
        'next_node: for r in pending.drain(..) {
            // Ablation: without the snapshot optimization, the live slot
            // arrays are re-read for every retired node.
            if naive {
                self.scheme.snapshot_into(&mut self.snaps);
            }
            let (range_lo, range_hi) = precision_range(r.index);
            for snap in &self.snaps {
                // Hazard check: UNCONDITIONAL. Listing 10 epoch-filters the
                // hazard slots too, but a thread that observed the epoch
                // advancing protects *newer-born* nodes with HPs (the
                // §4.3.2 fallback) precisely while its announced epoch
                // predates their birth — epoch-filtering hazards would
                // reclaim under those protections (caught by
                // tests/mp_depth.rs). Address protection is epoch-free and
                // the waste bound's #HP term is unaffected.
                if snap.hazards(r.addr()) {
                    self.retired.push(r);
                    continue 'next_node;
                }
                // Epoch filter applies to margins only: a thread whose
                // announced epoch lies outside the node's lifetime cannot
                // have (validly) margin-protected it — Theorem 4.2's key
                // step, bounding same-index retiree pileups.
                if snap.epoch < r.birth || snap.epoch > r.retire {
                    continue;
                }
                if !is_use_hp_class(r.index) && snap.covers(range_lo, range_hi) {
                    self.retired.push(r);
                    continue 'next_node;
                }
            }
            self.tele.record_free(r.addr());
            // SAFETY: [INV-05] the scan above found no HP holding the
            // address and no margin (of a thread whose epoch admits the
            // node's lifetime) covering its index, so no thread can have
            // validated protection for it (Theorem 4.3).
            unsafe { r.reclaim() };
        }
        self.scan_scratch = pending;
        let freed = before - self.retired.len();
        self.scheme.tele.pending.sub(freed);
        if self.scan_caps() > caps_before {
            self.tele.record_scan_heap_alloc();
        }
        self.tele.record_scan_elapsed(scan_t0);
        // Oracle: Theorem 4.2's predetermined bound. Each kept node is held
        // by a hazard (≤ T·H in total) or by a margin of a thread whose
        // epoch admits its lifetime; a margin spans at most margin + 2^16
        // indices (precision slack) and each index piles up at most F·T
        // same-epoch retirees per epoch window. Astronomically loose, but
        // predetermined — a scan bug that keeps everything still trips it.
        #[cfg(feature = "oracle")]
        {
            let cfg = &self.scheme.cfg;
            let t = cfg.max_threads as u128;
            let h = cfg.slots_per_thread as u128;
            let m = cfg.margin as u128 + (1 << 16);
            let f = cfg.epoch_freq as u128;
            crate::oracle::check_waste_bound("MP", self.retired.len(), t * h + t * h * m * f * t);
        }
    }

    /// Hazard-pointer protection of `w`'s target, with validation.
    /// Returns the validated word or `None` if `src` changed.
    fn hp_protect<T: Send + Sync>(
        &mut self,
        src: &Atomic<T>,
        refno: usize,
        w: Shared<T>,
    ) -> Option<Shared<T>> {
        let addr = w.addr();
        if self.local_hps[refno] == addr {
            return Some(w); // already protected by this slot
        }
        self.scheme.hp_slots.get(self.tid, refno).store(addr, Ordering::Release);
        self.local_hps[refno] = addr;
        counted_fence(&mut self.tele);
        if src.load(Ordering::Acquire) == w {
            Some(w)
        } else {
            None
        }
    }
}

impl SmrHandle for MpHandle {
    fn start_op(&mut self) {
        #[cfg(feature = "oracle")]
        crate::oracle::enter_scheme("MP");
        let retired_len = self.retired.len();
        self.tele.record_op_start(retired_len);
        self.epoch = self.scheme.global_epoch.load(Ordering::SeqCst);
        self.scheme.local_epochs.get(self.tid, 0).store(self.epoch, Ordering::Release);
        self.lower_bound = 0;
        self.upper_bound = 0;
        self.use_hp_mode = false;
        // Announcement must be visible before any data-structure read
        // (Listing 10 start_op's memory_fence).
        counted_fence(&mut self.tele);
    }

    fn end_op(&mut self) {
        if self.scheme.cfg.ablation_per_slot_fence {
            // Unoptimized baseline: fence after clearing each slot.
            for i in 0..self.local_mps.len() {
                self.scheme.mp_slots.get(self.tid, i).store(NO_MARGIN, Ordering::Release);
                counted_fence(&mut self.tele);
                self.scheme.hp_slots.get(self.tid, i).store(NO_HAZARD, Ordering::Release);
                counted_fence(&mut self.tele);
            }
            self.scheme.local_epochs.get(self.tid, 0).store(INACTIVE, Ordering::Release);
            self.local_mps.fill(NO_MARGIN);
            self.local_hps.fill(NO_HAZARD);
            counted_fence(&mut self.tele);
            return;
        }
        // Clear margins + hazards + epoch, then a single fence (§6 opt).
        self.scheme.mp_slots.clear_row(self.tid, Ordering::Release);
        self.scheme.hp_slots.clear_row(self.tid, Ordering::Release);
        self.scheme.local_epochs.get(self.tid, 0).store(INACTIVE, Ordering::Release);
        self.local_mps.fill(NO_MARGIN);
        self.local_hps.fill(NO_HAZARD);
        counted_fence(&mut self.tele);
    }

    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, refno: usize) -> Shared<T> {
        let mut backoff = mp_util::Backoff::new();
        loop {
            let w = src.load(Ordering::Acquire);
            if w.is_null() {
                return w;
            }
            let (idx_lo, idx_hi) = w.index_bounds();

            // Collision / USE_HP-class / fallback-mode reads go through HP
            // (§4.3.2).
            if idx_hi == USE_HP || self.use_hp_mode {
                self.tele.record_hp_fallback(w.addr());
                match self.hp_protect(src, refno, w) {
                    Some(w) => return w,
                    None => {
                        // Validation raced a writer; back off before the
                        // next announce + fence.
                        backoff.spin();
                        continue;
                    }
                }
            }

            // Margin fast path: index range already covered by this refno's
            // announced margin?
            let mp = self.local_mps[refno];
            if mp != NO_MARGIN {
                let half = self.margin_half;
                if mp as i64 - half <= idx_lo as i64 && (idx_hi as i64) <= mp as i64 + half {
                    // Deviation from Listing 10 (see module docs): ensure the
                    // epoch did not advance, else a node born after our
                    // announced epoch could slip past the reclaimer's filter.
                    if self.scheme.global_epoch.load(Ordering::SeqCst) == self.epoch {
                        return w;
                    }
                    self.use_hp_mode = true;
                    continue;
                }
            }

            // Already protected by this refno's hazard slot?
            if self.local_hps[refno] != NO_HAZARD && self.local_hps[refno] == w.addr() {
                return w;
            }

            // Announce a fresh margin around the node's index midpoint.
            let mid = (idx_lo + (1u32 << 15)) as u64;
            self.scheme.mp_slots.get(self.tid, refno).store(mid, Ordering::Release);
            self.local_mps[refno] = mid;
            counted_fence(&mut self.tele);
            // Validate the node is still reachable from `src`: the margin
            // was announced while the node was linked.
            if src.load(Ordering::Acquire) == w {
                // Listing 10: ensure the epoch did not advance; if it did,
                // fall back to HPs for the rest of the operation (old
                // margins remain announced and valid).
                if self.scheme.global_epoch.load(Ordering::SeqCst) != self.epoch {
                    self.use_hp_mode = true;
                    continue;
                }
                return w;
            }
            // Margin validation raced a writer on `src`; back off.
            backoff.spin();
        }
    }

    fn unprotect(&mut self, _refno: usize) {
        // No-op (§4.3 "Node Unprotection"): margins keep protecting
        // future-accessed nodes; slots are cleared wholesale at end_op.
    }

    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T> {
        // Listing 10 alloc: midpoint of the search interval, or USE_HP when
        // the interval has no room (index collision, §4.3.2).
        let lo = self.lower_bound.min(self.upper_bound);
        let hi = self.lower_bound.max(self.upper_bound);
        let index = if hi - lo <= 1 {
            self.tele.record_collision_alloc(lo);
            USE_HP
        } else {
            match self.scheme.cfg.index_policy {
                crate::api::IndexPolicy::Midpoint => lo + (hi - lo) / 2,
                crate::api::IndexPolicy::AfterPred => lo + 1,
            }
        };
        self.alloc_with_index(data, index)
    }

    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T> {
        self.tele.record_alloc();
        let birth = self.scheme.global_epoch.load(Ordering::SeqCst);
        let ptr = crate::node::alloc_node_in(data, index, birth, &mut self.tele);
        // SAFETY: [INV-02] `ptr` was just returned by the node allocator.
        unsafe { Shared::from_owned(ptr) }
    }

    // SAFETY: [INV-11] trait contract: the caller retires a removed node
    // exactly once (the winning unlink CAS is at the call site).
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>) {
        self.tele.record_retire(node.addr());
        self.scheme.tele.pending.add(1);
        let stamp = self.scheme.global_epoch.load(Ordering::SeqCst);
        // SAFETY: [INV-04] forwarded from this fn's own contract.
        self.retired.push(unsafe { Retired::new(node.as_raw(), stamp) });
        self.unlink_counter += 1;
        // §4.3.2: each thread increments the global epoch once every
        // `epoch_freq` node unlinks — the F of Theorem 4.2's bound.
        if self.unlink_counter.is_multiple_of(self.scheme.cfg.epoch_freq) {
            let e = self.scheme.global_epoch.fetch_add(1, Ordering::SeqCst) + 1;
            self.tele.record_epoch_advance(e);
        }
        self.retire_counter += 1;
        if self.retire_counter.is_multiple_of(self.scheme.cfg.empty_freq) {
            self.empty();
        }
    }

    // PROTECTION: caller — the client passes a node it protected during the
    // current operation (Listing 5 reads n->index under that span).
    fn update_lower_bound<T: Send + Sync>(&mut self, node: Shared<T>) {
        // SAFETY: [INV-01] deref dominated by the caller's protected read.
        let idx = unsafe { node.deref() }.index();
        self.lower_bound = idx;
    }

    // PROTECTION: caller — same contract as `update_lower_bound`.
    fn update_upper_bound<T: Send + Sync>(&mut self, node: Shared<T>) {
        // SAFETY: [INV-01] deref dominated by the caller's protected read.
        let idx = unsafe { node.deref() }.index();
        self.upper_bound = idx;
    }

    fn retired_len(&self) -> usize {
        self.retired.len()
    }

    fn force_empty(&mut self) {
        self.empty();
    }
}

impl Drop for MpHandle {
    fn drop(&mut self) {
        self.scheme.mp_slots.clear_row(self.tid, Ordering::Release);
        self.scheme.hp_slots.clear_row(self.tid, Ordering::Release);
        self.scheme.local_epochs.get(self.tid, 0).store(INACTIVE, Ordering::Release);
        self.scheme.registry.release(self.tid, std::mem::take(&mut *self.retired));
        // Hand this thread's cached pool blocks to the global shard so a
        // short-lived worker doesn't strand recycled memory.
        mp_util::pool::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(threads: usize) -> Arc<Mp> {
        Mp::new(
            Config::default()
                .with_max_threads(threads)
                .with_empty_freq(1)
                .with_epoch_freq(1000), // avoid mid-test epoch churn unless wanted
        )
    }

    /// Builds a node with a given index, linked into a cell.
    fn cell_with<T: Send + Sync>(h: &mut MpHandle, data: T, index: u32) -> (Atomic<T>, Shared<T>) {
        let n = h.alloc_with_index(data, index);
        (Atomic::new(n), n)
    }

    #[test]
    fn midpoint_index_assignment() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let (c_lo, lo) = cell_with(&mut h, 0u32, 1000);
        let (c_hi, hi) = cell_with(&mut h, 0u32, 3000);
        let lo_r = h.read(&c_lo, 0);
        let hi_r = h.read(&c_hi, 1);
        h.update_lower_bound(lo_r);
        h.update_upper_bound(hi_r);
        let n = h.alloc(7u32);
        // SAFETY: [INV-12] node protected by this test's open span.
        assert_eq!(unsafe { n.deref() }.index(), 2000, "midpoint of (1000,3000)");
        h.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            h.retire(n);
            h.retire(lo);
            h.retire(hi);
        }
        let _ = (c_lo, c_hi);
    }

    #[test]
    fn exhausted_interval_yields_use_hp() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let (c_lo, lo) = cell_with(&mut h, 0u32, 41);
        let (c_hi, hi) = cell_with(&mut h, 0u32, 42);
        let lo_r = h.read(&c_lo, 0);
        let hi_r = h.read(&c_hi, 1);
        h.update_lower_bound(lo_r);
        h.update_upper_bound(hi_r);
        let n = h.alloc(1u8);
        // SAFETY: [INV-12] node protected by this test's open span.
        assert_eq!(unsafe { n.deref() }.index(), USE_HP);
        assert_eq!(h.stats().collision_allocs, 1);
        h.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            h.retire(n);
            h.retire(lo);
            h.retire(hi);
        }
    }

    #[test]
    fn margin_protects_nearby_nodes_without_extra_fences() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        // Nodes clustered within one margin (margin default 2^20).
        let cells: Vec<_> =
            (0..8u32).map(|i| cell_with(&mut h, i, 500_000 + (i << 16))).collect();
        let f0 = h.stats().fences;
        let _ = h.read(&cells[0].0, 0);
        let after_first = h.stats().fences;
        assert_eq!(after_first, f0 + 1, "first read announces one margin");
        for (c, _) in &cells[1..] {
            let _ = h.read(c, 0);
        }
        assert_eq!(h.stats().fences, after_first, "margin covers the cluster: no more fences");
        h.end_op();
        for (_, n) in cells {
            unsafe { h.retire(n) }; // SAFETY: [INV-12] test-owned, retired once.
        }
    }

    #[test]
    fn margin_blocks_reclamation_of_covered_node() {
        let smr = setup(2);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let (cell, n) = cell_with(&mut writer, 5u64, 700_000);

        reader.start_op();
        let got = reader.read(&cell, 0);
        assert_eq!(got, n);

        cell.store(Shared::null(), Ordering::Release);
        unsafe { writer.retire(n) }; // SAFETY: [INV-12] unlinked above, retired once.
        writer.force_empty();
        assert_eq!(writer.retired_len(), 1, "margin must pin the covered index");
        // SAFETY: [INV-12] reader's span is still open and pins the node.
        assert_eq!(unsafe { *got.deref().data() }, 5);

        reader.end_op();
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
        writer.end_op();
    }

    #[test]
    fn far_away_nodes_not_pinned_by_margin() {
        let smr = setup(2);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let (cell, near) = cell_with(&mut writer, 0u32, 1 << 24);
        reader.start_op();
        let _ = reader.read(&cell, 0); // margin around 2^24

        // Retire nodes far outside the margin (margin = 2^20).
        for i in 0..50u32 {
            let far = writer.alloc_with_index(i, (1 << 28) + (i << 17));
            unsafe { writer.retire(far) }; // SAFETY: [INV-12] never published, retired once.
        }
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0, "distant indices unprotected");

        cell.store(Shared::null(), Ordering::Release);
        unsafe { writer.retire(near) }; // SAFETY: [INV-12] unlinked above, retired once.
        writer.force_empty();
        assert_eq!(writer.retired_len(), 1, "near node still pinned");
        reader.end_op();
        writer.end_op();
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
    }

    #[test]
    fn use_hp_class_node_protected_via_hazard() {
        let smr = setup(2);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let (cell, n) = cell_with(&mut writer, 9u32, USE_HP);
        reader.start_op();
        let got = reader.read(&cell, 0);
        assert_eq!(got, n);
        assert!(reader.stats().hp_fallback_reads >= 1, "collision path must use HP");

        cell.store(Shared::null(), Ordering::Release);
        unsafe { writer.retire(n) }; // SAFETY: [INV-12] unlinked above, retired once.
        writer.force_empty();
        assert_eq!(writer.retired_len(), 1, "hazard pins the collision node");
        // SAFETY: [INV-12] reader's hazard span is still open and pins the node.
        assert_eq!(unsafe { *got.deref().data() }, 9);

        reader.end_op();
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
        writer.end_op();
    }

    #[test]
    fn epoch_advance_mid_op_switches_to_hp() {
        let cfg = Config::default().with_max_threads(2).with_empty_freq(1000).with_epoch_freq(1);
        let smr = Mp::new(cfg);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let (c1, n1) = cell_with(&mut writer, 1u32, 100_000);
        let (c2, n2) = cell_with(&mut writer, 2u32, 110_000);

        reader.start_op();
        let _ = reader.read(&c1, 0); // margin announced at epoch e

        // Writer unlinks something unrelated → epoch advances (freq 1).
        let junk = writer.alloc_with_index(0u8, 1);
        unsafe { writer.retire(junk) }; // SAFETY: [INV-12] never published, retired once.

        // Reader's next read observes the change and must take the HP path.
        let before = reader.stats().hp_fallback_reads;
        let _ = reader.read(&c2, 1);
        assert!(reader.use_hp_mode, "epoch change must flip the fallback flag");
        let _ = reader.read(&c1, 0);
        assert!(reader.stats().hp_fallback_reads > before);

        reader.end_op();
        writer.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            writer.retire(n1);
            writer.retire(n2);
        }
        writer.force_empty();
        let _ = (c1, c2);
    }

    #[test]
    fn theorem_4_2_waste_is_bounded_under_stall() {
        // A stalled thread with announced margins + epoch pins at most
        // #HP + #MP·M + #MP·M·F·T nodes; churned nodes born after its epoch
        // must be reclaimed. We churn same-index nodes — the worst case the
        // epoch filter exists for.
        let cfg = Config::default()
            .with_max_threads(2)
            .with_slots_per_thread(2)
            .with_empty_freq(1)
            .with_epoch_freq(10);
        let smr = Mp::new(cfg);
        let mut stalled = smr.register();
        let mut worker = smr.register();

        worker.start_op();
        let (cell, pinned) = cell_with(&mut worker, 0u32, 800_000);
        stalled.start_op();
        let _ = stalled.read(&cell, 0); // margin over 800_000, then stall

        // Churn 5_000 nodes with the *same* index inside the margin.
        for i in 0..5_000u32 {
            let n = worker.alloc_with_index(i, 800_001);
            unsafe { worker.retire(n) }; // SAFETY: [INV-12] never published, retired once.
        }
        // Bound: #HP + #MP·M + #MP·M·F·T is astronomically larger than what
        // we expect in practice; empirically only nodes retired while the
        // stalled epoch admits them stay pinned — a couple of epochs' worth.
        let pinned_count = worker.retired_len();
        assert!(
            pinned_count <= 2 * 10 * 2, // ≈ F·T epochs of same-margin churn
            "stall pinned {pinned_count} nodes; epoch filter failed"
        );

        stalled.end_op();
        cell.store(Shared::null(), Ordering::Release);
        unsafe { worker.retire(pinned) }; // SAFETY: [INV-12] unlinked above, retired once.
        worker.end_op();
        worker.force_empty();
        assert_eq!(worker.retired_len(), 0);
    }

    #[test]
    fn sentinel_indices_allocate_explicitly() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let head = h.alloc_with_index(0u64, 0);
        let tail = h.alloc_with_index(u64::MAX, u32::MAX - 1);
        // SAFETY: [INV-12] both nodes protected by this test's open span.
        assert_eq!(unsafe { head.deref() }.index(), 0);
        // SAFETY: [INV-12] both nodes protected by this test's open span.
        assert_eq!(unsafe { tail.deref() }.index(), u32::MAX - 1);
        h.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            h.retire(head);
            h.retire(tail);
        }
        h.force_empty();
    }
}
