//! Margin pointers — the paper's contribution (§4, Listing 10).
//!
//! MP is pointer-based reclamation where each protection slot announces a
//! *logical key interval* instead of a physical node: a margin pointer with
//! value `i` protects every node whose 32-bit index lies within
//! `margin / 2` of `i`. Because node indices approximate physical proximity
//! (they are assigned as midpoints of the insertion-time search interval,
//! §4.1), one announcement + one fence typically covers a long stretch of a
//! traversal — HP's safety at a fraction of its fence cost.
//!
//! Three mechanisms make the scheme practical (§4.3):
//!
//! 1. **Pointer packing** — pointers carry the pointee's index high bits, so
//!    protection can be checked without dereferencing ([`crate::packed`]).
//! 2. **`USE_HP` fallback** — when a new node's search interval leaves no
//!    room for a fresh index ( |upper − lower| ≤ 1 ), the node is stamped
//!    `USE_HP` and protected with an ordinary hazard pointer. This keeps the
//!    indices of all MP-protected *linked* nodes unique.
//! 3. **Epoch filter** — retired nodes may still collide (same position
//!    re-inserted/re-deleted repeatedly). An HE-style birth/retire epoch
//!    filter, with the epoch advanced every `epoch_freq` unlinks, caps how
//!    many same-index retired nodes one margin can pin (Theorem 4.2).
//!
//! The resulting wasted-memory bound per thread is
//! `#HP + #MP·margin + #MP·margin·epoch_freq·T` — *predetermined*, unlike
//! the robust-but-unbounded HE/IBR.
//!
//! ## Fence amortization (DESIGN.md "Fence amortization")
//!
//! The announcement fence is amortized across hops *and* operations:
//!
//! * **Forward-centered margins** — a fresh margin covers
//!   `[idx_lo, idx_lo + margin]` (midpoint derived from the configured
//!   `margin`, not a hardcoded half-block): traversals visit increasing
//!   indices, so coverage is spent where the traversal is going.
//! * **Cross-refno cover** — a read is fence-free when *any* of the
//!   thread's announced margins covers the precision block, not just the
//!   slot named by `refno`; refno rotation in clients no longer defeats
//!   standing coverage.
//! * **Persistent announcements** — `end_op` releases hazard slots only.
//!   Margins and the announced epoch stay published (HE's lazy-era
//!   discipline): a standing (margin, epoch) pair pins only nodes whose
//!   lifetime contains that epoch — a finite, shrinking set — and the next
//!   operation whose `start_op` sees an unchanged global epoch issues no
//!   fence at all.
//! * **Victim slots + protege re-cover** — reusing a refno parks the
//!   evicted margin in an idle slot, and any node returned earlier in the
//!   operation keeps a covering margin in its own slot; all such moves
//!   happen inside a per-thread seqlock write cycle (`mp_versions`) whose
//!   trailing announce fence publishes the whole batch, so a reclamation
//!   scan can never observe a margin mid-move.
//!
//! ## Deviations from Listing 10 (documented in DESIGN.md)
//!
//! * The margin-hit fast path re-checks the global epoch (one shared
//!   relaxed load, no fence). Without it, a node born *after* the thread's
//!   announced epoch could be returned under margin protection yet be
//!   invisible to the reclaimer's epoch filter — a use-after-free window.
//!   On an observed advance the operation first tries to *re-arm* (one
//!   fresh epoch announcement per op, valid only while the op has returned
//!   no margin-protected node) and only then falls back to hazard pointers,
//!   the §4.3.2 slow path.
//! * `empty()` treats the entire top-64K index range as the `USE_HP` class
//!   (the packed 16 bits cannot distinguish it) and checks *both* HP and MP
//!   slots for every candidate, which is strictly conservative.

use std::sync::Arc;
use std::time::Instant;

use core::sync::atomic::{AtomicU64, Ordering};

use mp_util::CachePadded;

use crate::api::{Config, Smr, SmrHandle};
use crate::backpressure::{self, BackpressurePolicy, BpLevel};
use crate::error::SmrError;
use crate::node::{is_use_hp_class, Retired, USE_HP};
use crate::packed::{Atomic, Shared};
use crate::registry::{Registry, SlotArray};
use crate::schemes::common::{counted_fence, ScanPolicy, ScanState, INACTIVE, NO_HAZARD, NO_MARGIN};
use crate::stats::FenceSite;
use crate::telemetry::{HandleTelemetry, SchemeTelemetry, Telemetry};

/// Sentinel for "this refno returned no margin-protected node this op".
const NO_PROTEGE: u64 = u64::MAX;

/// Scan-side retries for a torn margin-row read before the conservative
/// sticky-cover fallback.
const SNAP_RETRIES: usize = 16;

/// Margin-pointers SMR scheme (shared state).
pub struct Mp {
    /// Global epoch, advanced every `epoch_freq` unlinks per thread (§4.3.2).
    global_epoch: AtomicU64,
    /// Margin announcement slots (32-bit index midpoints; `NO_MARGIN` idle).
    mp_slots: SlotArray,
    /// Hazard fallback slots (node addresses; `NO_HAZARD` idle).
    hp_slots: SlotArray,
    /// Per-thread announced start-of-operation epochs (`INACTIVE` idle).
    local_epochs: SlotArray,
    /// Per-thread seqlock versions over the margin row: odd while the owner
    /// is moving margins between slots fence-free, bumped even when the
    /// cycle completes. Reclamation scans retry on a torn read.
    mp_versions: SlotArray,
    registry: Registry,
    scan_policy: ScanPolicy,
    bp_policy: BackpressurePolicy,
    cfg: Config,
    tele: SchemeTelemetry,
}

/// Per-thread handle for [`Mp`].
pub struct MpHandle {
    scheme: Arc<Mp>,
    tid: usize,
    /// Local mirrors of this thread's announced slots.
    local_mps: Vec<u64>,
    local_hps: Vec<u64>,
    /// Search-interval endpoints maintained by the client's insert
    /// (Listing 5); consumed by [`SmrHandle::alloc`].
    lower_bound: u32,
    upper_bound: u32,
    /// Epoch announced at `start_op` (or by a mid-op re-arm).
    epoch: u64,
    /// Cached `margin / 2` (avoids chasing the config on every read).
    margin_half: i64,
    /// Set when the thread observes the epoch advancing mid-operation and
    /// cannot re-arm; all subsequent reads protect with HPs (old margins
    /// remain valid).
    use_hp_mode: bool,
    /// Local mirror of this thread's `mp_versions` cell.
    version: u64,
    /// Per-refno protege entries, packed as `gen_tag | block_no`: the
    /// precision-block number (`idx_lo >> 16`, low 16 bits) of the last
    /// node returned under margin protection this operation, stamped with
    /// the operation generation (high bits). `0xffff` — the `USE_HP`
    /// class, never a margin protege — marks "cleared this op", and a
    /// stale generation means the entry died with its operation, so
    /// `start_op` invalidates the whole row in O(1) and the hot path
    /// records a protege with a single store. The API contract keeps a
    /// protege's node protected until its refno is reused;
    /// `announce_margin` re-covers any protege its stores would orphan.
    proteges: Vec<u64>,
    /// Slot that covered the previous fast-path hit — consecutive hops of
    /// a traversal almost always stay inside one margin.
    last_cover: usize,
    /// Cached cover interval `[cover_lo, cover_hi]` (inclusive, empty when
    /// `cover_lo > cover_hi`): a subset of one currently announced margin,
    /// capped below the `USE_HP` class, so the hot-path cover check is two
    /// register compares instead of a slot scan. Only `announce_margin` can
    /// destroy announced coverage, and it re-primes the cache before
    /// returning, so the cache never outlives the margin it mirrors.
    cover_lo: u32,
    cover_hi: u32,
    /// Current operation's generation stamp, pre-shifted past the packed
    /// block number (`generation << 16`); bumped by `start_op`.
    gen_tag: u64,
    /// Whether any hazard slot was published this operation — `end_op`'s
    /// O(slots) hazard clear is owed only then (margin-path ops skip it).
    hps_dirty: bool,
    /// Rotating cursor for victim-slot selection on refno reuse.
    victim_next: usize,
    /// Whether this operation already consumed its one epoch re-arm.
    rearmed: bool,
    /// Retired-list head and stats are cache-padded so two handles adjacent
    /// in memory never false-share their hottest mutable state (same
    /// treatment `registry.rs::SlotArray` gives slot rows).
    retired: CachePadded<Vec<Retired>>,
    /// Retained swap buffer for `empty()`: the drain source on one scan is
    /// the keep destination on the next, so steady-state scans never
    /// allocate.
    scan_scratch: Vec<Retired>,
    /// Retained per-thread slot snapshots (`ThreadSnap` interval/hazard
    /// buffers), refilled in place by every scan.
    snaps: Vec<ThreadSnap>,
    scan: ScanState,
    unlink_counter: usize,
    /// In-op backpressure rung (monotone within one op; reset by start_op).
    bp_rung: BpLevel,
    tele: CachePadded<HandleTelemetry>,
}

impl Smr for Mp {
    type Handle = MpHandle;

    fn try_new(cfg: Config) -> Result<Arc<Self>, SmrError> {
        cfg.validate()?;
        Ok(Arc::new(Mp {
            global_epoch: AtomicU64::new(1),
            mp_slots: SlotArray::new(cfg.max_threads, cfg.slots_per_thread, NO_MARGIN),
            hp_slots: SlotArray::new(cfg.max_threads, cfg.slots_per_thread, NO_HAZARD),
            local_epochs: SlotArray::new(cfg.max_threads, 1, INACTIVE),
            mp_versions: SlotArray::new(cfg.max_threads, 1, 0),
            registry: Registry::new(cfg.max_threads),
            scan_policy: ScanPolicy::from_config(&cfg),
            bp_policy: BackpressurePolicy::from_config(&cfg),
            cfg,
            tele: SchemeTelemetry::new(),
        }))
    }

    fn try_register(self: &Arc<Self>) -> Result<MpHandle, SmrError> {
        let lease = self
            .registry
            .try_acquire()
            .ok_or(SmrError::RegistryExhausted { max_threads: self.cfg.max_threads })?;
        let tid = lease.tid;
        let mut tele = HandleTelemetry::new(tid);
        if lease.recycled {
            tele.record_tid_recycle();
        }
        // Adopt parked orphans: churned-out handles leave behind
        // whatever their drain scan could not free; this handle frees
        // them at its next scan instead of letting them pile to teardown.
        let retired = self.registry.adopt_orphans();
        let scan = ScanState::with_backlog(&self.scan_policy, &retired);
        Ok(MpHandle {
            scheme: self.clone(),
            tid,
            local_mps: vec![NO_MARGIN; self.cfg.slots_per_thread],
            local_hps: vec![NO_HAZARD; self.cfg.slots_per_thread],
            lower_bound: 0,
            upper_bound: 0,
            epoch: 0,
            margin_half: (self.cfg.margin / 2) as i64,
            use_hp_mode: false,
            // A reused tid continues the previous owner's (even) version.
            version: self.mp_versions.get(tid, 0).load(Ordering::Acquire),
            // Generation 0 never recurs, so the zeroed entries start dead.
            proteges: vec![0; self.cfg.slots_per_thread],
            last_cover: 0,
            cover_lo: 1,
            cover_hi: 0,
            gen_tag: 1 << 16,
            hps_dirty: false,
            victim_next: 0,
            rearmed: false,
            retired: CachePadded::new(retired),
            scan_scratch: Vec::new(),
            snaps: Vec::new(),
            scan,
            unlink_counter: 0,
            bp_rung: BpLevel::Normal,
            tele: CachePadded::new(tele),
        })
    }

    fn name() -> &'static str {
        "MP"
    }

    fn telemetry(&self) -> &SchemeTelemetry {
        &self.tele
    }

    fn backpressure_policy(&self) -> &BackpressurePolicy {
        &self.bp_policy
    }
}

impl Telemetry for MpHandle {
    fn tele(&self) -> &HandleTelemetry {
        &self.tele
    }

    fn tele_mut(&mut self) -> &mut HandleTelemetry {
        &mut self.tele
    }
}

impl Drop for Mp {
    fn drop(&mut self) {
        // SAFETY: [INV-06] teardown: every handle holds an `Arc` to the
        // scheme, so `&mut self` here proves no handle exists and orphaned
        // retired lists can no longer be protected by anyone.
        unsafe { self.registry.reclaim_orphans() };
    }
}

/// One thread's protection state, snapshotted by `empty()` (the paper's
/// snapshot optimization, §6), with the margins preprocessed into a
/// stabbing structure (the "interval tree" optimization §4.3 suggests):
/// intervals sorted by start with a running maximum of ends, so an
/// intersection query is one binary search instead of a slot scan.
/// The buffers live in the *handle* (`MpHandle::snaps`) and are refilled in
/// place by [`Mp::snapshot_into`], so steady-state scans reuse their
/// capacity instead of allocating.
#[derive(Default)]
struct ThreadSnap {
    epoch: u64,
    /// Margin intervals `(lo, hi)` sorted by `lo`.
    intervals: Vec<(i64, i64)>,
    /// `prefix_max_hi[i] = max(intervals[..=i].hi)`.
    prefix_max_hi: Vec<i64>,
    /// Announced hazard addresses, sorted.
    hps: Vec<u64>,
    /// Set when the margin row could not be read consistently within
    /// [`SNAP_RETRIES`] seqlock attempts: every index is then treated as
    /// covered by this thread. Strictly conservative (over-pins, never
    /// under-protects); the epoch filter still applies.
    sticky_cover: bool,
}

impl ThreadSnap {
    /// True if some margin interval of this thread intersects `[lo, hi]`.
    fn covers(&self, lo: i64, hi: i64) -> bool {
        if self.sticky_cover {
            return true;
        }
        // Candidates: intervals starting at or before `hi`; among them the
        // largest end decides.
        let n = self.intervals.partition_point(|&(s, _)| s <= hi);
        n > 0 && self.prefix_max_hi[n - 1] >= lo
    }

    /// True if `addr` is hazard-announced by this thread.
    fn hazards(&self, addr: u64) -> bool {
        self.hps.binary_search(&addr).is_ok()
    }
}

impl Mp {
    /// Refills `snaps` (one entry per registered thread) in place; after
    /// warm-up every buffer reuses its retained capacity.
    fn snapshot_into(&self, snaps: &mut Vec<ThreadSnap>) {
        let half = (self.cfg.margin / 2) as i64;
        snaps.resize_with(self.cfg.max_threads, ThreadSnap::default);
        for (tid, snap) in snaps.iter_mut().enumerate() {
            let version = self.mp_versions.get(tid, 0);
            let mut tries = 0;
            snap.sticky_cover = loop {
                // Seqlock read: the owner moves margins between slots
                // fence-free inside a write cycle (victim moves, protege
                // re-covers). Accepting the row only when the version is
                // even and unchanged across the reads guarantees — via the
                // release/acquire chain through the version cell — that
                // every store of the last completed cycle is visible, so
                // the scan can never miss a margin that is mid-move.
                let v1 = version.load(Ordering::Acquire);
                snap.intervals.clear();
                snap.intervals.extend(
                    self.mp_slots
                        .row(tid)
                        .iter()
                        .map(|s| s.load(Ordering::Acquire))
                        .filter(|&v| v != NO_MARGIN)
                        .map(|mp| (mp as i64 - half, mp as i64 + half)),
                );
                if version.load(Ordering::Acquire) == v1 && v1.is_multiple_of(2) {
                    break false;
                }
                tries += 1;
                if tries >= SNAP_RETRIES {
                    break true;
                }
            };
            snap.intervals.sort_unstable();
            snap.prefix_max_hi.clear();
            let mut running = i64::MIN;
            for &(_, hi) in &snap.intervals {
                running = running.max(hi);
                snap.prefix_max_hi.push(running);
            }
            snap.hps.clear();
            snap.hps.extend(
                self.hp_slots
                    .row(tid)
                    .iter()
                    .map(|s| s.load(Ordering::Acquire))
                    .filter(|&v| v != NO_HAZARD),
            );
            snap.hps.sort_unstable();
            snap.epoch = self.local_epochs.get(tid, 0).load(Ordering::Acquire);
        }
    }
}

/// The *pointer-precision range* of `index`: due to the 16-bit packing
/// loss, protection must be judged against the full
/// `[index & !0xffff, index | 0xffff]` block (Listing 10, note 7).
fn precision_range(index: u32) -> (i64, i64) {
    ((index & 0xffff_0000) as i64, (index | 0xffff) as i64)
}

/// True when margin midpoint `mp` covers the whole precision block
/// `[idx_lo, idx_hi]` under half-width `half`.
#[inline]
fn covers(mp: u64, half: i64, idx_lo: u32, idx_hi: u32) -> bool {
    mp != NO_MARGIN && mp as i64 - half <= idx_lo as i64 && (idx_hi as i64) <= mp as i64 + half
}

impl MpHandle {
    /// Combined capacity of every scan buffer; growth across one `empty()`
    /// means the scan had to touch the heap (counted in `scan_heap_allocs`,
    /// zero in steady state).
    fn scan_caps(&self) -> usize {
        self.retired.capacity()
            + self.scan_scratch.capacity()
            + self.snaps.capacity()
            + self
                .snaps
                .iter()
                .map(|s| s.intervals.capacity() + s.prefix_max_hi.capacity() + s.hps.capacity())
                .sum::<usize>()
    }

    /// Reclamation pass (Listing 10 `empty`), with the slot-snapshot
    /// optimization. Allocation-free in steady state: the slot snapshots
    /// refill handle-owned buffers, and the retired list is swapped through
    /// the retained `scan_scratch` instead of draining into a fresh `Vec`.
    fn empty(&mut self) {
        self.tele.record_empty();
        let scan_t0 = Instant::now();
        let caps_before = self.scan_caps();
        core::sync::atomic::fence(Ordering::SeqCst);
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_fence_sc();
        let naive = self.scheme.cfg.ablation_naive_scan;
        if !naive {
            self.scheme.snapshot_into(&mut self.snaps);
        }
        // Swap the retired list through the scratch: `pending` (last scan's
        // scratch) becomes the drain source, the emptied `self.retired`
        // collects the keepers, and the drained Vec is retained for next
        // time. `mem::take` leaves a capacity-0 Vec, so no allocation.
        let mut pending = std::mem::take(&mut self.scan_scratch);
        debug_assert!(pending.is_empty());
        std::mem::swap(&mut pending, &mut *self.retired);
        let before = pending.len();
        let mut kept_bytes = 0usize;
        let mut freed_bytes = 0usize;
        'next_node: for r in pending.drain(..) {
            // Ablation: without the snapshot optimization, the live slot
            // arrays are re-read for every retired node.
            if naive {
                self.scheme.snapshot_into(&mut self.snaps);
            }
            let (range_lo, range_hi) = precision_range(r.index);
            for snap in &self.snaps {
                // Hazard check: UNCONDITIONAL. Listing 10 epoch-filters the
                // hazard slots too, but a thread that observed the epoch
                // advancing protects *newer-born* nodes with HPs (the
                // §4.3.2 fallback) precisely while its announced epoch
                // predates their birth — epoch-filtering hazards would
                // reclaim under those protections (caught by
                // tests/mp_depth.rs). Address protection is epoch-free and
                // the waste bound's #HP term is unaffected.
                if snap.hazards(r.addr()) {
                    kept_bytes += r.bytes() as usize;
                    self.retired.push(r);
                    continue 'next_node;
                }
                // Epoch filter applies to margins only: a thread whose
                // announced epoch lies outside the node's lifetime cannot
                // have (validly) margin-protected it — Theorem 4.2's key
                // step, bounding same-index retiree pileups.
                if snap.epoch < r.birth || snap.epoch > r.retire {
                    continue;
                }
                if !is_use_hp_class(r.index) && snap.covers(range_lo, range_hi) {
                    kept_bytes += r.bytes() as usize;
                    self.retired.push(r);
                    continue 'next_node;
                }
            }
            self.tele.record_free(r.addr());
            freed_bytes += r.bytes() as usize;
            // SAFETY: [INV-05] the scan above found no HP holding the
            // address and no margin (of a thread whose epoch admits the
            // node's lifetime) covering its index, so no thread can have
            // validated protection for it (Theorem 4.3).
            unsafe { r.reclaim() };
        }
        self.scan_scratch = pending;
        let freed = before - self.retired.len();
        self.scheme.tele.pending.sub(freed, freed_bytes);
        self.scan.rearm(&self.scheme.scan_policy, self.retired.len(), kept_bytes);
        if self.scan_caps() > caps_before {
            self.tele.record_scan_heap_alloc();
        }
        self.tele.record_scan_elapsed(scan_t0);
        // Oracle: Theorem 4.2's predetermined bound. Each kept node is held
        // by a hazard (≤ T·H in total) or by a margin of a thread whose
        // epoch admits its lifetime; a margin spans at most margin + 2^16
        // indices (precision slack) and each index piles up at most F·T
        // same-epoch retirees per epoch window. Astronomically loose, but
        // predetermined — a scan bug that keeps everything still trips it.
        // Persistent (cross-op) margins do not widen it: the bound already
        // charges every slot of every thread.
        #[cfg(feature = "oracle")]
        {
            let cfg = &self.scheme.cfg;
            let t = cfg.max_threads as u128;
            let h = cfg.slots_per_thread as u128;
            let m = cfg.margin as u128 + (1 << 16);
            let f = cfg.epoch_freq as u128;
            crate::oracle::check_waste_bound("MP", self.retired.len(), t * h + t * h * m * f * t);
        }
    }

    /// Backpressure help-scan: adopt whatever retired lists churned-out
    /// peers parked as orphans, then scan. See [`crate::backpressure`].
    fn help_scan(&mut self) {
        self.tele.record_help_scan();
        let orphans = self.scheme.registry.adopt_orphans();
        self.retired.extend(orphans);
        // The scan's rearm (inside empty) re-baselines the backlog, so no
        // separate bookkeeping is needed for the adopted nodes.
        self.empty();
    }

    /// Hazard-pointer protection of `w`'s target, with validation.
    /// Returns the validated word or `None` if `src` changed.
    fn hp_protect<T: Send + Sync>(
        &mut self,
        src: &Atomic<T>,
        refno: usize,
        w: Shared<T>,
    ) -> Option<Shared<T>> {
        let addr = w.addr();
        if self.local_hps[refno] == addr {
            return Some(w); // already protected by this slot
        }
        self.scheme.hp_slots.get(self.tid, refno).store(addr, Ordering::Release);
        self.local_hps[refno] = addr;
        self.hps_dirty = true;
        counted_fence(&mut self.tele, FenceSite::HpProtect);
        if src.load(Ordering::Acquire) == w {
            Some(w)
        } else {
            None
        }
    }

    /// Precision-block base of the protege slot `k` recorded by the
    /// *current* operation, or `NO_PROTEGE`: entries stamped by earlier
    /// operations are dead — `start_op` retires them all at once by
    /// bumping `gen_tag`.
    #[inline]
    fn protege(&self, k: usize) -> u64 {
        let e = self.proteges[k];
        if e & !0xffff == self.gen_tag && e & 0xffff != 0xffff {
            (e & 0xffff) << 16
        } else {
            NO_PROTEGE
        }
    }

    #[inline]
    fn set_protege(&mut self, k: usize, idx_lo: u32) {
        self.proteges[k] = self.gen_tag | (idx_lo >> 16) as u64;
    }

    #[inline]
    fn clear_protege(&mut self, k: usize) {
        self.proteges[k] = self.gen_tag | 0xffff;
    }

    /// Primes the cover cache with the interval of the announced midpoint
    /// `mid`. The cached bounds saturate *inward* (never widen) and cap
    /// below the `USE_HP` class, so a cache hit simultaneously proves the
    /// precision block is margin-covered and not `USE_HP`-stamped.
    #[inline]
    fn cache_cover(&mut self, mid: u64) {
        let half = self.margin_half as u64;
        self.cover_lo = u32::try_from(mid.saturating_sub(half)).unwrap_or(u32::MAX);
        self.cover_hi = (mid.saturating_add(half)).min(0xfffe_ffff) as u32;
    }

    /// Index of a local slot whose margin covers the precision block
    /// `[idx_lo, idx_hi]`, if any: the refno's own slot first (free when
    /// the client re-reads through one refno), then the slot that covered
    /// the previous hit (consecutive traversal hops share a margin), then
    /// a full scan — the cross-refno cover check that elides
    /// re-announcements when clients rotate refnos per hop.
    #[inline]
    fn covering_slot(&self, refno: usize, idx_lo: u32, idx_hi: u32) -> Option<usize> {
        let half = self.margin_half;
        if covers(self.local_mps[refno], half, idx_lo, idx_hi) {
            return Some(refno);
        }
        let last = self.last_cover;
        if last != refno && covers(self.local_mps[last], half, idx_lo, idx_hi) {
            return Some(last);
        }
        self.local_mps.iter().position(|&v| covers(v, half, idx_lo, idx_hi))
    }

    /// A slot that can absorb an evicted margin: rotates over the row,
    /// skipping the announcing refno and any slot bound to a live protege
    /// (whose own-slot coverage must stay available for re-covering).
    fn pick_victim(&mut self, refno: usize) -> Option<usize> {
        let n = self.local_mps.len();
        for _ in 0..n {
            let v = self.victim_next;
            self.victim_next = (self.victim_next + 1) % n;
            if v != refno && self.protege(v) == NO_PROTEGE {
                return Some(v);
            }
        }
        None
    }

    /// Opens a seqlock write cycle on this thread's margin row (version
    /// goes odd). Only the owning thread stores to its version cell, so a
    /// plain local counter mirrors it — no RMW needed.
    #[inline]
    fn seq_begin(&mut self) {
        self.version = self.version.wrapping_add(1);
        self.scheme.mp_versions.get(self.tid, 0).store(self.version, Ordering::Release);
    }

    /// Closes the seqlock write cycle (version back to even).
    #[inline]
    fn seq_end(&mut self) {
        self.version = self.version.wrapping_add(1);
        self.scheme.mp_versions.get(self.tid, 0).store(self.version, Ordering::Release);
    }

    /// Publishes a margin covering the precision block at `idx_lo` into
    /// `refno`'s slot. Every slot store happens inside one seqlock write
    /// cycle — a concurrent scan either sees the whole completed move or
    /// retries — and the single trailing fence publishes the batch; this
    /// is the only fence the margin path ever issues.
    fn announce_margin(&mut self, refno: usize, idx_lo: u32) {
        let half = self.margin_half;
        // Forward-centered midpoint, derived from the configured margin:
        // the interval is [idx_lo, idx_lo + 2·(margin/2)], and margin >
        // 2^16 (Config validation) keeps the whole precision block inside.
        let mid = idx_lo as u64 + half as u64;
        self.seq_begin();
        // Victim move: refno reuse would evict the slot's standing margin —
        // exactly the coverage amortization accumulates across operations.
        // Park it in an idle slot (none bound to a live protege) so the
        // coverage map survives; the value was fenced when first announced
        // and this cycle's fence re-publishes it before the fast path can
        // rely on its new location.
        let old = self.local_mps[refno];
        if old != NO_MARGIN
            && old != mid
            && !self.local_mps.iter().enumerate().any(|(s, &v)| s != refno && v == old)
        {
            if let Some(v) = self.pick_victim(refno) {
                self.scheme.mp_slots.get(self.tid, v).store(old, Ordering::Release);
                self.local_mps[v] = old;
            }
        }
        self.scheme.mp_slots.get(self.tid, refno).store(mid, Ordering::Release);
        self.local_mps[refno] = mid;
        // Re-cover orphaned proteges: a node returned under margin
        // protection earlier this op must stay covered until its refno is
        // reused (the API contract), but the stores above may have evicted
        // its covering value. A synthesized forward margin in the
        // protege's own slot restores coverage; it is published by this
        // cycle's fence before `read` returns, so the fast path never
        // trusts an unfenced value. Iterate to a fixpoint: a synthesized
        // store can orphan a protege checked earlier in the same pass.
        loop {
            let mut changed = false;
            for k in 0..self.proteges.len() {
                let p = self.protege(k);
                if k == refno || p == NO_PROTEGE {
                    continue;
                }
                let (p_lo, p_hi) = (p as u32, p as u32 | 0xffff);
                if self.covering_slot(k, p_lo, p_hi).is_none() {
                    let pmid = p + half as u64;
                    self.scheme.mp_slots.get(self.tid, k).store(pmid, Ordering::Release);
                    self.local_mps[k] = pmid;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.seq_end();
        counted_fence(&mut self.tele, FenceSite::Announce);
        // The stores above are the only place announced coverage can be
        // destroyed (unparked evictions, victim/protege overwrites), so
        // re-priming here keeps the cover cache a subset of live coverage.
        self.cache_cover(mid);
    }

    /// §4.3.2's fallback trigger, made lazier: when the global epoch
    /// advances before this operation has returned any margin-protected
    /// node, the operation re-announces its epoch (exactly the `start_op`
    /// publication) instead of being condemned to hazard pointers — no
    /// client-held node depends on the old (margin, epoch) pairing yet,
    /// and the fast path's epoch equality keeps enforcing birth ≤ epoch
    /// against the new value. One re-arm per operation: an epoch storm
    /// must not turn the margin path into a fence-per-read loop. The
    /// caller restarts its read loop so the returned node is re-validated
    /// under the new announcement.
    fn try_rearm(&mut self) -> bool {
        // "No margin-dependent node returned yet" is derived from the live
        // proteges rather than a per-read counter the hot path would have
        // to maintain: a protege entry is live exactly while some node
        // returned under margin protection this op is still owed coverage
        // (an HP read or refno reuse retires it). Only consulted on epoch
        // advances, so the O(slots) scan is off the hot path.
        if self.rearmed || (0..self.proteges.len()).any(|k| self.protege(k) != NO_PROTEGE) {
            return false;
        }
        self.rearmed = true;
        self.epoch = self.scheme.global_epoch.load(Ordering::SeqCst);
        self.scheme.local_epochs.get(self.tid, 0).store(self.epoch, Ordering::Release);
        counted_fence(&mut self.tele, FenceSite::StartOp);
        true
    }

    /// Condemns the rest of the operation to hazard-pointer protection
    /// (§4.3.2). Emptying the cover cache is what keeps the inlined read
    /// fast path honest — it no longer tests the mode flag.
    fn enter_hp_mode(&mut self) {
        self.use_hp_mode = true;
        self.cover_lo = 1;
        self.cover_hi = 0;
    }

    /// Slow path of [`SmrHandle::read`]: HP fallback, margin lookup
    /// beyond the cover cache, announcement, and validation. Kept out of
    /// the wrapper so the per-hop fast path stays small enough to inline
    /// into traversal loops.
    #[cold]
    fn read_slow<T: Send + Sync>(&mut self, src: &Atomic<T>, refno: usize) -> Shared<T> {
        let mut backoff = mp_util::Backoff::new();
        loop {
            let w = src.load(Ordering::Acquire);
            if w.is_null() {
                return w;
            }
            let (idx_lo, idx_hi) = w.index_bounds();

            // Collision / USE_HP-class / fallback-mode reads go through HP
            // (§4.3.2).
            if idx_hi == USE_HP || self.use_hp_mode {
                self.tele.record_hp_fallback(w.addr());
                match self.hp_protect(src, refno, w) {
                    Some(w) => {
                        // The hazard slot owns this refno's protection now;
                        // the margin machinery has nothing to preserve.
                        self.clear_protege(refno);
                        #[cfg(feature = "hb-oracle")]
                        crate::hb::on_protect(None, w.addr());
                        return w;
                    }
                    None => {
                        // Validation raced a writer; back off before the
                        // next announce + fence.
                        backoff.spin();
                        continue;
                    }
                }
            }

            // Margin path: fence-free whenever ANY announced margin covers
            // the precision block (the cache above only mirrors one).
            if let Some(slot) = self.covering_slot(refno, idx_lo, idx_hi) {
                // ORDERING: pairs = schemes/mp.rs:announce_margin — same
                // announce-fence/Release-publish pairing argument as the
                // cached-cover fast path above.
                if self.scheme.global_epoch.load(Ordering::Relaxed) == self.epoch {
                    self.last_cover = slot;
                    self.cache_cover(self.local_mps[slot]);
                    self.set_protege(refno, idx_lo);
                    #[cfg(feature = "hb-oracle")]
                    crate::hb::on_protect(None, w.addr());
                    return w;
                }
                // Epoch advanced: re-arm if possible, else §4.3.2 HP mode.
                // Either way restart the loop so the node is re-validated
                // under whatever protection applies next.
                if !self.try_rearm() {
                    self.enter_hp_mode();
                }
                continue;
            }

            // Already protected by this refno's hazard slot?
            if self.local_hps[refno] != NO_HAZARD && self.local_hps[refno] == w.addr() {
                #[cfg(feature = "hb-oracle")]
                crate::hb::on_protect(None, w.addr());
                return w;
            }

            // Announce a margin centered on the traversal direction:
            // indices grow along a traversal (midpoint assignment orders
            // them), so spend the whole interval forward of the block base.
            self.announce_margin(refno, idx_lo);
            // Validate the node is still reachable from `src`: the margin
            // was announced while the node was linked.
            if src.load(Ordering::Acquire) == w {
                // Listing 10: ensure the epoch did not advance across the
                // announcement; a fresh advance can be re-armed once per
                // op (the loop restarts and revalidates), later ones fall
                // back to HPs (§4.3.2).
                if self.scheme.global_epoch.load(Ordering::SeqCst) != self.epoch {
                    if !self.try_rearm() {
                        self.enter_hp_mode();
                    }
                    continue;
                }
                self.set_protege(refno, idx_lo);
                #[cfg(feature = "hb-oracle")]
                crate::hb::on_protect(None, w.addr());
                return w;
            }
            // Margin validation raced a writer on `src`; back off.
            backoff.spin();
        }
    }

    /// Test/model introspection: the index intervals `[lo, hi]` this
    /// thread currently announces. Not part of the SMR API surface.
    #[doc(hidden)]
    pub fn announced_margins(&self) -> Vec<(u64, u64)> {
        let half = self.margin_half as u64;
        self.local_mps
            .iter()
            .filter(|&&v| v != NO_MARGIN)
            .map(|&v| (v.saturating_sub(half), v + half))
            .collect()
    }

    /// Test/model introspection: the epoch this thread has announced.
    #[doc(hidden)]
    pub fn announced_epoch(&self) -> u64 {
        self.epoch
    }

    /// Test/model introspection: whether the current operation has fallen
    /// back to hazard-pointer protection (§4.3.2).
    #[doc(hidden)]
    pub fn in_hp_fallback_mode(&self) -> bool {
        self.use_hp_mode
    }
}

impl SmrHandle for MpHandle {
    fn start_op(&mut self) {
        #[cfg(feature = "oracle")]
        crate::oracle::enter_scheme("MP");
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_start_op(crate::hb::HbPolicy::MP);
        self.bp_rung = BpLevel::Normal;
        let retired_len = self.retired.len();
        self.tele.record_op_start(retired_len);
        self.lower_bound = 0;
        self.upper_bound = 0;
        self.use_hp_mode = false;
        self.rearmed = false;
        // O(1) protege invalidation: a 48-bit generation cannot wrap in
        // practice, so stale stamps never alias the new operation.
        self.gen_tag = self.gen_tag.wrapping_add(1 << 16);
        // Amortized epoch announcement (HE's lazy-era discipline): margins
        // and the announced epoch persist across operations, so the
        // op-start fence is owed only when the global epoch moved since
        // our standing announcement — the announcement currently visible
        // to reclaimers was already published by an earlier fence.
        let e = self.scheme.global_epoch.load(Ordering::SeqCst);
        if e != self.epoch {
            self.epoch = e;
            self.scheme.local_epochs.get(self.tid, 0).store(e, Ordering::Release);
            // Announcement must be visible before any data-structure read
            // (Listing 10 start_op's memory_fence).
            counted_fence(&mut self.tele, FenceSite::StartOp);
        }
    }

    fn end_op(&mut self) {
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_end_op();
        if self.scheme.cfg.ablation_per_slot_fence {
            // Unoptimized baseline: clear everything eagerly, fence after
            // each slot store.
            for i in 0..self.local_mps.len() {
                self.scheme.mp_slots.get(self.tid, i).store(NO_MARGIN, Ordering::Release);
                counted_fence(&mut self.tele, FenceSite::EndOp);
                self.scheme.hp_slots.get(self.tid, i).store(NO_HAZARD, Ordering::Release);
                counted_fence(&mut self.tele, FenceSite::EndOp);
            }
            self.scheme.local_epochs.get(self.tid, 0).store(INACTIVE, Ordering::Release);
            self.local_mps.fill(NO_MARGIN);
            self.local_hps.fill(NO_HAZARD);
            self.hps_dirty = false;
            // The eager clear withdrew every margin; empty the cover cache.
            self.cover_lo = 1;
            self.cover_hi = 0;
            // Invalidate the cached epoch: the next start_op re-announces
            // (the global epoch starts at 1 and never returns to 0).
            self.epoch = 0;
            counted_fence(&mut self.tele, FenceSite::EndOp);
            return;
        }
        // Amortized end: release the hazard slots — address protection
        // must not outlive the operation, since addresses are recycled —
        // but KEEP the margins and the epoch announcement. A standing
        // (margin, epoch) pair pins only nodes whose lifetime contains
        // that epoch, a finite set that only shrinks (HE's lazy-era
        // argument), and the next operation reuses both without a fence.
        // Dropping protection needs no fence: a reclaimer that still sees
        // the stale hazard merely keeps a node one scan longer. The clear
        // itself is owed only when this operation published a hazard —
        // pure margin-path operations end in O(1).
        if self.hps_dirty {
            self.scheme.hp_slots.clear_row(self.tid, Ordering::Release);
            self.local_hps.fill(NO_HAZARD);
            self.hps_dirty = false;
        }
    }

    // Inlined into traversal loops: the steady-state hop costs two
    // compares against the cached cover interval (a subset of a standing
    // margin, capped below the USE_HP class — so a hit also proves the
    // node is neither USE_HP-stamped nor read in HP-fallback mode, which
    // empties the cache) plus the epoch equality check. Everything else
    // lives in the outlined `read_slow`.
    #[inline]
    fn read<T: Send + Sync>(&mut self, src: &Atomic<T>, refno: usize) -> Shared<T> {
        let w = src.load(Ordering::Acquire);
        if w.is_null() {
            return w;
        }
        let (idx_lo, idx_hi) = w.index_bounds();
        if idx_lo >= self.cover_lo
            && idx_hi <= self.cover_hi
            // ORDERING: pairs = schemes/mp.rs:announce_margin — Relaxed
            // pairs with the publisher's release store of the node into
            // `src`: the birth stamp was read from `global_epoch`
            // sequenced-before that publish, our acquire load of `src`
            // observed the node, and read-read coherence on the monotone
            // `global_epoch` forces this load to return a value ≥ the
            // node's birth — equality with `self.epoch` therefore proves
            // birth ≤ announced epoch. Retire stamps are ≥ the announced
            // epoch by monotonicity since it was read. No fence here: the
            // covering margin and the epoch were fenced when announced.
            && self.scheme.global_epoch.load(Ordering::Relaxed) == self.epoch
        {
            self.set_protege(refno, idx_lo);
            #[cfg(feature = "hb-oracle")]
            crate::hb::on_protect(None, w.addr());
            return w;
        }
        self.read_slow(src, refno)
    }

    fn unprotect(&mut self, _refno: usize) {
        // No-op (§4.3 "Node Unprotection"): margins keep protecting
        // future-accessed nodes; hazard slots are cleared wholesale at
        // end_op and margins persist until evicted by refno reuse.
    }

    fn alloc<T: Send + Sync>(&mut self, data: T) -> Shared<T> {
        // Listing 10 alloc: midpoint of the search interval, or USE_HP when
        // the interval has no room (index collision, §4.3.2).
        let lo = self.lower_bound.min(self.upper_bound);
        let hi = self.lower_bound.max(self.upper_bound);
        let index = if hi - lo <= 1 {
            self.tele.record_collision_alloc(lo);
            USE_HP
        } else {
            match self.scheme.cfg.index_policy {
                crate::api::IndexPolicy::Midpoint => lo + (hi - lo) / 2,
                crate::api::IndexPolicy::AfterPred => lo + 1,
            }
        };
        self.alloc_with_index(data, index)
    }

    fn alloc_with_index<T: Send + Sync>(&mut self, data: T, index: u32) -> Shared<T> {
        backpressure::before_alloc(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            &mut self.bp_rung,
            &mut self.tele,
        );
        self.tele.record_alloc();
        let birth = self.scheme.global_epoch.load(Ordering::SeqCst);
        let ptr = crate::node::alloc_node_in(data, index, birth, &mut self.tele);
        // SAFETY: [INV-02] `ptr` was just returned by the node allocator.
        unsafe { Shared::from_owned(ptr) }
    }

    // SAFETY: [INV-11] trait contract: the caller retires a removed node
    // exactly once (the winning unlink CAS is at the call site).
    unsafe fn retire<T: Send + Sync>(&mut self, node: Shared<T>) {
        self.tele.record_retire(node.addr());
        let stamp = self.scheme.global_epoch.load(Ordering::SeqCst);
        // SAFETY: [INV-04] forwarded from this fn's own contract.
        let r = unsafe { Retired::new(node.as_raw(), stamp) };
        self.scheme.tele.pending.add(1, r.bytes() as usize);
        self.scan.note_retire(r.bytes());
        self.retired.push(r);
        self.unlink_counter += 1;
        // §4.3.2: each thread increments the global epoch once every
        // `epoch_freq` node unlinks — the F of Theorem 4.2's bound.
        if self.unlink_counter.is_multiple_of(self.scheme.cfg.epoch_freq) {
            let e = self.scheme.global_epoch.fetch_add(1, Ordering::SeqCst) + 1;
            self.tele.record_epoch_advance(e);
        }
        if self.scan.due(&self.scheme.scan_policy, self.retired.len()) {
            self.empty();
        }
        if backpressure::after_retire(
            &self.scheme.bp_policy,
            self.scheme.tele.backpressure(),
            self.scheme.tele.pending_bytes(),
            &mut self.bp_rung,
            &mut self.tele,
        ) {
            self.help_scan();
        }
    }

    // PROTECTION: caller — the client passes a node it protected during the
    // current operation (Listing 5 reads n->index under that span).
    fn update_lower_bound<T: Send + Sync>(&mut self, node: Shared<T>) {
        // SAFETY: [INV-01] deref dominated by the caller's protected read.
        let idx = unsafe { node.deref() }.index();
        self.lower_bound = idx;
    }

    // PROTECTION: caller — same contract as `update_lower_bound`.
    fn update_upper_bound<T: Send + Sync>(&mut self, node: Shared<T>) {
        // SAFETY: [INV-01] deref dominated by the caller's protected read.
        let idx = unsafe { node.deref() }.index();
        self.upper_bound = idx;
    }

    fn retired_len(&self) -> usize {
        self.retired.len()
    }

    fn force_empty(&mut self) {
        self.empty();
    }
}

impl Drop for MpHandle {
    fn drop(&mut self) {
        // Hb-oracle: the row clears below withdraw every margin, hazard,
        // and epoch announcement, so this handle's claims die with it.
        #[cfg(feature = "hb-oracle")]
        crate::hb::on_handle_drop();
        // Dropping announcements is removal-only — a torn observation can
        // only under-protect nodes this thread no longer reads — so no
        // seqlock cycle or fence is needed.
        self.scheme.mp_slots.clear_row(self.tid, Ordering::Release);
        self.scheme.hp_slots.clear_row(self.tid, Ordering::Release);
        self.scheme.local_epochs.get(self.tid, 0).store(INACTIVE, Ordering::Release);
        // Drain scan before parking leftovers — see HpHandle::drop: under
        // watermark triggers plus handle churn, skipping this would leak
        // every retired node of short-lived handles into the orphan list.
        self.force_empty();
        self.scheme.registry.release(self.tid, std::mem::take(&mut *self.retired));
        // Hand this thread's cached pool blocks to the global shard so a
        // short-lived worker doesn't strand recycled memory.
        mp_util::pool::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(threads: usize) -> Arc<Mp> {
        // watermark 1: scan on every retire, as the old empty_freq=1 did.
        Mp::new(
            Config::default()
                .with_max_threads(threads)
                .with_empty_freq(1)
                .with_scan_watermark(1)
                .with_epoch_freq(1000), // avoid mid-test epoch churn unless wanted
        )
    }

    /// Builds a node with a given index, linked into a cell.
    fn cell_with<T: Send + Sync>(h: &mut MpHandle, data: T, index: u32) -> (Atomic<T>, Shared<T>) {
        let n = h.alloc_with_index(data, index);
        (Atomic::new(n), n)
    }

    #[test]
    fn midpoint_index_assignment() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let (c_lo, lo) = cell_with(&mut h, 0u32, 1000);
        let (c_hi, hi) = cell_with(&mut h, 0u32, 3000);
        let lo_r = h.read(&c_lo, 0);
        let hi_r = h.read(&c_hi, 1);
        h.update_lower_bound(lo_r);
        h.update_upper_bound(hi_r);
        let n = h.alloc(7u32);
        // SAFETY: [INV-12] node protected by this test's open span.
        assert_eq!(unsafe { n.deref() }.index(), 2000, "midpoint of (1000,3000)");
        h.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            h.retire(n);
            h.retire(lo);
            h.retire(hi);
        }
        let _ = (c_lo, c_hi);
    }

    #[test]
    fn exhausted_interval_yields_use_hp() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let (c_lo, lo) = cell_with(&mut h, 0u32, 41);
        let (c_hi, hi) = cell_with(&mut h, 0u32, 42);
        let lo_r = h.read(&c_lo, 0);
        let hi_r = h.read(&c_hi, 1);
        h.update_lower_bound(lo_r);
        h.update_upper_bound(hi_r);
        let n = h.alloc(1u8);
        // SAFETY: [INV-12] node protected by this test's open span.
        assert_eq!(unsafe { n.deref() }.index(), USE_HP);
        assert_eq!(h.stats().collision_allocs, 1);
        h.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            h.retire(n);
            h.retire(lo);
            h.retire(hi);
        }
    }

    #[test]
    fn margin_protects_nearby_nodes_without_extra_fences() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        // Nodes clustered within one margin (margin default 2^20).
        let cells: Vec<_> =
            (0..8u32).map(|i| cell_with(&mut h, i, 500_000 + (i << 16))).collect();
        let f0 = h.stats().fences;
        let _ = h.read(&cells[0].0, 0);
        let after_first = h.stats().fences;
        assert_eq!(after_first, f0 + 1, "first read announces one margin");
        assert_eq!(h.stats().fences_announce, 1, "the fence is attributed to the announce site");
        for (i, (c, _)) in cells[1..].iter().enumerate() {
            // Rotate refnos like a list traversal would: the cross-refno
            // cover check must keep the cluster fence-free anyway.
            let _ = h.read(c, (i + 1) % 3);
        }
        assert_eq!(h.stats().fences, after_first, "margin covers the cluster: no more fences");
        h.end_op();
        for (_, n) in cells {
            unsafe { h.retire(n) }; // SAFETY: [INV-12] test-owned, retired once.
        }
    }

    #[test]
    fn margin_midpoint_derived_from_config() {
        // Satellite regression for the hardcoded `idx_lo + (1 << 15)`
        // midpoint: with a non-default margin the announced interval must
        // span [idx_lo, idx_lo + margin], i.e. forward over the traversal
        // direction and scaled by the *configured* margin.
        let margin = 1u32 << 22;
        let smr = Mp::new(
            Config::default()
                .with_max_threads(1)
                .with_empty_freq(1)
                .with_scan_watermark(1)
                .with_epoch_freq(1000)
                .with_margin(margin),
        );
        let mut h = smr.register();
        h.start_op();
        let base = 1u32 << 24;
        let (c0, n0) = cell_with(&mut h, 0u32, base);
        let _ = h.read(&c0, 0);
        let f_after_first = h.stats().fences;

        // Far forward but still inside [base, base + margin]: covered.
        let (c1, n1) = cell_with(&mut h, 1u32, base + margin - (1 << 16));
        let _ = h.read(&c1, 1);
        assert_eq!(h.stats().fences, f_after_first, "configured margin covers forward reads");

        // Just beyond the configured margin: must re-announce.
        let (c2, n2) = cell_with(&mut h, 2u32, base + margin + (1 << 16));
        let _ = h.read(&c2, 2);
        assert_eq!(h.stats().fences, f_after_first + 1, "past-margin read announces");

        // Behind the block base: forward centering does not cover it.
        let (c3, n3) = cell_with(&mut h, 3u32, base - (1 << 17));
        let f_before_back = h.stats().fences;
        let _ = h.read(&c3, 0);
        assert_eq!(h.stats().fences, f_before_back + 1, "margins are forward-centered");

        h.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            h.retire(n0);
            h.retire(n1);
            h.retire(n2);
            h.retire(n3);
        }
        let _ = (c0, c1, c2, c3);
    }

    #[test]
    fn standing_margin_survives_end_op_and_elides_next_op_fences() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let (c, n) = cell_with(&mut h, 1u32, 500_000);
        let _ = h.read(&c, 0);
        h.end_op();
        let fences_after_op1 = h.stats().fences;
        // Second op over the same region: no epoch movement, standing
        // margin → zero fences for both the bracketing and the read.
        h.start_op();
        let _ = h.read(&c, 1);
        h.end_op();
        assert_eq!(
            h.stats().fences,
            fences_after_op1,
            "unchanged epoch + standing margin must make the second op fence-free \
             (start_op {}, end_op {}, announce {}, hp {})",
            h.stats().fences_start_op,
            h.stats().fences_end_op,
            h.stats().fences_announce,
            h.stats().fences_hp_protect,
        );
        // SAFETY: [INV-12] test-owned node, retired once.
        unsafe { h.retire(n) };
        let _ = c;
    }

    #[test]
    fn margin_blocks_reclamation_of_covered_node() {
        let smr = setup(2);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let (cell, n) = cell_with(&mut writer, 5u64, 700_000);

        reader.start_op();
        let got = reader.read(&cell, 0);
        assert_eq!(got, n);

        cell.store(Shared::null(), Ordering::Release);
        unsafe { writer.retire(n) }; // SAFETY: [INV-12] unlinked above, retired once.
        writer.force_empty();
        assert_eq!(writer.retired_len(), 1, "margin must pin the covered index");
        // SAFETY: [INV-12] reader's span is still open and pins the node.
        assert_eq!(unsafe { *got.deref().data() }, 5);

        reader.end_op();
        writer.force_empty();
        assert_eq!(
            writer.retired_len(),
            1,
            "margins persist across end_op (amortization): still pinned"
        );
        drop(reader);
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0, "dropping the handle releases the margin");
        writer.end_op();
    }

    #[test]
    fn far_away_nodes_not_pinned_by_margin() {
        let smr = setup(2);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let (cell, near) = cell_with(&mut writer, 0u32, 1 << 24);
        reader.start_op();
        let _ = reader.read(&cell, 0); // margin forward from 2^24

        // Retire nodes far outside the margin (margin = 2^20).
        for i in 0..50u32 {
            let far = writer.alloc_with_index(i, (1 << 28) + (i << 17));
            unsafe { writer.retire(far) }; // SAFETY: [INV-12] never published, retired once.
        }
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0, "distant indices unprotected");

        cell.store(Shared::null(), Ordering::Release);
        unsafe { writer.retire(near) }; // SAFETY: [INV-12] unlinked above, retired once.
        writer.force_empty();
        assert_eq!(writer.retired_len(), 1, "near node still pinned");
        drop(reader);
        writer.end_op();
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
    }

    #[test]
    fn use_hp_class_node_protected_via_hazard() {
        let smr = setup(2);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let (cell, n) = cell_with(&mut writer, 9u32, USE_HP);
        reader.start_op();
        let got = reader.read(&cell, 0);
        assert_eq!(got, n);
        assert!(reader.stats().hp_fallback_reads >= 1, "collision path must use HP");
        assert!(reader.stats().fences_hp_protect >= 1, "attributed to the HP site");

        cell.store(Shared::null(), Ordering::Release);
        unsafe { writer.retire(n) }; // SAFETY: [INV-12] unlinked above, retired once.
        writer.force_empty();
        assert_eq!(writer.retired_len(), 1, "hazard pins the collision node");
        // SAFETY: [INV-12] reader's hazard span is still open and pins the node.
        assert_eq!(unsafe { *got.deref().data() }, 9);

        // Hazards (unlike margins) are released at end_op: addresses get
        // recycled, so address protection must not outlive the op.
        reader.end_op();
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
        writer.end_op();
    }

    #[test]
    fn epoch_advance_mid_op_switches_to_hp() {
        let cfg = Config::default().with_max_threads(2).with_empty_freq(1000).with_epoch_freq(1);
        let smr = Mp::new(cfg);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let (c1, n1) = cell_with(&mut writer, 1u32, 100_000);
        let (c2, n2) = cell_with(&mut writer, 2u32, 110_000);

        reader.start_op();
        let _ = reader.read(&c1, 0); // margin announced at epoch e

        // Writer unlinks something unrelated → epoch advances (freq 1).
        let junk = writer.alloc_with_index(0u8, 1);
        unsafe { writer.retire(junk) }; // SAFETY: [INV-12] never published, retired once.

        // The reader already returned a margin-protected node this op, so
        // the re-arm is not available: the next read must take the HP path.
        let before = reader.stats().hp_fallback_reads;
        let _ = reader.read(&c2, 1);
        assert!(reader.use_hp_mode, "epoch change must flip the fallback flag");
        let _ = reader.read(&c1, 0);
        assert!(reader.stats().hp_fallback_reads > before);

        reader.end_op();
        writer.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            writer.retire(n1);
            writer.retire(n2);
        }
        writer.force_empty();
        let _ = (c1, c2);
    }

    #[test]
    fn epoch_advance_before_first_margin_read_rearms_in_place() {
        let cfg = Config::default().with_max_threads(2).with_empty_freq(1000).with_epoch_freq(1);
        let smr = Mp::new(cfg);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let (c1, n1) = cell_with(&mut writer, 1u32, 100_000);

        reader.start_op(); // announces epoch e, no reads yet

        // Epoch advances before the reader touches anything.
        let junk = writer.alloc_with_index(0u8, 1);
        unsafe { writer.retire(junk) }; // SAFETY: [INV-12] never published, retired once.

        // The lazier §4.3.2 trigger: with no margin-protected node returned
        // yet, the op re-announces its epoch and stays in margin mode.
        let hp_before = reader.stats().hp_fallback_reads;
        let _ = reader.read(&c1, 0);
        assert!(!reader.use_hp_mode, "transient advance must not condemn the op to HP mode");
        assert_eq!(reader.stats().hp_fallback_reads, hp_before, "no HP fallback taken");
        assert!(reader.stats().fences_start_op >= 2, "re-arm re-announces the op epoch");

        // A second advance in the same op exhausts the budget → HP mode.
        let junk2 = writer.alloc_with_index(0u8, 2);
        unsafe { writer.retire(junk2) }; // SAFETY: [INV-12] never published, retired once.
        let (c2, n2) = cell_with(&mut writer, 2u32, 2_000_000);
        let _ = reader.read(&c2, 1);
        assert!(reader.use_hp_mode, "second advance falls back to HPs");

        reader.end_op();
        writer.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            writer.retire(n1);
            writer.retire(n2);
        }
        writer.force_empty();
        let _ = (c1, c2);
    }

    #[test]
    fn evicted_margin_parks_in_victim_slot() {
        // Refno reuse must not throw away the standing margin: it moves to
        // an idle slot, and a later read in the old region stays fence-free.
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let region_a = 1u32 << 24;
        let region_b = 1u32 << 28;
        let (ca, na) = cell_with(&mut h, 0u32, region_a);
        let (cb, nb) = cell_with(&mut h, 1u32, region_b);
        let (ca2, na2) = cell_with(&mut h, 2u32, region_a + (1 << 16));

        let _ = h.read(&ca, 0); // announce margin over region A in slot 0
        let _ = h.read(&cb, 0); // refno 0 reused far away: A's margin parks
        let fences = h.stats().fences;
        let _ = h.read(&ca2, 1); // back in region A: covered by the parked margin
        assert_eq!(h.stats().fences, fences, "parked margin keeps region A fence-free");

        h.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            h.retire(na);
            h.retire(nb);
            h.retire(na2);
        }
        let _ = (ca, cb, ca2);
    }

    #[test]
    fn protege_stays_covered_when_its_margin_is_evicted() {
        // A node returned under a cross-refno cover must stay protected
        // until ITS refno is reused, even when the covering slot is
        // announced over and no victim slot is free (2 slots, both bound).
        let cfg = Config::default()
            .with_max_threads(2)
            .with_slots_per_thread(2)
            .with_empty_freq(1)
            .with_scan_watermark(1)
            .with_epoch_freq(1000);
        let smr = Mp::new(cfg);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        let (ca, na) = cell_with(&mut writer, 7u64, 1 << 24);
        let (cb, nb) = cell_with(&mut writer, 8u64, (1 << 24) + (1 << 16));
        let (cc, nc) = cell_with(&mut writer, 9u64, 1 << 28);

        reader.start_op();
        let _ = reader.read(&ca, 0); // slot 0: margin over region A
        let got_b = reader.read(&cb, 1); // cross-refno cover: protege of refno 1
        // Refno 0 reused far away: slot 0's margin is evicted, no idle slot
        // exists (refno 1 holds a protege), so a synthesized margin in slot
        // 1 must keep `got_b` covered.
        let _ = reader.read(&cc, 0);

        cb.store(Shared::null(), Ordering::Release);
        unsafe { writer.retire(nb) }; // SAFETY: [INV-12] unlinked above, retired once.
        writer.force_empty();
        assert_eq!(writer.retired_len(), 1, "protege must remain margin-pinned");
        // SAFETY: [INV-12] reader's protege protection is still in force.
        assert_eq!(unsafe { *got_b.deref().data() }, 8);

        drop(reader);
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            writer.retire(na);
            writer.retire(nc);
        }
        writer.end_op();
        let _ = (ca, cc);
    }

    #[test]
    fn theorem_4_2_waste_is_bounded_under_stall() {
        // A stalled thread with announced margins + epoch pins at most
        // #HP + #MP·M + #MP·M·F·T nodes; churned nodes born after its epoch
        // must be reclaimed. We churn same-index nodes — the worst case the
        // epoch filter exists for.
        let cfg = Config::default()
            .with_max_threads(2)
            .with_slots_per_thread(2)
            .with_empty_freq(1)
            .with_scan_watermark(1)
            .with_epoch_freq(10);
        let smr = Mp::new(cfg);
        let mut stalled = smr.register();
        let mut worker = smr.register();

        worker.start_op();
        let (cell, pinned) = cell_with(&mut worker, 0u32, 800_000);
        stalled.start_op();
        let _ = stalled.read(&cell, 0); // margin over 800_000, then stall

        // Churn 5_000 nodes with the *same* index inside the margin.
        for i in 0..5_000u32 {
            let n = worker.alloc_with_index(i, 800_001);
            unsafe { worker.retire(n) }; // SAFETY: [INV-12] never published, retired once.
        }
        // Bound: #HP + #MP·M + #MP·M·F·T is astronomically larger than what
        // we expect in practice; empirically only nodes retired while the
        // stalled epoch admits them stay pinned — a couple of epochs' worth.
        let pinned_count = worker.retired_len();
        assert!(
            pinned_count <= 2 * 10 * 2, // ≈ F·T epochs of same-margin churn
            "stall pinned {pinned_count} nodes; epoch filter failed"
        );

        // With amortized announcements the margins outlive end_op; only
        // dropping the handle withdraws them.
        drop(stalled);
        cell.store(Shared::null(), Ordering::Release);
        unsafe { worker.retire(pinned) }; // SAFETY: [INV-12] unlinked above, retired once.
        worker.end_op();
        worker.force_empty();
        assert_eq!(worker.retired_len(), 0);
    }

    #[test]
    fn sentinel_indices_allocate_explicitly() {
        let smr = setup(1);
        let mut h = smr.register();
        h.start_op();
        let head = h.alloc_with_index(0u64, 0);
        let tail = h.alloc_with_index(u64::MAX, u32::MAX - 1);
        // SAFETY: [INV-12] both nodes protected by this test's open span.
        assert_eq!(unsafe { head.deref() }.index(), 0);
        // SAFETY: [INV-12] both nodes protected by this test's open span.
        assert_eq!(unsafe { tail.deref() }.index(), u32::MAX - 1);
        h.end_op();
        // SAFETY: [INV-12] test-owned nodes, each retired exactly once.
        unsafe {
            h.retire(head);
            h.retire(tail);
        }
        h.force_empty();
    }
}
