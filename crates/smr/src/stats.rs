//! Per-handle operation statistics.
//!
//! The paper's evaluation reports three metrics beyond throughput:
//! memory fences issued per traversed node (Figure 5), the average length of
//! a thread's retired list sampled at operation start (Figure 6, 7c), and
//! MP's hazard-pointer fallback rate (Figure 7a discussion). Counters are
//! plain per-handle `u64`s — no atomics on the hot path — and are aggregated
//! by the benchmark driver after threads join.

/// Counters accumulated by one SMR handle.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Full memory fences (or sequentially consistent protection stores)
    /// issued on the protection path.
    pub fences: u64,
    /// Nodes traversed, incremented by the client data structure once per
    /// node visited during searches. Denominator of Figure 5.
    pub nodes_traversed: u64,
    /// Operations started (`start_op` calls).
    pub ops: u64,
    /// Sum over operations of the retired-list length at `start_op`.
    /// `retired_sampled_sum / ops` is Figure 6's wasted-memory metric.
    pub retired_sampled_sum: u64,
    /// Nodes allocated through this handle.
    pub allocs: u64,
    /// Nodes retired through this handle.
    pub retires: u64,
    /// Nodes reclaimed (freed) by this handle's `empty()` runs.
    pub frees: u64,
    /// Reclamation passes executed.
    pub empties: u64,
    /// MP only: `read` calls that took the hazard-pointer fallback path
    /// (index collision, USE_HP class, or epoch-advance fallback).
    pub hp_fallback_reads: u64,
    /// MP only: nodes allocated with the `USE_HP` collision index.
    pub collision_allocs: u64,
}

impl OpStats {
    /// Merges `other` into `self` (used when aggregating across handles).
    pub fn merge(&mut self, other: &OpStats) {
        self.fences += other.fences;
        self.nodes_traversed += other.nodes_traversed;
        self.ops += other.ops;
        self.retired_sampled_sum += other.retired_sampled_sum;
        self.allocs += other.allocs;
        self.retires += other.retires;
        self.frees += other.frees;
        self.empties += other.empties;
        self.hp_fallback_reads += other.hp_fallback_reads;
        self.collision_allocs += other.collision_allocs;
    }

    /// Fences issued per traversed node (Figure 5's y-axis).
    pub fn fences_per_node(&self) -> f64 {
        if self.nodes_traversed == 0 {
            0.0
        } else {
            self.fences as f64 / self.nodes_traversed as f64
        }
    }

    /// Average retired-list length at operation start (Figure 6's y-axis).
    pub fn avg_retired_at_op_start(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.retired_sampled_sum as f64 / self.ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = OpStats { fences: 1, nodes_traversed: 2, ops: 3, ..Default::default() };
        let b = OpStats {
            fences: 10,
            nodes_traversed: 20,
            ops: 30,
            retired_sampled_sum: 40,
            allocs: 50,
            retires: 60,
            frees: 70,
            empties: 80,
            hp_fallback_reads: 90,
            collision_allocs: 100,
        };
        a.merge(&b);
        assert_eq!(a.fences, 11);
        assert_eq!(a.nodes_traversed, 22);
        assert_eq!(a.ops, 33);
        assert_eq!(a.retired_sampled_sum, 40);
        assert_eq!(a.allocs, 50);
        assert_eq!(a.retires, 60);
        assert_eq!(a.frees, 70);
        assert_eq!(a.empties, 80);
        assert_eq!(a.hp_fallback_reads, 90);
        assert_eq!(a.collision_allocs, 100);
    }

    #[test]
    fn derived_ratios() {
        let s = OpStats {
            fences: 5,
            nodes_traversed: 10,
            ops: 4,
            retired_sampled_sum: 12,
            ..Default::default()
        };
        assert!((s.fences_per_node() - 0.5).abs() < 1e-12);
        assert!((s.avg_retired_at_op_start() - 3.0).abs() < 1e-12);
        let z = OpStats::default();
        assert_eq!(z.fences_per_node(), 0.0);
        assert_eq!(z.avg_retired_at_op_start(), 0.0);
    }
}
