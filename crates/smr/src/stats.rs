//! Per-handle operation statistics.
//!
//! The paper's evaluation reports three metrics beyond throughput:
//! memory fences issued per traversed node (Figure 5), the average length of
//! a thread's retired list sampled at operation start (Figure 6, 7c), and
//! MP's hazard-pointer fallback rate (Figure 7a discussion). Counters are
//! plain per-handle `u64`s — no atomics on the hot path — and are aggregated
//! by the benchmark driver after threads join.

/// Which protection-path call site issued a fence. The per-site split is
/// the profiling surface behind the fence-amortization work: ~64 fences/op
/// is indistinguishable from ~2 fences/op in the aggregate `fences` counter
/// until you know whether they come from per-op bracketing (`StartOp` /
/// `EndOp`), per-uncovered-node margin announcements (`Announce`), or the
/// §4.3.2 hazard-pointer fallback (`HpProtect`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceSite {
    /// Operation-start announcement (epoch / era / reservation publish).
    StartOp,
    /// Operation-end slot clearing (ablation or single batched fence).
    EndOp,
    /// Mid-operation protection announcement: MP margin announce, HE era
    /// re-publish, IBR upper-bound extension, DTA anchor post.
    Announce,
    /// Hazard-pointer protection store: HP's per-node announce and MP's
    /// §4.3.2 collision/epoch fallback.
    HpProtect,
}

/// Counters accumulated by one SMR handle.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Full memory fences (or sequentially consistent protection stores)
    /// issued on the protection path.
    pub fences: u64,
    /// Fences issued at operation start ([`FenceSite::StartOp`]).
    pub fences_start_op: u64,
    /// Fences issued at operation end ([`FenceSite::EndOp`]).
    pub fences_end_op: u64,
    /// Fences issued by mid-op protection announcements
    /// ([`FenceSite::Announce`]).
    pub fences_announce: u64,
    /// Fences issued by hazard-pointer protection stores
    /// ([`FenceSite::HpProtect`]).
    pub fences_hp_protect: u64,
    /// Nodes traversed, incremented by the client data structure once per
    /// node visited during searches. Denominator of Figure 5.
    pub nodes_traversed: u64,
    /// Operations started (`start_op` calls).
    pub ops: u64,
    /// Sum over operations of the retired-list length at `start_op`.
    /// `retired_sampled_sum / ops` is Figure 6's wasted-memory metric.
    pub retired_sampled_sum: u64,
    /// Nodes allocated through this handle.
    pub allocs: u64,
    /// Nodes retired through this handle.
    pub retires: u64,
    /// Nodes reclaimed (freed) by this handle's `empty()` runs.
    pub frees: u64,
    /// Reclamation passes executed.
    pub empties: u64,
    /// MP only: `read` calls that took the hazard-pointer fallback path
    /// (index collision, USE_HP class, or epoch-advance fallback).
    pub hp_fallback_reads: u64,
    /// MP only: nodes allocated with the `USE_HP` collision index.
    pub collision_allocs: u64,
    /// Node allocations served from the thread-local block pool (no
    /// system-allocator call). `pool_hits / allocs` is the pool hit rate.
    pub pool_hits: u64,
    /// Node allocations that fell through to the system allocator (cold
    /// pool, unpoolable layout, or pool disabled).
    pub pool_misses: u64,
    /// `empty()` passes that had to grow a scan-scratch buffer (heap
    /// realloc during a reclamation scan). Zero in steady state — the
    /// zero-allocation-scan witness of the perf work.
    pub scan_heap_allocs: u64,
    /// `empty()` passes that adopted a peer's published protection
    /// snapshot instead of walking the slot rows (scan coalescing).
    pub snapshot_reuses: u64,
    /// Registrations that reused a tid released by an earlier handle
    /// (thread-churn witness; always 0 or 1 per handle, summed on merge).
    pub tid_recycles: u64,
    /// Total wall nanoseconds spent inside `empty()` scans. Always on
    /// (scans are rare, so the two clock reads per scan are noise);
    /// `scan_nanos / frees` is the bench's `scan_ns_per_free` column.
    pub scan_nanos: u64,
    /// Backpressure help-scans: reclamation passes this handle ran because
    /// the scheme's retired-bytes gauge crossed the help watermark (the
    /// first rung of the backpressure ladder), adopting orphans first.
    pub help_scans: u64,
    /// Backpressure throttle waits: bounded backoffs taken on the
    /// allocation path while the gauge sat above the hard cap (the second
    /// rung of the ladder).
    pub throttle_waits: u64,
}

impl OpStats {
    /// Merges `other` into `self` (used when aggregating across handles).
    ///
    /// Every field accumulates with `u64::saturating_add`: on a soak run
    /// long enough to approach the counter range, a merged total pins at
    /// `u64::MAX` instead of wrapping into a small nonsense value (debug
    /// builds would panic on the wrap; release builds would silently
    /// corrupt every derived ratio).
    pub fn merge(&mut self, other: &OpStats) {
        self.fences = self.fences.saturating_add(other.fences);
        self.fences_start_op = self.fences_start_op.saturating_add(other.fences_start_op);
        self.fences_end_op = self.fences_end_op.saturating_add(other.fences_end_op);
        self.fences_announce = self.fences_announce.saturating_add(other.fences_announce);
        self.fences_hp_protect = self.fences_hp_protect.saturating_add(other.fences_hp_protect);
        self.nodes_traversed = self.nodes_traversed.saturating_add(other.nodes_traversed);
        self.ops = self.ops.saturating_add(other.ops);
        self.retired_sampled_sum =
            self.retired_sampled_sum.saturating_add(other.retired_sampled_sum);
        self.allocs = self.allocs.saturating_add(other.allocs);
        self.retires = self.retires.saturating_add(other.retires);
        self.frees = self.frees.saturating_add(other.frees);
        self.empties = self.empties.saturating_add(other.empties);
        self.hp_fallback_reads = self.hp_fallback_reads.saturating_add(other.hp_fallback_reads);
        self.collision_allocs = self.collision_allocs.saturating_add(other.collision_allocs);
        self.pool_hits = self.pool_hits.saturating_add(other.pool_hits);
        self.pool_misses = self.pool_misses.saturating_add(other.pool_misses);
        self.scan_heap_allocs = self.scan_heap_allocs.saturating_add(other.scan_heap_allocs);
        self.snapshot_reuses = self.snapshot_reuses.saturating_add(other.snapshot_reuses);
        self.tid_recycles = self.tid_recycles.saturating_add(other.tid_recycles);
        self.scan_nanos = self.scan_nanos.saturating_add(other.scan_nanos);
        self.help_scans = self.help_scans.saturating_add(other.help_scans);
        self.throttle_waits = self.throttle_waits.saturating_add(other.throttle_waits);
    }

    /// Average scan nanoseconds per reclaimed node — the amortized cost of
    /// the reclamation path. The watermark trigger exists to keep this flat
    /// as threads scale; the fixed-cadence ablation is its baseline.
    pub fn scan_ns_per_free(&self) -> f64 {
        if self.frees == 0 {
            0.0
        } else {
            self.scan_nanos as f64 / self.frees as f64
        }
    }

    /// Fences issued per traversed node (Figure 5's y-axis).
    pub fn fences_per_node(&self) -> f64 {
        if self.nodes_traversed == 0 {
            0.0
        } else {
            self.fences as f64 / self.nodes_traversed as f64
        }
    }

    /// Average retired-list length at operation start (Figure 6's y-axis).
    pub fn avg_retired_at_op_start(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.retired_sampled_sum as f64 / self.ops as f64
        }
    }

    /// Fraction of node allocations served by the block pool, in `[0, 1]`.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Heap allocations per operation (node allocs that reached malloc,
    /// i.e. pool misses, over ops).
    pub fn allocs_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.pool_misses as f64 / self.ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = OpStats { fences: 1, nodes_traversed: 2, ops: 3, ..Default::default() };
        let b = OpStats {
            fences: 10,
            fences_start_op: 4,
            fences_end_op: 3,
            fences_announce: 2,
            fences_hp_protect: 1,
            nodes_traversed: 20,
            ops: 30,
            retired_sampled_sum: 40,
            allocs: 50,
            retires: 60,
            frees: 70,
            empties: 80,
            hp_fallback_reads: 90,
            collision_allocs: 100,
            pool_hits: 110,
            pool_misses: 120,
            scan_heap_allocs: 130,
            snapshot_reuses: 140,
            tid_recycles: 150,
            scan_nanos: 160,
            help_scans: 170,
            throttle_waits: 180,
        };
        a.merge(&b);
        assert_eq!(a.fences, 11);
        assert_eq!(a.fences_start_op, 4);
        assert_eq!(a.fences_end_op, 3);
        assert_eq!(a.fences_announce, 2);
        assert_eq!(a.fences_hp_protect, 1);
        assert_eq!(a.nodes_traversed, 22);
        assert_eq!(a.ops, 33);
        assert_eq!(a.retired_sampled_sum, 40);
        assert_eq!(a.allocs, 50);
        assert_eq!(a.retires, 60);
        assert_eq!(a.frees, 70);
        assert_eq!(a.empties, 80);
        assert_eq!(a.hp_fallback_reads, 90);
        assert_eq!(a.collision_allocs, 100);
        assert_eq!(a.pool_hits, 110);
        assert_eq!(a.pool_misses, 120);
        assert_eq!(a.scan_heap_allocs, 130);
        assert_eq!(a.snapshot_reuses, 140);
        assert_eq!(a.tid_recycles, 150);
        assert_eq!(a.scan_nanos, 160);
        assert_eq!(a.help_scans, 170);
        assert_eq!(a.throttle_waits, 180);
    }

    /// Soak-run wrap audit: merging into a counter near `u64::MAX`
    /// saturates instead of wrapping — on every field, including both
    /// operands pre-saturated.
    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let near_max = OpStats {
            fences: u64::MAX - 1,
            fences_start_op: u64::MAX,
            fences_end_op: u64::MAX,
            fences_announce: u64::MAX,
            fences_hp_protect: u64::MAX,
            nodes_traversed: u64::MAX,
            ops: u64::MAX - 5,
            retired_sampled_sum: u64::MAX,
            allocs: u64::MAX,
            retires: u64::MAX,
            frees: u64::MAX,
            empties: u64::MAX,
            hp_fallback_reads: u64::MAX,
            collision_allocs: u64::MAX,
            pool_hits: u64::MAX,
            pool_misses: u64::MAX,
            scan_heap_allocs: u64::MAX,
            snapshot_reuses: u64::MAX,
            tid_recycles: u64::MAX,
            scan_nanos: u64::MAX,
            help_scans: u64::MAX,
            throttle_waits: u64::MAX,
        };
        let mut acc = near_max.clone();
        acc.merge(&OpStats { fences: 10, ops: 3, ..Default::default() });
        assert_eq!(acc.fences, u64::MAX, "fences pinned at MAX, not wrapped");
        assert_eq!(acc.ops, u64::MAX - 2, "headroom consumed exactly");
        acc.merge(&near_max);
        assert_eq!(acc, OpStats { ops: u64::MAX, fences: u64::MAX, ..near_max.clone() });
        // Ratios remain finite and sane at saturation.
        assert!(acc.fences_per_node() <= 1.0 + 1e-12);
    }

    #[test]
    fn derived_ratios() {
        let s = OpStats {
            fences: 5,
            nodes_traversed: 10,
            ops: 4,
            retired_sampled_sum: 12,
            ..Default::default()
        };
        assert!((s.fences_per_node() - 0.5).abs() < 1e-12);
        assert!((s.avg_retired_at_op_start() - 3.0).abs() < 1e-12);
        let z = OpStats::default();
        assert_eq!(z.fences_per_node(), 0.0);
        assert_eq!(z.avg_retired_at_op_start(), 0.0);
        assert_eq!(z.pool_hit_rate(), 0.0);
        assert_eq!(z.allocs_per_op(), 0.0);
        let p = OpStats { ops: 8, pool_hits: 6, pool_misses: 2, ..Default::default() };
        assert!((p.pool_hit_rate() - 0.75).abs() < 1e-12);
        assert!((p.allocs_per_op() - 0.25).abs() < 1e-12);
        assert_eq!(z.scan_ns_per_free(), 0.0);
        let s = OpStats { frees: 4, scan_nanos: 1000, ..Default::default() };
        assert!((s.scan_ns_per_free() - 250.0).abs() < 1e-12);
    }
}
