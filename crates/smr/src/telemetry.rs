//! Scheme-agnostic observability: event tracing, latency histograms, and
//! the waste time-series, surfaced through the [`Telemetry`] trait.
//!
//! The paper's whole argument is quantitative — fences per operation
//! (Fig. 5), wasted memory over time (Fig. 6), collision/fallback rates
//! (§4.3) — and this module turns those signals from end-of-run counter
//! sums into a proper observability layer:
//!
//! * **Event tracing** — each handle can own a bounded lock-free ring
//!   ([`mp_util::ring::RingBuffer`]) of 16-byte packed [`EventRecord`]s
//!   (alloc / retire / free / protect-collision / HP-fallback /
//!   epoch-advance), drained lock-free by any reader while writers keep
//!   running. A full ring drops the newest event and counts the drop;
//!   tracing never stalls reclamation.
//! * **Latency histograms** — power-of-two log-bucketed
//!   [`Histogram`]s (64 buckets, mergeable like `OpStats::merge`) for
//!   whole-operation latency (timed by [`OpGuard`](crate::OpGuard)) and
//!   `empty()` scan latency (timed inside each scheme's reclamation pass).
//! * **Waste time-series** — [`WasteSeries`], a fixed ring of
//!   (timestamp, pending nodes, pending bytes) samples per scheme, fed by
//!   [`Smr::sample_waste`](crate::Smr::sample_waste) (the bench driver's
//!   poller and the optional [`WasteSampler`] thread call it), so Fig. 6
//!   becomes a live curve instead of a post-hoc sum.
//! * **Exporters** — [`export`] renders a merged snapshot as Prometheus
//!   text exposition or JSON, honoring the same `MP_BENCH_DIR` output
//!   convention as the bench reports.
//!
//! # Arming and the zero-cost-off contract
//!
//! Counters (the old `OpStats`) are always on: plain per-handle `u64`
//! bumps, exactly as before. The *timed* and *traced* layers are gated by
//! a process-global armed flag — the `MP_TELEMETRY` env var (`1` / `on` /
//! `true` to arm) or [`set_armed`] at runtime, the same idiom as
//! `mp_util::pool`. Disarmed, the hot path pays one relaxed atomic load
//! and a predictable branch per site: no clock reads, no ring pushes, and
//! — crucially — no heap allocation, so `tests/zero_alloc.rs` still
//! witnesses exactly zero steady-state allocations with telemetry
//! compiled in. Handles allocate their event ring at registration time
//! only if tracing is armed at that moment.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use mp_util::hist::Histogram;
use mp_util::ring::RingBuffer;

use crate::schemes::common::PendingGauge;
use crate::stats::{FenceSite, OpStats};

pub mod export;

// ---------------------------------------------------------------------------
// Arming (env default, runtime override) — mirrors `mp_util::pool`.

const STATE_UNINIT: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

static ARMED: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether timed/traced telemetry is armed. First call consults the
/// `MP_TELEMETRY` env var (`1` / `on` / `true` arm it; anything else —
/// including unset — leaves it off). Counters are unaffected: they are
/// always collected.
#[inline]
pub fn armed() -> bool {
    match ARMED.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = matches!(
                std::env::var("MP_TELEMETRY").as_deref(),
                Ok("1") | Ok("on") | Ok("true")
            );
            ARMED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Runtime override of the armed flag (see [`SmrBuilder::telemetry`]).
/// Handles registered while disarmed have no event ring; arm before
/// registering (the builder does) to trace from the first operation.
///
/// [`SmrBuilder::telemetry`]: crate::SmrBuilder::telemetry
pub fn set_armed(on: bool) {
    ARMED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

static EVENT_CAPACITY: AtomicUsize = AtomicUsize::new(1024);

/// Sets the per-handle event-ring capacity used for handles registered
/// from now on (rounded up to a power of two by the ring).
pub fn set_event_capacity(records: usize) {
    EVENT_CAPACITY.store(records.max(2), Ordering::Relaxed);
}

/// Microseconds since the process's telemetry epoch (first call). 40 bits
/// of microseconds cover ~12.7 days, comfortably beyond any run.
pub fn now_micros() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Starts a latency timer iff telemetry is armed (one relaxed load and a
/// predictable branch when disarmed — no clock read).
#[inline]
pub fn timer() -> Option<Instant> {
    if armed() {
        Some(Instant::now())
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Events

/// Traced event kinds (the discriminant is packed into [`EventRecord`]).
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A node was allocated (payload: node address).
    Alloc = 1,
    /// A node was retired (payload: node address).
    Retire = 2,
    /// A retired node was reclaimed (payload: node address).
    Free = 3,
    /// MP assigned the `USE_HP` index on an index collision
    /// (payload: the colliding predecessor index).
    ProtectCollision = 4,
    /// MP's `read` took the hazard-pointer fallback path
    /// (payload: node address).
    HpFallback = 5,
    /// The global epoch/era advanced (payload: new epoch).
    EpochAdvance = 6,
    /// The scheme's backpressure ladder escalated (payload: the new
    /// [`BpLevel`](crate::backpressure::BpLevel) as `u64`).
    BackpressureEngage = 7,
    /// The scheme's backpressure ladder released back to a lower rung
    /// (payload: the new level as `u64`).
    BackpressureRelease = 8,
}

impl EventKind {
    /// Decodes a packed discriminant.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::Alloc,
            2 => EventKind::Retire,
            3 => EventKind::Free,
            4 => EventKind::ProtectCollision,
            5 => EventKind::HpFallback,
            6 => EventKind::EpochAdvance,
            7 => EventKind::BackpressureEngage,
            8 => EventKind::BackpressureRelease,
            _ => return None,
        })
    }

    /// Stable lowercase name (used by exporters and tests).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Alloc => "alloc",
            EventKind::Retire => "retire",
            EventKind::Free => "free",
            EventKind::ProtectCollision => "protect_collision",
            EventKind::HpFallback => "hp_fallback",
            EventKind::EpochAdvance => "epoch_advance",
            EventKind::BackpressureEngage => "backpressure_engage",
            EventKind::BackpressureRelease => "backpressure_release",
        }
    }
}

/// One traced event, packed into 16 bytes: `meta` is
/// `timestamp_micros:40 | kind:8 | tid:16`, `payload` is the event-specific
/// word (node address, index, or epoch).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    meta: u64,
    /// Event-specific payload word.
    pub payload: u64,
}

const TS_BITS: u32 = 40;
const TS_MASK: u64 = (1 << TS_BITS) - 1;

/// Sampling period (power of two) for [`EventKind::HpFallback`] traces:
/// every fallback read is *counted*, every `HP_FALLBACK_SAMPLE`-th is
/// *traced*. Fallback reads are the one event that fires per traversed
/// node rather than per operation or per reclamation, so unsampled
/// tracing would dominate armed-run cost on collision-heavy structures.
pub const HP_FALLBACK_SAMPLE: u64 = 64;

impl EventRecord {
    /// Packs an event.
    #[inline]
    pub fn new(t_micros: u64, kind: EventKind, tid: u16, payload: u64) -> EventRecord {
        EventRecord {
            meta: ((t_micros & TS_MASK) << 24) | ((kind as u64) << 16) | tid as u64,
            payload,
        }
    }

    /// Microseconds since the telemetry epoch (wraps after ~12.7 days).
    #[inline]
    pub fn t_micros(&self) -> u64 {
        self.meta >> 24
    }

    /// The event kind (`None` only for a corrupt record).
    #[inline]
    pub fn kind(&self) -> Option<EventKind> {
        EventKind::from_u8(((self.meta >> 16) & 0xff) as u8)
    }

    /// The recording handle's thread id (registry slot).
    #[inline]
    pub fn tid(&self) -> u16 {
        (self.meta & 0xffff) as u16
    }
}

/// The per-handle event ring type.
pub type EventRing = RingBuffer<EventRecord>;

// ---------------------------------------------------------------------------
// Counters

/// Scheme-agnostic counter identifiers — the typed read surface over what
/// used to be direct `OpStats` field access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Full memory fences on the protection path (Fig. 5 numerator).
    Fences,
    /// Fences issued at operation start.
    FencesStartOp,
    /// Fences issued at operation end.
    FencesEndOp,
    /// Fences issued by mid-op protection announcements.
    FencesAnnounce,
    /// Fences issued by hazard-pointer protection stores.
    FencesHpProtect,
    /// Nodes traversed by client structures (Fig. 5 denominator).
    NodesTraversed,
    /// Operations started.
    Ops,
    /// Sum of retired-list lengths sampled at op start (Fig. 6).
    RetiredSampledSum,
    /// Nodes allocated.
    Allocs,
    /// Nodes retired.
    Retires,
    /// Nodes reclaimed.
    Frees,
    /// Reclamation passes executed.
    Empties,
    /// MP reads that took the hazard-pointer fallback.
    HpFallbackReads,
    /// MP allocations that hit the `USE_HP` collision index.
    CollisionAllocs,
    /// Node allocations served by the thread-local block pool.
    PoolHits,
    /// Node allocations that reached the system allocator.
    PoolMisses,
    /// Reclamation scans that had to grow a scratch buffer.
    ScanHeapAllocs,
    /// Scans that adopted a peer's published protection snapshot.
    SnapshotReuses,
    /// Registrations that reused a previously released tid (churn).
    TidRecycles,
    /// Wall nanoseconds spent inside `empty()` scans (always on).
    ScanNanos,
    /// Backpressure help-scans: reclamation passes this handle ran on
    /// behalf of laggards because the retired-bytes gauge crossed the
    /// help watermark.
    HelpScans,
    /// Backpressure throttle waits: bounded backoffs taken on the
    /// allocation path while the gauge sat above the hard cap.
    ThrottleWaits,
}

impl Counter {
    /// Every counter, in stable export order.
    pub const ALL: [Counter; 22] = [
        Counter::Fences,
        Counter::FencesStartOp,
        Counter::FencesEndOp,
        Counter::FencesAnnounce,
        Counter::FencesHpProtect,
        Counter::NodesTraversed,
        Counter::Ops,
        Counter::RetiredSampledSum,
        Counter::Allocs,
        Counter::Retires,
        Counter::Frees,
        Counter::Empties,
        Counter::HpFallbackReads,
        Counter::CollisionAllocs,
        Counter::PoolHits,
        Counter::PoolMisses,
        Counter::ScanHeapAllocs,
        Counter::SnapshotReuses,
        Counter::TidRecycles,
        Counter::ScanNanos,
        Counter::HelpScans,
        Counter::ThrottleWaits,
    ];

    /// Stable snake-case name (Prometheus/JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Fences => "fences",
            Counter::FencesStartOp => "fences_start_op",
            Counter::FencesEndOp => "fences_end_op",
            Counter::FencesAnnounce => "fences_announce",
            Counter::FencesHpProtect => "fences_hp_protect",
            Counter::NodesTraversed => "nodes_traversed",
            Counter::Ops => "ops",
            Counter::RetiredSampledSum => "retired_sampled_sum",
            Counter::Allocs => "allocs",
            Counter::Retires => "retires",
            Counter::Frees => "frees",
            Counter::Empties => "empties",
            Counter::HpFallbackReads => "hp_fallback_reads",
            Counter::CollisionAllocs => "collision_allocs",
            Counter::PoolHits => "pool_hits",
            Counter::PoolMisses => "pool_misses",
            Counter::ScanHeapAllocs => "scan_heap_allocs",
            Counter::SnapshotReuses => "snapshot_reuses",
            Counter::TidRecycles => "tid_recycles",
            Counter::ScanNanos => "scan_nanos",
            Counter::HelpScans => "help_scans",
            Counter::ThrottleWaits => "throttle_waits",
        }
    }
}

fn counter_of(stats: &OpStats, c: Counter) -> u64 {
    match c {
        Counter::Fences => stats.fences,
        Counter::FencesStartOp => stats.fences_start_op,
        Counter::FencesEndOp => stats.fences_end_op,
        Counter::FencesAnnounce => stats.fences_announce,
        Counter::FencesHpProtect => stats.fences_hp_protect,
        Counter::NodesTraversed => stats.nodes_traversed,
        Counter::Ops => stats.ops,
        Counter::RetiredSampledSum => stats.retired_sampled_sum,
        Counter::Allocs => stats.allocs,
        Counter::Retires => stats.retires,
        Counter::Frees => stats.frees,
        Counter::Empties => stats.empties,
        Counter::HpFallbackReads => stats.hp_fallback_reads,
        Counter::CollisionAllocs => stats.collision_allocs,
        Counter::PoolHits => stats.pool_hits,
        Counter::PoolMisses => stats.pool_misses,
        Counter::ScanHeapAllocs => stats.scan_heap_allocs,
        Counter::SnapshotReuses => stats.snapshot_reuses,
        Counter::TidRecycles => stats.tid_recycles,
        Counter::ScanNanos => stats.scan_nanos,
        Counter::HelpScans => stats.help_scans,
        Counter::ThrottleWaits => stats.throttle_waits,
    }
}

// ---------------------------------------------------------------------------
// Per-handle state

/// Per-handle telemetry state: the counters, both latency histograms, and
/// (when armed at registration) the event ring. Embedded by every scheme's
/// handle; schemes record through the typed `record_*` methods, clients
/// and the bench driver read through [`Telemetry`].
pub struct HandleTelemetry {
    stats: OpStats,
    op_hist: Histogram,
    scan_hist: Histogram,
    ring: Option<Arc<EventRing>>,
    tid: u16,
}

impl HandleTelemetry {
    /// State for the handle registered in registry slot `tid`. Allocates an
    /// event ring only if tracing is armed right now.
    pub fn new(tid: usize) -> HandleTelemetry {
        let ring = if armed() {
            Some(Arc::new(EventRing::new(EVENT_CAPACITY.load(Ordering::Relaxed))))
        } else {
            None
        };
        HandleTelemetry {
            stats: OpStats::default(),
            op_hist: Histogram::new(),
            scan_hist: Histogram::new(),
            ring,
            tid: tid as u16,
        }
    }

    // -- typed recorders (the hot-path write surface) --

    /// Counts one protection-path fence (Fig. 5 numerator), attributed to
    /// the issuing call site so the per-site breakdown can tell per-op
    /// bracketing apart from per-node announcements.
    #[inline]
    pub fn record_fence(&mut self, site: FenceSite) {
        self.stats.fences = self.stats.fences.saturating_add(1);
        let per_site = match site {
            FenceSite::StartOp => &mut self.stats.fences_start_op,
            FenceSite::EndOp => &mut self.stats.fences_end_op,
            FenceSite::Announce => &mut self.stats.fences_announce,
            FenceSite::HpProtect => &mut self.stats.fences_hp_protect,
        };
        *per_site = per_site.saturating_add(1);
    }

    /// Counts an operation start, sampling the retired-list length.
    #[inline]
    pub fn record_op_start(&mut self, retired_len: usize) {
        self.stats.ops = self.stats.ops.saturating_add(1);
        self.stats.retired_sampled_sum =
            self.stats.retired_sampled_sum.saturating_add(retired_len as u64);
    }

    /// Counts one node allocation (the pool split is recorded separately
    /// by the node allocator via [`record_pool_hit`](Self::record_pool_hit)
    /// / [`record_pool_miss`](Self::record_pool_miss)).
    #[inline]
    pub fn record_alloc(&mut self) {
        self.stats.allocs = self.stats.allocs.saturating_add(1);
    }

    /// Counts a retire and traces it (payload: node address).
    #[inline]
    pub fn record_retire(&mut self, addr: u64) {
        self.stats.retires = self.stats.retires.saturating_add(1);
        self.trace(EventKind::Retire, addr);
    }

    /// Counts a reclaimed node and traces it (payload: node address).
    #[inline]
    pub fn record_free(&mut self, addr: u64) {
        self.stats.frees = self.stats.frees.saturating_add(1);
        self.trace(EventKind::Free, addr);
    }

    /// Counts one reclamation pass.
    #[inline]
    pub fn record_empty(&mut self) {
        self.stats.empties = self.stats.empties.saturating_add(1);
    }

    /// Counts a scan that had to grow a scratch buffer.
    #[inline]
    pub fn record_scan_heap_alloc(&mut self) {
        self.stats.scan_heap_allocs = self.stats.scan_heap_allocs.saturating_add(1);
    }

    /// Counts a scan that adopted a peer's published protection snapshot
    /// instead of walking the slot rows.
    #[inline]
    pub fn record_snapshot_reuse(&mut self) {
        self.stats.snapshot_reuses = self.stats.snapshot_reuses.saturating_add(1);
    }

    /// Marks this handle's tid as recycled from an earlier registration
    /// (called once, at registration, when the registry says so).
    #[inline]
    pub fn record_tid_recycle(&mut self) {
        self.stats.tid_recycles = self.stats.tid_recycles.saturating_add(1);
    }

    /// Counts an MP hazard-pointer fallback read and traces it, sampled.
    ///
    /// Fallback reads sit on the traversal critical path and can fire once
    /// per visited node (skip-list towers are `USE_HP`-class), so tracing
    /// each one would pay a clock read + ring push per node. The counter
    /// stays exact; only the trace stream is 1-in-[`HP_FALLBACK_SAMPLE`]
    /// sampled.
    #[inline]
    pub fn record_hp_fallback(&mut self, addr: u64) {
        self.stats.hp_fallback_reads = self.stats.hp_fallback_reads.saturating_add(1);
        if self.stats.hp_fallback_reads & (HP_FALLBACK_SAMPLE - 1) == 0 {
            self.trace(EventKind::HpFallback, addr);
        }
    }

    /// Counts a `USE_HP` collision allocation and traces it.
    #[inline]
    pub fn record_collision_alloc(&mut self, index: u32) {
        self.stats.collision_allocs = self.stats.collision_allocs.saturating_add(1);
        self.trace(EventKind::ProtectCollision, index as u64);
    }

    /// Counts a pool-served node allocation and traces the alloc.
    #[inline]
    pub fn record_pool_hit(&mut self, addr: u64) {
        self.stats.pool_hits = self.stats.pool_hits.saturating_add(1);
        self.trace(EventKind::Alloc, addr);
    }

    /// Counts a system-allocator node allocation and traces the alloc.
    #[inline]
    pub fn record_pool_miss(&mut self, addr: u64) {
        self.stats.pool_misses = self.stats.pool_misses.saturating_add(1);
        self.trace(EventKind::Alloc, addr);
    }

    /// Counts client node traversals (Fig. 5 denominator).
    #[inline]
    pub fn record_nodes_traversed(&mut self, n: u64) {
        self.stats.nodes_traversed = self.stats.nodes_traversed.saturating_add(n);
    }

    /// Traces an epoch/era advance (payload: the new epoch).
    #[inline]
    pub fn record_epoch_advance(&mut self, epoch: u64) {
        self.trace(EventKind::EpochAdvance, epoch);
    }

    /// Counts a backpressure help-scan this handle ran on behalf of
    /// laggards (the scan itself is counted separately by `record_empty`).
    #[inline]
    pub fn record_help_scan(&mut self) {
        self.stats.help_scans = self.stats.help_scans.saturating_add(1);
    }

    /// Counts one bounded throttle wait taken on the allocation path.
    #[inline]
    pub fn record_throttle_wait(&mut self) {
        self.stats.throttle_waits = self.stats.throttle_waits.saturating_add(1);
    }

    /// Pushes an event when tracing is armed for this handle; a single
    /// `Option` branch when it is not. A full ring drops the event and
    /// counts the drop — tracing never blocks.
    #[inline]
    pub fn trace(&mut self, kind: EventKind, payload: u64) {
        if let Some(ring) = &self.ring {
            ring.push(EventRecord::new(now_micros(), kind, self.tid, payload));
        }
    }

    /// Records a whole-operation latency sample (nanoseconds).
    #[inline]
    pub fn record_op_nanos(&mut self, nanos: u64) {
        self.op_hist.record(nanos);
    }

    /// Records an `empty()` scan latency sample (nanoseconds) into both
    /// the always-on `scan_nanos` counter and the scan histogram.
    #[inline]
    pub fn record_scan_nanos(&mut self, nanos: u64) {
        self.stats.scan_nanos = self.stats.scan_nanos.saturating_add(nanos);
        self.scan_hist.record(nanos);
    }

    /// Folds a scan timer into the always-on `scan_nanos` counter (the
    /// `scan_ns_per_free` bench column) and — when telemetry is armed —
    /// the scan-latency histogram. Scans are watermark-paced, so the two
    /// clock reads per scan are amortized over hundreds of retires.
    #[inline]
    pub fn record_scan_elapsed(&mut self, t0: Instant) {
        let nanos = t0.elapsed().as_nanos() as u64;
        self.stats.scan_nanos = self.stats.scan_nanos.saturating_add(nanos);
        if armed() {
            self.scan_hist.record(nanos);
        }
    }

    // -- read surface --

    /// The raw counters.
    #[inline]
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Mutable access to the raw counters — the escape hatch backing the
    /// deprecated `SmrHandle::stats_mut`; new code uses the `record_*`
    /// methods.
    #[doc(hidden)]
    pub fn stats_raw_mut(&mut self) -> &mut OpStats {
        &mut self.stats
    }

    /// One counter's current value.
    #[inline]
    pub fn counter(&self, c: Counter) -> u64 {
        counter_of(&self.stats, c)
    }

    /// The whole-operation latency histogram.
    pub fn op_latency(&self) -> &Histogram {
        &self.op_hist
    }

    /// The `empty()` scan latency histogram.
    pub fn scan_latency(&self) -> &Histogram {
        &self.scan_hist
    }

    /// The event ring, if tracing was armed when this handle registered.
    /// Clone the `Arc` and drain from any thread.
    pub fn events(&self) -> Option<Arc<EventRing>> {
        self.ring.clone()
    }

    /// A self-contained copy of counters, histograms, and the drop count,
    /// mergeable across handles.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            stats: self.stats.clone(),
            op_latency: self.op_hist.clone(),
            scan_latency: self.scan_hist.clone(),
            events_dropped: self.ring.as_ref().map_or(0, |r| r.dropped()),
        }
    }

    /// Zeroes counters and histograms (the event ring, if any, is kept).
    pub fn reset(&mut self) {
        self.stats = OpStats::default();
        self.op_hist.reset();
        self.scan_hist.reset();
    }
}

// ---------------------------------------------------------------------------
// The trait

/// The scheme-agnostic observability surface of every [`SmrHandle`]
/// (and, via `Deref`, every [`OpGuard`]): typed recorders for writers and
/// a snapshot/counter read surface for consumers. Handles implement the
/// two accessors; everything else is provided.
///
/// [`SmrHandle`]: crate::SmrHandle
/// [`OpGuard`]: crate::OpGuard
pub trait Telemetry {
    /// This handle's telemetry state.
    fn tele(&self) -> &HandleTelemetry;

    /// Mutable telemetry state.
    fn tele_mut(&mut self) -> &mut HandleTelemetry;

    /// Copies counters + histograms into a mergeable snapshot.
    fn snapshot(&self) -> TelemetrySnapshot {
        self.tele().snapshot()
    }

    /// Reads one counter.
    fn counter(&self, c: Counter) -> u64 {
        self.tele().counter(c)
    }

    /// The whole-operation latency histogram (samples only when armed).
    fn op_latency(&self) -> &Histogram {
        self.tele().op_latency()
    }

    /// The `empty()` scan latency histogram (samples only when armed).
    fn scan_latency(&self) -> &Histogram {
        self.tele().scan_latency()
    }

    /// The handle's event ring, if tracing was armed at registration.
    fn events(&self) -> Option<Arc<EventRing>> {
        self.tele().events()
    }

    /// Counts one protection-path fence, attributed to its call site.
    fn record_fence(&mut self, site: FenceSite) {
        self.tele_mut().record_fence(site);
    }

    /// Counts one client node traversal (Fig. 5 denominator) — the typed
    /// replacement for bumping `stats_mut().nodes_traversed`.
    fn record_node_traversed(&mut self) {
        self.tele_mut().record_nodes_traversed(1);
    }

    /// Counts `n` client node traversals at once.
    fn record_nodes_traversed(&mut self, n: u64) {
        self.tele_mut().record_nodes_traversed(n);
    }

    /// Traces a custom event through this handle's ring.
    fn trace(&mut self, kind: EventKind, payload: u64) {
        self.tele_mut().trace(kind, payload);
    }

    /// Zeroes counters and histograms (used to scope a measurement window;
    /// the event ring is kept).
    fn reset_telemetry(&mut self) {
        self.tele_mut().reset();
    }
}

// ---------------------------------------------------------------------------
// Snapshot

/// A self-contained, mergeable copy of one handle's telemetry: counters,
/// both latency histograms, and the event-drop count. This is the only
/// read path the bench driver and examples use — `OpStats` fields are no
/// longer touched directly outside the schemes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    stats: OpStats,
    op_latency: Histogram,
    scan_latency: Histogram,
    events_dropped: u64,
}

impl TelemetrySnapshot {
    /// Merges `other` into `self` (saturating; order-independent).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.stats.merge(&other.stats);
        self.op_latency.merge(&other.op_latency);
        self.scan_latency.merge(&other.scan_latency);
        self.events_dropped = self.events_dropped.saturating_add(other.events_dropped);
    }

    /// Reads one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        counter_of(&self.stats, c)
    }

    /// Protection-path fences.
    pub fn fences(&self) -> u64 {
        self.stats.fences
    }

    /// Fences issued at operation start.
    pub fn fences_start_op(&self) -> u64 {
        self.stats.fences_start_op
    }

    /// Fences issued at operation end.
    pub fn fences_end_op(&self) -> u64 {
        self.stats.fences_end_op
    }

    /// Fences issued by mid-op protection announcements.
    pub fn fences_announce(&self) -> u64 {
        self.stats.fences_announce
    }

    /// Fences issued by hazard-pointer protection stores.
    pub fn fences_hp_protect(&self) -> u64 {
        self.stats.fences_hp_protect
    }

    /// Client node traversals.
    pub fn nodes_traversed(&self) -> u64 {
        self.stats.nodes_traversed
    }

    /// Operations started.
    pub fn ops(&self) -> u64 {
        self.stats.ops
    }

    /// Nodes allocated.
    pub fn allocs(&self) -> u64 {
        self.stats.allocs
    }

    /// Nodes retired.
    pub fn retires(&self) -> u64 {
        self.stats.retires
    }

    /// Nodes reclaimed.
    pub fn frees(&self) -> u64 {
        self.stats.frees
    }

    /// Reclamation passes.
    pub fn empties(&self) -> u64 {
        self.stats.empties
    }

    /// MP hazard-pointer fallback reads.
    pub fn hp_fallback_reads(&self) -> u64 {
        self.stats.hp_fallback_reads
    }

    /// MP `USE_HP` collision allocations.
    pub fn collision_allocs(&self) -> u64 {
        self.stats.collision_allocs
    }

    /// Pool-served node allocations.
    pub fn pool_hits(&self) -> u64 {
        self.stats.pool_hits
    }

    /// System-allocator node allocations.
    pub fn pool_misses(&self) -> u64 {
        self.stats.pool_misses
    }

    /// Scans that grew a scratch buffer.
    pub fn scan_heap_allocs(&self) -> u64 {
        self.stats.scan_heap_allocs
    }

    /// Scans that adopted a peer's published protection snapshot.
    pub fn snapshot_reuses(&self) -> u64 {
        self.stats.snapshot_reuses
    }

    /// Registrations that reused a previously released tid.
    pub fn tid_recycles(&self) -> u64 {
        self.stats.tid_recycles
    }

    /// Wall nanoseconds spent inside `empty()` scans.
    pub fn scan_nanos(&self) -> u64 {
        self.stats.scan_nanos
    }

    /// Backpressure help-scans run on behalf of laggards.
    pub fn help_scans(&self) -> u64 {
        self.stats.help_scans
    }

    /// Bounded backpressure throttle waits on the allocation path.
    pub fn throttle_waits(&self) -> u64 {
        self.stats.throttle_waits
    }

    /// Scan nanoseconds per reclaimed node (amortized reclamation cost).
    pub fn scan_ns_per_free(&self) -> f64 {
        self.stats.scan_ns_per_free()
    }

    /// Fences per traversed node (Fig. 5 y-axis).
    pub fn fences_per_node(&self) -> f64 {
        self.stats.fences_per_node()
    }

    /// Average retired-list length at op start (Fig. 6 y-axis).
    pub fn avg_retired_at_op_start(&self) -> f64 {
        self.stats.avg_retired_at_op_start()
    }

    /// Fraction of node allocations served by the block pool.
    pub fn pool_hit_rate(&self) -> f64 {
        self.stats.pool_hit_rate()
    }

    /// Heap allocations per operation.
    pub fn allocs_per_op(&self) -> f64 {
        self.stats.allocs_per_op()
    }

    /// The whole-operation latency histogram.
    pub fn op_latency(&self) -> &Histogram {
        &self.op_latency
    }

    /// The scan latency histogram.
    pub fn scan_latency(&self) -> &Histogram {
        &self.scan_latency
    }

    /// Events rejected by full rings.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }
}

// ---------------------------------------------------------------------------
// Per-scheme state

/// One waste-series sample: wasted memory at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WasteSample {
    /// Microseconds since the telemetry epoch.
    pub t_micros: u64,
    /// Retired-but-unreclaimed nodes (scheme-wide, incl. orphans).
    pub pending_nodes: u64,
    /// Retired-but-unreclaimed bytes (scheme-wide, incl. orphans).
    pub pending_bytes: u64,
}

struct WasteSlot {
    /// `t_micros + 1`; 0 marks an empty slot.
    stamp: AtomicU64,
    nodes: AtomicU64,
    bytes: AtomicU64,
}

/// A fixed-capacity overwrite ring of [`WasteSample`]s — the Fig. 6 curve
/// as a live time-series. Writers ([`Smr::sample_waste`]) are lock-free
/// (three relaxed stores); readers may observe a torn in-flight sample,
/// which is acceptable for a monitoring series.
///
/// [`Smr::sample_waste`]: crate::Smr::sample_waste
pub struct WasteSeries {
    slots: Box<[WasteSlot]>,
    next: AtomicUsize,
}

/// Samples kept per scheme (oldest overwritten first).
pub const WASTE_SERIES_CAPACITY: usize = 256;

impl WasteSeries {
    fn new() -> WasteSeries {
        WasteSeries {
            slots: (0..WASTE_SERIES_CAPACITY)
                .map(|_| WasteSlot {
                    stamp: AtomicU64::new(0),
                    nodes: AtomicU64::new(0),
                    bytes: AtomicU64::new(0),
                })
                .collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Appends a sample (overwrites the oldest once full). Allocation-free.
    pub fn record(&self, pending_nodes: u64, pending_bytes: u64) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let slot = &self.slots[i];
        slot.stamp.store(now_micros().saturating_add(1), Ordering::Relaxed);
        slot.nodes.store(pending_nodes, Ordering::Relaxed);
        slot.bytes.store(pending_bytes, Ordering::Relaxed);
    }

    /// The retained samples in chronological order.
    pub fn samples(&self) -> Vec<WasteSample> {
        let mut out: Vec<WasteSample> = self
            .slots
            .iter()
            .filter_map(|s| {
                let stamp = s.stamp.load(Ordering::Relaxed);
                if stamp == 0 {
                    return None;
                }
                Some(WasteSample {
                    t_micros: stamp - 1,
                    pending_nodes: s.nodes.load(Ordering::Relaxed),
                    pending_bytes: s.bytes.load(Ordering::Relaxed),
                })
            })
            .collect();
        out.sort_by_key(|s| s.t_micros);
        out
    }

    /// The most recent sample, if any were recorded.
    pub fn latest(&self) -> Option<WasteSample> {
        self.samples().into_iter().next_back()
    }
}

/// Scheme-wide telemetry: the pending-waste gauge every scheme already
/// kept (now tracking bytes alongside nodes), the waste time-series, and
/// the backpressure ladder state. Returned by
/// [`Smr::telemetry`](crate::Smr::telemetry).
pub struct SchemeTelemetry {
    pub(crate) pending: PendingGauge,
    waste: WasteSeries,
    backpressure: crate::backpressure::BackpressureState,
}

impl Default for SchemeTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl SchemeTelemetry {
    /// Fresh state (constructed by each scheme's `new`).
    pub fn new() -> SchemeTelemetry {
        SchemeTelemetry {
            pending: PendingGauge::default(),
            waste: WasteSeries::new(),
            backpressure: crate::backpressure::BackpressureState::new(),
        }
    }

    /// Retired-but-unreclaimed nodes right now (the paper's wasted
    /// memory), including orphans.
    pub fn pending(&self) -> usize {
        self.pending.get()
    }

    /// Retired-but-unreclaimed payload bytes right now, for this scheme
    /// instance only (orphans included). This is the gauge backpressure
    /// decisions read.
    pub fn pending_bytes(&self) -> usize {
        self.pending.bytes()
    }

    /// The waste time-series.
    pub fn waste(&self) -> &WasteSeries {
        &self.waste
    }

    /// The backpressure ladder state: current rung plus engagement /
    /// release counters (see [`crate::backpressure`]).
    pub fn backpressure(&self) -> &crate::backpressure::BackpressureState {
        &self.backpressure
    }
}

// ---------------------------------------------------------------------------
// Background sampler

/// A background thread that periodically calls
/// [`Smr::sample_waste`](crate::Smr::sample_waste), turning the Fig. 6
/// wasted-memory metric into a live curve without any instrumentation in
/// the workload. Stops and joins on drop.
pub struct WasteSampler {
    stop: Arc<std::sync::atomic::AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl WasteSampler {
    /// Samples `smr`'s waste gauge every `interval` until dropped.
    pub fn spawn<S: crate::Smr>(smr: Arc<S>, interval: std::time::Duration) -> WasteSampler {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            while !flag.load(Ordering::Acquire) {
                smr.sample_waste();
                std::thread::sleep(interval);
            }
        });
        WasteSampler { stop, join: Some(join) }
    }
}

impl Drop for WasteSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_record_is_16_bytes_and_round_trips() {
        assert_eq!(core::mem::size_of::<EventRecord>(), 16);
        let r = EventRecord::new(123_456, EventKind::HpFallback, 7, 0xdead_beef);
        assert_eq!(r.t_micros(), 123_456);
        assert_eq!(r.kind(), Some(EventKind::HpFallback));
        assert_eq!(r.tid(), 7);
        assert_eq!(r.payload, 0xdead_beef);
        // Timestamp truncates to 40 bits without corrupting kind/tid.
        let far = EventRecord::new(u64::MAX, EventKind::Alloc, u16::MAX, 1);
        assert_eq!(far.t_micros(), TS_MASK);
        assert_eq!(far.kind(), Some(EventKind::Alloc));
        assert_eq!(far.tid(), u16::MAX);
    }

    #[test]
    fn recorders_map_to_counters() {
        let mut t = HandleTelemetry::new(3);
        t.record_fence(FenceSite::StartOp);
        t.record_op_start(5);
        t.record_op_start(7);
        t.record_alloc();
        t.record_retire(0x10);
        t.record_free(0x10);
        t.record_empty();
        t.record_hp_fallback(0x20);
        t.record_collision_alloc(9);
        t.record_pool_hit(0x30);
        t.record_pool_miss(0x40);
        t.record_nodes_traversed(4);
        t.record_scan_heap_alloc();
        t.record_snapshot_reuse();
        t.record_tid_recycle();
        t.record_scan_nanos(500);
        t.record_help_scan();
        t.record_throttle_wait();
        t.record_fence(FenceSite::EndOp);
        t.record_fence(FenceSite::Announce);
        t.record_fence(FenceSite::Announce);
        t.record_fence(FenceSite::HpProtect);
        assert_eq!(t.counter(Counter::Fences), 5);
        assert_eq!(t.counter(Counter::FencesStartOp), 1);
        assert_eq!(t.counter(Counter::FencesEndOp), 1);
        assert_eq!(t.counter(Counter::FencesAnnounce), 2);
        assert_eq!(t.counter(Counter::FencesHpProtect), 1);
        assert_eq!(t.counter(Counter::Ops), 2);
        assert_eq!(t.counter(Counter::RetiredSampledSum), 12);
        assert_eq!(t.counter(Counter::Allocs), 1);
        assert_eq!(t.counter(Counter::Retires), 1);
        assert_eq!(t.counter(Counter::Frees), 1);
        assert_eq!(t.counter(Counter::Empties), 1);
        assert_eq!(t.counter(Counter::HpFallbackReads), 1);
        assert_eq!(t.counter(Counter::CollisionAllocs), 1);
        assert_eq!(t.counter(Counter::PoolHits), 1);
        assert_eq!(t.counter(Counter::PoolMisses), 1);
        assert_eq!(t.counter(Counter::NodesTraversed), 4);
        assert_eq!(t.counter(Counter::ScanHeapAllocs), 1);
        assert_eq!(t.counter(Counter::SnapshotReuses), 1);
        assert_eq!(t.counter(Counter::TidRecycles), 1);
        assert_eq!(t.counter(Counter::ScanNanos), 500);
        assert_eq!(t.counter(Counter::HelpScans), 1);
        assert_eq!(t.counter(Counter::ThrottleWaits), 1);

        let mut snap = t.snapshot();
        snap.merge(&t.snapshot());
        assert_eq!(snap.ops(), 4);
        assert_eq!(snap.counter(Counter::RetiredSampledSum), 24);

        t.reset();
        assert_eq!(t.counter(Counter::Ops), 0);
        assert_eq!(t.op_latency().count(), 0);
    }

    #[test]
    fn hp_fallback_traces_are_sampled() {
        let mut t = HandleTelemetry::new(1);
        t.ring = Some(Arc::new(EventRing::new(1024)));
        for i in 0..(3 * HP_FALLBACK_SAMPLE) {
            t.record_hp_fallback(i);
        }
        assert_eq!(t.counter(Counter::HpFallbackReads), 3 * HP_FALLBACK_SAMPLE);
        let ring = t.events().expect("ring installed");
        let mut traced = 0u64;
        ring.drain(|rec| {
            assert_eq!(rec.kind(), Some(EventKind::HpFallback));
            traced += 1;
        });
        assert_eq!(traced, 3, "exactly one trace per {HP_FALLBACK_SAMPLE} fallback reads");
    }

    #[test]
    fn waste_series_retains_in_order_and_overwrites() {
        let w = WasteSeries::new();
        assert!(w.samples().is_empty());
        assert_eq!(w.latest(), None);
        for i in 0..(WASTE_SERIES_CAPACITY as u64 + 10) {
            w.record(i, i * 64);
        }
        let samples = w.samples();
        assert_eq!(samples.len(), WASTE_SERIES_CAPACITY, "ring overwrites, never grows");
        // Chronological and the newest value survived.
        for pair in samples.windows(2) {
            assert!(pair[0].t_micros <= pair[1].t_micros);
        }
        assert!(samples.iter().any(|s| s.pending_nodes == WASTE_SERIES_CAPACITY as u64 + 9));
        assert_eq!(w.latest().unwrap().pending_bytes % 64, 0);
    }

    #[test]
    fn counter_names_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate counter name {}", c.name());
        }
        assert_eq!(seen.len(), 22);
        // The per-site counters always sum to the aggregate in recorded
        // state (enforced by `record_fence` taking a site), and their names
        // share the `fences_` prefix for exporter grouping.
        for c in
            [Counter::FencesStartOp, Counter::FencesEndOp, Counter::FencesAnnounce, Counter::FencesHpProtect]
        {
            assert!(c.name().starts_with("fences_"), "{} misnamed", c.name());
        }
    }
}
