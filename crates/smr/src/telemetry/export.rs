//! Telemetry exporters: Prometheus text exposition and JSON.
//!
//! Both renderers take a merged [`TelemetrySnapshot`] plus the scheme's
//! waste time-series and produce a self-contained string; no I/O happens
//! unless the caller asks for it via [`write_artifacts`], which writes
//! `telemetry_<scheme>.prom` / `.json` into the same output directory the
//! bench reports use (`MP_BENCH_DIR`, default `target/bench-results`).
//!
//! The module also ships the validators the CI smoke stage runs
//! ([`validate_prometheus`], [`validate_json`]) so output-format checks
//! stay hermetic — no Python or external promtool needed.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use mp_util::hist::{bucket_bound, Histogram};

use crate::backpressure::BackpressureState;

use super::{Counter, TelemetrySnapshot, WasteSample};

/// Output directory for exporter artifacts: `MP_BENCH_DIR` if set (the
/// bench-report convention), else `target/bench-results`.
pub fn out_dir() -> PathBuf {
    match std::env::var_os("MP_BENCH_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("target").join("bench-results"),
    }
}

fn metric_prefix() -> &'static str {
    "mp"
}

fn push_histogram(
    out: &mut String,
    name: &str,
    scheme: &str,
    unit_help: &str,
    h: &Histogram,
) {
    let _ = writeln!(out, "# HELP {name} {unit_help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &c) in h.buckets().iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum = cum.saturating_add(c);
        let _ = writeln!(
            out,
            "{name}_bucket{{scheme=\"{scheme}\",le=\"{}\"}} {cum}",
            bucket_bound(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{scheme=\"{scheme}\",le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum{{scheme=\"{scheme}\"}} {}", h.sum());
    let _ = writeln!(out, "{name}_count{{scheme=\"{scheme}\"}} {}", h.count());
}

/// Renders the snapshot in Prometheus text exposition format: one
/// `mp_<counter>_total` counter per [`Counter`], both latency histograms
/// with cumulative power-of-two buckets, the waste gauges (latest sample
/// of the series), and — when `bp` is given — the scheme's backpressure
/// ladder state (current level plus engagement/release totals).
pub fn prometheus_text(
    scheme: &str,
    snap: &TelemetrySnapshot,
    waste: &[WasteSample],
    bp: Option<&BackpressureState>,
) -> String {
    let p = metric_prefix();
    let mut out = String::with_capacity(4096);
    for c in Counter::ALL {
        let name = format!("{p}_{}_total", c.name());
        let _ = writeln!(out, "# HELP {name} SMR per-handle counter `{}`.", c.name());
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name}{{scheme=\"{scheme}\"}} {}", snap.counter(c));
    }
    push_histogram(
        &mut out,
        &format!("{p}_op_latency_nanos"),
        scheme,
        "Whole-operation latency in nanoseconds (armed runs only).",
        snap.op_latency(),
    );
    push_histogram(
        &mut out,
        &format!("{p}_scan_latency_nanos"),
        scheme,
        "empty() reclamation-scan latency in nanoseconds (armed runs only).",
        snap.scan_latency(),
    );
    let name = format!("{p}_events_dropped_total");
    let _ = writeln!(out, "# HELP {name} Trace events rejected by full rings.");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name}{{scheme=\"{scheme}\"}} {}", snap.events_dropped());
    if let Some(last) = waste.last() {
        for (gauge, v) in [
            ("wasted_nodes", last.pending_nodes),
            ("wasted_bytes", last.pending_bytes),
        ] {
            let name = format!("{p}_{gauge}");
            let _ = writeln!(out, "# HELP {name} Retired-but-unreclaimed memory (latest sample).");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{{scheme=\"{scheme}\"}} {v}");
        }
    }
    if let Some(bp) = bp {
        let name = format!("{p}_backpressure_level");
        let _ = writeln!(
            out,
            "# HELP {name} Backpressure ladder level (0 normal, 1 help-scan, 2 throttle)."
        );
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name}{{scheme=\"{scheme}\"}} {}", bp.level() as u8);
        for (metric, help, v) in [
            ("help_engagements", "help-scan rung", bp.help_engagements()),
            ("throttle_engagements", "throttle rung", bp.throttle_engagements()),
            ("releases", "drops back to normal", bp.releases()),
        ] {
            let name = format!("{p}_backpressure_{metric}_total");
            let _ = writeln!(out, "# HELP {name} Backpressure ladder transitions: {help}.");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{{scheme=\"{scheme}\"}} {v}");
        }
    }
    out
}

fn json_hist(out: &mut String, h: &Histogram) {
    let _ = write!(out, "{{\"count\": {}, \"sum_nanos\": {}, \"buckets\": [", h.count(), h.sum());
    let mut first = true;
    for (i, &c) in h.buckets().iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{{\"le\": {}, \"count\": {c}}}", bucket_bound(i));
    }
    out.push_str("]}");
}

/// Renders the snapshot as a self-contained JSON document (schema
/// `mp-telemetry/v1`): counters, derived ratios, both histograms (sparse
/// buckets), the waste time-series, the event-drop count, and — when `bp`
/// is given — a `backpressure` object with the ladder state.
pub fn json(
    scheme: &str,
    snap: &TelemetrySnapshot,
    waste: &[WasteSample],
    bp: Option<&BackpressureState>,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema\": \"mp-telemetry/v1\",\n");
    let _ = writeln!(out, "  \"scheme\": \"{scheme}\",");
    out.push_str("  \"counters\": {");
    for (i, c) in Counter::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", c.name(), snap.counter(*c));
    }
    out.push_str("},\n  \"derived\": {");
    let _ = write!(
        out,
        "\"fences_per_node\": {:.6}, \"avg_retired_at_op_start\": {:.6}, \
         \"pool_hit_rate\": {:.6}, \"allocs_per_op\": {:.6}",
        snap.fences_per_node(),
        snap.avg_retired_at_op_start(),
        snap.pool_hit_rate(),
        snap.allocs_per_op()
    );
    out.push_str("},\n  \"op_latency\": ");
    json_hist(&mut out, snap.op_latency());
    out.push_str(",\n  \"scan_latency\": ");
    json_hist(&mut out, snap.scan_latency());
    let _ = write!(out, ",\n  \"events_dropped\": {}", snap.events_dropped());
    if let Some(bp) = bp {
        let level = bp.level();
        let _ = write!(
            out,
            ",\n  \"backpressure\": {{\"level\": {}, \"level_name\": \"{}\", \
             \"help_engagements\": {}, \"throttle_engagements\": {}, \"releases\": {}}}",
            level as u8,
            level.name(),
            bp.help_engagements(),
            bp.throttle_engagements(),
            bp.releases()
        );
    }
    out.push_str(",\n  \"waste\": [");
    for (i, s) in waste.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"t_micros\": {}, \"nodes\": {}, \"bytes\": {}}}",
            s.t_micros, s.pending_nodes, s.pending_bytes
        );
    }
    out.push_str("]\n}\n");
    out
}

/// Writes both exposition formats into [`out_dir`] as
/// `telemetry_<scheme>.prom` and `telemetry_<scheme>.json` (scheme name
/// lowercased); returns the two paths.
pub fn write_artifacts(
    scheme: &str,
    snap: &TelemetrySnapshot,
    waste: &[WasteSample],
    bp: Option<&BackpressureState>,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let dir = out_dir();
    std::fs::create_dir_all(&dir)?;
    let stem = scheme.to_lowercase().replace([' ', '/'], "_");
    let prom_path = dir.join(format!("telemetry_{stem}.prom"));
    let json_path = dir.join(format!("telemetry_{stem}.json"));
    std::fs::write(&prom_path, prometheus_text(scheme, snap, waste, bp))?;
    std::fs::write(&json_path, json(scheme, snap, waste, bp))?;
    Ok((prom_path, json_path))
}

/// Convenience for scripts: validates files produced by
/// [`write_artifacts`]. Returns the number of Prometheus samples parsed.
pub fn validate_artifact_files(prom: &Path, json_file: &Path) -> Result<usize, String> {
    let prom_text = std::fs::read_to_string(prom).map_err(|e| format!("{}: {e}", prom.display()))?;
    let json_text =
        std::fs::read_to_string(json_file).map_err(|e| format!("{}: {e}", json_file.display()))?;
    let samples = validate_prometheus(&prom_text)?;
    validate_json(&json_text)?;
    Ok(samples)
}

// ---------------------------------------------------------------------------
// Validators (used by CI's telemetry smoke stage and the test suite)

/// Checks Prometheus text exposition syntax: every non-comment, non-blank
/// line must be `name{labels} value` (or `name value`) with a parseable
/// float value and balanced, quoted labels. Returns the sample count.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        let (name_labels, value) =
            line.rsplit_once(' ').ok_or_else(|| err("expected `name value`"))?;
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            return Err(err("unparseable sample value"));
        }
        let name_part = match name_labels.split_once('{') {
            None => name_labels,
            Some((name, rest)) => {
                let labels =
                    rest.strip_suffix('}').ok_or_else(|| err("unbalanced label braces"))?;
                for pair in labels.split(',') {
                    let (k, v) =
                        pair.split_once('=').ok_or_else(|| err("label missing `=`"))?;
                    if k.is_empty()
                        || !v.starts_with('"')
                        || !v.ends_with('"')
                        || v.len() < 2
                    {
                        return Err(err("label value must be quoted"));
                    }
                }
                name
            }
        };
        if name_part.is_empty()
            || !name_part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name_part.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(err("invalid metric name"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".into());
    }
    Ok(samples)
}

/// A minimal recursive-descent JSON syntax checker (values are not
/// retained). Accepts exactly the RFC 8259 grammar; enough to prove the
/// exporter emits well-formed JSON without an external parser.
pub fn validate_json(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => expect_lit(b, pos, b"true"),
        Some(b'f') => expect_lit(b, pos, b"false"),
        Some(b'n') => expect_lit(b, pos, b"null"),
        Some(_) => parse_number(b, pos),
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(()),
            b'\\' => {
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control char in string at byte {pos}")),
            _ => {}
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("expected a value at byte {start}"));
    }
    // No leading zeros: "0" alone is fine, "01" is not.
    if b[int_start] == b'0' && *pos - int_start > 1 {
        return Err(format!("leading zero at byte {int_start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("bad fraction at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("bad exponent at byte {pos}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::HandleTelemetry;
    use super::*;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut t = HandleTelemetry::new(0);
        t.record_op_start(3);
        t.record_fence(crate::stats::FenceSite::StartOp);
        t.record_alloc();
        t.record_pool_hit(0x100);
        t.record_retire(0x100);
        t.record_free(0x100);
        t.record_op_nanos(1_234);
        t.record_op_nanos(999_999);
        t.record_scan_nanos(50_000);
        t.snapshot()
    }

    fn sample_waste() -> Vec<WasteSample> {
        vec![
            WasteSample { t_micros: 10, pending_nodes: 4, pending_bytes: 256 },
            WasteSample { t_micros: 20, pending_nodes: 2, pending_bytes: 128 },
        ]
    }

    #[test]
    fn prometheus_output_is_valid_and_complete() {
        let text = prometheus_text("MP", &sample_snapshot(), &sample_waste(), None);
        let samples = validate_prometheus(&text).expect("must validate");
        // 13 counters + 2 histograms (≥3 lines each) + drops + 2 gauges.
        assert!(samples >= 13 + 6 + 1 + 2, "got {samples} samples:\n{text}");
        assert!(text.contains("# TYPE mp_ops_total counter"));
        assert!(text.contains("mp_ops_total{scheme=\"MP\"} 1"));
        assert!(text.contains("# TYPE mp_op_latency_nanos histogram"));
        assert!(text.contains("mp_op_latency_nanos_count{scheme=\"MP\"} 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("mp_wasted_nodes{scheme=\"MP\"} 2"), "latest waste sample");
        assert!(!text.contains("backpressure"), "no ladder metrics without state");
    }

    #[test]
    fn prometheus_exports_the_backpressure_ladder() {
        let bp = BackpressureState::new();
        let text = prometheus_text("MP", &sample_snapshot(), &sample_waste(), Some(&bp));
        validate_prometheus(&text).expect("must validate");
        assert!(text.contains("mp_backpressure_level{scheme=\"MP\"} 0"));
        assert!(text.contains("mp_backpressure_help_engagements_total{scheme=\"MP\"} 0"));
        assert!(text.contains("mp_backpressure_throttle_engagements_total{scheme=\"MP\"} 0"));
        assert!(text.contains("mp_backpressure_releases_total{scheme=\"MP\"} 0"));
    }

    #[test]
    fn json_output_is_valid_and_complete() {
        let doc = json("MP", &sample_snapshot(), &sample_waste(), None);
        validate_json(&doc).expect("must be well-formed JSON");
        assert!(doc.contains("\"schema\": \"mp-telemetry/v1\""));
        assert!(doc.contains("\"scheme\": \"MP\""));
        assert!(doc.contains("\"ops\": 1"));
        assert!(doc.contains("\"t_micros\": 20"));
        // Histogram buckets are cumulative-free sparse counts.
        assert!(doc.contains("\"op_latency\": {\"count\": 2"));
    }

    #[test]
    fn json_exports_the_backpressure_ladder() {
        let bp = BackpressureState::new();
        let doc = json("MP", &sample_snapshot(), &sample_waste(), Some(&bp));
        validate_json(&doc).expect("must be well-formed JSON");
        assert!(doc.contains("\"backpressure\": {\"level\": 0, \"level_name\": \"normal\""));
        assert!(doc.contains("\"help_engagements\": 0"));
    }

    #[test]
    fn empty_snapshot_still_exports_cleanly() {
        let snap = TelemetrySnapshot::default();
        let text = prometheus_text("HE", &snap, &[], None);
        assert!(validate_prometheus(&text).unwrap() >= 13);
        validate_json(&json("HE", &snap, &[], None)).unwrap();
    }

    #[test]
    fn validators_reject_malformed_input() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("1bad_name 3\n").is_err());
        assert!(validate_prometheus("m{scheme=\"x\" 3\n").is_err(), "unbalanced braces");
        assert!(validate_prometheus("m{scheme=x} 3\n").is_err(), "unquoted label");
        assert!(validate_prometheus("m{scheme=\"x\"} notanumber\n").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\": 01}").is_err(), "leading zero");
        assert!(validate_json("{\"a\": 1,}").is_err(), "trailing comma");
        assert!(validate_json("[1, 2] x").is_err(), "trailing garbage");
        assert!(validate_json("{\"a\": [1, {\"b\": -2.5e3}], \"c\": null}").is_ok());
    }

    #[test]
    fn artifacts_written_under_out_dir() {
        let dir = std::env::temp_dir().join(format!("mp-telemetry-test-{}", std::process::id()));
        // Scoped env override: tests in this binary run in threads, so set
        // and restore carefully around the call.
        let prev = std::env::var_os("MP_BENCH_DIR");
        std::env::set_var("MP_BENCH_DIR", &dir);
        let result = write_artifacts("MP", &sample_snapshot(), &sample_waste(), None);
        match prev {
            Some(v) => std::env::set_var("MP_BENCH_DIR", v),
            None => std::env::remove_var("MP_BENCH_DIR"),
        }
        let (prom, json_path) = result.expect("write");
        assert!(prom.starts_with(&dir) && prom.ends_with("telemetry_mp.prom"));
        let n = validate_artifact_files(&prom, &json_path).expect("validate");
        assert!(n > 15);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
