//! Deeper MP-specific properties: ablation parity, multi-reader epoch
//! interactions, and dual-protection corners.

use std::sync::atomic::Ordering;

use mp_smr::schemes::Mp;
use mp_smr::{Atomic, Config, IndexPolicy, Shared, Smr, SmrHandle};

fn cfg() -> Config {
    Config::default().with_max_threads(3).with_empty_freq(1).with_scan_watermark(1).with_epoch_freq(1000)
}

/// The snapshot-optimized and naive reclamation scans must agree on every
/// keep/free decision — the optimization is performance-only.
#[test]
fn snapshot_and_naive_scans_agree() {
    for naive in [false, true] {
        let smr = Mp::new(cfg().with_naive_scan(naive));
        let mut reader = smr.register();
        let mut writer = smr.register();
        writer.start_op();
        reader.start_op();

        // Reader protects three scattered margins.
        let mut pinned_cells = Vec::new();
        for (i, idx) in [1u32 << 20, 1 << 24, 1 << 28].iter().enumerate() {
            let n = writer.alloc_with_index(0u32, *idx);
            let cell = Atomic::new(n);
            let got = reader.read(&cell, i);
            assert_eq!(got, n);
            pinned_cells.push((cell, n));
        }
        // Retire nodes inside and outside the margins.
        let mut expect_kept = 0;
        for idx in [
            (1u32 << 20) + 5,       // inside margin 0
            (1 << 24) - 100,        // inside margin 1
            (1 << 28) + 1000,       // inside margin 2
            (1 << 22),              // far from everything
            (1 << 30),              // far
        ] {
            let probe = writer.alloc_with_index(0u32, idx);
            // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
            unsafe { writer.retire(probe) };
            let half = 1u32 << 19; // margin 2^20
            let covered = [1u32 << 20, 1 << 24, 1 << 28].iter().any(|&m| {
                // Forward-centered announcement: mid = block base + margin/2,
                // so the interval is [block base, block base + margin].
                let mid = (m & 0xffff_0000) as i64 + half as i64;
                let lo = (idx & 0xffff_0000) as i64;
                let hi = (idx | 0xffff) as i64;
                mid - (half as i64) <= hi && lo <= mid + half as i64
            });
            if covered {
                expect_kept += 1;
            }
        }
        writer.force_empty();
        assert_eq!(
            writer.retired_len(),
            expect_kept,
            "scan variant naive={naive} disagrees with the margin formula"
        );
        // Margins persist across end_op (fence amortization); only dropping
        // the handle withdraws them.
        reader.end_op();
        drop(reader);
        writer.end_op();
        for (cell, n) in pinned_cells {
            cell.store(Shared::null(), Ordering::Release);
            // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
            unsafe { writer.retire(n) };
        }
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
    }
}

/// Two readers announced at different epochs: the reclaimer must apply
/// each reader's own epoch filter, not a global minimum.
#[test]
fn per_reader_epoch_filters() {
    let smr = Mp::new(Config::default().with_max_threads(3).with_empty_freq(1).with_scan_watermark(1).with_epoch_freq(1));
    let mut early = smr.register();
    let mut late = smr.register();
    let mut writer = smr.register();

    writer.start_op();
    early.start_op(); // epoch e0

    // Early returns a margin-protected node before the epoch moves: this
    // consumes its per-op re-arm eligibility, so the later advance must
    // condemn it to the §4.3.2 HP fallback (the pre-amortization behavior).
    let warm = writer.alloc_with_index(0u32, 1 << 20);
    let warm_cell = Atomic::new(warm);
    let _ = early.read(&warm_cell, 1);

    // Advance the epoch (epoch_freq = 1: every retire bumps it).
    let junk = writer.alloc_with_index(0u8, 1);
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    unsafe { writer.retire(junk) };

    late.start_op(); // epoch e1 > e0

    // A node born & retired now: early's epoch e0 < birth ⇒ early's margins
    // cannot pin it; late's margins can.
    let n = writer.alloc_with_index(7u32, 1 << 24);
    let cell = Atomic::new(n);
    let _ = late.read(&cell, 0); // late margin covers 2^24
    let _ = early.read(&cell, 0); // early margin also covers it physically...
    cell.store(Shared::null(), Ordering::Release);
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    unsafe { writer.retire(n) };
    writer.force_empty();
    assert_eq!(writer.retired_len(), 1, "late reader must pin the node");

    // Margins persist across end_op; drop the handle to withdraw late's.
    late.end_op();
    drop(late);
    writer.force_empty();
    // Early announced before the node's birth; its margin alone must NOT
    // pin it (Theorem 4.2's filter) — but early holds a reference!
    // Safety is preserved because early's read detected the epoch change
    // and fell back to a hazard pointer:
    assert!(
        early.stats().hp_fallback_reads > 0,
        "early reader must have taken the HP fallback across the epoch change"
    );
    assert_eq!(writer.retired_len(), 1, "early's hazard still pins the node");
    // end_op releases the hazard; early's standing margin over 2^24 cannot
    // pin the node because its announced epoch e0 predates the birth.
    early.end_op();
    writer.force_empty();
    assert_eq!(writer.retired_len(), 0);

    // Teardown: `warm` was born at e0 under early's margin — only dropping
    // early releases it.
    drop(early);
    warm_cell.store(Shared::null(), Ordering::Release);
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    unsafe { writer.retire(warm) };
    writer.force_empty();
    assert_eq!(writer.retired_len(), 0);
    writer.end_op();
}

/// A node protected by BOTH a hazard (one reader) and a margin (another)
/// stays pinned until the last protection is gone.
#[test]
fn dual_protection_released_in_order() {
    let smr = Mp::new(cfg());
    let mut margin_reader = smr.register();
    let mut hazard_reader = smr.register();
    let mut writer = smr.register();
    writer.start_op();
    margin_reader.start_op();
    hazard_reader.start_op();

    // USE_HP-class node: hazard_reader protects by address.
    let hp_node = writer.alloc_with_index(1u32, u32::MAX);
    let hp_cell = Atomic::new(hp_node);
    let _ = hazard_reader.read(&hp_cell, 0);
    // Normal node in margin_reader's margin.
    let mp_node = writer.alloc_with_index(2u32, 1 << 22);
    let mp_cell = Atomic::new(mp_node);
    let _ = margin_reader.read(&mp_cell, 0);

    hp_cell.store(Shared::null(), Ordering::Release);
    mp_cell.store(Shared::null(), Ordering::Release);
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    unsafe {
        writer.retire(hp_node);
        writer.retire(mp_node);
    }
    writer.force_empty();
    assert_eq!(writer.retired_len(), 2);

    hazard_reader.end_op();
    writer.force_empty();
    assert_eq!(writer.retired_len(), 1, "margin still pins its node");

    // end_op keeps the margin standing (fence amortization); dropping the
    // handle is what finally withdraws the interval protection.
    margin_reader.end_op();
    writer.force_empty();
    assert_eq!(writer.retired_len(), 1, "standing margin outlives end_op");
    drop(margin_reader);
    writer.force_empty();
    assert_eq!(writer.retired_len(), 0);
    writer.end_op();
}

/// The AfterPred index policy produces in-gap indices too, just clustered;
/// order consistency must hold for both policies.
#[test]
fn index_policies_respect_interval() {
    for policy in [IndexPolicy::Midpoint, IndexPolicy::AfterPred] {
        let smr = Mp::new(cfg().with_index_policy(policy));
        let mut h = smr.register();
        h.start_op();
        let lo = h.alloc_with_index(0u8, 1000);
        let hi = h.alloc_with_index(0u8, 2000);
        let cl = Atomic::new(lo);
        let ch = Atomic::new(hi);
        let rl = h.read(&cl, 0);
        let rh = h.read(&ch, 1);
        h.update_lower_bound(rl);
        h.update_upper_bound(rh);
        let n = h.alloc(0u8);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        let idx = unsafe { n.deref() }.index();
        assert!(1000 < idx && idx < 2000, "{policy:?} gave {idx}");
        if policy == IndexPolicy::AfterPred {
            assert_eq!(idx, 1001);
        } else {
            assert_eq!(idx, 1500);
        }
        h.end_op();
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe {
            h.retire(n);
            h.retire(lo);
            h.retire(hi);
        }
        h.force_empty();
    }
}
