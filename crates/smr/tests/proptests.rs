//! Property-based tests for the SMR substrate: pointer packing, margin
//! interval arithmetic, and scheme-level protection invariants.

use proptest::prelude::*;

use mp_smr::node::{is_use_hp_class, USE_HP};
use mp_smr::schemes::{Hp, Mp};
use mp_smr::{Atomic, Config, Shared, Smr, SmrHandle};

proptest! {
    /// Packing a (pointer, index, mark) triple and reading it back loses
    /// only the low 16 index bits, exactly as specified (PRECISION = 16).
    #[test]
    fn packed_word_roundtrip(index in any::<u32>(), mark in 0u64..4) {
        let smr = Hp::new(Config::default().with_max_threads(1));
        let mut h = smr.register();
        let n = h.alloc_with_index(0u8, index);
        let m = n.with_mark(mark);
        prop_assert_eq!(m.packed_index(), (index >> 16) as u16);
        prop_assert_eq!(m.mark(), mark);
        prop_assert_eq!(m.as_raw(), n.as_raw());
        let (lo, hi) = m.index_bounds();
        prop_assert!(lo <= index && index <= hi);
        prop_assert_eq!(hi - lo, 0xffff);
        // Round-trip through an atomic cell.
        let cell = Atomic::new(m);
        prop_assert_eq!(cell.load(std::sync::atomic::Ordering::Relaxed), m);
        unsafe { h.retire(n) };
        h.force_empty();
    }

    /// A reader's margin protects exactly the indices within margin/2 of
    /// its announcement (modulo the 2^16 pointer-precision quantization):
    /// retired nodes inside are pinned, outside are reclaimed.
    #[test]
    fn margin_interval_protection(
        protected_index in 0u32..0xfff0_0000,
        probe_index in 0u32..0xfff0_0000,
    ) {
        let margin = 1u32 << 20;
        let cfg = Config::default()
            .with_max_threads(2)
            .with_empty_freq(1)
            .with_epoch_freq(1_000_000)
            .with_margin(margin);
        let smr = Mp::new(cfg);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        reader.start_op();
        let anchor = writer.alloc_with_index(0u32, protected_index);
        let cell = Atomic::new(anchor);
        let got = reader.read(&cell, 0);
        prop_assert_eq!(got, anchor);

        let probe = writer.alloc_with_index(1u32, probe_index);
        unsafe { writer.retire(probe) }; // empty_freq = 1 → judged now

        // The announced margin midpoint is the anchor's precision-block
        // midpoint; the reclaimer pins the probe iff the margin intersects
        // the probe's whole precision block.
        let mid = (protected_index & 0xffff_0000) as i64 + 0x8000;
        let p_lo = (probe_index & 0xffff_0000) as i64;
        let p_hi = (probe_index | 0xffff) as i64;
        let half = (margin / 2) as i64;
        let expect_pinned =
            !is_use_hp_class(probe_index) && mid - half <= p_hi && p_lo <= mid + half;
        prop_assert_eq!(
            writer.retired_len() == 1,
            expect_pinned,
            "probe {:#x} vs margin around {:#x}",
            probe_index,
            protected_index
        );

        reader.end_op();
        writer.end_op();
        cell.store(Shared::null(), std::sync::atomic::Ordering::Release);
        unsafe { writer.retire(anchor) };
        writer.force_empty();
        prop_assert_eq!(writer.retired_len(), 0);
    }

    /// Hazard-pointer protection is exact: a retired node is pinned iff
    /// some slot holds exactly its address.
    #[test]
    fn hp_protection_is_exact(protect in any::<bool>()) {
        let cfg = Config::default().with_max_threads(2).with_empty_freq(1);
        let smr = Hp::new(cfg);
        let mut reader = smr.register();
        let mut writer = smr.register();
        writer.start_op();
        reader.start_op();
        let n = writer.alloc(7u64);
        let cell = Atomic::new(n);
        if protect {
            let _ = reader.read(&cell, 0);
        }
        cell.store(Shared::null(), std::sync::atomic::Ordering::Release);
        unsafe { writer.retire(n) };
        prop_assert_eq!(writer.retired_len() == 1, protect);
        reader.end_op();
        writer.end_op();
        writer.force_empty();
        prop_assert_eq!(writer.retired_len(), 0);
    }

    /// MP's collision marker: allocating with an exhausted search interval
    /// always yields USE_HP; any wider interval yields a strictly interior
    /// index, preserving the order embedding.
    #[test]
    fn alloc_index_respects_interval(lo in 0u32..u32::MAX - 2, width in 0u32..1_000_000) {
        let hi = lo.saturating_add(width);
        let smr = Mp::new(Config::default().with_max_threads(1).with_epoch_freq(1_000_000));
        let mut h = smr.register();
        h.start_op();
        let a = h.alloc_with_index(0u8, lo);
        let b = h.alloc_with_index(0u8, hi);
        let ca = Atomic::new(a);
        let cb = Atomic::new(b);
        let ra = h.read(&ca, 0);
        let rb = h.read(&cb, 1);
        h.update_lower_bound(ra);
        h.update_upper_bound(rb);
        let n = h.alloc(0u8);
        let idx = unsafe { n.deref() }.index();
        if hi - lo <= 1 {
            prop_assert_eq!(idx, USE_HP);
        } else {
            prop_assert!(lo < idx && idx < hi, "idx {} not inside ({}, {})", idx, lo, hi);
        }
        h.end_op();
        unsafe {
            h.retire(n);
            h.retire(a);
            h.retire(b);
        }
        h.force_empty();
    }
}
