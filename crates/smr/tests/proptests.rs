//! Randomized tests for the SMR substrate: pointer packing, margin
//! interval arithmetic, and scheme-level protection invariants.
//!
//! Formerly `proptest`-based; now driven by the in-tree seeded PRNG so the
//! suite runs offline. Each test derives all of its random inputs from a
//! printed base seed — set `MP_CHECK_SEED` to replay a failure exactly.

use mp_util::check::DEFAULT_SEED;
use mp_util::{RngExt, SeedableRng, SmallRng};

use mp_smr::node::{is_use_hp_class, USE_HP};
use mp_smr::schemes::{Hp, Mp};
use mp_smr::{Atomic, Config, Shared, Smr, SmrHandle};

/// Per-test deterministic RNG; honors `MP_CHECK_SEED` for replays.
fn test_rng(salt: u64) -> (u64, SmallRng) {
    let seed = std::env::var("MP_CHECK_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(h) => u64::from_str_radix(h, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(DEFAULT_SEED);
    (seed, SmallRng::seed_from_u64(seed ^ salt))
}

const CASES: usize = 256;

/// Packing a (pointer, index, mark) triple and reading it back loses
/// only the low 16 index bits, exactly as specified (PRECISION = 16).
#[test]
fn packed_word_roundtrip() {
    let (seed, mut rng) = test_rng(0x01);
    let smr = Hp::new(Config::default().with_max_threads(1));
    let mut h = smr.register();
    for _ in 0..CASES {
        let index: u32 = rng.random_range(0..u32::MAX);
        let mark: u64 = rng.random_range(0..4u64);
        let ctx = format!("index {index:#x} mark {mark} (seed {seed:#x})");
        let n = h.alloc_with_index(0u8, index);
        let m = n.with_mark(mark);
        assert_eq!(m.packed_index(), (index >> 16) as u16, "{ctx}");
        assert_eq!(m.mark(), mark, "{ctx}");
        assert_eq!(m.as_raw(), n.as_raw(), "{ctx}");
        let (lo, hi) = m.index_bounds();
        assert!(lo <= index && index <= hi, "{ctx}");
        assert_eq!(hi - lo, 0xffff, "{ctx}");
        // Round-trip through an atomic cell.
        let cell = Atomic::new(m);
        assert_eq!(cell.load(std::sync::atomic::Ordering::Relaxed), m, "{ctx}");
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { h.retire(n) };
        h.force_empty();
    }
}

/// A reader's margin protects exactly the indices within margin/2 of
/// its announcement (modulo the 2^16 pointer-precision quantization):
/// retired nodes inside are pinned, outside are reclaimed.
#[test]
fn margin_interval_protection() {
    let (seed, mut rng) = test_rng(0x02);
    for _ in 0..CASES {
        let protected_index: u32 = rng.random_range(0..0xfff0_0000);
        let probe_index: u32 = rng.random_range(0..0xfff0_0000);
        let margin = 1u32 << 20;
        let cfg = Config::default()
            .with_max_threads(2)
            .with_empty_freq(1)
            .with_scan_watermark(1) // judge every retire immediately
            .with_epoch_freq(1_000_000)
            .with_margin(margin);
        let smr = Mp::new(cfg);
        let mut reader = smr.register();
        let mut writer = smr.register();

        writer.start_op();
        reader.start_op();
        let anchor = writer.alloc_with_index(0u32, protected_index);
        let cell = Atomic::new(anchor);
        let got = reader.read(&cell, 0);
        assert_eq!(got, anchor);

        let probe = writer.alloc_with_index(1u32, probe_index);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { writer.retire(probe) }; // empty_freq = 1 → judged now

        // The announced margin is forward-centered on the anchor's
        // precision-block base (mid = base + margin/2, so the interval is
        // [base, base + margin]); the reclaimer pins the probe iff the
        // margin intersects the probe's whole precision block.
        let half_cfg = (margin / 2) as i64;
        let mid = (protected_index & 0xffff_0000) as i64 + half_cfg;
        let p_lo = (probe_index & 0xffff_0000) as i64;
        let p_hi = (probe_index | 0xffff) as i64;
        let half = (margin / 2) as i64;
        let expect_pinned =
            !is_use_hp_class(probe_index) && mid - half <= p_hi && p_lo <= mid + half;
        assert_eq!(
            writer.retired_len() == 1,
            expect_pinned,
            "probe {probe_index:#x} vs margin around {protected_index:#x} (seed {seed:#x})"
        );

        // Margins persist across end_op (fence amortization): drop the
        // reader handle to withdraw its interval before the teardown scan.
        reader.end_op();
        drop(reader);
        writer.end_op();
        cell.store(Shared::null(), std::sync::atomic::Ordering::Release);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { writer.retire(anchor) };
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0, "seed {seed:#x}");
    }
}

/// Hazard-pointer protection is exact: a retired node is pinned iff
/// some slot holds exactly its address.
#[test]
fn hp_protection_is_exact() {
    for protect in [false, true] {
        let cfg = Config::default().with_max_threads(2).with_empty_freq(1).with_scan_watermark(1);
        let smr = Hp::new(cfg);
        let mut reader = smr.register();
        let mut writer = smr.register();
        writer.start_op();
        reader.start_op();
        let n = writer.alloc(7u64);
        let cell = Atomic::new(n);
        if protect {
            let _ = reader.read(&cell, 0);
        }
        cell.store(Shared::null(), std::sync::atomic::Ordering::Release);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { writer.retire(n) };
        assert_eq!(writer.retired_len() == 1, protect);
        reader.end_op();
        writer.end_op();
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0);
    }
}

/// MP's collision marker: allocating with an exhausted search interval
/// always yields USE_HP; any wider interval yields a strictly interior
/// index, preserving the order embedding.
#[test]
fn alloc_index_respects_interval() {
    let (seed, mut rng) = test_rng(0x03);
    for _ in 0..CASES {
        let lo: u32 = rng.random_range(0..u32::MAX - 2);
        let width: u32 = rng.random_range(0..1_000_000);
        let hi = lo.saturating_add(width);
        let smr = Mp::new(Config::default().with_max_threads(1).with_epoch_freq(1_000_000));
        let mut h = smr.register();
        h.start_op();
        let a = h.alloc_with_index(0u8, lo);
        let b = h.alloc_with_index(0u8, hi);
        let ca = Atomic::new(a);
        let cb = Atomic::new(b);
        let ra = h.read(&ca, 0);
        let rb = h.read(&cb, 1);
        h.update_lower_bound(ra);
        h.update_upper_bound(rb);
        let n = h.alloc(0u8);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        let idx = unsafe { n.deref() }.index();
        if hi - lo <= 1 {
            assert_eq!(idx, USE_HP, "lo {lo} hi {hi} (seed {seed:#x})");
        } else {
            assert!(lo < idx && idx < hi, "idx {idx} not inside ({lo}, {hi}) (seed {seed:#x})");
        }
        h.end_op();
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe {
            h.retire(n);
            h.retire(a);
            h.retire(b);
        }
        h.force_empty();
    }
}
