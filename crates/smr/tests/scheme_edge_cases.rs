//! Cross-scheme edge cases: handle lifecycle, tid recycling, panic safety,
//! idle-system reclamation, and boundary indices.

use std::sync::atomic::Ordering;

use mp_smr::node::{USE_HP, USE_HP_CLASS_START};
use mp_smr::schemes::{Dta, Ebr, He, Hp, Ibr, Leaky, Mp};
use mp_smr::{Atomic, Config, Shared, Smr, SmrHandle};

fn cfg() -> Config {
    Config::default().with_max_threads(3).with_empty_freq(2).with_epoch_freq(4)
}

/// Exercises one scheme generically: alloc/link/read/unlink/retire cycles
/// with interleaved operations, then full reclamation once idle.
fn lifecycle<S: Smr>() {
    let smr = S::new(cfg());
    let mut a = smr.register();
    let mut b = smr.register();

    for round in 0..50u32 {
        a.start_op();
        b.start_op();
        let n = a.alloc(round);
        let cell = Atomic::new(n);
        let r = b.read(&cell, 0);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        assert_eq!(unsafe { *r.deref().data() }, round);
        cell.store(Shared::null(), Ordering::Release);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { a.retire(n) };
        a.end_op();
        b.end_op();
    }
    drop(b);
    a.force_empty();
    assert_eq!(a.retired_len(), 0, "idle system reclaims everything");
    drop(a);
}

#[test]
fn lifecycle_all_schemes() {
    lifecycle::<Mp>();
    lifecycle::<Hp>();
    lifecycle::<Ebr>();
    lifecycle::<He>();
    lifecycle::<Ibr>();
    lifecycle::<Dta>();
}

#[test]
fn leaky_lifecycle_defers_to_scheme_drop() {
    // Leaky cannot pass the generic lifecycle (it never reclaims); verify
    // its contract separately.
    let smr = Leaky::new(cfg());
    let mut h = smr.register();
    h.start_op();
    let n = h.alloc(1u8);
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    unsafe { h.retire(n) };
    h.end_op();
    h.force_empty();
    assert_eq!(h.retired_len(), 1);
}

#[test]
fn tid_recycling_clears_protection() {
    // A dropped handle must not leave protections behind for its successor
    // tid, or retired nodes would be pinned forever.
    let smr = Hp::new(Config::default().with_max_threads(1).with_empty_freq(1).with_scan_watermark(1));
    let cell;
    {
        let mut h1 = smr.register();
        h1.start_op();
        let n = h1.alloc(9u32);
        cell = Atomic::new(n);
        let _ = h1.read(&cell, 0); // announce a hazard, then drop mid-op
    }
    let mut h2 = smr.register();
    h2.start_op();
    let n = cell.load(Ordering::Acquire);
    cell.store(Shared::null(), Ordering::Release);
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    unsafe { h2.retire(n) };
    h2.force_empty();
    assert_eq!(h2.retired_len(), 0, "stale hazard from dead handle must not pin");
    h2.end_op();
}

#[test]
fn panicking_thread_releases_its_handle() {
    let smr = Mp::new(cfg());
    let smr2 = smr.clone();
    let res = std::thread::spawn(move || {
        let mut h = smr2.register();
        h.start_op();
        let n = h.alloc(5u8);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { h.retire(n) };
        panic!("worker dies mid-operation");
    })
    .join();
    assert!(res.is_err());
    // The handle's Drop ran during unwinding: its tid is free again and its
    // retired node was parked for teardown.
    let _h1 = smr.register();
    let _h2 = smr.register();
    let _h3 = smr.register(); // would panic if the tid leaked (max_threads=3)
}

#[test]
#[should_panic(expected = "more handles registered")]
fn over_registration_panics() {
    let smr = Ebr::new(Config::default().with_max_threads(2));
    let _a = smr.register();
    let _b = smr.register();
    let _c = smr.register();
}

#[test]
fn two_schemes_coexist_in_one_process() {
    let mp = Mp::new(cfg());
    let hp = Hp::new(cfg());
    let mut hm = mp.register();
    let mut hh = hp.register();
    hm.start_op();
    hh.start_op();
    let a = hm.alloc(1u64);
    let b = hh.alloc(2u64);
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    unsafe {
        hm.retire(a);
        hh.retire(b);
    }
    hm.end_op();
    hh.end_op();
    hm.force_empty();
    hh.force_empty();
    assert_eq!(mp.retired_pending(), 0);
    assert_eq!(hp.retired_pending(), 0);
}

#[test]
fn mp_class_boundary_index_is_hazard_protected() {
    // Index exactly at the USE_HP class boundary: packed bits collide with
    // USE_HP, so reads must take the hazard path and empty() must honor it.
    let smr = Mp::new(Config::default().with_max_threads(2).with_empty_freq(1).with_scan_watermark(1));
    let mut reader = smr.register();
    let mut writer = smr.register();
    writer.start_op();
    reader.start_op();
    for idx in [USE_HP_CLASS_START, USE_HP_CLASS_START + 1, u32::MAX - 1, USE_HP] {
        let n = writer.alloc_with_index(idx, idx);
        let cell = Atomic::new(n);
        let got = reader.read(&cell, 0);
        assert_eq!(got, n, "read must return the node for idx {idx:#x}");
        cell.store(Shared::null(), Ordering::Release);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { writer.retire(n) };
        writer.force_empty();
        assert_eq!(
            writer.retired_len(),
            1,
            "boundary node {idx:#x} must be pinned by the hazard"
        );
        reader.unprotect(0);
        reader.end_op();
        reader.start_op();
        writer.force_empty();
        assert_eq!(writer.retired_len(), 0, "released after unprotect for {idx:#x}");
    }
    reader.end_op();
    writer.end_op();
}

#[test]
fn ibr_extends_interval_for_late_born_nodes() {
    // A node born *after* an operation started must still be protected by
    // the reader's reservation once read (the 2GE upper-bound extension).
    let cfg = Config::default().with_max_threads(2).with_empty_freq(1).with_scan_watermark(1).with_epoch_freq(1);
    let smr = Ibr::new(cfg);
    let mut reader = smr.register();
    let mut writer = smr.register();

    reader.start_op(); // reserves [e, e]
    writer.start_op();
    // Advance the epoch well past the reader's reservation.
    for i in 0..5u32 {
        let churn = writer.alloc(i);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { writer.retire(churn) };
    }
    let late = writer.alloc(99u32); // birth > reader's initial upper bound
    let cell = Atomic::new(late);
    let got = reader.read(&cell, 0); // must extend upper to cover it
    assert_eq!(got, late);
    cell.store(Shared::null(), Ordering::Release);
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    unsafe { writer.retire(late) };
    writer.force_empty();
    assert_eq!(
        writer.retired_len(),
        1,
        "extended reservation must pin the late-born node"
    );
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    assert_eq!(unsafe { *got.deref().data() }, 99);
    reader.end_op();
    writer.end_op();
    writer.force_empty();
    assert_eq!(writer.retired_len(), 0);
}

#[test]
fn hp_unprotect_releases_exactly_one_slot() {
    let smr = Hp::new(Config::default().with_max_threads(2).with_empty_freq(1).with_scan_watermark(1));
    let mut reader = smr.register();
    let mut writer = smr.register();
    writer.start_op();
    reader.start_op();
    let a = writer.alloc(1u8);
    let b = writer.alloc(2u8);
    let ca = Atomic::new(a);
    let cb = Atomic::new(b);
    let _ = reader.read(&ca, 0);
    let _ = reader.read(&cb, 1);
    ca.store(Shared::null(), Ordering::Release);
    cb.store(Shared::null(), Ordering::Release);
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    unsafe {
        writer.retire(a);
        writer.retire(b);
    }
    writer.force_empty();
    assert_eq!(writer.retired_len(), 2);
    reader.unprotect(0);
    writer.force_empty();
    assert_eq!(writer.retired_len(), 1, "slot 1 must still pin b");
    reader.unprotect(1);
    writer.force_empty();
    assert_eq!(writer.retired_len(), 0);
    reader.end_op();
    writer.end_op();
}

#[test]
fn stats_account_for_full_life_cycle() {
    let smr = Mp::new(cfg());
    let mut h = smr.register();
    h.start_op();
    let n = h.alloc(3u16);
    let cell = Atomic::new(n);
    let _ = h.read(&cell, 0);
    h.end_op();
    // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
    unsafe { h.retire(n) };
    h.force_empty();
    let s = h.stats();
    assert_eq!(s.ops, 1);
    assert_eq!(s.allocs, 1);
    assert_eq!(s.retires, 1);
    assert_eq!(s.frees, 1);
    assert!(s.fences >= 2, "start_op + end_op at minimum");
    assert!(s.empties >= 1);
}
