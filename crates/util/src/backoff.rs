//! Exponential backoff for contended retry loops.

/// Exponential backoff for optimistic-concurrency retry loops (the in-tree
/// replacement for `crossbeam_utils::Backoff`).
///
/// Each [`spin`](Backoff::spin) doubles the number of `spin_loop` hints
/// issued, up to `2^SPIN_LIMIT`; past that point the contended section is
/// long enough that burning more cycles only steals them from the thread
/// holding things up, so [`is_completed`](Backoff::is_completed) reports
/// that the caller should yield or park instead.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

const SPIN_LIMIT: u32 = 6;

impl Backoff {
    /// Creates a backoff in its initial (shortest-wait) state.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets to the initial state (call after the contended operation
    /// finally succeeds, if the `Backoff` is reused).
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Spins `2^step` times and escalates the step, saturating at
    /// 2^6 = 64 hint instructions per call.
    #[inline]
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(SPIN_LIMIT) {
            core::hint::spin_loop();
        }
        if self.step <= SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// True once spinning has saturated and the caller should stop burning
    /// CPU (e.g. `std::thread::yield_now` or a parking primitive).
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step > SPIN_LIMIT
    }

    /// One backoff step that is polite past saturation: spins while the
    /// ramp is still short, yields the scheduler slice once
    /// [`is_completed`](Backoff::is_completed) — the building block for
    /// bounded throttle waits (SMR backpressure) and other loops that must
    /// wait on another thread's progress without ever parking.
    #[inline]
    pub fn snooze(&mut self) {
        if self.is_completed() {
            std::thread::yield_now();
        } else {
            self.spin();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_then_saturates() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=SPIN_LIMIT {
            b.spin();
        }
        assert!(b.is_completed());
        // Further spins stay saturated and keep working.
        b.spin();
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn snooze_spins_then_yields() {
        let mut b = Backoff::new();
        // Below saturation snooze behaves like spin (escalates the step)...
        b.snooze();
        assert!(!b.is_completed());
        for _ in 0..=SPIN_LIMIT {
            b.snooze();
        }
        // ...and past it it only yields, never un-saturating.
        assert!(b.is_completed());
        b.snooze();
        assert!(b.is_completed());
    }
}
