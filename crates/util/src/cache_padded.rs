//! Cache-line padding to prevent false sharing.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns `T` to the length of a cache line, so values placed in
/// adjacent array elements never share a line (the in-tree replacement for
/// `crossbeam_utils::CachePadded`).
///
/// The alignment is 128 bytes on x86_64 and aarch64 — twice the 64-byte
/// line — because both architectures prefetch line *pairs* (Intel's spatial
/// prefetcher, ARM's 128-byte cache-line big.LITTLE parts), so 64-byte
/// padding still false-shares in practice. Other targets use 64 bytes.
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "aarch64")), repr(align(64)))]
#[derive(Default, Clone, Copy, PartialEq, Eq)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_a_cache_line() {
        assert!(core::mem::align_of::<CachePadded<u8>>() >= 64);
        assert!(core::mem::size_of::<CachePadded<u8>>() >= 64);
        // Adjacent array elements land on distinct lines.
        let arr = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &*arr[0] as *const u64 as usize;
        let b = &*arr[1] as *const u64 as usize;
        assert!(b - a >= 64);
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(vec![1, 2, 3]);
        p.push(4);
        assert_eq!(*p, vec![1, 2, 3, 4]);
        assert_eq!(p.into_inner(), vec![1, 2, 3, 4]);
    }
}
