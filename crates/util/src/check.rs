//! A minimal seeded, shrinking, property-based test runner — the in-tree
//! replacement for the `proptest` dependency.
//!
//! [`Checker::run`] draws `cases` random input vectors from a deterministic
//! PRNG (one sub-stream per case, all derived from one base seed), feeds
//! each to a property closure, and on the first panic *shrinks* the failing
//! vector with a delta-debugging pass (drop ever-smaller chunks, keeping
//! any candidate that still fails) before reporting. The report contains
//! the base seed and the minimal failing input, and the seed can be
//! replayed exactly with the `MP_CHECK_SEED` environment variable:
//!
//! ```sh
//! MP_CHECK_SEED=0xdeadbeef cargo test -q failing_test_name
//! ```
//!
//! `MP_CHECK_CASES` overrides the case count the same way. Generation is
//! pure integer arithmetic over [`SmallRng`](crate::SmallRng), so a seed
//! reproduces the same inputs on every platform.

use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};

use crate::rng::{SeedableRng, SmallRng};

/// Default base seed (overridden by `MP_CHECK_SEED`).
pub const DEFAULT_SEED: u64 = 0x6d70_5f63_6865_636b; // "mp_check"

/// Default number of cases per property (overridden by `MP_CHECK_CASES`).
pub const DEFAULT_CASES: usize = 32;

/// Configuration for one property run.
#[derive(Debug, Clone)]
pub struct Checker {
    seed: u64,
    cases: usize,
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    Some(parsed.unwrap_or_else(|_| panic!("{name} must be a u64 (decimal or 0x-hex): {raw:?}")))
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

impl Checker {
    /// Creates a checker honoring the `MP_CHECK_SEED` / `MP_CHECK_CASES`
    /// environment overrides.
    pub fn new() -> Self {
        Checker {
            seed: env_u64("MP_CHECK_SEED").unwrap_or(DEFAULT_SEED),
            cases: env_u64("MP_CHECK_CASES").unwrap_or(DEFAULT_CASES as u64) as usize,
        }
    }

    /// Overrides the number of cases (unless `MP_CHECK_CASES` is set, which
    /// wins — it exists to crank up or pin down a run from the outside).
    pub fn cases(mut self, n: usize) -> Self {
        if env_u64("MP_CHECK_CASES").is_none() {
            self.cases = n;
        }
        self
    }

    /// Overrides the base seed (unless `MP_CHECK_SEED` is set, which wins —
    /// that is the replay mechanism).
    pub fn seed(mut self, seed: u64) -> Self {
        if env_u64("MP_CHECK_SEED").is_none() {
            self.seed = seed;
        }
        self
    }

    /// The base seed in effect (print it to make any failure replayable).
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// The generator for case `i`: a deterministic sub-stream of the base
    /// seed. Public so tests can regenerate a case's inputs exactly (the
    /// fixed-seed determinism test relies on this).
    pub fn case_rng(&self, case: usize) -> SmallRng {
        // Distinct odd multiplier keeps sub-streams well separated even for
        // adjacent case numbers.
        SmallRng::seed_from_u64(self.seed ^ (case as u64).wrapping_mul(0xa076_1d64_78bd_642f))
    }

    /// Runs `property` against `cases` generated input vectors; on failure,
    /// shrinks to a minimal failing vector and panics with a replayable
    /// report. `name` labels the report (use the test function's name).
    pub fn run<T, G, P>(&self, name: &str, mut generate: G, property: P)
    where
        T: Clone + Debug,
        G: FnMut(&mut SmallRng) -> Vec<T>,
        P: Fn(&[T]),
    {
        for case in 0..self.cases {
            let input = generate(&mut self.case_rng(case));
            if let Err(msg) = run_case(&property, &input) {
                let minimal = shrink(input, &property);
                let n = minimal.len();
                panic!(
                    "property `{name}` failed (case {case}/{}, base seed {:#x}).\n\
                     original failure: {msg}\n\
                     minimal failing input ({n} element{}): {minimal:#?}\n\
                     replay with: MP_CHECK_SEED={:#x} cargo test -q {name}",
                    self.cases,
                    self.seed,
                    if n == 1 { "" } else { "s" },
                    self.seed,
                );
            }
        }
    }
}

/// Runs the property once, converting a panic into `Err(message)`.
fn run_case<T, P: Fn(&[T])>(property: &P, input: &[T]) -> Result<(), String> {
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| property(input)));
    outcome.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    })
}

/// Delta-debugging shrink: repeatedly try dropping chunks (halving the
/// chunk size down to single elements), keeping any candidate that still
/// fails. The panic hook is silenced for the duration so the dozens of
/// intermediate failures don't spam the test output.
fn shrink<T: Clone + Debug, P: Fn(&[T])>(mut current: Vec<T>, property: &P) -> Vec<T> {
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if run_case(property, &candidate).is_err() {
                current = candidate; // keep the smaller failing input
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    panic::set_hook(prev_hook);
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0;
        Checker::new().cases(10).run(
            "count",
            |rng| {
                use crate::rng::RngExt;
                (0..4).map(|_| rng.random_range(0u32..100)).collect()
            },
            |_ops: &[u32]| {},
        );
        // `generate` is FnMut, so we can count invocations via a second run.
        Checker::new().cases(10).run(
            "count2",
            |_rng| {
                seen += 1;
                vec![0u8]
            },
            |_| {},
        );
        assert_eq!(seen, 10);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        use crate::rng::RngExt;
        let gen = |c: &Checker, case: usize| -> Vec<u64> {
            let mut rng = c.case_rng(case);
            (0..32).map(|_| rng.random_range(0u64..1000)).collect()
        };
        let a = Checker::new().seed(123);
        let b = Checker::new().seed(123);
        let c = Checker::new().seed(124);
        assert_eq!(gen(&a, 0), gen(&b, 0));
        assert_eq!(gen(&a, 5), gen(&b, 5));
        assert_ne!(gen(&a, 0), gen(&a, 1), "cases draw distinct sub-streams");
        assert_ne!(gen(&a, 0), gen(&c, 0), "seeds produce distinct streams");
    }

    #[test]
    fn failing_property_shrinks_to_minimal_input() {
        // Property: "no vector contains a multiple of 7 greater than 20".
        // The minimal counterexample is a single offending element.
        let result = panic::catch_unwind(|| {
            Checker::new().seed(1).cases(50).run(
                "shrink_demo",
                |rng| {
                    use crate::rng::RngExt;
                    let len = rng.random_range(1usize..40);
                    (0..len).map(|_| rng.random_range(0u32..200)).collect()
                },
                |xs: &[u32]| {
                    for &x in xs {
                        assert!(!(x > 20 && x % 7 == 0), "bad element {x}");
                    }
                },
            );
        });
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(p) => p.downcast_ref::<String>().expect("string payload").clone(),
        };
        assert!(msg.contains("minimal failing input (1 element)"), "not minimal: {msg}");
        assert!(msg.contains("MP_CHECK_SEED="), "missing replay line: {msg}");
        assert!(msg.contains("bad element"), "missing original failure: {msg}");
    }

    #[test]
    fn shrink_preserves_failure() {
        // A failure that needs two specific elements to co-occur: shrinking
        // must keep both.
        let failing = vec![1u32, 9, 2, 7, 9, 3, 7];
        let shrunk = shrink(failing, &|xs: &[u32]| {
            let nines = xs.iter().filter(|&&x| x == 9).count();
            let sevens = xs.iter().filter(|&&x| x == 7).count();
            assert!(!(nines >= 1 && sevens >= 1), "9 and 7 together");
        });
        assert_eq!(shrunk.len(), 2);
        assert!(shrunk.contains(&9) && shrunk.contains(&7), "{shrunk:?}");
    }
}
