//! Vector-clock happens-before tracker (`--features hb-oracle`).
//!
//! The substrate of `mp-smr`'s happens-before oracle: a process-global
//! ledger of the synchronization edges the SMR protocol *claims* exist —
//! SeqCst fences (which join through a shared clock, modelling their total
//! order), release/acquire hand-offs at named sites (the shared-snapshot
//! seqlock), and protection records stamped with the announcing thread's
//! clock — against which the oracle checks that every dereference of a
//! retired node, every adopted snapshot, and (where a scheme's validation
//! protocol makes the check exact) every free is justified by a tracked
//! happens-before path.
//!
//! Everything here is plain bookkeeping behind one mutex: the tracker
//! never touches atomics itself, so it cannot mask the very orderings it
//! audits — a hook call serializes on the lock *after* the instrumented
//! synchronization action has retired. Lock-order skew can therefore only
//! *weaken* the tracked happens-before relation (two racing hooks serialize
//! in some order, but no edge is invented that the real execution lacked),
//! which biases every check toward false negatives, never false positives.
//!
//! Check methods return [`HbViolation`] instead of panicking so the caller
//! can release the lock, attach scheme/seed context, and panic outside the
//! tracker — a poisoned mutex would otherwise cascade into every later
//! test in the process.

use std::collections::{HashMap, HashSet};
use std::sync::{Mutex, PoisonError};

/// A grow-on-demand vector clock. Component `t` counts the events of
/// tracker thread `t`; missing components read as zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// Component `tid`, zero when never ticked.
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advances this thread's own component by one event.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Componentwise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(&other.0) {
            *s = (*s).max(*o);
        }
    }

    /// Componentwise `self ≤ other` (the happens-before partial order).
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }

    /// True when the event this clock stamps (an event of thread `owner`,
    /// whose component was ticked at the event) happens-before the point
    /// observed by `other`. This is the exact single-component test: an
    /// event is in `other`'s past iff `other` has absorbed the owner's
    /// component up to the event's stamp.
    pub fn event_before(&self, owner: usize, other: &VClock) -> bool {
        self.get(owner) <= other.get(owner)
    }
}

/// A happens-before check failure, reported to the caller for contextual
/// panicking (scheme name, replay seed) outside the tracker lock.
#[derive(Debug)]
pub struct HbViolation {
    /// Violation class, e.g. `"hb-unjustified deref"`.
    pub what: &'static str,
    /// Node address or synchronization-site key involved.
    pub addr: u64,
    /// Human-readable diagnosis naming the missing edge.
    pub detail: String,
}

/// One protection claim: thread `tid` announced protection of a node and
/// validated the announcement, at clock `clock` (ticked at the event).
#[derive(Clone, Debug)]
struct Record {
    tid: usize,
    /// Slot-keyed records (hazard pointers) are evicted when the slot is
    /// re-announced or cleared; `None` records (margins, eras) persist
    /// until the policy's op/handle boundary.
    slot: Option<usize>,
    /// Allocation-ownership record (the allocating thread may always
    /// dereference its own not-yet-published node).
    owned: bool,
    clock: VClock,
}

#[derive(Default)]
struct Inner {
    /// Per-thread clocks, indexed by tracker tid.
    clocks: Vec<VClock>,
    /// The SeqCst-fence join clock: every tracked fence merges through it,
    /// modelling the single total order of SeqCst fences.
    sc: VClock,
    /// Release clocks per named site — the happens-before edge an acquire
    /// at the site is entitled to join.
    site_hb: HashMap<u64, VClock>,
    /// Data-visibility clocks per named site: what the last writer's data
    /// writes are stamped with. `site_data ⊄ acquirer` at an acquire means
    /// data became visible without a release edge ordering it.
    site_data: HashMap<u64, VClock>,
    /// Addresses currently retired (and not yet freed).
    retired: HashSet<u64>,
    /// Live protection records per node address.
    records: HashMap<u64, Vec<Record>>,
    /// Per-thread index of addresses carrying a non-owned record by that
    /// thread, so op boundaries drop a thread's claims without scanning
    /// the whole ledger.
    by_tid: HashMap<usize, HashSet<u64>>,
    /// Per-thread index of addresses carrying an ownership record.
    owned_by_tid: HashMap<usize, HashSet<u64>>,
    /// Slot index: which address a `(tid, slot)`-keyed record protects.
    by_slot: HashMap<(usize, usize), u64>,
    /// Tracker tids of exited threads, recycled by `register_thread` so
    /// clock widths stay bounded by the peak live-thread count.
    free_tids: Vec<usize>,
    /// Per-thread operation state (set by `begin_op`/`end_op`).
    in_op: Vec<bool>,
    /// Blanket protection (epoch schemes): any in-op deref is justified.
    blanket: Vec<bool>,
    /// Whether the thread's current policy scopes records to one operation.
    op_scoped: Vec<bool>,
}

impl Inner {
    /// Drops `tid`'s non-owned protection records (op boundaries and
    /// teardown); with `including_owned`, its allocation-ownership records
    /// too (handle/thread teardown only — ownership is not op-scoped).
    fn drop_thread_records(&mut self, tid: usize, including_owned: bool) {
        if let Some(addrs) = self.by_tid.remove(&tid) {
            for addr in addrs {
                if let Some(v) = self.records.get_mut(&addr) {
                    v.retain(|r| r.owned || r.tid != tid);
                    if v.is_empty() {
                        self.records.remove(&addr);
                    }
                }
            }
        }
        if including_owned {
            if let Some(addrs) = self.owned_by_tid.remove(&tid) {
                for addr in addrs {
                    if let Some(v) = self.records.get_mut(&addr) {
                        v.retain(|r| !(r.owned && r.tid == tid));
                        if v.is_empty() {
                            self.records.remove(&addr);
                        }
                    }
                }
            }
        }
        self.by_slot.retain(|&(t, _), _| t != tid);
    }

    /// Removes every record on `addr`, fixing the per-thread and slot
    /// indexes; returns the removed records.
    fn purge_addr(&mut self, addr: u64) -> Option<Vec<Record>> {
        let recs = self.records.remove(&addr)?;
        for r in &recs {
            let index = if r.owned { &mut self.owned_by_tid } else { &mut self.by_tid };
            if let Some(set) = index.get_mut(&r.tid) {
                set.remove(&addr);
                if set.is_empty() {
                    index.remove(&r.tid);
                }
            }
            if let Some(s) = r.slot {
                if self.by_slot.get(&(r.tid, s)) == Some(&addr) {
                    self.by_slot.remove(&(r.tid, s));
                }
            }
        }
        Some(recs)
    }

    /// Unindexes `(tid, addr)` from the non-owned index if the thread's
    /// last non-owned record on the address is gone.
    fn unindex_if_last(&mut self, tid: usize, addr: u64) {
        let still =
            self.records.get(&addr).is_some_and(|v| v.iter().any(|r| r.tid == tid && !r.owned));
        if !still {
            if let Some(set) = self.by_tid.get_mut(&tid) {
                set.remove(&addr);
                if set.is_empty() {
                    self.by_tid.remove(&tid);
                }
            }
        }
    }
}

/// The happens-before tracker. One instance audits one process; all
/// methods are `&self` and serialize on an internal mutex.
#[derive(Default)]
pub struct HbTracker {
    inner: Mutex<Inner>,
}

impl HbTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A violation panics *outside* the lock, but a client panic while a
        // hook is on the stack could still poison; the ledger stays
        // internally consistent, so keep going.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers the calling thread; returns its tracker tid. Tids of
    /// exited threads (see [`release_thread`](Self::release_thread)) are
    /// recycled, and a recycled slot keeps its clock. That inheritance is
    /// itself a real edge — the dead thread's exit and the heir's
    /// registration serialize on the tracker lock — so the heir's view
    /// covers only events genuinely ordered before it, and monotonic
    /// component ticks guarantee it can never cover an event ticked after
    /// the reuse. (Tests that stage a *missing* edge must pin their
    /// observer's registration before the offending thread exits, or the
    /// observer may inherit the offender's clock.)
    pub fn register_thread(&self) -> usize {
        let mut g = self.lock();
        if let Some(tid) = g.free_tids.pop() {
            g.in_op[tid] = false;
            g.blanket[tid] = true;
            g.op_scoped[tid] = false;
            return tid;
        }
        let tid = g.clocks.len();
        g.clocks.push(VClock::new());
        g.in_op.push(false);
        g.blanket.push(true);
        g.op_scoped.push(false);
        tid
    }

    /// Unregisters an exiting thread: every claim it holds dies (its
    /// announcement rows are gone) and its tid slot is recycled, keeping
    /// clock widths bounded by the peak live-thread count rather than the
    /// total number of threads the process ever spawned.
    pub fn release_thread(&self, tid: usize) {
        let g = &mut *self.lock();
        g.drop_thread_records(tid, true);
        g.in_op[tid] = false;
        g.free_tids.push(tid);
    }

    /// Records a SeqCst fence by `tid`: the thread's clock and the shared
    /// fence clock join, so any two tracked fences are ordered one way or
    /// the other — the edge every scan/announce pairing relies on.
    pub fn fence_sc(&self, tid: usize) {
        let g = &mut *self.lock();
        g.clocks[tid].tick(tid);
        g.sc.join(&g.clocks[tid]);
        g.clocks[tid].join(&g.sc);
    }

    /// Records a release edge *and* the data writes at `site` (a completed
    /// publish with its release fence in place).
    pub fn release(&self, tid: usize, site: u64) {
        let g = &mut *self.lock();
        g.clocks[tid].tick(tid);
        let c = g.clocks[tid].clone();
        g.site_hb.insert(site, c.clone());
        g.site_data.insert(site, c);
    }

    /// Records only the data writes at `site` — a publish whose release
    /// fence was omitted. The data clock advances but no happens-before
    /// edge is offered, so the next acquire-side check must fail.
    pub fn release_data_only(&self, tid: usize, site: u64) {
        let g = &mut *self.lock();
        g.clocks[tid].tick(tid);
        let c = g.clocks[tid].clone();
        g.site_data.insert(site, c);
    }

    /// Records an acquire at `site` (joining whatever release edge exists)
    /// and checks that the data observed there is ordered by it: every
    /// component of the site's data clock must be dominated by the
    /// acquirer's clock after the join.
    pub fn acquire_check(&self, tid: usize, site: u64) -> Result<(), HbViolation> {
        let g = &mut *self.lock();
        if let Some(hb) = g.site_hb.get(&site) {
            let hb = hb.clone();
            g.clocks[tid].join(&hb);
        }
        g.clocks[tid].tick(tid);
        let Some(data) = g.site_data.get(&site) else {
            return Ok(());
        };
        if data.le(&g.clocks[tid]) {
            return Ok(());
        }
        let offender = (0..g.clocks.len())
            .find(|&t| data.get(t) > g.clocks[tid].get(t))
            .unwrap_or(tid);
        Err(HbViolation {
            what: "unordered snapshot adoption",
            addr: site,
            detail: format!(
                "adopted data from site {site:#x} written by thread {offender} is not \
                 happens-before-ordered with this acquire — missing release edge \
                 (data stamp {} > acquirer view {}); a publish path likely dropped \
                 its Release fence",
                data.get(offender),
                g.clocks[tid].get(offender),
            ),
        })
    }

    /// Marks `tid` as inside an operation under the given record policy.
    pub fn begin_op(&self, tid: usize, blanket: bool, op_scoped: bool) {
        let g = &mut *self.lock();
        if op_scoped {
            g.drop_thread_records(tid, false);
        }
        g.in_op[tid] = true;
        g.blanket[tid] = blanket;
        g.op_scoped[tid] = op_scoped;
        g.clocks[tid].tick(tid);
    }

    /// Marks `tid` as outside any operation; op-scoped records die here.
    pub fn end_op(&self, tid: usize) {
        let g = &mut *self.lock();
        if g.op_scoped[tid] {
            g.drop_thread_records(tid, false);
        }
        g.in_op[tid] = false;
    }

    /// Drops every record of `tid` (handle teardown: its announcement rows
    /// are cleared, so its claims must not outlive them).
    pub fn clear_thread(&self, tid: usize) {
        let g = &mut *self.lock();
        g.drop_thread_records(tid, true);
        g.in_op[tid] = false;
    }

    /// Records a validated protection of `addr` by `tid`. A `Some(slot)`
    /// key models single-address protection (hazard pointers): it evicts
    /// the slot's previous record, since re-announcing the slot withdraws
    /// the old claim. `None` models interval/era protection, where one
    /// announcement covers many nodes and nothing is evicted.
    pub fn protect(&self, tid: usize, slot: Option<usize>, addr: u64) {
        let g = &mut *self.lock();
        g.clocks[tid].tick(tid);
        let clock = g.clocks[tid].clone();
        if let Some(s) = slot {
            if let Some(old) = g.by_slot.insert((tid, s), addr) {
                if old != addr {
                    if let Some(v) = g.records.get_mut(&old) {
                        v.retain(|r| !(r.tid == tid && r.slot == Some(s)));
                        if v.is_empty() {
                            g.records.remove(&old);
                        }
                    }
                    g.unindex_if_last(tid, old);
                }
            }
        }
        let recs = g.records.entry(addr).or_default();
        if let Some(r) = recs.iter_mut().find(|r| r.tid == tid && r.slot == slot && !r.owned) {
            r.clock = clock;
        } else {
            recs.push(Record { tid, slot, owned: false, clock });
        }
        g.by_tid.entry(tid).or_default().insert(addr);
    }

    /// Withdraws the `(tid, slot)` protection record, if any.
    pub fn unprotect(&self, tid: usize, slot: usize) {
        let g = &mut *self.lock();
        if let Some(addr) = g.by_slot.remove(&(tid, slot)) {
            if let Some(v) = g.records.get_mut(&addr) {
                v.retain(|r| !(r.tid == tid && r.slot == Some(slot)));
                if v.is_empty() {
                    g.records.remove(&addr);
                }
            }
            g.unindex_if_last(tid, addr);
        }
    }

    /// Records an allocation: any stale state for a recycled address dies,
    /// and the allocating thread gains an ownership record.
    pub fn on_alloc(&self, tid: usize, addr: u64) {
        let g = &mut *self.lock();
        g.retired.remove(&addr);
        g.purge_addr(addr);
        g.clocks[tid].tick(tid);
        let clock = g.clocks[tid].clone();
        g.records.entry(addr).or_default().push(Record { tid, slot: None, owned: true, clock });
        g.owned_by_tid.entry(tid).or_default().insert(addr);
    }

    /// Records a retire by `tid`: the node leaves the retiring thread's
    /// ownership and enters the retired set the deref check consults.
    pub fn on_retire(&self, tid: usize, addr: u64) {
        let g = &mut *self.lock();
        if let Some(v) = g.records.get_mut(&addr) {
            v.retain(|r| !(r.owned && r.tid == tid));
            if v.is_empty() {
                g.records.remove(&addr);
            }
        }
        if let Some(set) = g.owned_by_tid.get_mut(&tid) {
            set.remove(&addr);
            if set.is_empty() {
                g.owned_by_tid.remove(&tid);
            }
        }
        g.retired.insert(addr);
    }

    /// Records a free by `tid` and retires all state for `addr`. With
    /// `check` set, fails if another thread holds a non-owned protection
    /// record whose creation happens-before this free: the freeing scan's
    /// snapshot was then *entitled* (by the tracked fence edges) to see the
    /// announcement, so freeing past it means the scan's judgement — not
    /// thread timing — is wrong. Only enable `check` for schemes whose
    /// protect hook fires strictly after a validated announce fence (HP),
    /// where that entailment is exact.
    pub fn on_free(&self, tid: usize, addr: u64, check: bool) -> Result<(), HbViolation> {
        let g = &mut *self.lock();
        g.retired.remove(&addr);
        let recs = g.purge_addr(addr);
        if !check {
            return Ok(());
        }
        let free_view = &g.clocks[tid];
        if let Some(recs) = recs {
            for r in recs {
                if !r.owned && r.tid != tid && r.clock.event_before(r.tid, free_view) {
                    return Err(HbViolation {
                        what: "free under live protection",
                        addr,
                        detail: format!(
                            "thread {} holds a validated protection record whose \
                             announcement happens-before this free (record stamp {} \
                             ≤ freeing thread's view {}), so the reclamation scan \
                             must have observed the announcement and kept the node",
                            r.tid,
                            r.clock.get(r.tid),
                            free_view.get(r.tid),
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks a dereference of `addr` by `tid`: inside an operation, a
    /// retired node may be dereferenced only under blanket (epoch)
    /// protection or a live protection/ownership record of this thread.
    pub fn deref_check(&self, tid: usize, addr: u64) -> Result<(), HbViolation> {
        let g = &*self.lock();
        if !g.in_op[tid] || !g.retired.contains(&addr) || g.blanket[tid] {
            return Ok(());
        }
        let justified =
            g.records.get(&addr).is_some_and(|v| v.iter().any(|r| r.tid == tid));
        if justified {
            return Ok(());
        }
        Err(HbViolation {
            what: "hb-unjustified deref",
            addr,
            detail: "dereference of a retired node with no validated protection \
                     record on this thread — no tracked happens-before edge orders \
                     the node's retirement after a protection this thread announced"
                .to_string(),
        })
    }

    /// Test/introspection: number of live protection records on `addr`.
    pub fn record_count(&self, addr: u64) -> usize {
        self.lock().records.get(&addr).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_tick_join_le() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
        assert!(VClock::new().le(&a), "zero clock precedes everything");
    }

    #[test]
    fn event_before_is_the_single_component_test() {
        let mut a = VClock::new();
        a.tick(3);
        let mut seen = VClock::new();
        assert!(!a.event_before(3, &seen));
        seen.join(&a);
        assert!(a.event_before(3, &seen));
    }

    #[test]
    fn fences_order_threads_through_the_sc_clock() {
        let t = HbTracker::new();
        let a = t.register_thread();
        let b = t.register_thread();
        t.fence_sc(a);
        t.fence_sc(b);
        let g = t.lock();
        assert!(g.clocks[a].le(&g.clocks[b]), "later fence absorbs the earlier one");
    }

    #[test]
    fn release_acquire_transfers_data_visibility() {
        let t = HbTracker::new();
        let p = t.register_thread();
        let c = t.register_thread();
        t.release(p, 0x10);
        assert!(t.acquire_check(c, 0x10).is_ok());
    }

    #[test]
    fn data_without_release_edge_fails_the_acquire_check() {
        let t = HbTracker::new();
        let p = t.register_thread();
        let c = t.register_thread();
        t.release_data_only(p, 0x20);
        let err = t.acquire_check(c, 0x20).expect_err("missing edge must be caught");
        assert!(err.detail.contains("missing release edge"), "diagnosis: {}", err.detail);
        // A correct publish at the same site repairs it.
        t.release(p, 0x20);
        assert!(t.acquire_check(c, 0x20).is_ok());
    }

    #[test]
    fn stale_site_hb_does_not_mask_a_fresh_fenceless_publish() {
        let t = HbTracker::new();
        let p = t.register_thread();
        let c = t.register_thread();
        t.release(p, 0x30); // old, correct publish
        assert!(t.acquire_check(c, 0x30).is_ok());
        t.release_data_only(p, 0x30); // new publish drops the fence
        assert!(t.acquire_check(c, 0x30).is_err());
    }

    #[test]
    fn hb_ordered_free_under_live_record_is_flagged() {
        let t = HbTracker::new();
        let reader = t.register_thread();
        let scanner = t.register_thread();
        t.begin_op(reader, false, true);
        t.protect(reader, Some(0), 0xabc);
        t.fence_sc(reader); // protect published before...
        t.fence_sc(scanner); // ...the scan's fence: record is in the scan's past
        let err = t.on_free(scanner, 0xabc, true).expect_err("must flag");
        assert!(err.detail.contains("happens-before this free"), "{}", err.detail);
    }

    #[test]
    fn unordered_or_withdrawn_records_do_not_flag_a_free() {
        let t = HbTracker::new();
        let reader = t.register_thread();
        let scanner = t.register_thread();
        // Record not ordered before the free: scanner never absorbed it.
        t.begin_op(reader, false, true);
        t.protect(reader, Some(0), 0xdef);
        assert!(t.on_free(scanner, 0xdef, true).is_ok());
        // Withdrawn by unprotect: no record survives to flag.
        t.protect(reader, Some(1), 0x123);
        t.fence_sc(reader);
        t.fence_sc(scanner);
        t.unprotect(reader, 1);
        assert!(t.on_free(scanner, 0x123, true).is_ok());
        // Slot reuse evicts the old record the same way.
        t.protect(reader, Some(2), 0x456);
        t.fence_sc(reader);
        t.protect(reader, Some(2), 0x789);
        t.fence_sc(scanner);
        assert!(t.on_free(scanner, 0x456, true).is_ok());
        assert_eq!(t.record_count(0x789), 1);
    }

    #[test]
    fn deref_check_requires_a_record_only_for_retired_nodes_in_op() {
        let t = HbTracker::new();
        let reader = t.register_thread();
        let writer = t.register_thread();
        t.on_alloc(writer, 0x1000);
        t.begin_op(reader, false, true);
        assert!(t.deref_check(reader, 0x1000).is_ok(), "live node needs no record");
        t.on_retire(writer, 0x1000);
        assert!(t.deref_check(reader, 0x1000).is_err(), "retired + no record");
        t.protect(reader, Some(0), 0x1000);
        assert!(t.deref_check(reader, 0x1000).is_ok(), "record justifies");
        t.end_op(reader);
        assert!(t.deref_check(reader, 0x1000).is_ok(), "outside an op: not checked");
        t.begin_op(reader, false, true);
        assert!(t.deref_check(reader, 0x1000).is_err(), "op-scoped record died");
        t.begin_op(reader, true, true);
        assert!(t.deref_check(reader, 0x1000).is_ok(), "blanket protection");
    }

    #[test]
    fn owner_may_deref_until_retire_and_alloc_resets_recycled_state() {
        let t = HbTracker::new();
        let owner = t.register_thread();
        t.begin_op(owner, false, false);
        t.on_alloc(owner, 0x2000);
        assert!(t.deref_check(owner, 0x2000).is_ok());
        t.on_retire(owner, 0x2000);
        assert!(t.deref_check(owner, 0x2000).is_err(), "ownership ends at retire");
        assert!(t.on_free(owner, 0x2000, true).is_ok(), "own records never flag");
        // Address recycled: the fresh incarnation starts clean.
        t.on_alloc(owner, 0x2000);
        assert!(t.deref_check(owner, 0x2000).is_ok());
    }

    #[test]
    fn released_tids_are_recycled_and_inherit_no_usable_edges() {
        let t = HbTracker::new();
        let a = t.register_thread();
        let b = t.register_thread();
        t.fence_sc(a);
        t.begin_op(a, false, true);
        t.protect(a, Some(0), 0x42);
        t.release_thread(a);
        let heir = t.register_thread();
        assert_eq!(heir, a, "exited tid is recycled");
        assert_eq!(t.record_count(0x42), 0, "claims die with the thread");
        // The heir's inherited clock cannot cover a post-reuse event: the
        // fresh protect below ticks past anything thread `a` ever absorbed.
        t.begin_op(b, false, true);
        t.protect(b, Some(0), 0x99);
        assert!(t.on_free(heir, 0x99, true).is_ok(), "no inherited edge to a fresh event");
        assert_eq!(t.register_thread(), 2, "free list drained, new tids grow again");
    }

    #[test]
    fn ownership_survives_op_boundaries_but_not_thread_exit() {
        let t = HbTracker::new();
        let owner = t.register_thread();
        let other = t.register_thread();
        t.begin_op(owner, false, true); // op-scoped policy
        t.on_alloc(owner, 0x5000);
        t.end_op(owner);
        t.begin_op(owner, false, true);
        t.on_retire(other, 0x5000); // foreign retire leaves the owner's record
        assert!(t.deref_check(owner, 0x5000).is_ok(), "ownership is not op-scoped");
        t.release_thread(owner);
        let heir = t.register_thread();
        assert_eq!(heir, owner);
        t.begin_op(heir, false, true);
        assert!(t.deref_check(heir, 0x5000).is_err(), "heir does not inherit ownership");
    }

    #[test]
    fn persistent_records_survive_op_boundaries_when_not_op_scoped() {
        let t = HbTracker::new();
        let reader = t.register_thread();
        let writer = t.register_thread();
        t.on_alloc(writer, 0x3000);
        t.begin_op(reader, false, false); // margin/era policy
        t.protect(reader, None, 0x3000);
        t.on_retire(writer, 0x3000);
        t.end_op(reader);
        t.begin_op(reader, false, false);
        assert!(t.deref_check(reader, 0x3000).is_ok(), "standing announcement persists");
        t.clear_thread(reader);
        t.begin_op(reader, false, false);
        assert!(t.deref_check(reader, 0x3000).is_err(), "handle teardown drops claims");
    }
}
