//! Log-bucketed (HDR-style) latency histogram.
//!
//! Sixty-four power-of-two buckets cover the full `u64` range: bucket 0
//! holds the value 0, and bucket `i ≥ 1` holds values in
//! `[2^(i-1), 2^i - 1]` — i.e. `bucket(v) = 64 - v.leading_zeros()`. That
//! gives ≤ 2× relative error per bucket, which is the right resolution for
//! latency distributions spanning nanoseconds to seconds, at a fixed
//! 64-word footprint with no heap allocation (the telemetry layer embeds
//! one per handle and the zero-allocation hot-path witness must keep
//! passing).
//!
//! Histograms are plain per-thread values, merged after threads join —
//! the same aggregation model as `mp-smr`'s `OpStats::merge`. All
//! accumulation saturates, so a soak run can never wrap a counter into a
//! nonsense distribution.

/// Number of buckets; covers all of `u64`.
pub const BUCKETS: usize = 64;

/// A mergeable power-of-two-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

/// Bucket index for a sample: 0 for 0, otherwise `floor(log2(v)) + 1`,
/// clamped so the top bucket absorbs `[2^62, u64::MAX]`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket,
/// which absorbs everything at and above `2^62`).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] = self.buckets[bucket_of(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self` (saturating, like `OpStats::merge`).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Clears every bucket and counter.
    pub fn reset(&mut self) {
        *self = Histogram::default();
    }

    /// Total samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    #[inline]
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), i.e. the value `v` such that at least
    /// `q · count` samples are ≤ `v`, rounded up to a bucket boundary.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::Checker;
    use crate::rng::{RngCore, RngExt};

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1u64 << 62), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1, "top bucket clamps");
        // Every bucket's bound round-trips: bucket_of(bound(i)) == i.
        for i in 1..BUCKETS {
            assert_eq!(bucket_of(bucket_bound(i)), i, "bound of bucket {i}");
        }
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(63), u64::MAX);
    }

    #[test]
    fn record_accumulates_and_quantiles_bracket() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 5, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1107);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 184.5).abs() < 1e-9);
        // p50 of {0,1,1,5,100,1000}: third sample = 1; bucket bound is 1.
        assert_eq!(h.quantile(0.5), 1);
        // p100 is capped at the true max, not the bucket bound.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::new().quantile(0.9), 0);
    }

    #[test]
    fn merge_is_saturating() {
        let mut a = Histogram::new();
        a.record(u64::MAX);
        let mut b = a.clone();
        b.sum = u64::MAX; // pre-saturated sum
        a.merge(&b);
        assert_eq!(a.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), u64::MAX);
    }

    /// Property (Checker-seeded, replayable via MP_CHECK_SEED): splitting a
    /// sample stream arbitrarily across sub-histograms recorded on separate
    /// threads and merging concurrently is equivalent to recording the whole
    /// stream sequentially — merge is a faithful, order-independent
    /// aggregation. This is the soundness condition the telemetry layer
    /// relies on when it merges per-handle histograms after a run.
    #[test]
    fn concurrent_merge_matches_sequential_reference() {
        Checker::new().cases(64).run(
            "hist_concurrent_merge",
            |rng| {
                let n = rng.random_range(0..500usize);
                (0..n)
                    .map(|_| {
                        // Mix magnitudes so many distinct buckets are hit.
                        let shift = rng.random_range(0..64u32);
                        rng.next_u64() >> shift
                    })
                    .collect::<Vec<u64>>()
            },
            |samples| {
                let mut reference = Histogram::new();
                for &v in samples {
                    reference.record(v);
                }

                // Partition round-robin across 4 recorder threads.
                const THREADS: usize = 4;
                let parts: Vec<Vec<u64>> = (0..THREADS)
                    .map(|t| {
                        samples
                            .iter()
                            .copied()
                            .skip(t)
                            .step_by(THREADS)
                            .collect()
                    })
                    .collect();
                let merged = std::thread::scope(|s| {
                    let handles: Vec<_> = parts
                        .iter()
                        .map(|part| {
                            s.spawn(move || {
                                let mut h = Histogram::new();
                                for &v in part {
                                    h.record(v);
                                }
                                h
                            })
                        })
                        .collect();
                    let mut acc = Histogram::new();
                    for h in handles {
                        acc.merge(&h.join().unwrap());
                    }
                    acc
                });

                assert_eq!(merged, reference, "merge must equal sequential recording");
                assert_eq!(
                    merged.count() as usize,
                    samples.len(),
                    "no sample lost or duplicated"
                );
            },
        );
    }
}
