//! # mp-util — zero-dependency support utilities
//!
//! The hermetic-build substrate of the workspace: everything the SMR
//! library, data structures, benchmarks, and tests previously pulled from
//! crates.io (`rand`, `crossbeam-utils`, `proptest`) reimplemented in-tree
//! so the whole workspace builds and tests with `cargo build --offline` —
//! in the spirit of the paper's pitch that the reclamation scheme is
//! *self-contained* and droppable into any runtime.
//!
//! Scope is deliberately narrow (see DESIGN.md): only what this workspace
//! uses, no feature flags, no platform probing beyond cache-line size.
//!
//! * [`rng`](mod@rng) / [`SmallRng`] / [`RngExt`] — a deterministic
//!   SplitMix64-seeded xoshiro256++ PRNG. **Non-cryptographic; for
//!   benchmark workloads and tests only.**
//! * [`CachePadded`] — cache-line alignment to stop false sharing.
//! * [`Backoff`] — exponential spin backoff for contended retry loops.
//! * [`check`] — a seeded, shrinking property-test runner whose failures
//!   replay from a printed seed.
//! * [`ring`] / [`RingBuffer`] — a bounded lock-free MPMC ring (Vyukov's
//!   bounded queue) carrying fixed-size telemetry event records.
//! * [`hist`] / [`Histogram`] — a 64-bucket power-of-two latency
//!   histogram, mergeable and allocation-free.
//! * [`pool`] — per-thread segregated block pool (size-class free lists,
//!   bounded caps, global overflow shard) recycling SMR node memory.
//! * [`shadow`] — a sharded shadow table (key → state record with atomic
//!   transitions), the substrate of `mp-smr`'s reclamation oracle.
//! * `hb` (feature `hb-oracle`) — a vector-clock happens-before tracker,
//!   the substrate of `mp-smr`'s happens-before oracle.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backoff;
pub mod cache_padded;
pub mod check;
#[cfg(feature = "hb-oracle")]
pub mod hb;
pub mod hist;
pub mod pool;
pub mod ring;
pub mod rng;
pub mod shadow;

pub use backoff::Backoff;
pub use cache_padded::CachePadded;
pub use check::Checker;
pub use hist::Histogram;
pub use ring::RingBuffer;
pub use shadow::{ShadowSlot, ShadowTable};
pub use rng::{rng, RngCore, RngExt, SeedableRng, SmallRng, SplitMix64, UniformInt, Xoshiro256pp};
