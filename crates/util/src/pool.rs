//! Per-thread segregated block pool for SMR node recycling.
//!
//! The reclamation hot path of every scheme is `alloc` → unlink → `retire`
//! → `empty()` → free. With the system allocator on both ends, the
//! steady-state cost of a churn workload is dominated by malloc/free round
//! trips rather than by the reclamation scheme itself — exactly the
//! measurement hazard the paper's C++ harness avoids with per-thread block
//! pools. This module supplies the same substrate in-tree:
//!
//! * **Size-class free lists, per thread.** Block sizes are rounded up to a
//!   [`CLASS_GRANULE`]-byte class (up to [`MAX_POOLED_SIZE`]); each thread
//!   keeps a bounded LIFO free list per class, so a reclaimed node is handed
//!   back to the next allocation of the same class without any shared-memory
//!   traffic.
//! * **Bounded capacity + global overflow shard.** A thread list never holds
//!   more than [`THREAD_CLASS_CAP`] blocks; overflow spills half the list
//!   into a global mutex-protected shard (capacity [`SHARD_CLASS_CAP`] per
//!   class), and anything beyond that is genuinely returned to the system
//!   allocator — the pool *bounds* wasted memory instead of hoarding it,
//!   mirroring the paper's theme.
//! * **Flush on handle drop.** SMR handles call [`flush`] when they are
//!   dropped, migrating the thread's cached blocks to the shard so short-lived
//!   threads do not strand memory; a `Drop` impl on the thread-local cache
//!   covers threads that exit without dropping a handle.
//!
//! Layouts larger than [`MAX_POOLED_SIZE`] or more aligned than
//! [`MAX_POOLED_ALIGN`] bypass the pool entirely and go straight to the
//! system allocator.
//!
//! The pool is enabled by default; set the env var `MP_POOL=0` (or `off` /
//! `false`) before first use, or call [`set_enabled`] at runtime, to route
//! every request to the system allocator (benchmarks use this for
//! before/after comparisons).
//!
//! Blocks are recycled with their contents intact, so the reclamation
//! oracle's freed-memory poisoning and quarantine remain meaningful: the
//! oracle quarantines a freed node *first* and only releases it into the
//! pool after its shadow entry is pruned (see `mp-smr`'s oracle module).

use core::alloc::Layout;
use core::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::cell::RefCell;
use std::sync::Mutex;

/// Largest block size (bytes) served from the pool; bigger layouts bypass
/// straight to the system allocator.
pub const MAX_POOLED_SIZE: usize = 2048;

/// Largest alignment served from the pool. Every pooled block is allocated
/// at this alignment, so any request with `align <= MAX_POOLED_ALIGN` is
/// satisfied by any block of its size class.
pub const MAX_POOLED_ALIGN: usize = 16;

/// Size-class granule: block sizes are rounded up to the next multiple.
pub const CLASS_GRANULE: usize = 64;

/// Number of size classes (`MAX_POOLED_SIZE / CLASS_GRANULE`).
pub const NUM_CLASSES: usize = MAX_POOLED_SIZE / CLASS_GRANULE;

/// Per-thread, per-class free-list capacity. Must comfortably exceed a
/// scheme's `empty_freq` so one reclamation batch recycles without spilling.
pub const THREAD_CLASS_CAP: usize = 128;

/// Per-class capacity of the global overflow shard; blocks beyond this are
/// returned to the system allocator (the pool's waste bound).
pub const SHARD_CLASS_CAP: usize = 1024;

/// How many blocks a thread pulls from the shard per refill.
const REFILL_BATCH: usize = 32;

// ---------------------------------------------------------------------------
// Enable switch (env default, runtime override)

const STATE_UNINIT: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether the pool is currently enabled. First call consults the `MP_POOL`
/// env var (`0` / `off` / `false` disable; anything else — including unset —
/// enables).
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = !matches!(
                std::env::var("MP_POOL").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Runtime override of the enable switch (used by benchmarks to measure
/// pool-off vs pool-on in one process). Already-cached blocks stay cached
/// and are still freed correctly after disabling.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counters

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);
static RELEASED: AtomicU64 = AtomicU64::new(0);

/// Monotonic process-wide pool counters (snapshot; compute deltas across a
/// measurement window for rates).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from a free list (no system-allocator call).
    pub hits: u64,
    /// Allocations that fell through to the system allocator (pool disabled,
    /// unpoolable layout, or empty free lists).
    pub misses: u64,
    /// Deallocations parked in a free list for reuse.
    pub recycled: u64,
    /// Deallocations returned to the system allocator (pool disabled,
    /// unpoolable layout, or capacity bounds reached).
    pub released: u64,
}

impl PoolStats {
    /// Fraction of allocations served from the pool, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Current process-wide counter snapshot.
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        released: RELEASED.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Size classes

#[inline]
fn class_of(layout: Layout) -> Option<usize> {
    if layout.size() == 0
        || layout.size() > MAX_POOLED_SIZE
        || layout.align() > MAX_POOLED_ALIGN
    {
        return None;
    }
    Some(layout.size().div_ceil(CLASS_GRANULE) - 1)
}

#[inline]
fn class_layout(class: usize) -> Layout {
    // Infallible: size is a multiple of 64 ≤ MAX_POOLED_SIZE, align 16.
    Layout::from_size_align((class + 1) * CLASS_GRANULE, MAX_POOLED_ALIGN).unwrap()
}

// ---------------------------------------------------------------------------
// Storage

/// A cached free block. Raw pointers are not `Send`, but a free block is
/// exclusively owned by whichever list holds it, so moving it across threads
/// through the shard is sound.
struct Block(*mut u8);
// SAFETY: [INV-08] a free block is exclusively owned by whichever list holds
// it (see the struct docs), so moving it across threads is sound.
unsafe impl Send for Block {}

struct ThreadCache {
    classes: [Vec<Block>; NUM_CLASSES],
}

impl ThreadCache {
    fn new() -> Self {
        ThreadCache { classes: core::array::from_fn(|_| Vec::new()) }
    }

    /// Migrates every cached block to the global shard (freeing past the
    /// shard's capacity bound).
    fn flush(&mut self) {
        let mut shard = lock_shard();
        for (class, list) in self.classes.iter_mut().enumerate() {
            for block in list.drain(..) {
                if shard.classes[class].len() < SHARD_CLASS_CAP {
                    shard.classes[class].push(block);
                } else {
                    RELEASED.fetch_add(1, Ordering::Relaxed);
                    // SAFETY: [INV-08] the block is exclusively ours (drained
                    // from our list) and was allocated with this class layout.
                    unsafe { raw_dealloc(block.0, class_layout(class)) };
                }
            }
        }
    }
}

impl Drop for ThreadCache {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static CACHE: RefCell<ThreadCache> = RefCell::new(ThreadCache::new());
}

struct Shard {
    classes: [Vec<Block>; NUM_CLASSES],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_LIST: Vec<Block> = Vec::new();

static SHARD: Mutex<Shard> = Mutex::new(Shard { classes: [EMPTY_LIST; NUM_CLASSES] });

fn lock_shard() -> std::sync::MutexGuard<'static, Shard> {
    SHARD.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Alloc / dealloc

fn raw_alloc(layout: Layout) -> *mut u8 {
    debug_assert!(layout.size() > 0, "pool does not serve zero-sized layouts");
    // SAFETY: [INV-08] layout has non-zero size (all SMR nodes carry a
    // header), asserted above.
    let ptr = unsafe { std::alloc::alloc(layout) };
    if ptr.is_null() {
        std::alloc::handle_alloc_error(layout);
    }
    ptr
}

/// # Safety
/// `ptr` must have been returned by [`raw_alloc`] with this exact `layout`
/// and must not be used again after this call.
// SAFETY: [INV-11] unsafe fn: contract stated in `# Safety` above,
// discharged by every caller ([INV-08]).
unsafe fn raw_dealloc(ptr: *mut u8, layout: Layout) {
    // SAFETY: [INV-08] forwarded from this fn's own contract.
    unsafe { std::alloc::dealloc(ptr, layout) };
}

/// Allocates a block for `layout`, preferring the calling thread's free
/// list, then the global shard, then the system allocator. Returns the
/// pointer and whether it was served from the pool (`true` = no
/// system-allocator call was made).
///
/// The returned block is at least `layout.size()` bytes at alignment
/// `>= layout.align()`; free it with [`dealloc`] using the *same* `layout`.
/// `layout.size()` must be non-zero.
pub fn alloc(layout: Layout) -> (*mut u8, bool) {
    if let Some(class) = class_of(layout) {
        if enabled() {
            if let Some(ptr) = pop_cached(class) {
                HITS.fetch_add(1, Ordering::Relaxed);
                return (ptr, true);
            }
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        (raw_alloc(class_layout(class)), false)
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
        (raw_alloc(layout), false)
    }
}

/// Returns a block to the pool (or to the system allocator when the pool is
/// disabled, the layout unpoolable, or every capacity bound is reached).
///
/// # Safety
/// `ptr` must have been returned by [`alloc`] called with the same `layout`,
/// and must not be used again after this call.
// SAFETY: [INV-11] unsafe fn: contract stated in `# Safety` above,
// discharged by every caller ([INV-08]).
pub unsafe fn dealloc(ptr: *mut u8, layout: Layout) {
    match class_of(layout) {
        Some(class) if enabled() => {
            if push_cached(class, ptr) {
                RECYCLED.fetch_add(1, Ordering::Relaxed);
            } else {
                RELEASED.fetch_add(1, Ordering::Relaxed);
                // SAFETY: [INV-08] forwarded from this fn's contract; pooled
                // layouts are served (and freed) with their class layout.
                unsafe { raw_dealloc(ptr, class_layout(class)) };
            }
        }
        Some(class) => {
            RELEASED.fetch_add(1, Ordering::Relaxed);
            // SAFETY: [INV-08] forwarded from this fn's contract; pooled
            // layouts are served (and freed) with their class layout.
            unsafe { raw_dealloc(ptr, class_layout(class)) };
        }
        None => {
            RELEASED.fetch_add(1, Ordering::Relaxed);
            // SAFETY: [INV-08] forwarded: unpooled layouts go straight to
            // the system allocator with the caller's layout.
            unsafe { raw_dealloc(ptr, layout) };
        }
    }
}

/// Migrates the calling thread's cached blocks to the global overflow shard.
/// Called by SMR handles on drop so exiting worker threads do not strand
/// blocks in dead thread-locals.
pub fn flush() {
    let _ = CACHE.try_with(|cache| cache.borrow_mut().flush());
}

fn pop_cached(class: usize) -> Option<*mut u8> {
    CACHE
        .try_with(|cache| {
            let mut cache = cache.borrow_mut();
            let list = &mut cache.classes[class];
            if list.is_empty() {
                refill_from_shard(list, class);
            }
            list.pop().map(|block| block.0)
        })
        .ok()
        .flatten()
}

/// Parks `ptr` in the thread list (spilling half to the shard when full).
/// Returns `false` when every bound is reached and the caller must free it.
fn push_cached(class: usize, ptr: *mut u8) -> bool {
    CACHE
        .try_with(|cache| {
            let mut cache = cache.borrow_mut();
            let list = &mut cache.classes[class];
            if list.len() >= THREAD_CLASS_CAP {
                spill_half_to_shard(list, class);
            }
            if list.len() < THREAD_CLASS_CAP {
                list.push(Block(ptr));
                true
            } else {
                false
            }
        })
        // Thread-local already destroyed (thread exit): go via the shard.
        .unwrap_or_else(|_| shard_push(class, ptr))
}

fn refill_from_shard(list: &mut Vec<Block>, class: usize) {
    let mut shard = lock_shard();
    let src = &mut shard.classes[class];
    let n = src.len().min(REFILL_BATCH);
    let from = src.len() - n;
    list.extend(src.drain(from..));
}

fn spill_half_to_shard(list: &mut Vec<Block>, class: usize) {
    let mut shard = lock_shard();
    let dst = &mut shard.classes[class];
    while list.len() > THREAD_CLASS_CAP / 2 && dst.len() < SHARD_CLASS_CAP {
        dst.push(list.pop().expect("list length checked above"));
    }
}

fn shard_push(class: usize, ptr: *mut u8) -> bool {
    let mut shard = lock_shard();
    let dst = &mut shard.classes[class];
    if dst.len() < SHARD_CLASS_CAP {
        dst.push(Block(ptr));
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pool state (enable switch, thread lists, shard) is process-global, so
    // the tests in this module serialize on one lock and always restore the
    // enabled state.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn same_block_is_reused_lifo() {
        let _g = locked();
        set_enabled(true);
        let layout = Layout::from_size_align(48, 8).unwrap();
        let (p1, _) = alloc(layout);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { dealloc(p1, layout) };
        let (p2, from_pool) = alloc(layout);
        assert_eq!(p1, p2, "LIFO free list must hand the same block back");
        assert!(from_pool);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { dealloc(p2, layout) };
    }

    #[test]
    fn different_sizes_in_same_class_share_blocks() {
        let _g = locked();
        set_enabled(true);
        // 100 and 128 both round up to the 128-byte class.
        let a = Layout::from_size_align(100, 8).unwrap();
        let b = Layout::from_size_align(128, 16).unwrap();
        assert_eq!(class_of(a), class_of(b));
        let (p1, _) = alloc(a);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { dealloc(p1, a) };
        let (p2, from_pool) = alloc(b);
        assert_eq!(p1, p2);
        assert!(from_pool);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { dealloc(p2, b) };
    }

    #[test]
    fn oversized_and_overaligned_layouts_bypass() {
        let _g = locked();
        set_enabled(true);
        let big = Layout::from_size_align(MAX_POOLED_SIZE + 1, 8).unwrap();
        let aligned = Layout::from_size_align(64, 64).unwrap();
        assert_eq!(class_of(big), None);
        assert_eq!(class_of(aligned), None);
        for layout in [big, aligned] {
            let (p, from_pool) = alloc(layout);
            assert!(!from_pool);
            // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
            unsafe { dealloc(p, layout) };
        }
    }

    #[test]
    fn disabled_pool_never_serves_hits() {
        let _g = locked();
        set_enabled(false);
        let layout = Layout::from_size_align(64, 8).unwrap();
        let (p1, from_pool) = alloc(layout);
        assert!(!from_pool);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { dealloc(p1, layout) };
        let (p2, from_pool) = alloc(layout);
        assert!(!from_pool, "disabled pool must always miss");
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { dealloc(p2, layout) };
        set_enabled(true);
    }

    #[test]
    fn flush_migrates_blocks_to_the_shard_for_other_threads() {
        let _g = locked();
        set_enabled(true);
        // A size class nothing else in this test binary touches.
        let layout = Layout::from_size_align(MAX_POOLED_SIZE - 8, 16).unwrap();
        let ptr = std::thread::spawn(move || {
            let (p, _) = alloc(layout);
            // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
            unsafe { dealloc(p, layout) };
            flush();
            p as usize
        })
        .join()
        .unwrap();
        // The block now sits in the global shard; this thread's next alloc of
        // the class refills from it.
        let (p, from_pool) = alloc(layout);
        assert!(from_pool, "flushed block must be visible via the shard");
        assert_eq!(p as usize, ptr);
        // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
        unsafe { dealloc(p, layout) };
    }

    #[test]
    fn thread_cap_spills_instead_of_growing_unboundedly() {
        let _g = locked();
        set_enabled(true);
        let layout = Layout::from_size_align(CLASS_GRANULE * 7, 16).unwrap();
        let mut ptrs = Vec::new();
        for _ in 0..THREAD_CLASS_CAP + 16 {
            ptrs.push(alloc(layout).0);
        }
        let before = stats();
        for p in ptrs {
            // SAFETY: [INV-12] test-controlled: the nodes involved are test-owned (unpublished or unlinked here) or the protecting span is held open by the test.
            unsafe { dealloc(p, layout) };
        }
        let after = stats();
        // Every block was parked (thread list + shard spill absorb them all);
        // none were released back to the system allocator.
        assert_eq!(after.recycled - before.recycled, (THREAD_CLASS_CAP + 16) as u64);
        assert_eq!(after.released, before.released);
        flush();
    }

    #[test]
    fn hit_rate_math() {
        let s = PoolStats { hits: 9, misses: 1, recycled: 0, released: 0 };
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
    }
}
