//! Bounded lock-free MPMC ring buffer (Vyukov's bounded queue).
//!
//! The telemetry event-tracing substrate: each SMR handle owns a ring into
//! which it pushes fixed-size event records on the hot path, and a reader
//! thread drains them concurrently without ever blocking the writer. The
//! algorithm is Dmitry Vyukov's bounded MPMC queue — each slot carries a
//! sequence number that encodes whether it is free to write or ready to
//! read, so producers and consumers synchronize on a single CAS each with
//! no shared locks and no unbounded spinning.
//!
//! Design points for the telemetry use case:
//!
//! * **Drop-on-full, never block.** A full ring rejects the push and bumps
//!   a `dropped` counter. Tracing must never stall the reclamation path;
//!   losing the oldest *unread* events under overload is the standard
//!   tracing trade-off, and the drop count makes the loss visible.
//! * **`T: Copy` records.** Slots are plain cells; records are packed
//!   16-byte values (see `mp-smr`'s telemetry module), so a torn view is
//!   impossible — the sequence protocol orders the slot write before the
//!   reader's load.
//! * **Power-of-two capacity.** Requested capacities round up so the index
//!   map is a mask, keeping the push path branch-light.

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::cache_padded::CachePadded;

/// A slot: `seq` is the rendezvous word of Vyukov's protocol. For slot `i`
/// of a ring with capacity `cap`, `seq == i + k*cap` means "free for the
/// k-th lap's producer"; `seq == i + k*cap + 1` means "holds the k-th
/// lap's record, ready for its consumer".
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free multi-producer multi-consumer ring of `Copy` records.
pub struct RingBuffer<T> {
    mask: usize,
    slots: Box<[Slot<T>]>,
    /// Producer cursor (next slot to write).
    tail: CachePadded<AtomicUsize>,
    /// Consumer cursor (next slot to read).
    head: CachePadded<AtomicUsize>,
    /// Records rejected because the ring was full.
    dropped: AtomicU64,
}

// SAFETY: [INV-13] slots are only accessed under the sequence protocol,
// which hands each slot to exactly one thread at a time; `T: Copy` records
// carry no drop glue or interior references.
unsafe impl<T: Send + Copy> Send for RingBuffer<T> {}
// SAFETY: [INV-13] see above.
unsafe impl<T: Send + Copy> Sync for RingBuffer<T> {}

impl<T: Copy> RingBuffer<T> {
    /// Creates a ring holding at least `capacity` records (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingBuffer {
            mask: cap - 1,
            slots,
            tail: CachePadded::new(AtomicUsize::new(0)),
            head: CachePadded::new(AtomicUsize::new(0)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Records rejected so far because the ring was full.
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Approximate number of buffered records (racy under concurrency;
    /// exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// True when no records are buffered (same caveat as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes `value`; returns `false` (and counts a drop) if the ring is
    /// full. Lock-free: a stalled consumer cannot block producers, it can
    /// only cause drops.
    pub fn push(&self, value: T) -> bool {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                // Slot free for this lap: claim it by advancing the tail.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: [INV-13] the CAS gave this thread exclusive write
                        // access to the slot until `seq` is republished.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Slot still holds a record from `capacity` ago: full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer claimed `pos`; chase the tail.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest record, or `None` if the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                // Slot ready for this lap's consumer: claim it.
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: [INV-13] the CAS gave this thread exclusive read
                        // access; the producer's Release store ordered the
                        // value write before the seq we acquired.
                        let value = unsafe { (*slot.value.get()).assume_init() };
                        // Republish the slot for the producer one lap ahead.
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                // Nothing written here yet: empty.
                return None;
            } else {
                // Another consumer claimed `pos`; chase the head.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains everything currently poppable through `f`; returns how many
    /// records were consumed. Concurrent pushes during the drain may or may
    /// not be observed.
    pub fn drain(&self, mut f: impl FnMut(T)) -> usize {
        let mut n = 0;
        while let Some(v) = self.pop() {
            f(v);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(RingBuffer::<u64>::new(0).capacity(), 2);
        assert_eq!(RingBuffer::<u64>::new(5).capacity(), 8);
        assert_eq!(RingBuffer::<u64>::new(64).capacity(), 64);
    }

    #[test]
    fn fifo_order_single_thread() {
        let r = RingBuffer::new(8);
        for i in 0..8u64 {
            assert!(r.push(i));
        }
        assert!(!r.push(99), "ninth push into an 8-slot ring must drop");
        assert_eq!(r.dropped(), 1);
        for i in 0..8u64 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    /// Wraparound: push/pop far past the capacity so every slot is reused
    /// many laps, preserving FIFO order throughout.
    #[test]
    fn wraparound_many_laps() {
        let r = RingBuffer::new(4);
        let mut next_out = 0u64;
        for i in 0..999u64 {
            assert!(r.push(i));
            if i % 3 == 2 {
                // Drain the batch so occupancy oscillates 0..=3 across laps.
                for _ in 0..3 {
                    assert_eq!(r.pop(), Some(next_out));
                    next_out += 1;
                }
            }
        }
        while let Some(v) = r.pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, 999);
        assert_eq!(r.dropped(), 0);
    }

    /// Drain under contention: producers push tagged sequences while a
    /// consumer drains concurrently. Every record is either consumed or
    /// counted dropped, and each producer's records arrive in its own
    /// program order.
    #[test]
    fn drain_under_contention_loses_nothing_silently() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: u64 = 20_000;
        let ring = Arc::new(RingBuffer::<u64>::new(256));
        let pushed = Arc::new(AtomicU64::new(0));

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = Arc::clone(&ring);
                let pushed = Arc::clone(&pushed);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let rec = ((p as u64) << 32) | i;
                        if ring.push(rec) {
                            pushed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();

        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut got: Vec<u64> = Vec::new();
                // Drain until producers finish and the ring is dry. The
                // sentinel u64::MAX..MAX marker below ends the loop.
                loop {
                    let before = got.len();
                    ring.drain(|v| got.push(v));
                    if got.len() == before && got.last() == Some(&u64::MAX) {
                        break;
                    }
                    std::hint::spin_loop();
                }
                got
            })
        };

        for t in producers {
            t.join().unwrap();
        }
        // Snapshot before the sentinel: its own full-ring retries below
        // would otherwise inflate the drop ledger.
        let dropped = ring.dropped();
        while !ring.push(u64::MAX) {
            std::hint::spin_loop();
        }
        let got = consumer.join().unwrap();

        let delivered = got.iter().filter(|&&v| v != u64::MAX).count() as u64;
        assert_eq!(
            delivered + dropped,
            PRODUCERS as u64 * PER_PRODUCER,
            "every push is either delivered or counted as dropped"
        );
        assert_eq!(delivered, pushed.load(Ordering::Relaxed));

        // Per-producer FIFO: each producer's surviving sequence numbers
        // appear in increasing order.
        let mut last = [None::<u64>; PRODUCERS];
        for &v in got.iter().filter(|&&v| v != u64::MAX) {
            let p = (v >> 32) as usize;
            let i = v & 0xffff_ffff;
            if let Some(prev) = last[p] {
                assert!(i > prev, "producer {p} reordered: {i} after {prev}");
            }
            last[p] = Some(i);
        }
    }
}
