//! Deterministic pseudorandom number generation.
//!
//! A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) seeder expanding a
//! single `u64` into the 256-bit state of a
//! [xoshiro256++](https://prng.di.unimi.it/xoshiro256plusplus.c) core —
//! Blackman & Vigna's all-purpose generator (64-bit output, 2^256 − 1
//! period, passes BigCrush). The API mirrors the subset of the `rand`
//! crate's surface this workspace uses (`random_range`, `seed_from_u64`,
//! a [`SmallRng`] alias, a [`rng()`] convenience constructor) so workload
//! generators and tests read idiomatically without the external crate.
//!
//! # Non-cryptographic, bench/test-only
//!
//! These generators are **not cryptographically secure** and must never be
//! used for keys, tokens, or anything security-sensitive. They exist to
//! drive benchmark workloads and randomized tests deterministically: given
//! the same seed, every platform produces the same stream (pure integer
//! arithmetic, no platform entropy), which is what makes benchmark runs
//! and model-checker failures replayable.

use core::ops::Range;
use core::sync::atomic::{AtomicU64, Ordering};

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The SplitMix64 generator: a tiny, fast, equidistributed PRNG whose main
/// job here is expanding one `u64` seed into xoshiro's 256-bit state (the
/// usage its authors recommend). Also usable on its own for cheap
/// low-stakes randomness.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 generator from a raw state word.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The xoshiro256++ generator (Blackman & Vigna 2019).
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256pp {
    /// Expands `seed` through SplitMix64 into the four state words, per the
    /// reference implementation's seeding recommendation. The state cannot
    /// end up all-zero: SplitMix64 is a bijection composed with a
    /// equidistributed counter, so four consecutive outputs are never all 0.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The workspace's default small generator (xoshiro256++), named after the
/// `rand` type it replaces so call sites read identically.
pub type SmallRng = Xoshiro256pp;

/// Returns a fresh generator with a process-unique seed — the in-tree
/// stand-in for `rand::rng()`. Streams differ between calls (and thus
/// between threads), which is what concurrent stress tests need; they are
/// *not* securely unpredictable.
pub fn rng() -> SmallRng {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    // Fold in the monotonic clock so separate test processes diverge too.
    let t = std::time::SystemTime::UNIX_EPOCH
        .elapsed()
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    SmallRng::seed_from_u64(n.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ t)
}

/// Integer types drawable uniformly from a `Range` by [`RngExt::random_range`].
pub trait UniformInt: Copy {
    /// Draws uniformly from `range`. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Draws uniformly from `[0, span)` using Lemire's multiply-shift method
/// with rejection (unbiased). `span` must be nonzero.
#[inline]
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        // Threshold = 2^64 mod span; rejecting below it removes the bias.
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as u64) - (range.start as u64);
                range.start + sample_span(rng, span) as $t
            }
        }
    )*};
}

macro_rules! uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                // Map to unsigned offsets so the span arithmetic cannot
                // overflow, then shift back.
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                (range.start as $u).wrapping_add(sample_span(rng, span) as $u) as $t
            }
        }
    )*};
}

uniform_unsigned!(u8, u16, u32, u64, usize);
uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a uniform integer from `range` (half-open). Unbiased; panics
    /// on an empty range.
    #[inline]
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden streams: xoshiro256++ and SplitMix64 are pure integer
    /// arithmetic, so these values must be identical on every platform and
    /// toolchain. Guards the generators against accidental drift (which
    /// would silently invalidate recorded bench seeds and checker repros).
    #[test]
    fn splitmix64_golden_stream() {
        let mut sm = SplitMix64::seed_from_u64(0);
        // First outputs of splitmix64(seed=0), per the reference C code.
        assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(sm.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(sm.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn xoshiro_deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: i32 = r.random_range(-5..5);
            assert!((-5..5).contains(&w));
            let b: u8 = r.random_range(0..3);
            assert!(b < 3);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(99);
        let mut counts = [0u32; 10];
        const N: u32 = 100_000;
        for _ in 0..N {
            counts[r.random_range(0usize..10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / N as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn full_width_signed_range() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(i64::MIN..i64::MAX);
            // Just exercising the wrapping arithmetic: must not panic.
            let _ = v;
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(1);
        let _ = r.random_range(5u32..5);
    }

    #[test]
    fn random_bool_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn process_rng_streams_differ() {
        let mut a = rng();
        let mut b = rng();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys, "counter-mixed seeds must differ between calls");
    }
}
