//! A sharded shadow table: a concurrent map from 64-bit keys (typically
//! addresses) to small per-object state records, with atomic check-and-set
//! transitions.
//!
//! This is the generic substrate of `mp-smr`'s reclamation oracle: the SMR
//! crate keys the table by node address and encodes its lifecycle state
//! machine (Allocated → Retired → Freed) in [`ShadowSlot::state`], using
//! [`ShadowSlot::tag`] as a birth-epoch incarnation stamp so reuses of the
//! same address after a real free are distinguishable from the original
//! allocation. The table itself knows nothing about SMR: it only offers
//! linearizable per-key transitions whose rejection reasons propagate back
//! to the caller as strings.
//!
//! Sharded by a multiplicative hash of the key so concurrent transitions on
//! different keys rarely contend; a transition holds exactly one shard lock
//! for the duration of the caller's closure.

use std::collections::HashMap;
use std::sync::Mutex;

/// One tracked object's shadow record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowSlot {
    /// Client-defined state-machine value.
    pub state: u8,
    /// Client-defined incarnation tag (e.g. a birth-epoch stamp), used to
    /// tell apart successive objects that reuse the same key.
    pub tag: u64,
}

/// Outcome of a transition closure: the slot's next value (`None` removes
/// the entry), or a rejection message describing the violated invariant.
pub type ShadowVerdict = Result<Option<ShadowSlot>, String>;

/// A sharded key → [`ShadowSlot`] map with atomic per-key transitions.
pub struct ShadowTable {
    shards: Box<[Mutex<HashMap<u64, ShadowSlot>>]>,
    mask: u64,
}

impl ShadowTable {
    /// Creates a table with the default shard count (64).
    pub fn new() -> Self {
        Self::with_shards(64)
    }

    /// Creates a table with `n` shards (rounded up to a power of two).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        let shards: Vec<_> = (0..n).map(|_| Mutex::new(HashMap::new())).collect();
        ShadowTable { shards: shards.into_boxed_slice(), mask: n as u64 - 1 }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, ShadowSlot>> {
        // Fibonacci multiplicative hash: keys are usually addresses, whose
        // low bits are alignment zeros — mix the high bits down.
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        &self.shards[(h & self.mask) as usize]
    }

    /// Atomically applies `apply` to the slot under `key`.
    ///
    /// The closure sees the current slot (or `None` if the key is
    /// untracked) and returns the next slot (`None` removes the entry) or
    /// an error explaining why the transition is illegal. The closure runs
    /// under the shard lock; callers should keep it small and must not
    /// touch the table reentrantly. A panicking sibling thread cannot wedge
    /// the table: poisoned shard locks are recovered, since the map itself
    /// is always left structurally intact.
    pub fn transition(
        &self,
        key: u64,
        apply: impl FnOnce(Option<ShadowSlot>) -> ShadowVerdict,
    ) -> Result<(), String> {
        let mut map = self.shard(key).lock().unwrap_or_else(|p| p.into_inner());
        let current = map.get(&key).copied();
        match apply(current) {
            Ok(Some(next)) => {
                map.insert(key, next);
                Ok(())
            }
            Ok(None) => {
                map.remove(&key);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// The current slot under `key`, if tracked.
    pub fn get(&self, key: u64) -> Option<ShadowSlot> {
        self.shard(key).lock().unwrap_or_else(|p| p.into_inner()).get(&key).copied()
    }

    /// Number of tracked keys (sums all shards; O(shards)).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// True if no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.lock().unwrap_or_else(|p| p.into_inner()).is_empty())
    }
}

impl Default for ShadowTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_update_remove_roundtrip() {
        let t = ShadowTable::new();
        assert!(t.is_empty());
        t.transition(0x1000, |cur| {
            assert_eq!(cur, None);
            Ok(Some(ShadowSlot { state: 0, tag: 7 }))
        })
        .unwrap();
        assert_eq!(t.get(0x1000), Some(ShadowSlot { state: 0, tag: 7 }));
        assert_eq!(t.len(), 1);
        t.transition(0x1000, |cur| {
            let cur = cur.expect("tracked");
            Ok(Some(ShadowSlot { state: 1, ..cur }))
        })
        .unwrap();
        assert_eq!(t.get(0x1000).unwrap().state, 1);
        t.transition(0x1000, |_| Ok(None)).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn rejected_transition_leaves_slot_untouched() {
        let t = ShadowTable::new();
        t.transition(5, |_| Ok(Some(ShadowSlot { state: 2, tag: 1 }))).unwrap();
        let err = t
            .transition(5, |cur| {
                assert_eq!(cur.unwrap().state, 2);
                Err("illegal".to_string())
            })
            .unwrap_err();
        assert_eq!(err, "illegal");
        assert_eq!(t.get(5), Some(ShadowSlot { state: 2, tag: 1 }));
    }

    #[test]
    fn keys_with_shared_low_bits_spread_over_shards() {
        // Addresses are 16-byte aligned in practice; the shard hash must not
        // send them all to shard 0.
        let t = ShadowTable::with_shards(8);
        for i in 0..64u64 {
            t.transition(i << 4, |_| Ok(Some(ShadowSlot { state: 0, tag: i }))).unwrap();
        }
        assert_eq!(t.len(), 64);
        let used = t
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().is_empty())
            .count();
        assert!(used > 1, "all 64 keys landed in one shard");
    }

    #[test]
    fn concurrent_transitions_are_atomic_per_key() {
        let t = std::sync::Arc::new(ShadowTable::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for k in 0..256u64 {
                        t.transition(k, |cur| {
                            let tag = cur.map_or(0, |c| c.tag) + 1;
                            Ok(Some(ShadowSlot { state: 0, tag }))
                        })
                        .unwrap();
                    }
                });
            }
        });
        for k in 0..256 {
            assert_eq!(t.get(k).unwrap().tag, 4, "lost update on key {k}");
        }
    }
}
