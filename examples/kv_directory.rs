//! A realistic client scenario: a concurrent session directory.
//!
//! A service keeps an ordered index of active session ids (NM tree under
//! MP). Frontend threads look sessions up on every request; a login thread
//! registers new sessions; an expiry thread removes stale ones. The
//! directory must bound its memory overhead even if a frontend thread gets
//! descheduled mid-lookup — exactly the paper's "high-availability and
//! soft real-time" motivation for bounded wasted memory (§1).
//!
//! ```sh
//! cargo run --release --example kv_directory
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use margin_pointers::ds::{ConcurrentSet, NmTree};
use margin_pointers::smr::{schemes::Mp, Config, Smr, SmrHandle};

const INITIAL_SESSIONS: u64 = 50_000;

/// Session ids are sequential, but the NM tree is an *unbalanced* external
/// BST — inserting monotone keys would degenerate it into a list. Real
/// deployments index by a hashed key; we use Fibonacci hashing into the
/// 48-bit key space (invertible, so ids remain recoverable).
fn session_key(sid: u64) -> u64 {
    (sid.wrapping_mul(0x9e37_79b9_7f4a_7c15)) >> 16
}

fn main() {
    let smr = Mp::new(Config::default().with_max_threads(8).with_margin(1 << 24));
    // The directory maps hashed session keys to user ids (the key/value
    // flavor of Definition 4.1's search data structure).
    let dir: Arc<NmTree<Mp, u64>> = Arc::new(NmTree::new(&smr));
    let stop = Arc::new(AtomicBool::new(false));
    let next_session = Arc::new(AtomicU64::new(INITIAL_SESSIONS));
    let oldest_live = Arc::new(AtomicU64::new(0));

    // Bootstrap the directory.
    {
        let mut h = smr.register();
        for sid in 0..INITIAL_SESSIONS {
            dir.insert_kv(&mut h, session_key(sid), sid); // value: the user id
        }
    }

    let hits = Arc::new(AtomicU64::new(0));
    let misses = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Two frontend lookup threads.
        for _ in 0..2 {
            let (smr, dir, stop) = (smr.clone(), dir.clone(), stop.clone());
            let (next, oldest) = (next_session.clone(), oldest_live.clone());
            let (hits, misses) = (hits.clone(), misses.clone());
            s.spawn(move || {
                let mut h = smr.register();
                let mut x = 0x1234_5678_u64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let hi = next.load(Ordering::Relaxed);
                    let lo = oldest.load(Ordering::Relaxed);
                    let sid = lo + x % (hi - lo).max(1);
                    if let Some(user) = dir.get(&mut h, session_key(sid)) {
                        assert_eq!(user, sid, "value integrity under churn");
                        hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // Login thread: registers fresh sessions.
        {
            let (smr, dir, stop, next) =
                (smr.clone(), dir.clone(), stop.clone(), next_session.clone());
            s.spawn(move || {
                let mut h = smr.register();
                while !stop.load(Ordering::Relaxed) {
                    let sid = next.fetch_add(1, Ordering::Relaxed);
                    dir.insert_kv(&mut h, session_key(sid), sid);
                }
            });
        }
        // A descheduled frontend: enters an operation via the RAII guard
        // and then sleeps through the whole run — the paper's §1 scenario.
        // Under MP the open operation pins only a bounded neighborhood of
        // retired nodes, so the final wasted-memory figure stays small; the
        // guard guarantees the operation ends (protections released) when
        // the thread exits, even if it panicked mid-sleep.
        {
            let (smr, stop) = (smr.clone(), stop.clone());
            s.spawn(move || {
                let mut h = smr.register();
                let _op = h.pin(); // announced; now descheduled mid-lookup
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        // Expiry thread: evicts the oldest sessions, but never drains the
        // directory below a working set of 10 K live sessions.
        {
            let (smr, dir, stop) = (smr.clone(), dir.clone(), stop.clone());
            let (next, oldest) = (next_session.clone(), oldest_live.clone());
            s.spawn(move || {
                let mut h = smr.register();
                while !stop.load(Ordering::Relaxed) {
                    let hi = next.load(Ordering::Relaxed);
                    let lo = oldest.load(Ordering::Relaxed);
                    if hi.saturating_sub(lo) <= 10_000 {
                        std::thread::sleep(Duration::from_micros(50));
                        continue;
                    }
                    let sid = oldest.fetch_add(1, Ordering::Relaxed);
                    dir.remove(&mut h, session_key(sid));
                }
            });
        }

        std::thread::sleep(Duration::from_millis(800));
        stop.store(true, Ordering::Release);
    });

    let live = next_session.load(Ordering::Relaxed) - oldest_live.load(Ordering::Relaxed);
    println!(
        "lookups: {} hits / {} misses; ~{live} sessions live; \
         wasted memory right now: {} nodes (bounded by MP, even with a \
         frontend descheduled mid-operation the whole run)",
        hits.load(Ordering::Relaxed),
        misses.load(Ordering::Relaxed),
        smr.retired_pending(),
    );
}
