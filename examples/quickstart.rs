//! Quickstart: a concurrent skip list protected by margin pointers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use margin_pointers::ds::{skiplist, ConcurrentSet, SkipList};
use margin_pointers::smr::{schemes::Mp, Atomic, Config, Shared, Smr, SmrHandle, Telemetry};

fn main() {
    // 1. Configure the SMR scheme. The margin (2^20 here, the paper's
    //    default) trades run-time overhead against the wasted-memory bound.
    let config = Config::default()
        .with_max_threads(8)
        .with_slots_per_thread(skiplist::SLOTS_NEEDED)
        .with_margin(1 << 20);
    let smr = Mp::new(config);

    // 2. Build a data structure on top of it.
    let set: Arc<SkipList<Mp>> = Arc::new(SkipList::new(&smr));

    // 3. Each thread registers a handle and goes to work. All protection —
    //    margin announcements, hazard fallbacks, epoch stamping — happens
    //    inside the structure's operations.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let set = Arc::clone(&set);
            let smr = Arc::clone(&smr);
            s.spawn(move || {
                let mut handle = smr.register();
                for i in 0..10_000u64 {
                    let key = (i * 7 + t) % 8_192;
                    match i % 4 {
                        0 => {
                            set.insert(&mut handle, key);
                        }
                        1 => {
                            set.contains(&mut handle, key);
                        }
                        2 => {
                            set.remove(&mut handle, key);
                        }
                        _ => {
                            set.contains(&mut handle, key.wrapping_add(1) % 8_192);
                        }
                    }
                }
                let snap = handle.snapshot();
                println!(
                    "thread {t}: {} ops, {} fences, {} nodes retired, {} reclaimed",
                    snap.ops(),
                    snap.fences(),
                    snap.retires(),
                    snap.frees(),
                );
            });
        }
    });

    let mut handle = smr.register();
    println!("final size: {} keys", set.len(&mut handle));
    println!("unreclaimed (wasted) nodes right now: {}", smr.retired_pending());

    // 4. Under the hood: structures drive the raw SMR API. Client code that
    //    needs it directly uses `pin()` — an RAII guard that announces the
    //    operation on creation and releases every protection when dropped,
    //    so start_op/end_op can never be left unbalanced.
    let mut op = handle.pin();
    let node = op.alloc_with_index(123u64, 42 << 16);
    let cell = Atomic::new(node); // publish ...
    let seen = op.read(&cell, 0); // ... and load through protected read
    // SAFETY: [INV-01] deref inside the `op` pin span that read `seen`.
    println!("raw API: read back key {}", unsafe { *seen.deref().data() });
    cell.store(Shared::null(), std::sync::atomic::Ordering::Release); // unlink
    unsafe { op.retire(node) }; // SAFETY: [INV-04] unlinked above, retired once.
    drop(op); // end_op: protections released, node reclaimable
    drop(handle);
}
