//! Compare all SMR schemes on one workload, in one command.
//!
//! Runs the paper's read-dominated workload on the NM tree under every
//! scheme and prints throughput, fences per traversed node, and wasted
//! memory — a miniature of the paper's evaluation (§6). The schemes are
//! selected at runtime through the [`AnySmr`] facade, so the whole table
//! is one monomorphization; set `MP_SCHEME=<name>` to run a single row:
//!
//! ```sh
//! cargo run --release --example scheme_comparison
//! MP_SCHEME=ebr cargo run --release --example scheme_comparison
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use margin_pointers::ds::{skiplist, ConcurrentSet, NmTree};
use margin_pointers::smr::{
    AnySmr, SchemeKind, Smr, SmrBuilder, Telemetry, TelemetrySnapshot,
};

const THREADS: usize = 4;
const PREFILL: u64 = 20_000;
const RUN: Duration = Duration::from_millis(400);

fn bench(kind: SchemeKind) -> (f64, usize, TelemetrySnapshot) {
    let smr: Arc<AnySmr> = SmrBuilder::new()
        .max_threads(THREADS + 1)
        .slots_per_thread(skiplist::SLOTS_NEEDED)
        .margin(1 << 27) // margin sized for PREFILL's index density
        .scheme(kind)
        .try_build_any()
        .expect("valid config");
    let set: Arc<NmTree<AnySmr>> = Arc::new(NmTree::new(&smr));
    {
        // Uniform random prefill (§6): the NM tree is unbalanced, so random
        // insertion order is what keeps depth logarithmic.
        let mut h = smr.try_register().expect("registry slot");
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut added = 0;
        while added < PREFILL {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if set.insert(&mut h, x % (2 * PREFILL)) {
                added += 1;
            }
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut ops_total = 0u64;
    let mut merged = TelemetrySnapshot::default();
    let mut peak_pending = 0usize;
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for t in 0..THREADS as u64 {
            let (smr, set, stop) = (smr.clone(), set.clone(), stop.clone());
            joins.push(s.spawn(move || {
                let mut h = smr.try_register().expect("registry slot");
                let mut x = t + 1;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % (2 * PREFILL);
                    match x % 100 {
                        0..=89 => {
                            set.contains(&mut h, key);
                        }
                        90..=94 => {
                            set.insert(&mut h, key);
                        }
                        _ => {
                            set.remove(&mut h, key);
                        }
                    }
                    ops += 1;
                }
                (ops, h.snapshot())
            }));
        }
        let deadline = Instant::now() + RUN;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
            peak_pending = peak_pending.max(smr.retired_pending());
            smr.sample_waste();
        }
        stop.store(true, Ordering::Release);
        for j in joins {
            let (o, s) = j.join().unwrap();
            ops_total += o;
            merged.merge(&s);
        }
    });
    (ops_total as f64 / RUN.as_secs_f64() / 1e6, peak_pending, merged)
}

fn main() {
    // DTA is excluded from the sweep: without its list-specific freezer it
    // degenerates to EBR and the row would mislead.
    let kinds: Vec<SchemeKind> = match SchemeKind::from_env() {
        Some(k) => vec![k],
        None => SchemeKind::ALL.into_iter().filter(|k| *k != SchemeKind::Dta).collect(),
    };
    println!(
        "NM tree, read-dominated, {THREADS} threads, S={PREFILL} \
         (paper §6 in miniature)\n"
    );
    println!(
        "{:>6}  {:>8}  {:>12}  {:>12}  {:>9}  {:>10}  {:>11}",
        "scheme", "Mops/s", "fences/node", "peak wasted", "pool-hit", "allocs/op", "scan-allocs"
    );
    for kind in kinds {
        let (mops, peak, snap) = bench(kind);
        let name = kind.name();
        let fpn = snap.fences_per_node();
        println!(
            "{name:>6}  {mops:>8.3}  {fpn:>12.4}  {peak:>12}  {:>9.3}  {:>10.4}  {:>11}",
            snap.pool_hit_rate(),
            snap.allocs_per_op(),
            snap.scan_heap_allocs(),
        );
    }
    println!("\nMP: bounded wasted memory at epoch-scheme-like cost (Table 1).");
    println!("pool-hit: node allocations served by the per-thread block pool;");
    println!("allocs/op: real allocator calls per operation (pool misses / ops);");
    println!("scan-allocs: reclamation scans that had to grow a scratch buffer.");
}
