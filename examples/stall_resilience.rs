//! Stall resilience: the paper's §1 scenario, live.
//!
//! One thread parks itself in the middle of an operation while three
//! workers churn inserts/removes. Under EBR the parked thread pins every
//! node retired after its announcement, so wasted memory grows without
//! bound; under MP it stays flat — the predetermined bound in action
//! (Theorem 4.2).
//!
//! ```sh
//! cargo run --release --example stall_resilience
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use margin_pointers::ds::{ConcurrentSet, LinkedList};
use margin_pointers::smr::schemes::{Ebr, Mp};
use margin_pointers::smr::{Config, Smr, SmrHandle};

fn churn_with_stall<S: Smr>(label: &str) -> Vec<usize> {
    let smr = S::new(Config::default().with_max_threads(8));
    let list = Arc::new(LinkedList::<S>::new(&smr));
    let stop = Arc::new(AtomicBool::new(false));

    // Prefill.
    {
        let mut h = smr.register();
        for k in 0..512 {
            list.insert(&mut h, k);
        }
    }

    let mut samples = Vec::new();
    std::thread::scope(|s| {
        // The straggler: starts an operation and goes to sleep.
        {
            let smr = smr.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut h = smr.register();
                // Pin an operation open (RAII: ends when the guard drops),
                // then stall mid-operation.
                let _op = h.pin();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        // Workers churn.
        for t in 0..3u64 {
            let smr = smr.clone();
            let list = list.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut h = smr.register();
                let mut k = t;
                while !stop.load(Ordering::Relaxed) {
                    list.remove(&mut h, k % 512);
                    list.insert(&mut h, k % 512);
                    k = k.wrapping_add(3);
                }
            });
        }
        // Sample wasted memory ten times over one second.
        for _ in 0..10 {
            std::thread::sleep(Duration::from_millis(100));
            samples.push(smr.retired_pending());
        }
        stop.store(true, Ordering::Release);
    });

    println!("{label:>4}: wasted-memory samples over time = {samples:?}");
    samples
}

fn main() {
    println!("churning 3 workers while 1 thread is parked mid-operation...\n");
    let ebr = churn_with_stall::<Ebr>("EBR");
    let mp = churn_with_stall::<Mp>("MP");
    let ebr_final = *ebr.last().unwrap();
    let mp_final = *mp.last().unwrap();
    println!(
        "\nfinal wasted memory — EBR: {ebr_final} nodes (grows with runtime), \
         MP: {mp_final} nodes (bounded)"
    );
    assert!(
        ebr_final > 10 * mp_final.max(1),
        "expected EBR waste to dwarf MP's under a stall"
    );
    println!("MP kept wasted memory bounded; EBR could not. (Paper §1, Figure 6.)");
}
