//! End-to-end telemetry tour: armed tracing, latency histograms, waste
//! sampling, and both exporters.
//!
//! Runs a short churn workload on MP with telemetry armed, drains the
//! per-handle event ring, prints a counter/latency digest, and writes the
//! Prometheus + JSON artifacts under `MP_BENCH_DIR` (default
//! `target/bench-results`), validating both before reporting their paths.
//!
//! ```sh
//! MP_TELEMETRY=1 cargo run --release --example telemetry_export
//! ```
//!
//! (The example arms telemetry itself via [`SmrBuilder::telemetry`], so the
//! env var is optional.)

use std::sync::Arc;
use std::time::Duration;

use margin_pointers::ds::{skiplist, ConcurrentSet, SkipList};
use margin_pointers::smr::schemes::Mp;
use margin_pointers::smr::telemetry::export;
use margin_pointers::smr::{Smr, SmrBuilder, SmrHandle, Telemetry, TelemetrySnapshot, WasteSampler};

const THREADS: u64 = 4;
const OPS_PER_THREAD: u64 = 30_000;

fn main() {
    let smr = SmrBuilder::new()
        .max_threads(THREADS as usize + 2) // workers + setup + final reader
        .slots_per_thread(skiplist::SLOTS_NEEDED)
        .margin(1 << 20)
        .telemetry(true) // arm tracing, timing, and event rings
        .event_capacity(4096)
        .build::<Mp>();
    let set: Arc<SkipList<Mp>> = Arc::new(SkipList::new(&smr));

    // Background waste sampler: snapshots retired-but-unreclaimed nodes and
    // bytes into the scheme's time series every 5 ms until dropped.
    let sampler = WasteSampler::spawn(smr.clone(), Duration::from_millis(5));

    let mut merged = TelemetrySnapshot::default();
    let mut events_by_kind: Vec<(String, u64)> = Vec::new();
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let (smr, set) = (smr.clone(), set.clone());
            joins.push(s.spawn(move || {
                let mut h = smr.register();
                let mut x = t + 0x9e37_79b9;
                for i in 0..OPS_PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % 8_192;
                    match i % 3 {
                        0 => {
                            set.insert(&mut h, key);
                        }
                        1 => {
                            set.contains(&mut h, key);
                        }
                        _ => {
                            set.remove(&mut h, key);
                        }
                    }
                }
                // Drain this handle's event ring before the handle dies.
                let mut kinds = std::collections::BTreeMap::new();
                if let Some(ring) = h.events() {
                    ring.drain(|rec| {
                        let name = rec.kind().map(|k| k.name()).unwrap_or("unknown");
                        *kinds.entry(name.to_string()).or_insert(0u64) += 1;
                    });
                }
                (h.snapshot(), kinds)
            }));
        }
        for j in joins {
            let (snap, kinds) = j.join().expect("worker panicked");
            merged.merge(&snap);
            for (k, n) in kinds {
                match events_by_kind.iter_mut().find(|(name, _)| *name == k) {
                    Some((_, total)) => *total += n,
                    None => events_by_kind.push((k, n)),
                }
            }
        }
    });
    // Raw-API phase: `pin()` guards are what the op-latency histogram
    // times (structure operations drive start_op/end_op directly and are
    // charged to the structures' own metrics instead).
    {
        let mut h = smr.register();
        for i in 0..2_000u64 {
            let mut op = h.pin();
            let n = op.alloc_with_index(i, ((i % 60_000) as u32 + 2_000) << 16);
            unsafe { op.retire(n) }; // SAFETY: [INV-04] never published, retired once.
            drop(op);
        }
        merged.merge(&h.snapshot());
    }
    drop(sampler); // stop + join the sampler thread

    println!("== counters ==");
    println!("  ops            {:>10}", merged.ops());
    println!("  allocs         {:>10}", merged.allocs());
    println!("  retires        {:>10}", merged.retires());
    println!("  frees          {:>10}", merged.frees());
    println!("  fences         {:>10}", merged.fences());
    println!("  fences/node    {:>10.4}", merged.fences_per_node());
    println!("  pool hit rate  {:>10.3}", merged.pool_hit_rate());

    let ops = merged.op_latency();
    println!("== op latency (ns) ==");
    println!(
        "  count {}  mean {:.0}  p50 {}  p99 {}  max {}",
        ops.count(),
        ops.mean(),
        ops.quantile(0.50),
        ops.quantile(0.99),
        ops.max()
    );
    let scans = merged.scan_latency();
    println!("== empty() scan latency (ns) ==");
    println!(
        "  count {}  mean {:.0}  p99 {}  max {}",
        scans.count(),
        scans.mean(),
        scans.quantile(0.99),
        scans.max()
    );

    println!("== traced events (ring capacity 4096/handle; drops counted) ==");
    events_by_kind.sort();
    for (kind, n) in &events_by_kind {
        println!("  {kind:<18} {n:>10}");
    }
    println!("  dropped            {:>10}", merged.events_dropped());

    let waste = smr.telemetry().waste().samples();
    println!("== waste series ({} samples) ==", waste.len());
    if let Some(peak) = waste.iter().max_by_key(|s| s.pending_bytes) {
        println!("  peak: {} nodes / {} bytes pending", peak.pending_nodes, peak.pending_bytes);
    }

    let bp = smr.telemetry().backpressure();
    let (prom, json) =
        export::write_artifacts("MP", &merged, &waste, Some(bp)).expect("write artifacts");
    let samples = export::validate_artifact_files(&prom, &json).expect("artifacts must validate");
    println!("== exporters ==");
    println!("  {} ({samples} Prometheus samples)", prom.display());
    println!("  {}", json.display());
}
